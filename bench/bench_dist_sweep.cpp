/// \file bench_dist_sweep.cpp
/// Identity sweep for distributed tuning: the same scenario tuned through
/// loopback TCP fleets of 1, 2, and 4 worker agents, plus a kill arm
/// where a worker drops its socket mid-run while a late replacement
/// dials in. Every arm is gated on producing the bit-identical
/// TuningOutcome of the `--search-threads N` baseline — fleet size,
/// transport, and death schedule must not move the result.
///
/// Besides the human-readable stdout report, writes BENCH_dist_sweep.json
/// (machine-readable, schema checked by tools/check_bench_json.py).

#include <cstdio>
#include <iostream>

#include "dist_sweep.hpp"

int main() {
  using namespace peak;
  std::cout << "Distributed tuning over loopback TCP worker fleets\n\n";

  const bench::DistSweepResult result = bench::run_dist_sweep();
  bench::print_dist_sweep(result, std::cout);

  std::cout << "\nShape: every fleet size reproduces the threaded outcome "
               "bit for bit, and the\nkill arm shows the liveness "
               "machinery earning its keep — the dead worker's\ntasks "
               "requeue onto survivors, the late joiner is absorbed as a "
               "respawn, and\nthe outcome still does not move.\n";

  const std::string json_path = "BENCH_dist_sweep.json";
  if (bench::write_dist_sweep_json(json_path, result))
    std::printf("\nWrote %s\n", json_path.c_str());
  else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
