/// \file bench_ablation_outliers.cpp
/// Ablation for Section 3's measurement-outlier elimination: rate the same
/// version with and without the outlier filter under the perturbation
/// process (interrupt-like spikes). Without the filter, spikes inflate
/// both EVAL and VAR, slowing convergence and skewing comparisons.

#include <cmath>
#include <iostream>

#include "rating/window.hpp"
#include "sim/exec_backend.hpp"
#include "stats/descriptive.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::cout << "Ablation: rating with vs without outlier elimination\n\n";

  // Heavier perturbations than the default machine to make the effect
  // visible at table scale.
  sim::MachineModel machine = sim::pentium4();
  machine.noise.outlier_prob = 0.04;
  machine.noise.outlier_scale_lo = 3.0;
  machine.noise.outlier_scale_hi = 6.0;

  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const search::FlagConfig o3 = search::o3_config(space);

  support::Table table;
  table.row({"Section", "filter", "EVAL err %", "rel sd %",
             "samples to converge"});

  for (const char* name : {"SWIM", "EQUAKE"}) {
    const auto workload = workloads::make_workload(name);
    const workloads::Trace trace =
        workload->trace(workloads::DataSet::kTrain, 5);
    sim::TsTraits traits = workload->traits();
    traits.workload_scale = trace.workload_scale;
    sim::SimExecutionBackend backend(workload->function(), traits,
                                     machine, effects, 11);
    const double truth =
        backend.expected_time(o3, trace.invocations[0]);

    for (const bool filtered : {true, false}) {
      rating::WindowPolicy policy;
      policy.min_samples = 200;  // long windows: the filter must face spikes
      policy.cv_threshold = 0.002;
      policy.max_samples = 4000;
      if (!filtered) policy.outliers.rule = stats::OutlierRule::kNone;
      rating::WindowedRater rater(policy);
      std::size_t used = 0;
      while (!rater.converged() && !rater.exhausted()) {
        rater.add(backend
                      .invoke(o3, trace.invocations[used %
                                                    trace.invocations.size()])
                      .time);
        ++used;
      }
      const rating::Rating r = rater.rating();
      table.add_row()
          .cell(workload->full_name())
          .cell(filtered ? "MAD" : "none")
          .num(100.0 * (r.eval / truth - 1.0))
          .num(100.0 * std::sqrt(r.var) / r.eval)
          .cell(rater.converged() ? std::to_string(used) : "no convergence");
    }
  }
  table.print(std::cout);
  std::cout << "\nShape: with the filter, EVAL sits near the true time "
               "(small positive cache-warmth\noffset) and converges; "
               "without it, interrupt spikes inflate EVAL and variance.\n";
  return 0;
}
