/// \file bench_fig2_mbr_example.cpp
/// Regenerates Figure 2: the worked MBR example. A two-component tuning
/// section (a loop body executed N times plus tail code executed once) is
/// timed over five invocations; solving the linear regression Y = T·C
/// recovers the component-time vector T = [110.05, 3.75], and the
/// dominant first component supplies the version's rating.

#include <cstdio>
#include <iostream>

#include "rating/mbr.hpp"
#include "stats/regression.hpp"

int main() {
  using namespace peak;
  std::cout << "Reproducing Figure 2: a simple example of MBR\n\n";

  // (b) Y and C collected during tuning — verbatim from the paper.
  const double y[5] = {11015, 5508, 6626, 6044, 8793};
  const double c1[5] = {100, 50, 60, 55, 80};

  std::printf("Y = [ ");
  for (double v : y) std::printf("%.0f ", v);
  std::printf("]\nC = [ ");
  for (double v : c1) std::printf("%.0f ", v);
  std::printf("]\n    [ 1 1 1 1 1 ]\n\n");

  // (c) Component-time vector T by linear regression.
  stats::Matrix design(5, 2);
  std::vector<double> times;
  for (int i = 0; i < 5; ++i) {
    design(static_cast<std::size_t>(i), 0) = c1[i];
    design(static_cast<std::size_t>(i), 1) = 1.0;
    times.push_back(y[i]);
  }
  const stats::RegressionResult fit = stats::least_squares(design, times);
  std::printf("T = [ %.2f  %.2f ]   (paper: [ 110.05  3.75 ])\n",
              fit.coefficients[0], fit.coefficients[1]);

  // The same numbers through the production MBR rater.
  rating::MbrProfile profile;
  profile.dominant_component = 0;
  rating::MbrPolicy policy;
  policy.min_samples_per_component = 2;
  rating::ModelBasedRater rater(2, profile, policy);
  for (int i = 0; i < 5; ++i) rater.add({c1[i], 1.0}, y[i]);
  const rating::Rating r = rater.rating();
  std::printf(
      "MBR rating of this version: EVAL = %.2f (dominant component), "
      "VAR = %.6f\n",
      r.eval, r.var);
  return 0;
}
