/// \file bench_analysis.cpp
/// Regenerates the analysis-side facts behind Table 1 (columns 2–4): for
/// every tuning section, the Figure 1 context-variable analysis verdict,
/// the run-time-constant check, the MBR component model, the RBR screen,
/// and the consultant's method chain. Everything here is *derived* by the
/// compiler analyses from the IR models — nothing is looked up.

#include <iostream>

#include "core/profile.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::cout << "Rating Approach Consultant: per-section analysis "
               "(machine: sparc2, train dataset)\n\n";

  const sim::MachineModel machine = sim::sparc2();
  support::Table table;
  table.row({"Section", "CtxAnalysis", "RTC", "#ctx", "#comp", "RBR ok",
             "Chain", "Paper"});

  int matches = 0;
  const auto workloads_list = workloads::all_workloads();
  for (const auto& w : workloads_list) {
    const workloads::Trace trace =
        w->trace(workloads::DataSet::kTrain, 42);
    const core::ProfileData p =
        core::profile_workload(*w, trace, machine);

    std::string chain;
    for (rating::Method m : p.decision.chain) {
      if (!chain.empty()) chain += ">";
      chain += rating::to_string(m);
    }
    table.add_row()
        .cell(w->full_name())
        .cell(p.context_analysis.cbr_applicable ? "scalar" : "non-scalar")
        .cell(p.context_analysis.needs_runtime_constant_check()
                  ? (p.array_contents_constant ? "const" : "varies")
                  : "n/a")
        .cell(std::to_string(p.num_contexts))
        .cell(std::to_string(p.components.num_components()) +
              (p.components.mbr_applicable ? "" : "!"))
        .cell(p.rbr_screen.eligible ? "yes" : "no")
        .cell(chain)
        .cell(rating::to_string(w->paper_method()));
    matches += p.decision.initial() == w->paper_method();
  }
  table.print(std::cout);
  std::cout << "\nDerived initial method matches Table 1 for " << matches
            << "/" << workloads_list.size()
            << " tuning sections.\n"
            << "(#comp marked '!' means the component model was rejected: "
               "too many components or\n too much profiled time variance "
               "left unexplained — the irregular-code gate.)\n";
  return 0;
}
