/// \file bench_table1.cpp
/// Regenerates Table 1: consistency of the rating approaches for the most
/// important tuning section of each benchmark. Following Section 5.1, a
/// single experimental version (compiled under "-O3") is rated repeatedly
/// over the training trace; each rating V_i aggregates a window of w
/// invocations. The rating error is X_i = V_i/V̄ - 1 for CBR and MBR and
/// X_i = V_i - 1 for RBR (the ideal RBR rating of a version against
/// itself is exactly 1). The table reports Mean(StdDev)·100 of X_i for
/// window sizes w ∈ {10, 20, 40, 80, 160}.
///
/// Shape targets: means near zero everywhere; σ shrinking with w roughly
/// like 1/sqrt(w); EQUAKE the noisiest FP section; the small APSI context
/// noisier than the large ones; RBR σ small despite the integer codes'
/// wild per-invocation irregularity (the re-execution ratio cancels it).

#include <cstdio>
#include <iostream>
#include <map>

#include "analysis/instrumentation.hpp"
#include "core/profile.hpp"
#include "rating/mbr.hpp"
#include "sim/exec_backend.hpp"
#include "stats/descriptive.hpp"
#include "stats/outlier.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

constexpr int kWindows[] = {10, 20, 40, 80, 160};
constexpr std::size_t kRatingsPerWindow = 36;
constexpr std::size_t kSamplesNeeded = 160 * kRatingsPerWindow;

std::string format_invocations(std::uint64_t n) {
  char buf[32];
  if (n >= 1'000'000)
    std::snprintf(buf, sizeof buf, "%.3gM", static_cast<double>(n) / 1e6);
  else if (n >= 1'000)
    std::snprintf(buf, sizeof buf, "%.3gK", static_cast<double>(n) / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(n));
  return buf;
}

/// Mean(σ)·100 of the rating errors for one window size.
std::string consistency_cell(const std::vector<double>& ratings,
                             bool rbr_style) {
  if (ratings.size() < 4) return "-";
  double vbar = 1.0;
  if (!rbr_style) vbar = stats::mean(ratings);
  std::vector<double> errors;
  errors.reserve(ratings.size());
  for (double v : ratings)
    errors.push_back(rbr_style ? v - 1.0 : v / vbar - 1.0);
  return support::Table::mean_sd(100.0 * stats::mean(errors),
                                 100.0 * stats::stddev(errors));
}

/// Windowed ratings from a raw sample stream (mean over each window after
/// the Section 3 outlier elimination).
std::vector<double> window_means(const std::vector<double>& samples,
                                 std::size_t w) {
  std::vector<double> out;
  // MAD detection: a 3-sigma rule masks at w = 10 (the spike inflates the
  // sigma it must exceed); see rating::WindowPolicy.
  const stats::OutlierPolicy outliers{stats::OutlierRule::kMad, 6.0, 0.25,
                                      4};
  for (std::size_t start = 0; start + w <= samples.size(); start += w) {
    const std::span<const double> win(samples.data() + start, w);
    out.push_back(stats::mean(stats::filter_outliers(win, outliers).kept));
  }
  return out;
}

struct RowSink {
  support::Table& table;
  void emit(const std::string& benchmark, const std::string& section,
            const char* approach, std::uint64_t paper_invocations,
            const std::map<std::size_t, std::vector<double>>& per_window,
            bool rbr_style) {
    auto row = table.add_row();
    row.cell(benchmark).cell(section).cell(approach).cell(
        format_invocations(paper_invocations));
    for (int w : kWindows)
      row.cell(consistency_cell(per_window.at(static_cast<std::size_t>(w)),
                                rbr_style));
  }
};

void run_workload(const workloads::Workload& workload,
                  const sim::MachineModel& machine, RowSink& sink) {
  const workloads::Trace trace =
      workload.trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(workload, trace, machine);
  const rating::Method method = profile.decision.initial();
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const search::FlagConfig o3 = search::o3_config(space);

  const ir::Function instrumented =
      profile.components.mbr_applicable
          ? analysis::instrument_components(workload.function(),
                                            profile.components)
          : workload.function();
  const ir::Function& fn = method == rating::Method::kMBR
                               ? instrumented
                               : workload.function();
  sim::TsTraits traits = workload.traits();
  traits.workload_scale = trace.workload_scale;
  sim::SimExecutionBackend backend(fn, traits, machine, effects,
                                   support::stable_hash(workload.benchmark()));
  backend.set_checkpoint_bytes(
      profile.input_sets.input_bytes(fn),
      profile.input_sets.modified_input_bytes(fn));

  const auto& invs = trace.invocations;
  auto next = [&, cursor = std::size_t{0}]() mutable -> const sim::Invocation& {
    const sim::Invocation& inv = invs[cursor];
    cursor = (cursor + 1) % invs.size();
    return inv;
  };

  std::map<std::size_t, std::vector<double>> per_window;

  switch (method) {
    case rating::Method::kRBR: {
      std::vector<double> ratios;
      ratios.reserve(kSamplesNeeded);
      for (std::size_t i = 0; i < kSamplesNeeded; ++i) {
        const sim::RbrPairResult pair =
            backend.invoke_rbr_pair(o3, o3, next(), sim::RbrOptions{true});
        ratios.push_back(pair.time_best / pair.time_exp);
      }
      for (int w : kWindows)
        per_window[static_cast<std::size_t>(w)] =
            window_means(ratios, static_cast<std::size_t>(w));
      sink.emit(workload.benchmark(), workload.ts_name(), "RBR",
                workload.paper_invocations(), per_window,
                /*rbr_style=*/true);
      return;
    }

    case rating::Method::kCBR: {
      // Collect per-context sample streams; report one row per context
      // (Table 1 shows multiple rows for radb4 and zgemm).
      std::map<std::vector<double>, std::vector<double>> buckets;
      bool done = false;
      for (std::size_t guard = 0; guard < 40 * kSamplesNeeded && !done;
           ++guard) {
        const sim::Invocation& inv = next();
        auto& bucket = buckets[inv.context];
        if (bucket.size() < kSamplesNeeded)
          bucket.push_back(backend.invoke(o3, inv).time);
        done = !buckets.empty();
        for (const auto& [ctx, samples] : buckets)
          done = done && samples.size() >= kSamplesNeeded;
      }
      int index = 1;
      for (const auto& [ctx, samples] : buckets) {
        for (int w : kWindows)
          per_window[static_cast<std::size_t>(w)] =
              window_means(samples, static_cast<std::size_t>(w));
        const std::string section =
            buckets.size() == 1
                ? workload.ts_name()
                : workload.ts_name() + "(Context " +
                      std::to_string(index++) + ")";
        sink.emit(workload.benchmark(), section, "CBR",
                  workload.paper_invocations(), per_window,
                  /*rbr_style=*/false);
      }
      return;
    }

    case rating::Method::kMBR: {
      // One MBR rating per window: regression over the window's component
      // counts and times.
      std::vector<std::vector<double>> counts;
      std::vector<double> times;
      counts.reserve(kSamplesNeeded);
      for (std::size_t i = 0; i < kSamplesNeeded; ++i) {
        const sim::Invocation& inv = next();
        const sim::InvocationResult r = backend.invoke(o3, inv);
        std::vector<double> row(r.counters->begin(), r.counters->end());
        row.push_back(1.0);
        counts.push_back(std::move(row));
        times.push_back(r.time);
      }
      rating::MbrPolicy policy;
      policy.min_samples_per_component = 1;
      for (int w : kWindows) {
        std::vector<double> ratings;
        for (std::size_t start = 0;
             start + static_cast<std::size_t>(w) <= times.size();
             start += static_cast<std::size_t>(w)) {
          rating::ModelBasedRater rater(
              profile.components.num_components(), profile.mbr_profile,
              policy);
          for (std::size_t i = start;
               i < start + static_cast<std::size_t>(w); ++i)
            rater.add(counts[i], times[i]);
          const rating::Rating r = rater.rating();
          if (r.eval > 0.0) ratings.push_back(r.eval);
        }
        per_window[static_cast<std::size_t>(w)] = std::move(ratings);
      }
      sink.emit(workload.benchmark(), workload.ts_name(), "MBR",
                workload.paper_invocations(), per_window,
                /*rbr_style=*/false);
      return;
    }

    default:
      return;
  }
}

}  // namespace

int main() {
  std::cout
      << "Reproducing Table 1: consistency of rating approaches for "
         "selected tuning sections\n"
         "(Mean(StdDev)*100 of the rating error; window sizes per "
         "column; machine: sparc2)\n\n";

  const sim::MachineModel machine = sim::sparc2();
  support::Table table;
  std::vector<std::string> header = {"Benchmark", "Tuning Section",
                                     "Approach", "#invoc"};
  for (int w : kWindows) header.push_back("w=" + std::to_string(w));
  table.row(header);

  RowSink sink{table};
  for (const auto& workload : workloads::all_workloads())
    run_workload(*workload, machine, sink);
  table.print(std::cout);

  std::cout
      << "\nShape checks vs the paper: means ~0; sigma falls with w "
         "(≈1/sqrt(w)); the integer\ncodes all use RBR; EQUAKE is the "
         "noisiest FP section; APSI context 1 (the smallest\nworkload) is "
         "the noisiest of its three contexts.\n";
  return 0;
}
