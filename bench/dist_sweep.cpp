#include "dist_sweep.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>

#include "core/profile.hpp"
#include "core/remote_eval.hpp"
#include "core/tuning_driver.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker_agent.hpp"
#include "obs/export.hpp"
#include "workloads/workload.hpp"

namespace peak::bench {

namespace {

using clock_type = std::chrono::steady_clock;

constexpr const char* kBenchmark = "SWIM";
constexpr unsigned kBaselineThreads = 2;

struct TuneSetup {
  std::unique_ptr<workloads::Workload> workload;
  workloads::Trace train;
  core::ProfileData profile;
  sim::MachineModel machine;
  sim::FlagEffectModel effects{search::gcc33_o3_space()};
};

TuneSetup make_setup(const std::string& benchmark) {
  TuneSetup s;
  s.machine = sim::sparc2();
  s.workload = workloads::make_workload(benchmark);
  s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
  s.profile = core::profile_workload(*s.workload, s.train, s.machine);
  return s;
}

core::TuningOutcome tune_once(const TuneSetup& s,
                              const core::DriverOptions& options) {
  core::TuningDriver driver(*s.workload, s.profile, s.train, s.machine,
                            s.effects, options);
  return driver.tune(rating::Method::kCBR);
}

/// A loopback fleet of in-process worker agents dialing the coordinator;
/// joins them all on destruction.
struct Fleet {
  std::vector<std::thread> threads;
  std::vector<int> statuses;

  // Threads write statuses[index] concurrently with later add()s;
  // pre-reserving keeps push_back from relocating live slots.
  Fleet() { statuses.reserve(16); }

  void add(std::uint16_t port, dist::WorkerOptions options) {
    const std::size_t index = statuses.size();
    statuses.push_back(-1);
    options.connect_host = "127.0.0.1";
    options.connect_port = port;
    threads.emplace_back([this, index, options] {
      dist::WorkerAgent agent(options);
      statuses[index] = agent.run();
    });
  }

  void join() {
    for (std::thread& t : threads)
      if (t.joinable()) t.join();
  }

  [[nodiscard]] bool all_exited_cleanly() const {
    for (int status : statuses)
      if (status != 0) return false;
    return !statuses.empty();
  }

  ~Fleet() { join(); }
};

/// One distributed tune of the sweep scenario against `baseline`. The
/// first worker can be rigged to drop its socket after `max_tasks_first`
/// completed tasks, and `late_joiner` dials one extra agent in after the
/// fleet has formed (counted by the coordinator as a respawn).
DistArm run_arm(const TuneSetup& s, const core::TuningOutcome& baseline,
                const std::string& mode, unsigned workers,
                std::uint64_t max_tasks_first, bool late_joiner) {
  DistArm arm;
  arm.mode = mode;
  arm.workers = workers;

  core::DriverOptions options;
  options.search_threads = kBaselineThreads;
  const core::SessionSpec spec =
      core::make_session_spec(kBenchmark, "sparc2", options);
  dist::DistPolicy policy;
  policy.min_workers = workers;
  policy.update_worker_table = false;
  dist::Coordinator coordinator(spec, policy);
  std::string error;
  if (!coordinator.listen(0, /*loopback_only=*/true, &error)) {
    std::fprintf(stderr, "dist sweep: listen failed: %s\n", error.c_str());
    return arm;  // completed=false fails the JSON gate loudly
  }

  Fleet fleet;
  for (unsigned i = 0; i < workers; ++i) {
    dist::WorkerOptions wo;
    wo.name = "w" + std::to_string(i);
    if (i == 0) wo.max_tasks = max_tasks_first;
    fleet.add(coordinator.port(), wo);
  }
  if (!coordinator.wait_for_fleet(&error)) {
    std::fprintf(stderr, "dist sweep: fleet failed to form: %s\n",
                 error.c_str());
    return arm;
  }
  // Dials after the fleet formed, so its handshake (served by the event
  // loop inside the first rounds) registers as a respawn.
  if (late_joiner) {
    dist::WorkerOptions wo;
    wo.name = "spare";
    fleet.add(coordinator.port(), wo);
  }

  options.coordinator = &coordinator;
  const clock_type::time_point t0 = clock_type::now();
  try {
    arm.identical = tune_once(s, options) == baseline;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist sweep: %s arm died: %s\n", mode.c_str(),
                 e.what());
    coordinator.shutdown();
    return arm;
  }
  arm.wall_s =
      std::chrono::duration<double>(clock_type::now() - t0).count();

  const dist::CoordinatorStats& stats = coordinator.stats();
  arm.tasks_dispatched = stats.tasks_dispatched;
  arm.tasks_requeued = stats.tasks_requeued;
  arm.workers_lost = stats.workers_lost;
  arm.workers_respawned = stats.workers_respawned;
  coordinator.shutdown();
  fleet.join();
  arm.completed = fleet.all_exited_cleanly();
  return arm;
}

}  // namespace

DistSweepResult run_dist_sweep() {
  DistSweepResult result;
  result.benchmark = kBenchmark;
  result.baseline_threads = kBaselineThreads;

  const TuneSetup s = make_setup(kBenchmark);
  core::DriverOptions threaded;
  threaded.search_threads = kBaselineThreads;
  const clock_type::time_point t0 = clock_type::now();
  const core::TuningOutcome baseline = tune_once(s, threaded);
  result.baseline_wall_s =
      std::chrono::duration<double>(clock_type::now() - t0).count();

  for (unsigned workers : {1u, 2u, 4u})
    result.arms.push_back(run_arm(s, baseline, "fleet", workers,
                                  /*max_tasks_first=*/0,
                                  /*late_joiner=*/false));
  // The robustness arm: the fleet's only worker keels over (no bye)
  // after three tasks while a spare dials in late. The run cannot finish
  // until the spare's handshake completes, so the loss, the requeue, and
  // the respawn are all guaranteed to fire — and the outcome must still
  // not move.
  result.arms.push_back(run_arm(s, baseline, "kill", /*workers=*/1,
                                /*max_tasks_first=*/3,
                                /*late_joiner=*/true));

  std::size_t identical = 0;
  for (const DistArm& arm : result.arms) {
    identical += arm.identical;
    result.total_requeued += arm.tasks_requeued;
    result.total_respawned += arm.workers_respawned;
  }
  result.identity_rate =
      result.arms.empty()
          ? 0.0
          : static_cast<double>(identical) /
                static_cast<double>(result.arms.size());
  return result;
}

void print_dist_sweep(const DistSweepResult& result, std::ostream& os) {
  char head[160];
  std::snprintf(head, sizeof head,
                "Distributed tuning sweep (%s, CBR, loopback TCP fleet vs "
                "--search-threads %u at %.3fs):\n",
                result.benchmark.c_str(), result.baseline_threads,
                result.baseline_wall_s);
  os << head;
  for (const DistArm& arm : result.arms) {
    char line[200];
    std::snprintf(
        line, sizeof line,
        "  %-5s %u workers  %.3fs  %-9s %-9s %llu dispatched, %llu "
        "requeued, %llu lost, %llu respawned\n",
        arm.mode.c_str(), arm.workers, arm.wall_s,
        arm.completed ? "completed" : "DIED",
        arm.identical ? "identical" : "DIFFERS",
        static_cast<unsigned long long>(arm.tasks_dispatched),
        static_cast<unsigned long long>(arm.tasks_requeued),
        static_cast<unsigned long long>(arm.workers_lost),
        static_cast<unsigned long long>(arm.workers_respawned));
    os << line;
  }
  char summary[160];
  std::snprintf(summary, sizeof summary,
                "  identity %.0f%%  (%llu tasks requeued, %llu workers "
                "respawned)\n",
                100.0 * result.identity_rate,
                static_cast<unsigned long long>(result.total_requeued),
                static_cast<unsigned long long>(result.total_respawned));
  os << summary;
}

void write_dist_sweep_fragment(std::ostream& os,
                               const DistSweepResult& result) {
  os << "{\"benchmark\":\"" << obs::json_escape(result.benchmark)
     << "\",\"baseline_threads\":" << result.baseline_threads
     << ",\"baseline_wall_s\":" << result.baseline_wall_s << ",\"arms\":[";
  bool first = true;
  for (const DistArm& arm : result.arms) {
    if (!first) os << ",";
    first = false;
    os << "{\"mode\":\"" << obs::json_escape(arm.mode)
       << "\",\"workers\":" << arm.workers << ",\"wall_s\":" << arm.wall_s
       << ",\"completed\":" << (arm.completed ? "true" : "false")
       << ",\"outcome_identical\":" << (arm.identical ? "true" : "false")
       << ",\"tasks_dispatched\":" << arm.tasks_dispatched
       << ",\"tasks_requeued\":" << arm.tasks_requeued
       << ",\"workers_lost\":" << arm.workers_lost
       << ",\"workers_respawned\":" << arm.workers_respawned << "}";
  }
  os << "],\"summary\":{\"identity_rate\":" << result.identity_rate
     << ",\"tasks_requeued\":" << result.total_requeued
     << ",\"workers_respawned\":" << result.total_respawned << "}}";
}

bool write_dist_sweep_json(const std::string& path,
                           const DistSweepResult& result) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"bench\":\"dist_sweep\",\"schema\":1,\"dist_sweep\":";
  write_dist_sweep_fragment(os, result);
  os << "}\n";
  return static_cast<bool>(os);
}

}  // namespace peak::bench
