/// \file bench_ablation_rbr.cpp
/// Ablation for Section 2.4.2: basic vs improved re-execution-based
/// rating. The basic method (Figure 3) times version 1 on a cold cache
/// and version 2 on the cache version 1 just warmed, biasing the ratio;
/// it also checkpoints the full Input(TS). The improved method (Figure 4)
/// adds the precondition run, alternates execution order, and saves only
/// Modified_Input(TS). The bench reports, for identical versions (ideal
/// rating = 1): the bias, the spread, and the checkpoint traffic.

#include <cstdio>
#include <iostream>

#include "core/profile.hpp"
#include "sim/exec_backend.hpp"
#include "stats/descriptive.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::cout << "Ablation: basic vs improved RBR (identical versions; ideal "
               "rating = 1.0)\n\n";

  const sim::MachineModel machine = sim::sparc2();
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const search::FlagConfig o3 = search::o3_config(space);

  support::Table table;
  table.row({"Section", "variant", "mean R", "bias*100", "sd*100",
             "checkpoint B", "overhead/inv"});

  for (const char* name : {"BZIP2", "MCF", "ART", "MESA"}) {
    const auto workload = workloads::make_workload(name);
    const workloads::Trace trace =
        workload->trace(workloads::DataSet::kTrain, 7);
    const core::ProfileData profile =
        core::profile_workload(*workload, trace, machine);
    const ir::Function& fn = workload->function();

    for (const bool improved : {false, true}) {
      sim::TsTraits traits = workload->traits();
      traits.workload_scale = trace.workload_scale;
      sim::SimExecutionBackend backend(fn, traits, machine, effects, 99);
      backend.set_checkpoint_bytes(
          profile.input_sets.input_bytes(fn),
          profile.input_sets.modified_input_bytes(fn));

      std::vector<double> ratios;
      double overhead = 0.0;
      const std::size_t pairs = 600;
      for (std::size_t i = 0; i < pairs; ++i) {
        const auto pair = backend.invoke_rbr_pair(
            o3, o3, trace.invocations[i % trace.invocations.size()],
            sim::RbrOptions{improved});
        ratios.push_back(pair.time_best / pair.time_exp);
        overhead += pair.overhead;
      }
      const double mean = stats::mean(ratios);
      table.add_row()
          .cell(workload->full_name())
          .cell(improved ? "improved" : "basic")
          .num(mean, 4)
          .num(100.0 * (mean - 1.0))
          .num(100.0 * stats::stddev(ratios))
          .cell(std::to_string(improved
                                   ? profile.input_sets
                                         .modified_input_bytes(fn)
                                   : profile.input_sets.input_bytes(fn)))
          .num(overhead / static_cast<double>(pairs), 0);
    }
  }
  table.print(std::cout);
  std::cout << "\nShape: the basic method shows a positive bias (version 2 "
               "runs on a warm cache and\nlooks spuriously faster); the "
               "improved method's bias is near zero and its checkpoint\nis "
               "smaller (Modified_Input ⊆ Input).\n";
  return 0;
}
