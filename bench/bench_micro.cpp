/// \file bench_micro.cpp
/// google-benchmark microbenchmarks for the rating machinery itself: the
/// costs PEAK adds around each tuning-section invocation must be small
/// relative to the sections being tuned. Covers the regression solver
/// (MBR), snapshot save/restore (RBR), the windowed rater, the IR
/// interpreter, and the set-associative cache model.

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>

#include "engine_compare.hpp"
#include "ir/builder.hpp"
#include "ir/bytecode.hpp"
#include "ir/fuzz.hpp"
#include "ir/interpreter.hpp"
#include "ir/liveness.hpp"
#include "ir/passes.hpp"
#include "ir/range_analysis.hpp"
#include "rating/window.hpp"
#include "runtime/snapshot.hpp"
#include "sim/cache_model.hpp"
#include "stats/regression.hpp"
#include "support/rng.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

void BM_RegressionSolve(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  support::Rng rng(1);
  stats::Matrix design(rows, cols);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      design(r, c) = rng.uniform(1, 100);
      sum += design(r, c) * static_cast<double>(c + 1);
    }
    y[r] = sum * rng.lognormal(0.01);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::least_squares(design, y));
  }
}
BENCHMARK(BM_RegressionSolve)->Args({40, 2})->Args({160, 6})->Args({640, 8});

void BM_SnapshotSaveRestore(benchmark::State& state) {
  ir::FunctionBuilder b("snap");
  const auto arr =
      b.param_array("arr", static_cast<std::size_t>(state.range(0)), true);
  b.store(arr, b.c(0.0), b.c(1.0));
  const ir::Function fn = b.build();
  ir::Memory mem = ir::Memory::for_function(fn);
  runtime::MemorySnapshot snap(fn, mem, std::vector<peak::ir::VarId>{arr});
  for (auto _ : state) {
    snap.recapture(mem);
    snap.restore(mem);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * state.range(0) *
                          static_cast<std::int64_t>(sizeof(double)));
}
BENCHMARK(BM_SnapshotSaveRestore)->Arg(1024)->Arg(16384);

void BM_WindowedRaterAdd(benchmark::State& state) {
  support::Rng rng(2);
  rating::WindowedRater rater;
  for (auto _ : state) rater.add(rng.normal(100, 1));
}
BENCHMARK(BM_WindowedRaterAdd);

void BM_WindowedRaterRating(benchmark::State& state) {
  support::Rng rng(3);
  rating::WindowedRater rater;
  for (int i = 0; i < 160; ++i) rater.add(rng.normal(100, 1));
  for (auto _ : state) benchmark::DoNotOptimize(rater.rating());
}
BENCHMARK(BM_WindowedRaterRating);

void BM_InterpreterSwimInvocation(benchmark::State& state) {
  const auto workload = workloads::make_workload("SWIM");
  const workloads::Trace trace =
      workload->trace(workloads::DataSet::kTrain, 1);
  const ir::Function& fn = workload->function();
  const ir::Interpreter interp(fn);
  ir::Memory mem = ir::Memory::for_function(fn);
  trace.invocations[0].bind(mem);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const ir::RunResult run = interp.run(mem);
    steps += run.steps;
    benchmark::DoNotOptimize(run.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_InterpreterSwimInvocation);

void BM_BytecodeVmSwimInvocation(benchmark::State& state) {
  // Same workload as BM_InterpreterSwimInvocation, executed by the
  // bytecode VM — the two items/sec numbers give the engine speedup on a
  // real section.
  const auto workload = workloads::make_workload("SWIM");
  const workloads::Trace trace =
      workload->trace(workloads::DataSet::kTrain, 1);
  const ir::Function& fn = workload->function();
  const ir::BytecodeProgram program = ir::BytecodeProgram::compile(fn);
  ir::BytecodeVm vm(program);
  ir::Memory mem = ir::Memory::for_function(fn);
  trace.invocations[0].bind(mem);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const ir::RunResult run = vm.run(mem);
    steps += run.steps;
    benchmark::DoNotOptimize(run.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_BytecodeVmSwimInvocation);

void BM_BytecodeCompile(benchmark::State& state) {
  const ir::Function fn =
      ir::fuzz_function(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::BytecodeProgram::compile(fn));
  }
}
BENCHMARK(BM_BytecodeCompile)->Arg(3)->Arg(17);

void BM_CacheAccess(benchmark::State& state) {
  sim::SetAssocCache cache(16 * 1024, 32, 4);
  support::Rng rng(4);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = (addr + 64) % (64 * 1024);
    benchmark::DoNotOptimize(cache.access(addr));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_RangeAnalysis(benchmark::State& state) {
  const auto workload = workloads::make_workload("MGRID");
  const ir::Function& fn = workload->function();
  const std::map<ir::VarId, ir::Interval> bounds = {
      {*fn.find_var("n"), ir::Interval{6, 14}},
      {*fn.find_var("sweep"), ir::Interval{0, 59}}};
  for (auto _ : state) {
    ir::RangeAnalysis ranges(fn, bounds);
    benchmark::DoNotOptimize(ranges.written_ranges().size());
  }
}
BENCHMARK(BM_RangeAnalysis);

void BM_PassPipeline(benchmark::State& state) {
  const ir::Function original =
      ir::fuzz_function(static_cast<std::uint64_t>(state.range(0)));
  for (auto _ : state) {
    ir::Function fn = original;
    benchmark::DoNotOptimize(
        ir::PassManager::standard_pipeline().run(fn, 4));
  }
}
BENCHMARK(BM_PassPipeline)->Arg(3)->Arg(17);

void BM_PointsToAndLiveness(benchmark::State& state) {
  const auto workload = workloads::make_workload("EQUAKE");
  const ir::Function& fn = workload->function();
  for (auto _ : state) {
    ir::PointsTo pt(fn);
    ir::Liveness live(fn, pt);
    benchmark::DoNotOptimize(live.input_set().size());
  }
}
BENCHMARK(BM_PointsToAndLiveness);

}  // namespace

/// `--engine-compare-json=PATH` bypasses google-benchmark and runs the
/// interpreter-vs-VM comparison kernels, writing a standalone
/// ENGINE_compare.json for tools/check_bench_json.py --compare (the ctest
/// regression gate). Any other arguments go to google-benchmark as usual.
int main(int argc, char** argv) {
  constexpr const char* kFlag = "--engine-compare-json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      const std::string path = argv[i] + std::strlen(kFlag);
      const peak::bench::EngineCompareResult result =
          peak::bench::run_engine_compare();
      peak::bench::print_engine_compare(result, std::cout);
      if (!peak::bench::write_engine_compare_json(path, result)) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
      }
      std::cout << "Wrote " << path << "\n";
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
