/// \file bench_static_passes.cpp
/// The "static compiler" substrate (paper §2.1: each tuning section is
/// first optimized statically, as in a conventional compiler). Runs the
/// standard IR pass pipeline — constant folding, copy propagation, LICM,
/// DCE, unreachable elimination — over every Table 1 kernel and reports
/// the interpreted work before and after. Semantics preservation is
/// enforced separately by the differential fuzz tests.

#include <iostream>

#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/passes.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

namespace {

/// What a naive source-to-IR translator emits: redundant copies, constant
/// arithmetic, and loop-invariant scale computations recomputed per
/// iteration — the fodder conventional static optimization exists for.
peak::ir::Function naive_translator_output() {
  using namespace peak::ir;
  FunctionBuilder b("naive_saxpy");
  const auto n = b.param_scalar("n");
  const auto alpha = b.param_scalar("alpha", true);
  const auto x = b.param_array("x", 256, true);
  const auto y = b.param_array("y", 256, true);
  const auto i = b.scalar("i");
  const auto a_copy = b.scalar("a_copy", true);
  const auto scale = b.scalar("scale", true);
  const auto two = b.scalar("two", true);
  const auto dead = b.scalar("dead", true);
  b.for_loop(i, b.c(0), b.v(n), [&] {
    b.assign(two, b.add(b.c(1), b.c(1)));           // constant, invariant
    b.assign(a_copy, b.v(alpha));                   // copy
    b.assign(scale, b.mul(b.v(a_copy), b.v(two)));  // invariant after both
    b.assign(dead, b.mul(b.v(scale), b.c(3)));      // never used
    b.store(y, b.v(i),
            b.add(b.at(y, b.v(i)), b.mul(b.v(scale), b.at(x, b.v(i)))));
  });
  return b.build();
}

}  // namespace

int main() {
  using namespace peak;
  std::cout << "Static optimization of the tuning-section kernels (IR "
               "pass pipeline)\n\n";

  support::Table table;
  table.row({"Section", "passes applied", "steps before", "steps after",
             "reduction %"});

  for (const auto& workload : workloads::all_workloads()) {
    const workloads::Trace trace =
        workload->trace(workloads::DataSet::kTrain, 11);
    const ir::Function& original = workload->function();

    ir::Memory m1 = ir::Memory::for_function(original);
    trace.invocations[0].bind(m1);
    const ir::RunResult before = ir::Interpreter(original).run(m1);

    ir::Function optimized = original;
    const std::size_t applications =
        ir::PassManager::standard_pipeline().run(optimized, 8);

    ir::Memory m2 = ir::Memory::for_function(optimized);
    trace.invocations[0].bind(m2);
    const ir::RunResult after = ir::Interpreter(optimized).run(m2);

    table.add_row()
        .cell(workload->full_name())
        .cell(std::to_string(applications))
        .cell(std::to_string(before.steps))
        .cell(std::to_string(after.steps))
        .num(100.0 * (1.0 - static_cast<double>(after.steps) /
                                static_cast<double>(before.steps)));
  }
  // A deliberately naive translation, as a front end would emit it.
  {
    const ir::Function original = naive_translator_output();
    ir::Memory m1 = ir::Memory::for_function(original);
    m1.scalar(*original.find_var("n")) = 200;
    m1.scalar(*original.find_var("alpha")) = 1.5;
    const ir::RunResult before = ir::Interpreter(original).run(m1);

    ir::Function optimized = original;
    const std::size_t applications =
        ir::PassManager::standard_pipeline().run(optimized, 12);
    ir::Memory m2 = ir::Memory::for_function(optimized);
    m2.scalar(*original.find_var("n")) = 200;
    m2.scalar(*original.find_var("alpha")) = 1.5;
    const ir::RunResult after = ir::Interpreter(optimized).run(m2);

    table.add_row()
        .cell("naive_saxpy (translator output)")
        .cell(std::to_string(applications))
        .cell(std::to_string(before.steps))
        .cell(std::to_string(after.steps))
        .num(100.0 * (1.0 - static_cast<double>(after.steps) /
                                static_cast<double>(before.steps)));
  }

  table.print(std::cout);
  std::cout << "\nNote: the hand-modelled Table 1 kernels are already "
               "tight — as real hot loops are\nafter '-O3' — so the "
               "pipeline's work shows on the naive translator output; "
               "the\ndifferential fuzz suite guarantees all "
               "transformations preserve semantics.\n";
  return 0;
}
