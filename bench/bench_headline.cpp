/// \file bench_headline.cpp
/// Regenerates the paper's §5.2 headline numbers: "up to 178% performance
/// improvements (26% on average)" and "a reduction in program tuning time
/// of up to 96% (80% on average)", aggregated over the consultant-chosen
/// rating method for each benchmark × machine.
///
/// Besides the human-readable stdout report, writes BENCH_headline.json
/// (machine-readable, schema checked by tools/check_bench_json.py).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/rating_cache.hpp"
#include "core/tuning_driver.hpp"
#include "crash_sweep.hpp"
#include "dist_sweep.hpp"
#include "engine_compare.hpp"
#include "fig7_common.hpp"
#include "obs/export.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry_server.hpp"
#include "support/http_server.hpp"

namespace {

using namespace peak;

/// Wall time and cache effectiveness of the batched search fan-out: the
/// serial-vs-parallel timing of identical tuning runs, whether the
/// outcomes matched bit for bit, and the hit rate of a warm rating-cache
/// rerun. Feeds the "search" section of BENCH_headline.json.
struct SearchBench {
  unsigned threads = 0;
  unsigned hardware_concurrency = 0;
  double serial_wall_s = 0.0;
  double parallel_wall_s = 0.0;
  double search_speedup = 0.0;
  bool outcome_identical = false;
  std::uint64_t cold_stores = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_misses = 0;
  double warm_hit_rate = 0.0;
  bool warm_outcome_identical = false;
};

std::uint64_t counter_value(const std::string& name) {
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

SearchBench run_search_bench() {
  SearchBench out;
  out.threads = 4;
  out.hardware_concurrency =
      std::max(1u, std::thread::hardware_concurrency());

  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const std::unique_ptr<workloads::Workload> workload =
      workloads::make_workload("SWIM");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);

  auto tune = [&](unsigned threads, std::uint64_t seed,
                  core::RatingCache* cache) {
    core::DriverOptions options;
    options.seed = seed;
    options.search_threads = threads;
    options.rating_cache = cache;
    core::TuningDriver driver(*workload, profile, train, machine, effects,
                              options);
    return driver.tune(rating::Method::kCBR);
  };
  constexpr std::uint64_t kSeeds = 5;
  using clock = std::chrono::steady_clock;

  std::vector<core::TuningOutcome> serial;
  const clock::time_point t0 = clock::now();
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
    serial.push_back(tune(1, seed, nullptr));
  const clock::time_point t1 = clock::now();
  std::vector<core::TuningOutcome> parallel;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
    parallel.push_back(tune(out.threads, seed, nullptr));
  const clock::time_point t2 = clock::now();

  out.serial_wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.parallel_wall_s = std::chrono::duration<double>(t2 - t1).count();
  out.search_speedup =
      out.parallel_wall_s > 0.0 ? out.serial_wall_s / out.parallel_wall_s
                                : 0.0;
  out.outcome_identical = serial == parallel;

  // Cold run populates an on-disk rating cache; a warm rerun with a fresh
  // cache object (same file) must reproduce the outcome from disk.
  const std::string cache_path = "BENCH_rating_cache.jsonl";
  std::remove(cache_path.c_str());
  const std::uint64_t stores_before = counter_value("search.cache.store");
  core::TuningOutcome cold;
  {
    core::RatingCache cache(cache_path);
    cold = tune(out.threads, 1, &cache);
  }
  out.cold_stores = counter_value("search.cache.store") - stores_before;
  const std::uint64_t hits_before = counter_value("search.cache.hit");
  const std::uint64_t misses_before = counter_value("search.cache.miss");
  core::TuningOutcome warm;
  {
    core::RatingCache cache(cache_path);
    warm = tune(out.threads, 1, &cache);
  }
  out.warm_hits = counter_value("search.cache.hit") - hits_before;
  out.warm_misses = counter_value("search.cache.miss") - misses_before;
  const std::uint64_t lookups = out.warm_hits + out.warm_misses;
  out.warm_hit_rate =
      lookups > 0 ? static_cast<double>(out.warm_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  out.warm_outcome_identical = warm == cold;
  return out;
}

/// Scrape latency and non-perturbation of the live telemetry server:
/// client-observed /metrics + /snapshot round-trip percentiles while a
/// tuning run is hammered, and whether the hammered run's outcome stayed
/// bit-identical to an unobserved one. Feeds the "telemetry" section of
/// BENCH_headline.json. Runs LAST, after the drift-compared metrics and
/// ledger sections are snapshotted — its counters and latency histograms
/// are wall-clock-driven and differ run to run.
struct TelemetryBench {
  std::uint64_t scrapes = 0;
  std::uint64_t errors = 0;
  double scrape_p50_us = 0.0;
  double scrape_p99_us = 0.0;
  bool outcome_identical = false;
};

TelemetryBench run_telemetry_bench() {
  TelemetryBench out;

  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const std::unique_ptr<workloads::Workload> workload =
      workloads::make_workload("SWIM");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);
  auto tune = [&] {
    core::TuningDriver driver(*workload, profile, train, machine, effects,
                              {});
    return driver.tune(rating::Method::kCBR);
  };
  const core::TuningOutcome baseline = tune();

  obs::TelemetryServer server({});
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "telemetry bench: server failed to start: %s\n",
                 error.c_str());
    return out;  // outcome_identical=false fails the JSON gate loudly
  }
  server.set_run_phase("tuning");

  std::atomic<bool> done{false};
  std::mutex latencies_mutex;
  std::vector<double> latencies_us;
  std::atomic<std::uint64_t> errors{0};
  const char* paths[] = {"/metrics", "/snapshot"};
  std::vector<std::thread> scrapers;
  for (const char* path : paths)
    scrapers.emplace_back([&, path] {
      using clock = std::chrono::steady_clock;
      int mine = 0;
      // Keep going past `done` until a latency floor is sampled even if
      // the observed tunes outran the first scrape.
      while (!done.load() || mine < 10) {
        const clock::time_point t0 = clock::now();
        const support::HttpClientResult r =
            support::http_get("127.0.0.1", server.port(), path);
        const double us =
            std::chrono::duration<double, std::micro>(clock::now() - t0)
                .count();
        if (r.ok && r.status == 200) {
          ++mine;
          std::lock_guard lock(latencies_mutex);
          latencies_us.push_back(us);
        } else {
          ++errors;
        }
      }
    });

  out.outcome_identical = true;
  for (int run = 0; run < 3; ++run)
    if (!(tune() == baseline)) out.outcome_identical = false;

  done = true;
  for (std::thread& s : scrapers) s.join();
  server.stop();

  out.errors = errors.load();
  out.scrapes = latencies_us.size();
  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    const auto at = [&](double p) {
      return latencies_us[static_cast<std::size_t>(
          p * static_cast<double>(latencies_us.size() - 1))];
    };
    out.scrape_p50_us = at(0.5);
    out.scrape_p99_us = at(0.99);
  }
  return out;
}

void print_telemetry_bench(const TelemetryBench& t) {
  std::printf(
      "Telemetry server (SWIM, CBR, scrape hammer on /metrics + "
      "/snapshot):\n"
      "  %llu scrapes (%llu errors)  latency p50 %.0fus  p99 %.0fus  "
      "outcomes %s\n",
      static_cast<unsigned long long>(t.scrapes),
      static_cast<unsigned long long>(t.errors), t.scrape_p50_us,
      t.scrape_p99_us, t.outcome_identical ? "identical" : "DIFFER");
}

void append_telemetry_json(std::ostream& os, const TelemetryBench& t) {
  os << "{\"scrapes\":" << t.scrapes << ",\"errors\":" << t.errors
     << ",\"scrape_p50_us\":" << t.scrape_p50_us
     << ",\"scrape_p99_us\":" << t.scrape_p99_us
     << ",\"outcome_identical\":"
     << (t.outcome_identical ? "true" : "false") << "}";
}

void print_search_bench(const SearchBench& s) {
  std::printf(
      "Parallel batched search (SWIM, CBR, %u threads on %u cores):\n"
      "  serial %.3fs  parallel %.3fs  speedup %.2fx  outcomes %s\n"
      "  rating cache: %llu stored cold, warm rerun %llu/%llu hits "
      "(%.0f%%), outcome %s\n",
      s.threads, s.hardware_concurrency, s.serial_wall_s, s.parallel_wall_s,
      s.search_speedup, s.outcome_identical ? "identical" : "DIFFER",
      static_cast<unsigned long long>(s.cold_stores),
      static_cast<unsigned long long>(s.warm_hits),
      static_cast<unsigned long long>(s.warm_hits + s.warm_misses),
      100.0 * s.warm_hit_rate,
      s.warm_outcome_identical ? "identical" : "DIFFERS");
}

void append_search_json(std::ostream& os, const SearchBench& s) {
  os << "{\"benchmark\":\"SWIM\",\"threads\":" << s.threads
     << ",\"hardware_concurrency\":" << s.hardware_concurrency
     << ",\"serial_wall_s\":" << s.serial_wall_s
     << ",\"parallel_wall_s\":" << s.parallel_wall_s
     << ",\"search_speedup\":" << s.search_speedup
     << ",\"outcome_identical\":"
     << (s.outcome_identical ? "true" : "false")
     << ",\"cache\":{\"cold_stores\":" << s.cold_stores
     << ",\"warm_hits\":" << s.warm_hits
     << ",\"warm_misses\":" << s.warm_misses
     << ",\"warm_hit_rate\":" << s.warm_hit_rate
     << ",\"warm_outcome_identical\":"
     << (s.warm_outcome_identical ? "true" : "false") << "}}";
}

/// One "benchmark ran via method X" record as a JSON object.
void append_run_json(std::ostream& os, const core::BenchmarkResult& b) {
  const core::MethodRun* run = b.find(b.chosen, workloads::DataSet::kTrain);
  if (!run) return;
  os << "{\"benchmark\":\"" << obs::json_escape(b.benchmark)
     << "\",\"method\":\"" << rating::to_string(b.chosen)
     << "\",\"ref_improvement_pct\":" << run->ref_improvement_pct
     << ",\"tuning_time_reduction_pct\":"
     << 100.0 * (1.0 - b.normalized_tuning_time(b.chosen,
                                                workloads::DataSet::kTrain))
     << ",\"configs_evaluated\":" << run->cost.configs_evaluated
     << ",\"invocations\":" << run->cost.invocations << "}";
}

bool write_json(const std::string& path,
                const std::vector<bench::Figure7Results>& machines,
                const bench::Headline& h,
                const bench::EngineCompareResult& engines,
                const SearchBench& search, const TelemetryBench& telemetry,
                const bench::CrashSweepResult& crashes,
                const bench::DistSweepResult& dist,
                const obs::MetricsRegistry::Snapshot& metrics,
                const obs::Ledger::Node& costs) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"bench\":\"headline\",\"schema\":1,\"machines\":[";
  bool first_machine = true;
  for (const bench::Figure7Results& results : machines) {
    if (!first_machine) os << ",";
    first_machine = false;
    os << "{\"machine\":\"" << obs::json_escape(results.machine.name)
       << "\",\"runs\":[";
    bool first_run = true;
    for (const core::BenchmarkResult& b : results.benchmarks) {
      std::ostringstream one;
      append_run_json(one, b);
      if (one.str().empty()) continue;
      if (!first_run) os << ",";
      first_run = false;
      os << one.str();
    }
    os << "]}";
  }
  os << "],\"headline\":{\"max_improvement_pct\":" << h.max_improvement_pct
     << ",\"avg_improvement_pct\":" << h.avg_improvement_pct
     << ",\"max_time_reduction_pct\":" << h.max_time_reduction_pct
     << ",\"avg_time_reduction_pct\":" << h.avg_time_reduction_pct
     << "},\"engine_speedup\":";
  bench::write_engine_speedup_fragment(os, engines);
  os << ",\"search\":";
  append_search_json(os, search);
  os << ",\"telemetry\":";
  append_telemetry_json(os, telemetry);
  os << ",\"crash_sweep\":";
  bench::write_crash_sweep_fragment(os, crashes);
  os << ",\"dist_sweep\":";
  bench::write_dist_sweep_fragment(os, dist);
  os << ",\"metrics\":";
  obs::write_metrics_json(metrics, os);
  os << ",\"cost_attribution\":";
  obs::write_ledger_json(costs, os);
  os << "}\n";
  return static_cast<bool>(os);
}

}  // namespace

int main() {
  using namespace peak;
  std::cout << "Reproducing the Section 5.2 headline aggregates\n\n";

  std::vector<bench::Figure7Results> machines;
  for (const sim::MachineModel& machine :
       {sim::sparc2(), sim::pentium4()})
    machines.push_back(bench::run_figure7(machine));

  for (const bench::Figure7Results& results : machines) {
    std::cout << "[" << results.machine.name << "]\n";
    for (const core::BenchmarkResult& b : results.benchmarks) {
      const core::MethodRun* run =
          b.find(b.chosen, workloads::DataSet::kTrain);
      if (!run) continue;
      std::printf(
          "  %-7s via %-3s: improvement %7.2f%%  tuning-time reduction "
          "%5.1f%%\n",
          b.benchmark.c_str(), rating::to_string(b.chosen),
          run->ref_improvement_pct,
          100.0 * (1.0 - b.normalized_tuning_time(
                             b.chosen, workloads::DataSet::kTrain)));
    }
  }

  const bench::Headline h = bench::compute_headline(machines);
  std::printf(
      "\nHeadline: up to %.0f%% performance improvement (%.0f%% on "
      "average)\n          tuning-time reduction up to %.0f%% (%.0f%% on "
      "average)\n",
      h.max_improvement_pct, h.avg_improvement_pct,
      h.max_time_reduction_pct, h.avg_time_reduction_pct);
  std::printf(
      "Paper:    up to 178%% performance improvement (26%% on average)\n"
      "          tuning-time reduction up to 96%% (80%% on average)\n");

  const bench::EngineCompareResult engines = bench::run_engine_compare();
  std::cout << "\n";
  bench::print_engine_compare(engines, std::cout);

  const SearchBench search = run_search_bench();
  std::cout << "\n";
  print_search_bench(search);

  // Snapshot the drift-compared sections NOW: the telemetry bench below
  // feeds wall-clock-driven scrape counters and latency histograms into
  // the global registry, which would trip the metrics-drift sentinel.
  const obs::MetricsRegistry::Snapshot metrics =
      obs::MetricsRegistry::global().snapshot();
  const obs::Ledger::Node costs = obs::Ledger::global().snapshot();

  const TelemetryBench telemetry = run_telemetry_bench();
  std::cout << "\n";
  print_telemetry_bench(telemetry);

  // Also after the snapshot: worker forks feed proc.* counters and wall-
  // driven heartbeat gaps into the registry, which must stay out of the
  // drift-compared metrics section.
  const bench::CrashSweepResult crashes = bench::run_crash_sweep();
  std::cout << "\n";
  bench::print_crash_sweep(crashes, std::cout);

  // Likewise after the snapshot: coordinator fleets feed dist.* counters
  // and wall-driven heartbeat timings into the registry.
  const bench::DistSweepResult dist = bench::run_dist_sweep();
  std::cout << "\n";
  bench::print_dist_sweep(dist, std::cout);

  const std::string json_path = "BENCH_headline.json";
  if (write_json(json_path, machines, h, engines, search, telemetry,
                 crashes, dist, metrics, costs))
    std::printf("Wrote %s\n", json_path.c_str());
  else
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
  return 0;
}
