/// \file bench_headline.cpp
/// Regenerates the paper's §5.2 headline numbers: "up to 178% performance
/// improvements (26% on average)" and "a reduction in program tuning time
/// of up to 96% (80% on average)", aggregated over the consultant-chosen
/// rating method for each benchmark × machine.
///
/// Besides the human-readable stdout report, writes BENCH_headline.json
/// (machine-readable, schema checked by tools/check_bench_json.py).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "engine_compare.hpp"
#include "fig7_common.hpp"
#include "obs/export.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace peak;

/// One "benchmark ran via method X" record as a JSON object.
void append_run_json(std::ostream& os, const core::BenchmarkResult& b) {
  const core::MethodRun* run = b.find(b.chosen, workloads::DataSet::kTrain);
  if (!run) return;
  os << "{\"benchmark\":\"" << obs::json_escape(b.benchmark)
     << "\",\"method\":\"" << rating::to_string(b.chosen)
     << "\",\"ref_improvement_pct\":" << run->ref_improvement_pct
     << ",\"tuning_time_reduction_pct\":"
     << 100.0 * (1.0 - b.normalized_tuning_time(b.chosen,
                                                workloads::DataSet::kTrain))
     << ",\"configs_evaluated\":" << run->cost.configs_evaluated
     << ",\"invocations\":" << run->cost.invocations << "}";
}

bool write_json(const std::string& path,
                const std::vector<bench::Figure7Results>& machines,
                const bench::Headline& h,
                const bench::EngineCompareResult& engines) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"bench\":\"headline\",\"schema\":1,\"machines\":[";
  bool first_machine = true;
  for (const bench::Figure7Results& results : machines) {
    if (!first_machine) os << ",";
    first_machine = false;
    os << "{\"machine\":\"" << obs::json_escape(results.machine.name)
       << "\",\"runs\":[";
    bool first_run = true;
    for (const core::BenchmarkResult& b : results.benchmarks) {
      std::ostringstream one;
      append_run_json(one, b);
      if (one.str().empty()) continue;
      if (!first_run) os << ",";
      first_run = false;
      os << one.str();
    }
    os << "]}";
  }
  os << "],\"headline\":{\"max_improvement_pct\":" << h.max_improvement_pct
     << ",\"avg_improvement_pct\":" << h.avg_improvement_pct
     << ",\"max_time_reduction_pct\":" << h.max_time_reduction_pct
     << ",\"avg_time_reduction_pct\":" << h.avg_time_reduction_pct
     << "},\"engine_speedup\":";
  bench::write_engine_speedup_fragment(os, engines);
  os << ",\"metrics\":";
  obs::write_metrics_json(obs::MetricsRegistry::global().snapshot(), os);
  os << ",\"cost_attribution\":";
  obs::write_ledger_json(obs::Ledger::global().snapshot(), os);
  os << "}\n";
  return static_cast<bool>(os);
}

}  // namespace

int main() {
  using namespace peak;
  std::cout << "Reproducing the Section 5.2 headline aggregates\n\n";

  std::vector<bench::Figure7Results> machines;
  for (const sim::MachineModel& machine :
       {sim::sparc2(), sim::pentium4()})
    machines.push_back(bench::run_figure7(machine));

  for (const bench::Figure7Results& results : machines) {
    std::cout << "[" << results.machine.name << "]\n";
    for (const core::BenchmarkResult& b : results.benchmarks) {
      const core::MethodRun* run =
          b.find(b.chosen, workloads::DataSet::kTrain);
      if (!run) continue;
      std::printf(
          "  %-7s via %-3s: improvement %7.2f%%  tuning-time reduction "
          "%5.1f%%\n",
          b.benchmark.c_str(), rating::to_string(b.chosen),
          run->ref_improvement_pct,
          100.0 * (1.0 - b.normalized_tuning_time(
                             b.chosen, workloads::DataSet::kTrain)));
    }
  }

  const bench::Headline h = bench::compute_headline(machines);
  std::printf(
      "\nHeadline: up to %.0f%% performance improvement (%.0f%% on "
      "average)\n          tuning-time reduction up to %.0f%% (%.0f%% on "
      "average)\n",
      h.max_improvement_pct, h.avg_improvement_pct,
      h.max_time_reduction_pct, h.avg_time_reduction_pct);
  std::printf(
      "Paper:    up to 178%% performance improvement (26%% on average)\n"
      "          tuning-time reduction up to 96%% (80%% on average)\n");

  const bench::EngineCompareResult engines = bench::run_engine_compare();
  std::cout << "\n";
  bench::print_engine_compare(engines, std::cout);

  const std::string json_path = "BENCH_headline.json";
  if (write_json(json_path, machines, h, engines))
    std::printf("Wrote %s\n", json_path.c_str());
  else
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
  return 0;
}
