/// \file bench_headline.cpp
/// Regenerates the paper's §5.2 headline numbers: "up to 178% performance
/// improvements (26% on average)" and "a reduction in program tuning time
/// of up to 96% (80% on average)", aggregated over the consultant-chosen
/// rating method for each benchmark × machine.

#include <cstdio>
#include <iostream>

#include "fig7_common.hpp"

int main() {
  using namespace peak;
  std::cout << "Reproducing the Section 5.2 headline aggregates\n\n";

  std::vector<bench::Figure7Results> machines;
  for (const sim::MachineModel& machine :
       {sim::sparc2(), sim::pentium4()})
    machines.push_back(bench::run_figure7(machine));

  for (const bench::Figure7Results& results : machines) {
    std::cout << "[" << results.machine.name << "]\n";
    for (const core::BenchmarkResult& b : results.benchmarks) {
      const core::MethodRun* run =
          b.find(b.chosen, workloads::DataSet::kTrain);
      if (!run) continue;
      std::printf(
          "  %-7s via %-3s: improvement %7.2f%%  tuning-time reduction "
          "%5.1f%%\n",
          b.benchmark.c_str(), rating::to_string(b.chosen),
          run->ref_improvement_pct,
          100.0 * (1.0 - b.normalized_tuning_time(
                             b.chosen, workloads::DataSet::kTrain)));
    }
  }

  const bench::Headline h = bench::compute_headline(machines);
  std::printf(
      "\nHeadline: up to %.0f%% performance improvement (%.0f%% on "
      "average)\n          tuning-time reduction up to %.0f%% (%.0f%% on "
      "average)\n",
      h.max_improvement_pct, h.avg_improvement_pct,
      h.max_time_reduction_pct, h.avg_time_reduction_pct);
  std::printf(
      "Paper:    up to 178%% performance improvement (26%% on average)\n"
      "          tuning-time reduction up to 96%% (80%% on average)\n");
  return 0;
}
