#pragma once

/// \file fig7_common.hpp
/// Shared runner for the Figure 7 experiments: tune the four benchmarks
/// (SWIM, MGRID, EQUAKE, ART) on one simulated machine with every
/// applicable rating method plus the AVG and WHL references, on both the
/// train and ref tuning datasets. MGRID additionally forces CBR — the
/// deliberately wrong choice the paper plots as MGRID_CBR.

#include <vector>

#include "core/peak.hpp"
#include "sim/machine.hpp"
#include "workloads/workload.hpp"

namespace peak::bench {

struct Figure7Results {
  sim::MachineModel machine;
  std::vector<core::BenchmarkResult> benchmarks;
};

Figure7Results run_figure7(const sim::MachineModel& machine,
                           std::uint64_t seed = 1);

/// Print the (a)/(b) panel: % improvement over -O3 on the ref dataset.
void print_perf_panel(const Figure7Results& results);

/// Print the (c)/(d) panel: tuning time normalised to WHL.
void print_time_panel(const Figure7Results& results);

/// §5.2 aggregates over the consultant-chosen methods.
struct Headline {
  double max_improvement_pct = 0.0;
  double avg_improvement_pct = 0.0;
  double max_time_reduction_pct = 0.0;  ///< 100·(1 - t/t_WHL), best case
  double avg_time_reduction_pct = 0.0;
};

Headline compute_headline(const std::vector<Figure7Results>& machines);

}  // namespace peak::bench
