#include "engine_compare.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>

#include "ir/builder.hpp"
#include "ir/bytecode.hpp"
#include "ir/interpreter.hpp"
#include "support/check.hpp"

namespace peak::bench {

namespace {

/// Small blocks, data-dependent branches, scalar arithmetic: the shape of
/// the integer kernels that end up rated by RBR.
ir::Function branchy_kernel() {
  ir::FunctionBuilder b("branchy_small");
  const auto n = b.scalar("n");
  const auto i = b.scalar("i");
  const auto acc = b.scalar("acc", true);
  const auto parity = b.scalar("parity");
  b.assign(n, b.c(512.0));
  b.assign(acc, b.c(0.0));
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.assign(parity, b.mod(b.v(i), b.c(3.0)));
    b.if_else(
        b.eq(b.v(parity), b.c(0.0)),
        [&] { b.assign(acc, b.add(b.v(acc), b.v(i))); },
        [&] {
          b.if_then(b.land(b.gt(b.v(i), b.c(10.0)),
                           b.lt(b.v(acc), b.c(1.0e6))),
                    [&] { b.assign(acc, b.sub(b.v(acc), b.c(1.0))); });
        });
  });
  return b.build();
}

/// Dense array traffic with affine in-bounds subscripts — the loop-nest
/// shape of the floating-point workloads, and the case bounds-check
/// folding targets.
ir::Function array_kernel() {
  ir::FunctionBuilder b("array_sweep");
  const auto a = b.array("a", 256, true);
  const auto c = b.array("c", 256, true);
  const auto i = b.scalar("i");
  const auto t = b.scalar("t", true);
  b.for_loop(i, b.c(0.0), b.c(256.0), [&] {
    b.store(a, b.v(i), b.mul(b.v(i), b.c(0.5)));
  });
  b.for_loop(i, b.c(1.0), b.c(255.0), [&] {
    b.assign(t, b.add(b.at(a, b.sub(b.v(i), b.c(1.0))),
                      b.at(a, b.add(b.v(i), b.c(1.0)))));
    b.store(c, b.v(i), b.mul(b.v(t), b.c(0.25)));
  });
  return b.build();
}

/// Per-block instrumentation counters in a hot loop — the profiling pass
/// executes exactly this shape over every detailed invocation.
ir::Function counter_kernel() {
  ir::FunctionBuilder b("counter_heavy");
  const auto i = b.scalar("i");
  const auto x = b.scalar("x", true);
  b.counter(0);
  b.for_loop(i, b.c(0.0), b.c(400.0), [&] {
    b.counter(1);
    b.assign(x, b.add(b.v(x), b.c(1.5)));
    b.if_then(b.gt(b.v(x), b.c(300.0)), [&] {
      b.counter(2);
      b.assign(x, b.mul(b.v(x), b.c(0.5)));
    });
  });
  return b.build();
}

double time_runs_ns(const std::function<void()>& run, int trials) {
  // Pick repetitions so one trial is ~milliseconds, then best-of-trials.
  const int reps = 50;
  double best = std::numeric_limits<double>::infinity();
  for (int t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) run();
    const auto stop = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        reps;
    best = std::min(best, ns);
  }
  return best;
}

EngineKernelResult compare_kernel(const ir::Function& fn, int trials) {
  const ir::BytecodeProgram program = ir::BytecodeProgram::compile(fn);
  const ir::Interpreter interp(fn);
  ir::BytecodeVm vm(program);

  // Cross-check before timing: a benchmark of two engines that disagree
  // would be meaningless.
  ir::Memory imem = ir::Memory::for_function(fn);
  ir::Memory vmem = ir::Memory::for_function(fn);
  const ir::RunResult ir_run = interp.run(imem);
  const ir::RunResult vm_run = vm.run(vmem);
  PEAK_CHECK(std::bit_cast<std::uint64_t>(ir_run.cycles) ==
                     std::bit_cast<std::uint64_t>(vm_run.cycles) &&
                 ir_run.steps == vm_run.steps &&
                 ir_run.counters == vm_run.counters,
             "engine mismatch on " + fn.name());

  EngineKernelResult result;
  result.name = fn.name();
  ir::Memory mem = ir::Memory::for_function(fn);
  result.interp_ns = time_runs_ns([&] { interp.run(mem); }, trials);
  mem = ir::Memory::for_function(fn);
  result.vm_ns = time_runs_ns([&] { vm.run(mem); }, trials);
  result.speedup = result.interp_ns / result.vm_ns;
  return result;
}

}  // namespace

EngineCompareResult run_engine_compare(int trials) {
  EngineCompareResult result;
  const ir::Function kernels[] = {branchy_kernel(), array_kernel(),
                                  counter_kernel()};
  double log_sum = 0.0;
  for (const ir::Function& fn : kernels) {
    result.kernels.push_back(compare_kernel(fn, trials));
    log_sum += std::log(result.kernels.back().speedup);
  }
  result.geomean_speedup =
      std::exp(log_sum / static_cast<double>(std::size(kernels)));
  return result;
}

void print_engine_compare(const EngineCompareResult& result,
                          std::ostream& os) {
  os << "Interpreter vs bytecode VM (ns per run, best-of-N):\n";
  char line[160];
  for (const EngineKernelResult& k : result.kernels) {
    std::snprintf(line, sizeof(line),
                  "  %-14s interp %10.0f ns   vm %10.0f ns   speedup %.2fx\n",
                  k.name.c_str(), k.interp_ns, k.vm_ns, k.speedup);
    os << line;
  }
  std::snprintf(line, sizeof(line), "  geomean speedup: %.2fx\n",
                result.geomean_speedup);
  os << line;
}

void write_engine_speedup_fragment(std::ostream& os,
                                   const EngineCompareResult& result) {
  os << "{\"kernels\":[";
  bool first = true;
  for (const EngineKernelResult& k : result.kernels) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << k.name << "\",\"interp_ns\":" << k.interp_ns
       << ",\"vm_ns\":" << k.vm_ns << ",\"speedup\":" << k.speedup << "}";
  }
  os << "],\"geomean\":" << result.geomean_speedup << "}";
}

bool write_engine_compare_json(const std::string& path,
                               const EngineCompareResult& result) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"bench\":\"engine_compare\",\"schema\":1,\"engine_speedup\":";
  write_engine_speedup_fragment(os, result);
  os << "}\n";
  return static_cast<bool>(os);
}

}  // namespace peak::bench
