/// \file bench_model_vs_empirical.cpp
/// The paper's framing experiment (Section 1, contrasting empirical
/// optimization with model-based selection, refs [6] and [17]): a purely
/// static advisor predicts which options to disable from section traits
/// and machine parameters — no execution — and is compared against PEAK's
/// empirical tuning on the same sections. Expected shape: the model
/// catches the mechanisms it encodes (it does find the ART strict-aliasing
/// hazard) but misses magnitudes and interactions, so empirical tuning
/// matches or beats it everywhere — the reason feedback-directed systems
/// exist.

#include <cstdio>
#include <iostream>

#include "core/peak.hpp"
#include "core/tuning_driver.hpp"
#include "search/advisor.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::cout << "Model-based advisor vs empirical tuning (improvement over "
               "-O3 on ref, %)\n\n";

  support::Table table;
  table.row({"Benchmark", "machine", "model-based", "empirical (PEAK)",
             "advisor disabled"});

  double model_sum = 0.0, empirical_sum = 0.0;
  int rows = 0;
  for (const sim::MachineModel& machine :
       {sim::sparc2(), sim::pentium4()}) {
    core::Peak peak(machine);
    for (const std::string& name : workloads::figure7_benchmarks()) {
      const auto workload = workloads::make_workload(name);
      const workloads::Trace ref =
          workload->trace(workloads::DataSet::kRef, 1);
      sim::TsTraits traits = workload->traits();
      traits.workload_scale = ref.workload_scale;

      const search::AdvisorVerdict verdict =
          search::advise(peak.effects().space(), traits, machine);
      const double o3_time = core::expected_trace_time(
          *workload, ref, machine, peak.effects(),
          search::o3_config(peak.effects().space()));
      const double model_time = core::expected_trace_time(
          *workload, ref, machine, peak.effects(), verdict.recommended);
      const double model_impr = (o3_time / model_time - 1.0) * 100.0;

      const core::MethodRun run = peak.tune_with_consultant(*workload);

      table.add_row()
          .cell(name)
          .cell(machine.name)
          .num(model_impr)
          .num(run.ref_improvement_pct)
          .cell(verdict.recommended.describe(peak.effects().space(),
                                             /*invert=*/true));
      model_sum += model_impr;
      empirical_sum += run.ref_improvement_pct;
      ++rows;
    }
  }
  table.print(std::cout);
  std::printf("\nAverages: model-based %.1f%%, empirical %.1f%%\n",
              model_sum / rows, empirical_sum / rows);
  std::cout << "Shape: the advisor finds the big mechanism it models (ART "
               "strict aliasing on p4)\nbut mis-fires or stays silent "
               "elsewhere; empirical rating wins or ties every row —\nthe "
               "paper's argument for feedback-directed tuning.\n";
  return 0;
}
