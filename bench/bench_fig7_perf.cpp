/// \file bench_fig7_perf.cpp
/// Regenerates Figure 7 (a) and (b): performance improvement over the
/// "-O3" version for SWIM, MGRID, EQUAKE and ART on the SPARC-II-like and
/// Pentium-4-like machines, for every applicable rating method plus the
/// AVG and WHL references. Shape targets (paper Section 5.2): all real
/// rating methods land close to WHL; AVG is the weakest; ART on the P4
/// shows the ~178% win from disabling strict aliasing; MGRID and ART on
/// SPARC II show train-vs-ref divergence.

#include <iostream>

#include "fig7_common.hpp"

int main() {
  using namespace peak;
  std::cout << "Reproducing Figure 7 (a)/(b): performance improvement by "
               "PEAK\n\n";
  for (const sim::MachineModel& machine :
       {sim::sparc2(), sim::pentium4()}) {
    const bench::Figure7Results results = bench::run_figure7(machine);
    bench::print_perf_panel(results);
  }
  return 0;
}
