/// \file bench_adaptive.cpp
/// The paper's Section 6 outlook, measured: online adaptive tuning of
/// MGRID.resid across a workload phase change. Reports a timeline of
/// average production time per window, annotated with the tuner's phase —
/// experimentation overhead at the start, zero-overhead monitoring once
/// settled, automatic re-tuning after the phase change flips which
/// optimization wins (the -fgcse-lm story).

#include <cstdio>
#include <iostream>

#include "core/adaptive.hpp"
#include "stats/descriptive.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::cout << "Online adaptive tuning timeline: MGRID.resid on sparc2, "
               "phase change at window 30\n\n";

  const auto workload = workloads::make_workload("MGRID");
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const std::size_t gcse_lm =
      *search::gcc33_o3_space().index_of("-fgcse-lm");

  core::AdaptiveOptions options;
  options.drift_threshold = 0.02;
  options.drift_patience = 8;
  core::AdaptiveTuner tuner(*workload, machine, effects, options, 5);

  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 5);
  tuner.set_workload_scale(train.workload_scale);

  constexpr std::size_t kWindow = 512;
  constexpr std::size_t kWindows = 60;
  std::size_t cursor = 0;

  std::printf("%-8s %-12s %-14s %-10s %-9s %s\n", "window", "phase",
              "avg time", "promotions", "retunes", "-fgcse-lm");
  for (std::size_t w = 0; w < kWindows; ++w) {
    if (w == 30) {
      // The application enters its large-grid phase.
      tuner.set_workload_scale(1.0);
    }
    std::vector<double> times;
    times.reserve(kWindow);
    for (std::size_t i = 0; i < kWindow; ++i)
      times.push_back(tuner.step(
          train.invocations[cursor++ % train.invocations.size()]));
    if (w % 4 == 0 || w == 30 || w == 31) {
      std::printf("%-8zu %-12s %-14.0f %-10zu %-9zu %s\n", w,
                  tuner.phase() == core::AdaptiveTuner::Phase::kMonitor
                      ? "monitor"
                      : "experiment",
                  stats::mean(times), tuner.promotions(),
                  tuner.retunes_triggered(),
                  tuner.versions().best().config.enabled(gcse_lm) ? "ON"
                                                                  : "off");
    }
  }

  std::printf(
      "\nVersion-table swaps: %llu; experiments run: %zu\n",
      static_cast<unsigned long long>(tuner.versions().swap_count()),
      tuner.experiments_run());
  std::cout << "Shape: experimentation cost up front, flat monitoring "
               "after; the phase change\ntriggers a re-tune that evicts "
               "-fgcse-lm (helpful on small grids, harmful on large).\n";
  return 0;
}
