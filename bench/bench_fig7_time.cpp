/// \file bench_fig7_time.cpp
/// Regenerates Figure 7 (c) and (d): tuning time of every rating method
/// normalised to the state-of-the-art whole-program (WHL) approach, on
/// both simulated machines. Shape targets: most methods reduce tuning
/// time by more than 10x; using the wrong method hurts (MGRID_CBR has too
/// many contexts; SWIM_RBR pays heavy re-execution overhead, worst on the
/// Pentium 4); ref-dataset tuning amortises better than train (more
/// invocations per run).

#include <iostream>

#include "fig7_common.hpp"

int main() {
  using namespace peak;
  std::cout << "Reproducing Figure 7 (c)/(d): normalized tuning time over "
               "the WHL approach\n\n";
  for (const sim::MachineModel& machine :
       {sim::sparc2(), sim::pentium4()}) {
    const bench::Figure7Results results = bench::run_figure7(machine);
    bench::print_time_panel(results);
  }
  return 0;
}
