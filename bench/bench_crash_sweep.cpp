/// \file bench_crash_sweep.cpp
/// Robustness sweep for the out-of-process rating sandbox: real abort()ing
/// hard-crash faults under --isolate-workers, against the same faults
/// rated in-process.
///
/// Per benchmark: a transient arm (scripted non-sticky crashes must be
/// survived with the bit-identical outcome of a crash-free run), a sticky
/// arm (deterministic crashers must land in quarantine while tuning
/// completes), and an unisolated arm (the sticky model run without
/// isolation, in a forked child, documenting the death isolation
/// prevents).
///
/// Besides the human-readable stdout report, writes BENCH_crash_sweep.json
/// (machine-readable, schema checked by tools/check_bench_json.py).

#include <cstdio>
#include <iostream>

#include "crash_sweep.hpp"

int main() {
  using namespace peak;
  std::cout << "Out-of-process rating sandbox under injected hard "
               "crashes\n\n";

  const bench::CrashSweepResult result = bench::run_crash_sweep();
  bench::print_crash_sweep(result, std::cout);

  std::cout << "\nShape: isolated arms always complete (a crashed worker "
               "is respawned and the\ntask retried; deterministic "
               "crashers are quarantined after the retry budget),\nand "
               "survived transient crashes leave no trace — the outcome "
               "is bit-identical\nto a run that never crashed. The "
               "in-process arm dies on the first abort().\n";

  const std::string json_path = "BENCH_crash_sweep.json";
  if (bench::write_crash_sweep_json(json_path, result))
    std::printf("\nWrote %s\n", json_path.c_str());
  else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
