#pragma once

/// \file dist_sweep.hpp
/// Distributed-tuning identity sweep shared by bench_dist_sweep (which
/// emits a standalone BENCH_dist_sweep.json) and bench_headline (which
/// embeds the same fragment so the committed baseline carries it).
///
/// Every arm tunes the same scenario through a loopback TCP fleet of
/// in-process worker agents and is gated on producing the bit-identical
/// TuningOutcome of the `--search-threads N` baseline:
///
///   fleet   1, 2, and 4 healthy workers — fleet size must not matter
///   kill    the fleet's only worker drops its socket abruptly mid-run
///           (the max_tasks hook) while a late replacement dials in —
///           the run cannot finish until the coordinator absorbs the
///           replacement and requeues the dead worker's tasks onto it,
///           so loss, requeue, and respawn all provably fired, and the
///           outcome must still be bit-identical

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace peak::bench {

struct DistArm {
  std::string mode;  ///< "fleet" | "kill"
  unsigned workers = 0;  ///< fleet size at formation
  double wall_s = 0.0;
  bool completed = false;  ///< every agent exited 0 (bye or hook)
  bool identical = false;  ///< TuningOutcome == threaded baseline
  std::uint64_t tasks_dispatched = 0;
  std::uint64_t tasks_requeued = 0;
  std::uint64_t workers_lost = 0;
  std::uint64_t workers_respawned = 0;
};

struct DistSweepResult {
  std::string benchmark;
  unsigned baseline_threads = 0;
  double baseline_wall_s = 0.0;
  std::vector<DistArm> arms;
  double identity_rate = 0.0;  ///< fraction of arms matching baseline
  std::uint64_t total_requeued = 0;
  std::uint64_t total_respawned = 0;
};

/// Run the sweep (loopback sockets, in-process agents, deterministic
/// simulation — only the wall times vary run to run).
DistSweepResult run_dist_sweep();

/// Human-readable table on `os`.
void print_dist_sweep(const DistSweepResult& result, std::ostream& os);

/// The {"benchmark":...,"arms":[...],"summary":{...}} fragment embedded
/// into the headline document under "dist_sweep".
void write_dist_sweep_fragment(std::ostream& os,
                               const DistSweepResult& result);

/// Standalone {"bench":"dist_sweep",...} document.
bool write_dist_sweep_json(const std::string& path,
                           const DistSweepResult& result);

}  // namespace peak::bench
