/// \file bench_fault_sweep.cpp
/// Robustness sweep: tuning quality and survival as a function of the
/// injected fault rate, guarded vs unguarded.
///
/// For each Figure 7 benchmark, fault rates {2%, 5%, 10%} of configs, and
/// several injector seeds, runs tune_auto() twice: once through the
/// guarded executor (deadlines + retry + quarantine + validation) and
/// once with guarding disabled (only the rating windows' non-finite
/// sample guard remains — the paper driver's blind spot). Reports per-arm
/// completion rate, agreement with the fault-free winner, and tuning
/// cost.
///
/// Besides the human-readable stdout report, writes BENCH_fault_sweep.json
/// (machine-readable, schema checked by tools/check_bench_json.py).

#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

struct SweepPoint {
  std::string benchmark;
  double fault_prob = 0.0;
  std::uint64_t seed = 0;
  bool guarded = false;
  bool completed = false;        ///< tune_auto returned (vs threw)
  bool matches_baseline = false; ///< winner == fault-free winner
  double ref_improvement_pct = 0.0;
  std::size_t quarantined = 0;
  std::size_t invocations = 0;
};

constexpr double kFaultRates[] = {0.02, 0.05, 0.10};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

/// Marginal jitter flags (true effect below IE's threshold) make the
/// adopted config a coin-flip of the noise stream even fault-free;
/// raising the threshold to 1.5% keeps the solid story effects and makes
/// exact-config agreement a meaningful robustness metric.
search::IterativeEliminationOptions ie_options() {
  search::IterativeEliminationOptions ie;
  ie.improvement_threshold = 1.015;
  return ie;
}

struct TuneRun {
  core::TuningOutcome outcome;
  std::size_t quarantined = 0;
};

TuneRun tune_once(const workloads::Workload& workload,
                  const core::ProfileData& profile,
                  const workloads::Trace& train,
                  const sim::MachineModel& machine,
                  const sim::FlagEffectModel& effects,
                  const fault::FaultInjector* injector, bool guarded) {
  core::DriverOptions options;
  options.ie = ie_options();
  options.fault.injector = injector;
  options.fault.guard_execution = guarded;
  core::TuningDriver driver(workload, profile, train, machine, effects,
                            options);
  TuneRun run;
  run.outcome = driver.tune_auto();
  run.quarantined = driver.quarantine().size();
  return run;
}

void append_point_json(std::ostream& os, const SweepPoint& p) {
  os << "{\"benchmark\":\"" << obs::json_escape(p.benchmark)
     << "\",\"fault_prob\":" << p.fault_prob << ",\"seed\":" << p.seed
     << ",\"guarded\":" << (p.guarded ? "true" : "false")
     << ",\"completed\":" << (p.completed ? "true" : "false")
     << ",\"matches_baseline\":" << (p.matches_baseline ? "true" : "false")
     << ",\"ref_improvement_pct\":"
     << (std::isfinite(p.ref_improvement_pct) ? p.ref_improvement_pct : 0.0)
     << ",\"quarantined\":" << p.quarantined
     << ",\"invocations\":" << p.invocations << "}";
}

bool write_json(const std::string& path,
                const std::vector<SweepPoint>& points, double guarded_rate,
                double unguarded_rate, double match_rate) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"bench\":\"fault_sweep\",\"schema\":1,\"sweep\":[";
  bool first = true;
  for (const SweepPoint& p : points) {
    if (!first) os << ",";
    first = false;
    append_point_json(os, p);
  }
  os << "],\"summary\":{\"guarded_completion_rate\":" << guarded_rate
     << ",\"unguarded_completion_rate\":" << unguarded_rate
     << ",\"guarded_match_rate\":" << match_rate << "}}\n";
  return os.good();
}

}  // namespace

int main() {
  std::cout << "Fault sweep: tuning under injected faults, guarded vs "
               "unguarded (rates 2/5/10%, seeds 1-3)\n\n";

  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const search::FlagConfig o3 = search::o3_config(effects.space());

  std::vector<SweepPoint> points;
  std::size_t guarded_total = 0, guarded_done = 0, guarded_match = 0;
  std::size_t unguarded_total = 0, unguarded_done = 0;

  support::Table table;
  table.row({"Benchmark", "fault%", "guarded done", "match", "unguarded done"});

  for (const std::string& name : workloads::figure7_benchmarks()) {
    const auto workload = workloads::make_workload(name);
    const workloads::Trace train =
        workload->trace(workloads::DataSet::kTrain, 42);
    const core::ProfileData profile =
        core::profile_workload(*workload, train, machine);
    const workloads::Trace ref =
        workload->trace(workloads::DataSet::kRef, 1);
    const double o3_time =
        core::expected_trace_time(*workload, ref, machine, effects, o3);

    // Fault-free baseline winner, same search threshold, same machinery.
    const search::FlagConfig baseline =
        tune_once(*workload, profile, train, machine, effects,
                  /*injector=*/nullptr, /*guarded=*/true)
            .outcome.best_config;

    for (double rate : kFaultRates) {
      std::size_t row_guarded = 0, row_match = 0, row_unguarded = 0;
      for (std::uint64_t seed : kSeeds) {
        fault::FaultModel model;
        model.fault_prob = rate;
        model.seed = seed;
        fault::FaultInjector injector(model);
        injector.exempt(o3);

        for (bool guarded : {true, false}) {
          SweepPoint p;
          p.benchmark = name;
          p.fault_prob = rate;
          p.seed = seed;
          p.guarded = guarded;
          (guarded ? guarded_total : unguarded_total) += 1;
          try {
            const TuneRun run =
                tune_once(*workload, profile, train, machine, effects,
                          &injector, guarded);
            p.completed = true;
            p.matches_baseline = run.outcome.best_config == baseline;
            p.invocations = run.outcome.cost.invocations;
            p.quarantined = run.quarantined;
            const double tuned_time = core::expected_trace_time(
                *workload, ref, machine, effects, run.outcome.best_config);
            p.ref_improvement_pct = (o3_time / tuned_time - 1.0) * 100.0;
          } catch (const fault::FaultError&) {
            // The unguarded arm dies on whatever the injector throws at
            // it; that is the point of the comparison.
            p.completed = false;
          }
          if (guarded) {
            guarded_done += p.completed;
            guarded_match += p.matches_baseline;
            row_guarded += p.completed;
            row_match += p.matches_baseline;
          } else {
            unguarded_done += p.completed;
            row_unguarded += p.completed;
          }
          points.push_back(p);
        }
      }
      const std::size_t n = std::size(kSeeds);
      table.add_row()
          .cell(name)
          .num(100.0 * rate)
          .cell(std::to_string(row_guarded) + "/" + std::to_string(n))
          .cell(std::to_string(row_match) + "/" + std::to_string(n))
          .cell(std::to_string(row_unguarded) + "/" + std::to_string(n));
    }
  }
  table.print(std::cout);

  const double guarded_rate =
      guarded_total ? static_cast<double>(guarded_done) / guarded_total : 0;
  const double unguarded_rate =
      unguarded_total ? static_cast<double>(unguarded_done) / unguarded_total
                      : 0;
  const double match_rate =
      guarded_total ? static_cast<double>(guarded_match) / guarded_total : 0;

  std::printf("\nguarded:   %zu/%zu completed, %zu matched the fault-free "
              "winner\n",
              guarded_done, guarded_total, guarded_match);
  std::printf("unguarded: %zu/%zu completed\n", unguarded_done,
              unguarded_total);
  std::cout << "\nShape: the guarded arm always completes (hangs hit "
               "deadlines, crashes retry or\nquarantine, miscompiles are "
               "caught by validation) and usually lands on the same\n"
               "winner as a fault-free run; the unguarded arm dies "
               "whenever a fault surfaces\noutside a rating window.\n";

  const std::string json_path = "BENCH_fault_sweep.json";
  if (write_json(json_path, points, guarded_rate, unguarded_rate,
                 match_rate))
    std::printf("\nWrote %s\n", json_path.c_str());
  else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
