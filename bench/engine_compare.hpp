#pragma once

/// \file engine_compare.hpp
/// Interpreter-vs-bytecode-VM microbenchmark shared by bench_micro (which
/// can emit a standalone ENGINE_compare.json for the ctest regression
/// gate) and bench_headline (which embeds the speedups into
/// BENCH_headline.json so the committed baseline carries them).
///
/// Three kernels cover the execution profiles that dominate tuning runs:
/// small-and-branchy control flow, array-heavy inner loops (where bounds
/// check folding pays), and counter-heavy instrumented code (the profiling
/// pass shape).

#include <ostream>
#include <string>
#include <vector>

namespace peak::bench {

struct EngineKernelResult {
  std::string name;
  double interp_ns = 0.0;  ///< tree-walking interpreter, ns per run
  double vm_ns = 0.0;      ///< bytecode VM, ns per run
  double speedup = 0.0;    ///< interp_ns / vm_ns
};

struct EngineCompareResult {
  std::vector<EngineKernelResult> kernels;
  double geomean_speedup = 0.0;
};

/// Time every kernel under both engines (best-of-`trials` timing). The
/// engines' results are asserted equal before timing — a benchmark of two
/// engines that disagree would be meaningless.
EngineCompareResult run_engine_compare(int trials = 3);

/// Human-readable table on `os`.
void print_engine_compare(const EngineCompareResult& result,
                          std::ostream& os);

/// Standalone {"bench":"engine_compare",...} document.
bool write_engine_compare_json(const std::string& path,
                               const EngineCompareResult& result);

/// The {"kernels":[...],"geomean":...} fragment embedded into the headline
/// document under "engine_speedup".
void write_engine_speedup_fragment(std::ostream& os,
                                   const EngineCompareResult& result);

}  // namespace peak::bench
