#include "fig7_common.hpp"

#include <cstdio>
#include <iostream>

#include "support/table.hpp"

namespace peak::bench {

Figure7Results run_figure7(const sim::MachineModel& machine,
                           std::uint64_t seed) {
  Figure7Results results;
  results.machine = machine;
  core::PeakOptions options;
  options.seed = seed;
  core::Peak peak(machine, options);

  for (const std::string& name : workloads::figure7_benchmarks()) {
    const auto workload = workloads::make_workload(name);
    std::vector<rating::Method> extra;
    if (name == "MGRID") extra.push_back(rating::Method::kCBR);
    results.benchmarks.push_back(
        peak.run_benchmark(*workload, /*all_methods=*/true, extra));
  }
  return results;
}

namespace {

std::string bar_label(const core::BenchmarkResult& b, rating::Method m) {
  std::string label = b.benchmark;
  for (char& c : label) c = static_cast<char>(std::tolower(c));
  return label + "_" + rating::to_string(m);
}

std::vector<rating::Method> methods_in(const core::BenchmarkResult& b) {
  std::vector<rating::Method> out;
  for (const core::MethodRun& r : b.runs) {
    if (r.tuned_on != workloads::DataSet::kTrain) continue;
    out.push_back(r.method);
  }
  return out;
}

}  // namespace

void print_perf_panel(const Figure7Results& results) {
  support::Table table("Figure 7 (" + results.machine.name +
                       "): % improvement over -O3 on the ref dataset "
                       "(left bar: tuned with train; right: tuned with ref)");
  table.row({"bar", "Train", "Ref"});
  for (const core::BenchmarkResult& b : results.benchmarks) {
    for (rating::Method m : methods_in(b)) {
      const core::MethodRun* train =
          b.find(m, workloads::DataSet::kTrain);
      const core::MethodRun* ref = b.find(m, workloads::DataSet::kRef);
      table.add_row()
          .cell(bar_label(b, m))
          .num(train ? train->ref_improvement_pct : 0.0)
          .num(ref ? ref->ref_improvement_pct : 0.0);
    }
  }
  table.print(std::cout);
  for (const core::BenchmarkResult& b : results.benchmarks)
    std::cout << "  " << b.benchmark
              << ": PEAK chooses " << rating::to_string(b.chosen) << " ("
              << b.decision.rationale << ")\n";
  std::cout << '\n';
}

void print_time_panel(const Figure7Results& results) {
  support::Table table(
      "Figure 7 (" + results.machine.name +
      "): tuning time normalised to the WHL approach (lower is better)");
  table.row({"bar", "Train", "Ref"});
  for (const core::BenchmarkResult& b : results.benchmarks) {
    for (rating::Method m : methods_in(b)) {
      if (m == rating::Method::kWHL) continue;  // the 1.0 reference
      table.add_row()
          .cell(bar_label(b, m))
          .num(b.normalized_tuning_time(m, workloads::DataSet::kTrain), 3)
          .num(b.normalized_tuning_time(m, workloads::DataSet::kRef), 3);
    }
  }
  table.print(std::cout);
  std::cout << '\n';
}

Headline compute_headline(const std::vector<Figure7Results>& machines) {
  Headline h;
  double sum_impr = 0.0, sum_red = 0.0;
  std::size_t n = 0;
  for (const Figure7Results& results : machines) {
    for (const core::BenchmarkResult& b : results.benchmarks) {
      const core::MethodRun* run =
          b.find(b.chosen, workloads::DataSet::kTrain);
      if (!run) continue;
      const double reduction =
          100.0 * (1.0 - b.normalized_tuning_time(
                             b.chosen, workloads::DataSet::kTrain));
      h.max_improvement_pct =
          std::max(h.max_improvement_pct, run->ref_improvement_pct);
      h.max_time_reduction_pct =
          std::max(h.max_time_reduction_pct, reduction);
      sum_impr += run->ref_improvement_pct;
      sum_red += reduction;
      ++n;
    }
  }
  if (n > 0) {
    h.avg_improvement_pct = sum_impr / static_cast<double>(n);
    h.avg_time_reduction_pct = sum_red / static_cast<double>(n);
  }
  return h;
}

}  // namespace peak::bench
