#include "crash_sweep.hpp"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "workloads/workload.hpp"

namespace peak::bench {

namespace {

constexpr const char* kBenchmarks[] = {"SWIM", "ART"};

struct TuneSetup {
  std::unique_ptr<workloads::Workload> workload;
  workloads::Trace train;
  core::ProfileData profile;
  sim::MachineModel machine;
  sim::FlagEffectModel effects{search::gcc33_o3_space()};
};

TuneSetup make_setup(const std::string& benchmark) {
  TuneSetup s;
  s.machine = sim::sparc2();
  s.workload = workloads::make_workload(benchmark);
  s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
  s.profile = core::profile_workload(*s.workload, s.train, s.machine);
  return s;
}

struct TuneRun {
  core::TuningOutcome outcome;
  std::size_t quarantined = 0;
};

TuneRun tune_once(const TuneSetup& s, const fault::FaultInjector* injector,
                  unsigned search_threads, unsigned isolate_workers) {
  core::DriverOptions options;
  options.fault.injector = injector;
  options.search_threads = search_threads;
  options.isolate_workers = isolate_workers;
  core::TuningDriver driver(*s.workload, s.profile, s.train, s.machine,
                            s.effects, options);
  TuneRun run;
  run.outcome = driver.tune(rating::Method::kRBR);
  run.quarantined = driver.quarantine().size();
  return run;
}

/// Non-sticky hard crashes scripted against the first config Iterative
/// Elimination probes (-O3 minus the space's first flag) at several trace
/// invocations: the worker rating it abort()s when one fires, and the
/// respawned attempt clears (fire() returns kNone past attempt 0), so the
/// round completes with nothing charged and nothing quarantined.
fault::FaultInjector transient_injector(const TuneSetup& s) {
  fault::FaultInjector injector;
  search::FlagConfig probed = search::o3_config(s.effects.space());
  probed.set(0, false);
  // RBR batches measurement pairs over a method-chosen subset of the
  // trace, so spread the scripted sites widely to guarantee a hit.
  const std::size_t n = s.train.invocations.size();
  std::vector<std::size_t> indices;
  for (std::size_t k = 0; k < 16; ++k) indices.push_back(k * n / 16);
  for (std::size_t index : indices) {
    fault::ScriptedFault sf;
    sf.config_key = probed.key();
    sf.invocation_id = s.train.invocations[index].id;
    sf.kind = fault::FaultKind::kHardCrash;
    sf.sticky = false;
    injector.script(sf);
  }
  return injector;
}

/// Stochastic model where every faulty config is a deterministic hard
/// crasher: it abort()s on every attempt, so the supervisor exhausts its
/// retries and quarantines the config — and an unisolated run simply dies.
fault::FaultInjector sticky_injector(const TuneSetup& s) {
  fault::FaultModel model;
  model.fault_prob = 0.08;
  model.crash_weight = 0.0;
  model.hang_weight = 0.0;
  model.miscompile_weight = 0.0;
  model.glitch_weight = 0.0;
  model.checkpoint_weight = 0.0;
  model.hard_crash_weight = 1.0;
  model.deterministic_fraction = 1.0;
  model.seed = 7;
  fault::FaultInjector injector(model);
  injector.exempt(search::o3_config(s.effects.space()));
  return injector;
}

std::uint64_t respawned_counter() {
  return obs::counter("proc.workers.respawned").value();
}

/// Run the sticky model in-process (no isolation) inside a forked child:
/// the first firing hard crash abort()s the child, which is the point —
/// this arm documents the completion rate isolation exists to fix.
bool unisolated_survives(const TuneSetup& s,
                         const fault::FaultInjector& injector) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    struct rlimit no_core = {0, 0};
    ::setrlimit(RLIMIT_CORE, &no_core);  // an expected abort, no dump
    try {
      tune_once(s, &injector, /*search_threads=*/1, /*isolate_workers=*/0);
      ::_exit(0);
    } catch (...) {
      ::_exit(1);
    }
  }
  if (pid < 0) return false;
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

}  // namespace

CrashSweepResult run_crash_sweep(std::size_t workers) {
  CrashSweepResult result;
  std::size_t isolated_arms = 0, isolated_done = 0;
  std::size_t transient_arms = 0, transient_identical = 0;
  std::size_t unisolated_arms = 0, unisolated_done = 0;

  for (const char* benchmark : kBenchmarks) {
    const TuneSetup s = make_setup(benchmark);
    // The crash-free comparator: same guarded-rating wiring (an injector
    // whose faults never fire), in-process --search-threads N. Identity
    // against it proves both contracts at once — survived crashes leave
    // no trace, and isolated workers reproduce the threaded outcome.
    const fault::FaultInjector inert;
    const core::TuningOutcome baseline =
        tune_once(s, &inert, static_cast<unsigned>(workers), 0).outcome;

    {
      CrashArm arm;
      arm.benchmark = benchmark;
      arm.mode = "transient";
      arm.isolated = true;
      const fault::FaultInjector injector = transient_injector(s);
      const std::uint64_t before = respawned_counter();
      try {
        const TuneRun run = tune_once(s, &injector, 0,
                                      static_cast<unsigned>(workers));
        arm.completed = true;
        arm.identical = run.outcome == baseline;
        arm.quarantined = run.quarantined;
      } catch (const std::exception&) {
        arm.completed = false;
      }
      arm.respawns = respawned_counter() - before;
      ++isolated_arms;
      isolated_done += arm.completed;
      ++transient_arms;
      transient_identical += arm.identical;
      result.total_respawns += arm.respawns;
      result.arms.push_back(arm);
    }

    const fault::FaultInjector sticky = sticky_injector(s);
    {
      CrashArm arm;
      arm.benchmark = benchmark;
      arm.mode = "sticky";
      arm.isolated = true;
      const std::uint64_t before = respawned_counter();
      try {
        const TuneRun run = tune_once(s, &sticky, 0,
                                      static_cast<unsigned>(workers));
        arm.completed = true;
        arm.identical = run.outcome == baseline;
        arm.quarantined = run.quarantined;
      } catch (const std::exception&) {
        arm.completed = false;
      }
      arm.respawns = respawned_counter() - before;
      ++isolated_arms;
      isolated_done += arm.completed;
      result.total_respawns += arm.respawns;
      result.arms.push_back(arm);
    }

    {
      CrashArm arm;
      arm.benchmark = benchmark;
      arm.mode = "unisolated";
      arm.isolated = false;
      arm.completed = unisolated_survives(s, sticky);
      ++unisolated_arms;
      unisolated_done += arm.completed;
      result.arms.push_back(arm);
    }
  }

  const auto rate = [](std::size_t done, std::size_t total) {
    return total > 0 ? static_cast<double>(done) /
                           static_cast<double>(total)
                     : 0.0;
  };
  result.isolated_completion_rate = rate(isolated_done, isolated_arms);
  result.transient_identity_rate =
      rate(transient_identical, transient_arms);
  result.unisolated_completion_rate =
      rate(unisolated_done, unisolated_arms);
  return result;
}

void print_crash_sweep(const CrashSweepResult& result, std::ostream& os) {
  os << "Crash sweep: hard-crash faults under --isolate-workers vs "
        "in-process (RBR)\n";
  for (const CrashArm& arm : result.arms) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-7s %-10s %-11s %-9s %-9s %llu respawns, %llu "
                  "quarantined\n",
                  arm.benchmark.c_str(), arm.mode.c_str(),
                  arm.isolated ? "isolated" : "in-process",
                  arm.completed ? "completed" : "DIED",
                  arm.identical ? "identical" : "-",
                  static_cast<unsigned long long>(arm.respawns),
                  static_cast<unsigned long long>(arm.quarantined));
    os << line;
  }
  char summary[200];
  std::snprintf(summary, sizeof summary,
                "  isolated completion %.0f%%  transient identity %.0f%%  "
                "unisolated completion %.0f%%  (%llu worker respawns)\n",
                100.0 * result.isolated_completion_rate,
                100.0 * result.transient_identity_rate,
                100.0 * result.unisolated_completion_rate,
                static_cast<unsigned long long>(result.total_respawns));
  os << summary;
}

void write_crash_sweep_fragment(std::ostream& os,
                                const CrashSweepResult& result) {
  os << "{\"arms\":[";
  bool first = true;
  for (const CrashArm& arm : result.arms) {
    if (!first) os << ",";
    first = false;
    os << "{\"benchmark\":\"" << obs::json_escape(arm.benchmark)
       << "\",\"mode\":\"" << obs::json_escape(arm.mode)
       << "\",\"isolated\":" << (arm.isolated ? "true" : "false")
       << ",\"completed\":" << (arm.completed ? "true" : "false")
       << ",\"identical\":" << (arm.identical ? "true" : "false")
       << ",\"respawns\":" << arm.respawns
       << ",\"quarantined\":" << arm.quarantined << "}";
  }
  os << "],\"summary\":{\"isolated_completion_rate\":"
     << result.isolated_completion_rate
     << ",\"transient_identity_rate\":" << result.transient_identity_rate
     << ",\"unisolated_completion_rate\":"
     << result.unisolated_completion_rate
     << ",\"total_respawns\":" << result.total_respawns << "}}";
}

bool write_crash_sweep_json(const std::string& path,
                            const CrashSweepResult& result) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\"bench\":\"crash_sweep\",\"schema\":1,\"crash_sweep\":";
  write_crash_sweep_fragment(os, result);
  os << "}\n";
  return static_cast<bool>(os);
}

}  // namespace peak::bench
