/// \file bench_ablation_checkpoint.cpp
/// Ablation for the RBR save/restore overhead reductions of §2.4.2: the
/// basic method checkpoints the full Input(TS); Modified_Input = Input ∩
/// Def shrinks it; symbolic range analysis (the paper's citation [1])
/// narrows arrays further to the provably written slice. Reports bytes
/// and the resulting per-invocation RBR overhead for each level.

#include <cstdio>
#include <iostream>

#include "core/profile.hpp"
#include "sim/exec_backend.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::cout << "Ablation: RBR checkpoint size — full input vs "
               "Modified_Input vs range-narrowed slices\n\n";

  const sim::MachineModel machine = sim::sparc2();
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const search::FlagConfig o3 = search::o3_config(space);

  support::Table table;
  table.row({"Section", "Input B", "ModInput B", "RangePlan B",
             "plan regions", "overhead/inv (plan)"});

  for (const char* name : {"MGRID", "SWIM", "APPLU", "EQUAKE", "ART"}) {
    const auto workload = workloads::make_workload(name);
    const workloads::Trace trace =
        workload->trace(workloads::DataSet::kTrain, 13);
    const core::ProfileData profile =
        core::profile_workload(*workload, trace, machine);
    const ir::Function& fn = workload->function();

    sim::TsTraits traits = workload->traits();
    traits.workload_scale = trace.workload_scale;
    sim::SimExecutionBackend backend(fn, traits, machine, effects, 3);
    backend.set_checkpoint_bytes(profile.input_sets.input_bytes(fn),
                                 profile.checkpoint_plan.bytes(fn));
    double overhead = 0.0;
    const std::size_t pairs = 200;
    for (std::size_t i = 0; i < pairs; ++i)
      overhead += backend
                      .invoke_rbr_pair(o3, o3,
                                       trace.invocations[i %
                                                         trace.invocations
                                                             .size()],
                                       sim::RbrOptions{true})
                      .overhead;

    table.add_row()
        .cell(workload->full_name())
        .cell(std::to_string(profile.input_sets.input_bytes(fn)))
        .cell(std::to_string(profile.input_sets.modified_input_bytes(fn)))
        .cell(std::to_string(profile.checkpoint_plan.bytes(fn)))
        .cell(profile.checkpoint_plan.describe(fn))
        .num(overhead / static_cast<double>(pairs), 0);
  }
  table.print(std::cout);
  std::cout << "\nShape: each refinement level shrinks the checkpoint; the "
               "range plan narrows arrays\nto written slices when the "
               "profile bounds the loop limits (MGRID r[0..n^3]).\n";
  return 0;
}
