/// \file bench_ablation_search.cpp
/// Ablation for the search engine (Section 5.2 mentions that alternative
/// pruning algorithms can be plugged in): Iterative Elimination vs Batch
/// Elimination vs random search vs greedy construction on the 38-flag
/// space, rated with the consultant-chosen method for each benchmark.
/// Reports the ref-dataset improvement found and the configurations
/// evaluated (the cost driver).

#include <iostream>

#include "core/peak.hpp"
#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "search/combined_elimination.hpp"
#include "search/iterative_elimination.hpp"
#include "search/simple_searches.hpp"
#include "sim/exec_backend.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

/// Noise-free evaluator against the effect model (isolates the search
/// algorithms from rating noise; the full pipeline is measured elsewhere).
class OracleEvaluator final : public search::ConfigEvaluator {
public:
  OracleEvaluator(const sim::TsTraits& traits,
                  const sim::MachineModel& machine,
                  const sim::FlagEffectModel& effects)
      : traits_(traits), machine_(machine), effects_(effects) {}

  double relative_improvement(const search::FlagConfig& base,
                              const search::FlagConfig& cfg) override {
    return effects_.time_multiplier(traits_, machine_, base) /
           effects_.time_multiplier(traits_, machine_, cfg);
  }

private:
  const sim::TsTraits& traits_;
  const sim::MachineModel& machine_;
  const sim::FlagEffectModel& effects_;
};

}  // namespace

int main() {
  std::cout << "Ablation: search algorithms over the 38-flag GCC 3.3 -O3 "
               "space (noise-free oracle ratings)\n\n";

  const sim::MachineModel machine = sim::pentium4();
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const search::FlagConfig o3 = search::o3_config(space);

  support::Table table;
  table.row({"Benchmark", "algorithm", "improvement %", "configs"});

  for (const std::string& name : workloads::figure7_benchmarks()) {
    const auto workload = workloads::make_workload(name);
    sim::TsTraits traits = workload->traits();
    traits.workload_scale = 1.0;

    // Noise-free oracle: both elimination variants can afford the same
    // tight improvement threshold.
    search::IterativeEliminationOptions ie_opts;
    ie_opts.improvement_threshold = 1.002;
    search::IterativeElimination ie(ie_opts);
    search::BatchElimination be(1.002);
    search::CombinedElimination ce(1.002);
    search::FactorialScreening screening;
    search::RandomSearch random(150, 7);
    search::GreedyConstruction greedy(1.002);
    search::SearchAlgorithm* algorithms[] = {&ie,     &be,     &ce,
                                             &screening, &random, &greedy};

    for (search::SearchAlgorithm* algo : algorithms) {
      OracleEvaluator oracle(traits, machine, effects);
      const search::SearchResult result =
          algo->run(space, oracle, o3);
      const double improvement =
          100.0 * (effects.time_multiplier(traits, machine, o3) /
                       effects.time_multiplier(traits, machine,
                                               result.best) -
                   1.0);
      table.add_row()
          .cell(name)
          .cell(algo->name())
          .num(improvement)
          .cell(std::to_string(result.configs_evaluated));
    }
  }
  table.print(std::cout);
  std::cout << "\nShape: IE matches or beats BE at the same threshold (it "
               "re-probes after each removal);\nboth crush random sampling "
               "at comparable budgets; greedy construction can match the\n"
               "eliminators but pays several times the evaluations.\n";
  return 0;
}
