#pragma once

/// \file crash_sweep.hpp
/// Worker-isolation robustness sweep shared by bench_crash_sweep (which
/// emits a standalone BENCH_crash_sweep.json) and bench_headline (which
/// embeds the same fragment so the committed baseline carries it).
///
/// Three arms per benchmark, all against one crash-free baseline tune:
///
///   transient   scripted non-sticky hard crashes (the worker abort()s
///               once per firing, the respawned attempt clears) under
///               --isolate-workers; gated on completing with the
///               bit-identical TuningOutcome of the crash-free run and
///               an empty quarantine
///   sticky      stochastic deterministic hard-crashers (every attempt
///               aborts) under --isolate-workers; gated on completing,
///               with the crashers landed in quarantine
///   unisolated  the sticky model rated in-process (no isolation),
///               executed in a forked child so the abort() kills the
///               child instead of the bench; documents the baseline
///               completion rate isolation exists to fix

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace peak::bench {

struct CrashArm {
  std::string benchmark;
  std::string mode;  ///< "transient" | "sticky" | "unisolated"
  bool isolated = false;
  bool completed = false;
  bool identical = false;  ///< TuningOutcome == crash-free baseline
  std::uint64_t respawns = 0;  ///< workers re-forked after real aborts
  std::uint64_t quarantined = 0;
};

struct CrashSweepResult {
  std::vector<CrashArm> arms;
  double isolated_completion_rate = 0.0;
  double transient_identity_rate = 0.0;
  double unisolated_completion_rate = 0.0;
  std::uint64_t total_respawns = 0;
};

/// Run the sweep (deterministic: seeded simulation, scripted faults).
/// `workers` is the --isolate-workers fan-out of the isolated arms.
CrashSweepResult run_crash_sweep(std::size_t workers = 4);

/// Human-readable table on `os`.
void print_crash_sweep(const CrashSweepResult& result, std::ostream& os);

/// The {"arms":[...],"summary":{...}} fragment embedded into the headline
/// document under "crash_sweep".
void write_crash_sweep_fragment(std::ostream& os,
                                const CrashSweepResult& result);

/// Standalone {"bench":"crash_sweep",...} document.
bool write_crash_sweep_json(const std::string& path,
                            const CrashSweepResult& result);

}  // namespace peak::bench
