#include "stats/outlier.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "support/check.hpp"

namespace peak::stats {

namespace {

std::vector<bool> sigma_mask(std::span<const double> xs,
                             const OutlierPolicy& policy) {
  std::vector<bool> keep(xs.size(), true);
  const auto max_drop = static_cast<std::size_t>(
      policy.max_drop_fraction * static_cast<double>(xs.size()));
  std::size_t dropped = 0;

  for (int iter = 0; iter < policy.max_iterations; ++iter) {
    // Mean / stddev over currently kept samples.
    Welford acc;
    for (std::size_t i = 0; i < xs.size(); ++i)
      if (keep[i]) acc.add(xs[i]);
    if (acc.count() < 3) break;
    const double m = acc.mean();
    const double s = acc.stddev();
    if (s == 0.0) break;

    bool changed = false;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (!keep[i]) continue;
      if (std::fabs(xs[i] - m) > policy.k * s) {
        if (dropped >= max_drop) return keep;
        keep[i] = false;
        ++dropped;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return keep;
}

std::vector<bool> mad_mask(std::span<const double> xs,
                           const OutlierPolicy& policy) {
  std::vector<bool> keep(xs.size(), true);
  if (xs.size() < 3) return keep;
  const double med = median(xs);
  const double spread = mad(xs);
  if (spread == 0.0) return keep;
  const auto max_drop = static_cast<std::size_t>(
      policy.max_drop_fraction * static_cast<double>(xs.size()));
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (std::fabs(xs[i] - med) > policy.k * spread) {
      if (dropped >= max_drop) break;
      keep[i] = false;
      ++dropped;
    }
  }
  return keep;
}

}  // namespace

std::vector<bool> outlier_mask(std::span<const double> xs,
                               const OutlierPolicy& policy) {
  PEAK_CHECK(policy.k > 0.0, "outlier threshold must be positive");
  switch (policy.rule) {
    case OutlierRule::kNone:
      return std::vector<bool>(xs.size(), true);
    case OutlierRule::kSigma:
      return sigma_mask(xs, policy);
    case OutlierRule::kMad:
      return mad_mask(xs, policy);
  }
  return std::vector<bool>(xs.size(), true);
}

OutlierResult filter_outliers(std::span<const double> xs,
                              const OutlierPolicy& policy) {
  const std::vector<bool> keep = outlier_mask(xs, policy);
  OutlierResult result;
  result.kept.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (keep[i])
      result.kept.push_back(xs[i]);
    else
      ++result.dropped;
  }
  return result;
}

}  // namespace peak::stats
