#pragma once

/// \file outlier.hpp
/// Measurement-outlier elimination (paper Section 3): samples far from the
/// average — typically caused by system perturbations such as interrupts —
/// are identified and excluded before EVAL/VAR are computed.
///
/// Two detectors are provided. The k·sigma rule matches the paper's
/// description ("far away from the average"); the MAD rule is a robust
/// variant that survives windows where a large fraction of samples are
/// perturbed (the mean/sigma themselves get dragged by the outliers).

#include <cstddef>
#include <span>
#include <vector>

namespace peak::stats {

enum class OutlierRule {
  kNone,      ///< keep everything (ablation baseline)
  kSigma,     ///< drop |x - mean| > k * stddev, iterated to fixpoint
  kMad,       ///< drop |x - median| > k * MAD
};

struct OutlierPolicy {
  OutlierRule rule = OutlierRule::kSigma;
  double k = 3.0;
  /// Max fraction of the window that may be discarded; guards against a
  /// degenerate filter eating the whole window when timings are bimodal.
  double max_drop_fraction = 0.25;
  /// Iteration cap for the fixpoint loop of the sigma rule.
  int max_iterations = 4;

  friend bool operator==(const OutlierPolicy&,
                         const OutlierPolicy&) = default;
};

struct OutlierResult {
  std::vector<double> kept;
  std::size_t dropped = 0;
};

/// Apply the policy to a sample window. Order of kept samples is preserved.
OutlierResult filter_outliers(std::span<const double> xs,
                              const OutlierPolicy& policy);

/// Convenience: boolean mask (true = keep) without copying values.
std::vector<bool> outlier_mask(std::span<const double> xs,
                               const OutlierPolicy& policy);

}  // namespace peak::stats
