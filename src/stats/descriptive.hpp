#pragma once

/// \file descriptive.hpp
/// Descriptive statistics over timing samples. These are the primitives the
/// rating engine (Section 3 of the paper) uses to compute EVAL (mean) and
/// VAR (variance) over a window of tuning-section invocations.

#include <cstddef>
#include <span>
#include <vector>

namespace peak::stats {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased sample variance (divisor n-1); 0 when n < 2.
double variance(std::span<const double> xs);

/// sqrt(variance).
double stddev(std::span<const double> xs);

/// Median (copies and partially sorts); 0 for empty input.
double median(std::span<const double> xs);

/// Median absolute deviation, scaled by 1.4826 so it estimates sigma for
/// normal data. Robust spread measure used by the outlier filter.
double mad(std::span<const double> xs);

/// Median of an already-sorted (ascending) span, O(1) and allocation-free.
/// Same value as median() on any permutation of the data.
double median_sorted(std::span<const double> sorted);

/// mad() of an already-sorted (ascending) span without copying: the
/// absolute deviations from the median form two sorted runs around the
/// median split, so the middle order statistics are selected by walking
/// the runs outward. O(n), allocation-free. The windowed rater keeps its
/// samples sorted incrementally and calls this once per rating — with
/// mad()'s copy + nth_element this was the single hottest path in the
/// whole tuner.
double mad_sorted(std::span<const double> sorted);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> xs, double p);

/// Streaming mean/variance accumulator (Welford's algorithm). The windowed
/// rater pushes one sample per invocation and reads mean/variance in O(1),
/// avoiding catastrophic cancellation for long windows of near-equal times.
class Welford {
public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }

  [[nodiscard]] double stddev() const;

  /// Merge another accumulator (Chan et al. parallel formula), enabling
  /// per-thread accumulation in the parallel tuning driver.
  void merge(const Welford& other);

  void reset() { *this = Welford{}; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace peak::stats
