#pragma once

/// \file matrix.hpp
/// Small dense row-major matrix used by the MBR linear-regression solver.
/// The regression systems PEAK solves are tiny (a handful of components,
/// tens-to-hundreds of invocations), so a simple contiguous implementation
/// with bounds checks in debug builds is the right tool — no BLAS needed.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "support/check.hpp"

namespace peak::stats {

class Matrix {
public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      PEAK_CHECK(row.size() == cols_, "ragged initializer");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    PEAK_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double operator()(std::size_t r, std::size_t c) const {
    PEAK_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// A^T * A (cols x cols), used to form normal equations.
  [[nodiscard]] Matrix gram() const;

  /// A^T * y (length cols).
  [[nodiscard]] std::vector<double> transpose_times(
      const std::vector<double>& y) const;

  /// A * x (length rows).
  [[nodiscard]] std::vector<double> times(const std::vector<double>& x) const;

private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace peak::stats
