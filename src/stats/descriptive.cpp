#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace peak::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> tmp(xs.begin(), xs.end());
  const std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid),
                   tmp.end());
  if (tmp.size() % 2 == 1) return tmp[mid];
  const double hi = tmp[mid];
  const double lo =
      *std::max_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mad(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    dev[i] = std::fabs(xs[i] - med);
  return 1.4826 * median(dev);
}

double median_sorted(std::span<const double> sorted) {
  if (sorted.empty()) return 0.0;
  // A NaN sorts to the front (comparisons are all-false), an Inf to either
  // end; checking the two ends therefore guards the whole span in O(1).
  PEAK_CHECK(std::isfinite(sorted.front()) && std::isfinite(sorted.back()),
             "median_sorted: non-finite sample in window");
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

double mad_sorted(std::span<const double> sorted) {
  if (sorted.empty()) return 0.0;
  PEAK_CHECK(std::isfinite(sorted.front()) && std::isfinite(sorted.back()),
             "mad_sorted: non-finite sample in window");
  const double med = median_sorted(sorted);
  const std::size_t n = sorted.size();
  // Deviations |x - med| of the left run (x <= med) grow toward index 0,
  // of the right run (x > med) toward index n-1. Merge the two runs from
  // the split outward until the middle order statistics are reached.
  std::size_t l = static_cast<std::size_t>(
      std::upper_bound(sorted.begin(), sorted.end(), med) - sorted.begin());
  std::size_t r = l;
  const std::size_t mid = n / 2;
  double prev = 0.0;
  double cur = 0.0;
  for (std::size_t k = 0; k <= mid; ++k) {
    prev = cur;
    const double dl =
        l > 0 ? med - sorted[l - 1] : std::numeric_limits<double>::infinity();
    const double dr =
        r < n ? sorted[r] - med : std::numeric_limits<double>::infinity();
    if (dl <= dr) {
      cur = dl;
      --l;
    } else {
      cur = dr;
      ++r;
    }
  }
  return 1.4826 * (n % 2 == 1 ? cur : 0.5 * (prev + cur));
}

double min(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> tmp(xs.begin(), xs.end());
  std::sort(tmp.begin(), tmp.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(tmp.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, tmp.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return tmp[lo] + frac * (tmp[hi] - tmp[lo]);
}

double Welford::stddev() const { return std::sqrt(variance()); }

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

}  // namespace peak::stats
