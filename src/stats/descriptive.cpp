#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace peak::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> tmp(xs.begin(), xs.end());
  const std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid),
                   tmp.end());
  if (tmp.size() % 2 == 1) return tmp[mid];
  const double hi = tmp[mid];
  const double lo =
      *std::max_element(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mad(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    dev[i] = std::fabs(xs[i] - med);
  return 1.4826 * median(dev);
}

double min(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> tmp(xs.begin(), xs.end());
  std::sort(tmp.begin(), tmp.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(tmp.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, tmp.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return tmp[lo] + frac * (tmp[hi] - tmp[lo]);
}

double Welford::stddev() const { return std::sqrt(variance()); }

void Welford::merge(const Welford& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
}

}  // namespace peak::stats
