#pragma once

/// \file regression.hpp
/// Linear least squares for MBR (paper Section 2.3, Eq. 3): given the
/// component-count matrix C and the invocation-time vector Y, solve
/// Y ≈ T·C for the component-time vector T.
///
/// The solver uses Householder QR on the design matrix, which is stable for
/// the poorly scaled systems that arise when one component count dwarfs the
/// constant component (e.g. loop trip counts in the thousands against a
/// constant column of ones). Rank deficiency is detected from the R diagonal
/// and surfaced to the caller — the MBR rater responds by merging the
/// offending components.

#include <cstddef>
#include <optional>
#include <vector>

#include "stats/matrix.hpp"

namespace peak::stats {

struct RegressionResult {
  /// Fitted coefficients (component times T_i). Empty if the fit failed.
  std::vector<double> coefficients;
  /// Sum of squared residuals, Σ (y - ŷ)².
  double ss_residual = 0.0;
  /// Total sum of squares about the mean, Σ (y - ȳ)².
  double ss_total = 0.0;
  /// Raw energy Σ y², kept to detect the degenerate all-equal-y case.
  double ss_y = 0.0;
  /// Numerical rank detected during factorization.
  std::size_t rank = 0;
  bool ok = false;

  /// The paper's MBR VAR: residual sum of squares over total sum of squares
  /// of the TS execution times (Section 3, item 2). 0 = perfect fit.
  /// When the observations are (numerically) identical, both sums are
  /// rounding residue and the fit is trivially perfect.
  [[nodiscard]] double var_ratio() const {
    if (ss_total <= 1e-18 * ss_y) return 0.0;
    return ss_residual / ss_total;
  }

  /// Conventional R².
  [[nodiscard]] double r_squared() const { return 1.0 - var_ratio(); }
};

/// Solve min_x ||A x - y||₂ via Householder QR.
///
/// \param design rows = observations (TS invocations), cols = predictors
///   (components). \param y observation vector, y.size() == design.rows().
/// \param rank_tolerance relative tolerance on R's diagonal for rank
///   detection.
RegressionResult least_squares(const Matrix& design,
                               const std::vector<double>& y,
                               double rank_tolerance = 1e-10);

/// Inverse of the Gram matrix (AᵀA)⁻¹ of a design matrix — the kernel of
/// coefficient covariance: Var(x̂) = σ²·(AᵀA)⁻¹ with σ² = SSres/(m-n).
/// Returns nullopt when AᵀA is singular. Intended for the tiny systems MBR
/// produces (n ≤ ~8); uses Gauss-Jordan with partial pivoting.
std::optional<Matrix> gram_inverse(const Matrix& design);

/// Standard error of a linear functional cᵀx̂ of the fitted coefficients.
/// Returns a negative value when the covariance is unavailable.
double functional_std_error(const Matrix& design,
                            const RegressionResult& fit,
                            const std::vector<double>& weights);

/// Fit with non-negativity clamping: component times are physical durations
/// and must be >= 0. Negative coefficients (which arise from noise when a
/// component is nearly redundant) are clamped to zero and the remaining
/// columns re-fit. This is a simple active-set pass, sufficient for the
/// small, well-posed systems MBR produces.
RegressionResult least_squares_nonneg(const Matrix& design,
                                      const std::vector<double>& y);

}  // namespace peak::stats
