#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "support/check.hpp"

namespace peak::stats {

namespace {

/// In-place Householder QR of A (m x n, m >= rank). Returns the
/// transformed copy of y alongside R stored in the upper triangle of A.
struct QrState {
  Matrix a;                // holds R in the upper triangle after factorize
  std::vector<double> qty; // Q^T y
};

QrState householder_qr(Matrix a, std::vector<double> y) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t steps = std::min(m, n);

  for (std::size_t k = 0; k < steps; ++k) {
    // Compute the norm of column k below (and including) row k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    // Choose the reflection sign so a(k,k)/norm >= 0; the subsequent +1
    // then cannot cancel (standard JAMA/LINPACK convention).
    if (a(k, k) < 0.0) norm = -norm;

    // Householder vector v stored in place of column k (below diagonal).
    for (std::size_t i = k; i < m; ++i) a(i, k) /= norm;
    a(k, k) += 1.0;

    // Apply the reflector to remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += a(i, k) * a(i, j);
      s = -s / a(k, k);
      for (std::size_t i = k; i < m; ++i) a(i, j) += s * a(i, k);
    }
    // Apply to y.
    double s = 0.0;
    for (std::size_t i = k; i < m; ++i) s += a(i, k) * y[i];
    s = -s / a(k, k);
    for (std::size_t i = k; i < m; ++i) y[i] += s * a(i, k);

    // Store the R diagonal entry (the reflector vector overwrote it).
    a(k, k) = -norm;
  }
  return {std::move(a), std::move(y)};
}

}  // namespace

RegressionResult least_squares(const Matrix& design,
                               const std::vector<double>& y,
                               double rank_tolerance) {
  RegressionResult result;
  const std::size_t m = design.rows();
  const std::size_t n = design.cols();
  PEAK_CHECK(y.size() == m, "y length must match design rows");
  if (m == 0 || n == 0 || m < n) return result;  // under-determined

  // A single NaN/Inf observation (a glitched timer, a corrupted counter)
  // would silently poison every coefficient; fail the fit instead, which
  // the MBR rater already treats as "not converged yet".
  for (double v : y)
    if (!std::isfinite(v)) return result;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (!std::isfinite(design(i, j))) return result;

  QrState qr = householder_qr(design, y);

  // Rank detection from |R_kk| relative to the largest diagonal entry.
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n; ++k)
    max_diag = std::max(max_diag, std::fabs(qr.a(k, k)));
  if (max_diag == 0.0) return result;
  std::size_t rank = 0;
  for (std::size_t k = 0; k < n; ++k)
    if (std::fabs(qr.a(k, k)) > rank_tolerance * max_diag) ++rank;
  result.rank = rank;
  if (rank < n) return result;  // caller should merge components

  // Back substitution on R x = (Q^T y)[0..n).
  std::vector<double> x(n, 0.0);
  for (std::size_t ki = n; ki-- > 0;) {
    double s = qr.qty[ki];
    for (std::size_t j = ki + 1; j < n; ++j) s -= qr.a(ki, j) * x[j];
    x[ki] = s / qr.a(ki, ki);
  }

  // Residuals against the original system.
  const std::vector<double> fitted = design.times(x);
  double ss_res = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const double r = y[i] - fitted[i];
    ss_res += r * r;
  }
  const double ybar = mean(y);
  double ss_tot = 0.0;
  double ss_y = 0.0;
  for (double v : y) {
    ss_tot += (v - ybar) * (v - ybar);
    ss_y += v * v;
  }

  result.coefficients = std::move(x);
  result.ss_residual = ss_res;
  result.ss_total = ss_tot;
  result.ss_y = ss_y;
  result.ok = true;
  return result;
}

std::optional<Matrix> gram_inverse(const Matrix& design) {
  const std::size_t n = design.cols();
  Matrix a = design.gram();
  // Augment with the identity and run Gauss-Jordan with partial pivoting.
  Matrix inv(n, n);
  for (std::size_t i = 0; i < n; ++i) inv(i, i) = 1.0;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    if (std::fabs(a(pivot, col)) < 1e-30) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= f * a(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

double functional_std_error(const Matrix& design,
                            const RegressionResult& fit,
                            const std::vector<double>& weights) {
  if (!fit.ok || design.rows() <= design.cols()) return -1.0;
  PEAK_CHECK(weights.size() == design.cols(),
             "weight arity must match design columns");
  const std::optional<Matrix> ginv = gram_inverse(design);
  if (!ginv) return -1.0;
  const double sigma2 =
      fit.ss_residual /
      static_cast<double>(design.rows() - design.cols());
  double quad = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i)
    for (std::size_t j = 0; j < weights.size(); ++j)
      quad += weights[i] * (*ginv)(i, j) * weights[j];
  return quad >= 0.0 ? std::sqrt(sigma2 * quad) : -1.0;
}

RegressionResult least_squares_nonneg(const Matrix& design,
                                      const std::vector<double>& y) {
  const std::size_t n = design.cols();
  std::vector<bool> active(n, true);

  for (std::size_t pass = 0; pass <= n; ++pass) {
    // Build the reduced design with only active columns.
    std::vector<std::size_t> cols;
    for (std::size_t c = 0; c < n; ++c)
      if (active[c]) cols.push_back(c);
    if (cols.empty()) break;

    Matrix reduced(design.rows(), cols.size());
    for (std::size_t r = 0; r < design.rows(); ++r)
      for (std::size_t ci = 0; ci < cols.size(); ++ci)
        reduced(r, ci) = design(r, cols[ci]);

    RegressionResult fit = least_squares(reduced, y);
    if (!fit.ok) return fit;

    // Clamp the most negative coefficient, if any, and retry.
    std::size_t worst = cols.size();
    double worst_val = 0.0;
    for (std::size_t ci = 0; ci < cols.size(); ++ci) {
      if (fit.coefficients[ci] < worst_val) {
        worst_val = fit.coefficients[ci];
        worst = ci;
      }
    }
    if (worst == cols.size()) {
      // All non-negative: expand back to full coefficient vector.
      RegressionResult full = fit;
      full.coefficients.assign(n, 0.0);
      for (std::size_t ci = 0; ci < cols.size(); ++ci)
        full.coefficients[cols[ci]] = fit.coefficients[ci];
      return full;
    }
    active[cols[worst]] = false;
  }

  return RegressionResult{};
}

}  // namespace peak::stats
