#include "stats/matrix.hpp"

namespace peak::stats {

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < rows_; ++r)
        sum += (*this)(r, i) * (*this)(r, j);
      g(i, j) = sum;
      g(j, i) = sum;
    }
  }
  return g;
}

std::vector<double> Matrix::transpose_times(
    const std::vector<double>& y) const {
  PEAK_CHECK(y.size() == rows_, "dimension mismatch in A^T y");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[c] += (*this)(r, c) * y[r];
  return out;
}

std::vector<double> Matrix::times(const std::vector<double>& x) const {
  PEAK_CHECK(x.size() == cols_, "dimension mismatch in A x");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * x[c];
    out[r] = sum;
  }
  return out;
}

}  // namespace peak::stats
