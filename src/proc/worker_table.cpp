#include "proc/worker_table.hpp"

#include <sstream>

namespace peak::proc {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

WorkerTable& WorkerTable::global() {
  static WorkerTable* table = new WorkerTable;
  return *table;
}

void WorkerTable::spawned(std::size_t slot, pid_t pid, bool respawn) {
  std::lock_guard lock(mutex_);
  Row& row = rows_[slot];
  const std::uint64_t respawns = row.respawns + (respawn ? 1 : 0);
  const std::uint64_t tasks_done = row.tasks_done;
  const std::string last_failure = row.last_failure;
  const std::string label = row.label;
  row = Row{};
  row.slot = slot;
  row.pid = pid;
  row.state = "idle";
  row.respawns = respawns;
  row.tasks_done = tasks_done;
  row.last_failure = last_failure;
  row.label = label;
}

void WorkerTable::set_label(std::size_t slot, const std::string& label) {
  std::lock_guard lock(mutex_);
  rows_[slot].label = label;
}

void WorkerTable::running(std::size_t slot, std::size_t task) {
  std::lock_guard lock(mutex_);
  Row& row = rows_[slot];
  row.state = "running";
  row.current_task = task;
}

void WorkerTable::idle(std::size_t slot) {
  std::lock_guard lock(mutex_);
  rows_[slot].state = "idle";
}

void WorkerTable::finished(std::size_t slot, std::uint64_t tasks_done) {
  std::lock_guard lock(mutex_);
  Row& row = rows_[slot];
  row.state = "done";
  row.pid = 0;
  row.tasks_done = tasks_done;
}

void WorkerTable::died(std::size_t slot,
                       const std::string& failure_signature) {
  std::lock_guard lock(mutex_);
  Row& row = rows_[slot];
  row.state = "dead";
  row.pid = 0;
  row.last_failure = failure_signature;
}

void WorkerTable::clear() {
  std::lock_guard lock(mutex_);
  rows_.clear();
}

std::vector<WorkerTable::Row> WorkerTable::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Row> rows;
  rows.reserve(rows_.size());
  for (const auto& [slot, row] : rows_) rows.push_back(row);
  return rows;
}

std::vector<pid_t> WorkerTable::live_pids() const {
  std::lock_guard lock(mutex_);
  std::vector<pid_t> pids;
  for (const auto& [slot, row] : rows_)
    if (row.pid > 0 && (row.state == "idle" || row.state == "running"))
      pids.push_back(row.pid);
  return pids;
}

std::string WorkerTable::json() const {
  const std::vector<Row> rows = snapshot();
  std::ostringstream os;
  os << "{\"workers\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    os << (i ? "," : "") << "{\"slot\":" << row.slot
       << ",\"pid\":" << row.pid << ",\"state\":\""
       << json_escape(row.state) << "\",\"current_task\":"
       << row.current_task << ",\"tasks_done\":" << row.tasks_done
       << ",\"respawns\":" << row.respawns << ",\"last_failure\":\""
       << json_escape(row.last_failure) << "\",\"label\":\""
       << json_escape(row.label) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace peak::proc
