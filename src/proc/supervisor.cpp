#include "proc/supervisor.hpp"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <mutex>

#include "core/jsonl.hpp"
#include "obs/metrics.hpp"
#include "proc/protocol.hpp"
#include "proc/worker_table.hpp"
#include "support/check.hpp"
#include "support/shutdown.hpp"

namespace peak::proc {

namespace {

using Clock = std::chrono::steady_clock;

double wall_us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct ProcMetrics {
  obs::Counter& spawned = obs::counter("proc.workers.spawned");
  obs::Counter& respawned = obs::counter("proc.workers.respawned");
  obs::Counter& term_kills = obs::counter("proc.kills.term");
  obs::Counter& kill_kills = obs::counter("proc.kills.kill");
  obs::Counter& heartbeat_gaps = obs::counter("proc.heartbeat.gaps");
  obs::Counter& tasks_retried = obs::counter("proc.tasks.retried");
  obs::Counter& tasks_failed = obs::counter("proc.tasks.failed");
  obs::Counter& exits_clean = obs::counter("proc.exits.clean");
  obs::Counter& exits_signal = obs::counter("proc.exits.signal");
  obs::Counter& exits_timeout = obs::counter("proc.exits.timeout");
  obs::Counter& exits_oom = obs::counter("proc.exits.oom");
  obs::Counter& exits_nonzero = obs::counter("proc.exits.nonzero");
};

ProcMetrics& proc_metrics() {
  static ProcMetrics* metrics = new ProcMetrics;
  return *metrics;
}

/// A dead worker must surface as EPIPE on the next command write, not as
/// a process-fatal SIGPIPE. Installed once, never restored: SIG_IGN for
/// SIGPIPE is safe for every writer in this process (they all check
/// write() results).
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

const char* to_string(ExitClass cls) {
  switch (cls) {
    case ExitClass::kClean: return "clean";
    case ExitClass::kSignal: return "signal";
    case ExitClass::kTimeout: return "timeout";
    case ExitClass::kOom: return "oom";
    case ExitClass::kNonzero: return "nonzero";
  }
  return "unknown";
}

bool TaskOutcome::failures_identical() const {
  if (failures.empty()) return false;
  for (const WorkerFailure& f : failures)
    if (f.signature != failures.front().signature) return false;
  return true;
}

struct Supervisor::Slot {
  std::size_t index = 0;
  std::unique_ptr<WorkerProcess> worker;
  FrameReader reader;

  std::vector<std::size_t> tasks;  ///< this slot's task ids, in order
  std::size_t next_task = 0;       ///< position in `tasks`

  enum class Phase { kIdle, kRunning, kExiting, kFinished };
  Phase phase = Phase::kIdle;
  std::size_t current_task = 0;
  std::size_t current_attempt = 0;
  Clock::time_point dispatched_at;
  Clock::time_point last_frame_at;
  bool term_sent = false;
  bool kill_sent = false;
  Clock::time_point term_at;
  bool killed_for_stall = false;
  bool gap_counted = false;
  std::uint64_t tasks_done = 0;
};

Supervisor::Supervisor(TaskFn fn, SupervisorPolicy policy)
    : fn_(std::move(fn)), policy_(policy) {
  PEAK_CHECK(policy_.workers >= 1, "supervisor needs at least one worker");
  PEAK_CHECK(policy_.max_task_attempts >= 1,
             "a task needs at least one attempt");
  ignore_sigpipe_once();
  proc_metrics();  // registered before any fork (see docs/INTERNALS §12)
}

Supervisor::~Supervisor() { kill_all(); }

void Supervisor::kill_all() {
  for (Slot& slot : slots_) {
    if (!slot.worker) continue;
    kill(slot.worker->pid(), SIGKILL);
    int status = 0;
    while (waitpid(slot.worker->pid(), &status, 0) < 0 && errno == EINTR) {
    }
    if (policy_.update_worker_table)
      WorkerTable::global().died(slot.index, "killed");
    slot.worker.reset();
  }
}

void Supervisor::spawn_slot(Slot& slot, bool respawn) {
  // Every other live worker's parent-side read fd must be closed in the
  // new child, or a dead sibling's pipe stays open and its EOF never
  // reaches the event loop. (The command write fds are handled inside
  // WorkerProcess::spawn via the same list.)
  std::vector<int> close_in_child;
  for (const Slot& other : slots_)
    if (other.worker) close_in_child.push_back(other.worker->read_fd());

  WorkerProcess::Options options;
  options.limits = policy_.limits;
  options.heartbeat_interval = policy_.heartbeat_interval;
  slot.worker = WorkerProcess::spawn(fn_, options, close_in_child);
  PEAK_CHECK(slot.worker != nullptr, "fork() failed spawning a worker");
  slot.reader = FrameReader{};
  slot.phase = Slot::Phase::kIdle;
  slot.term_sent = false;
  slot.kill_sent = false;
  slot.killed_for_stall = false;
  slot.gap_counted = false;
  slot.last_frame_at = Clock::now();

  ++stats_.spawned;
  proc_metrics().spawned.inc();
  if (respawn) {
    ++stats_.respawned;
    proc_metrics().respawned.inc();
  }
  if (policy_.update_worker_table)
    WorkerTable::global().spawned(slot.index, slot.worker->pid(), respawn);
}

void Supervisor::dispatch(Slot& slot) {
  if (slot.next_task >= slot.tasks.size()) {
    // Queue drained: ask for a clean exit and wait for the EOF.
    slot.phase = Slot::Phase::kExiting;
    slot.worker->send_exit();
    return;
  }
  slot.current_task = slot.tasks[slot.next_task];
  slot.phase = Slot::Phase::kRunning;
  slot.dispatched_at = Clock::now();
  slot.term_sent = false;
  slot.kill_sent = false;
  slot.killed_for_stall = false;
  if (policy_.update_worker_table)
    WorkerTable::global().running(slot.index, slot.current_task);
  if (!slot.worker->send_run(slot.current_task, slot.current_attempt)) {
    // Worker already gone; the event loop will see the EOF and requeue.
  }
}

void Supervisor::reap(Slot& slot, std::vector<TaskOutcome>& outcomes) {
  const pid_t pid = slot.worker->pid();
  int status = 0;
  while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  slot.worker.reset();

  const bool expected_exit = slot.phase == Slot::Phase::kExiting &&
                             WIFEXITED(status) &&
                             WEXITSTATUS(status) == 0;
  if (expected_exit) {
    ++stats_.exits_clean;
    proc_metrics().exits_clean.inc();
    slot.phase = Slot::Phase::kFinished;
    if (policy_.update_worker_table)
      WorkerTable::global().finished(slot.index, slot.tasks_done);
    return;
  }

  // Unexpected death. Classify it.
  WorkerFailure failure;
  failure.slot = slot.index;
  if (slot.killed_for_stall) {
    failure.cls = ExitClass::kTimeout;
    failure.detail = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    failure.signature = "timeout";
    ++stats_.exits_timeout;
    proc_metrics().exits_timeout.inc();
  } else if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    if (sig == SIGXCPU) {
      failure.cls = ExitClass::kTimeout;
      failure.signature = "cpu-limit";
      ++stats_.exits_timeout;
      proc_metrics().exits_timeout.inc();
    } else {
      failure.cls = ExitClass::kSignal;
      failure.signature = "signal:" + std::to_string(sig);
      ++stats_.exits_signal;
      proc_metrics().exits_signal.inc();
    }
    failure.detail = sig;
  } else {
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    failure.detail = code;
    if (code == kExitOom) {
      failure.cls = ExitClass::kOom;
      failure.signature = "oom";
      ++stats_.exits_oom;
      proc_metrics().exits_oom.inc();
    } else if (code == 0) {
      // Exited "cleanly" without being told to — still a lost worker.
      failure.cls = ExitClass::kClean;
      failure.signature = "exit:0";
      ++stats_.exits_clean;
      proc_metrics().exits_clean.inc();
    } else {
      failure.cls = ExitClass::kNonzero;
      failure.signature = "exit:" + std::to_string(code);
      ++stats_.exits_nonzero;
      proc_metrics().exits_nonzero.inc();
    }
  }

  if (policy_.update_worker_table)
    WorkerTable::global().died(slot.index, failure.signature);

  if (slot.phase != Slot::Phase::kRunning) {
    // Died between tasks (or while exiting): nothing to requeue; if the
    // queue still has work, a respawn picks it up.
    if (slot.next_task >= slot.tasks.size()) {
      slot.phase = Slot::Phase::kFinished;
      return;
    }
    spawn_slot(slot, /*respawn=*/true);
    slot.current_attempt = 0;
    dispatch(slot);
    return;
  }

  // Died holding a task: charge the burned attempt to that task.
  failure.task = slot.current_task;
  failure.attempt = slot.current_attempt;
  failure.burned_wall_us = wall_us_since(slot.dispatched_at);
  stats_.burned_wall_us += failure.burned_wall_us;
  TaskOutcome& outcome = outcomes[slot.current_task];
  ++outcome.attempts;
  outcome.failures.push_back(failure);

  const bool give_up = outcome.attempts >= policy_.max_task_attempts;
  if (give_up) {
    ++stats_.tasks_failed;
    proc_metrics().tasks_failed.inc();
    ++slot.next_task;  // skip the poisoned task
    slot.current_attempt = 0;
  } else {
    ++stats_.tasks_retried;
    proc_metrics().tasks_retried.inc();
    ++slot.current_attempt;  // requeue: same task, next process attempt
  }

  if (slot.next_task >= slot.tasks.size() && give_up) {
    slot.phase = Slot::Phase::kFinished;
    return;
  }
  spawn_slot(slot, /*respawn=*/true);
  dispatch(slot);
}

std::vector<TaskOutcome> Supervisor::run(std::size_t num_tasks) {
  std::vector<TaskOutcome> outcomes(num_tasks);
  if (num_tasks == 0) return outcomes;

  const std::size_t workers = std::min(policy_.workers, num_tasks);
  slots_.clear();
  slots_.resize(workers);
  if (policy_.update_worker_table) WorkerTable::global().clear();
  for (std::size_t s = 0; s < workers; ++s) {
    Slot& slot = slots_[s];
    slot.index = s;
    for (std::size_t i = s; i < num_tasks; i += workers)
      slot.tasks.push_back(i);  // slotted_for's deterministic mapping
    slot.current_attempt = 0;
  }
  for (Slot& slot : slots_) spawn_slot(slot, /*respawn=*/false);
  for (Slot& slot : slots_) dispatch(slot);

  char buf[4096];
  for (;;) {
    if (support::shutdown_requested()) {
      kill_all();
      support::check_shutdown();  // throws ShutdownRequested
    }

    bool all_finished = true;
    std::vector<pollfd> fds;
    std::vector<Slot*> fd_slots;
    for (Slot& slot : slots_) {
      if (slot.phase != Slot::Phase::kFinished) all_finished = false;
      if (!slot.worker) continue;
      fds.push_back({slot.worker->read_fd(), POLLIN, 0});
      fd_slots.push_back(&slot);
    }
    if (all_finished) break;

    const int ready =
        poll(fds.data(), static_cast<nfds_t>(fds.size()), /*timeout=*/10);
    if (ready < 0 && errno != EINTR) {
      kill_all();
      PEAK_CHECK(false, "poll() failed in the worker supervisor");
    }

    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      Slot& slot = *fd_slots[i];
      if (!slot.worker) continue;  // reaped earlier this sweep
      const short revents = fds[i].revents;
      if (revents & POLLIN) {
        const ssize_t n = read(fds[i].fd, buf, sizeof buf);
        if (n > 0) {
          slot.reader.feed(buf, static_cast<std::size_t>(n));
          slot.last_frame_at = now;
          slot.gap_counted = false;
          while (auto payload = slot.reader.next()) {
            try {
              core::jsonl::JsonParser parser(*payload);
              const core::jsonl::JsonValue frame = parser.parse();
              const std::string& op = frame.at("op").as_string();
              if (op == "result" &&
                  slot.phase == Slot::Phase::kRunning &&
                  frame.at("task").as_u64() == slot.current_task) {
                TaskOutcome& outcome = outcomes[slot.current_task];
                outcome.ok = true;
                outcome.payload = frame.at("payload").as_string();
                ++outcome.attempts;
                ++slot.tasks_done;
                ++slot.next_task;
                slot.current_attempt = 0;
                if (policy_.update_worker_table)
                  WorkerTable::global().idle(slot.index);
                dispatch(slot);
              }
              // hello / hb frames only refresh last_frame_at above.
            } catch (const support::CheckError&) {
              // Garbled frame from a dying worker: ignore; the EOF (or
              // the watchdog) settles its fate.
            }
          }
          if (slot.reader.corrupted() && !slot.kill_sent) {
            kill(slot.worker->pid(), SIGKILL);
            slot.kill_sent = true;
          }
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        reap(slot, outcomes);  // n == 0 (EOF) or hard read error
        continue;
      }
      if (revents & (POLLHUP | POLLERR | POLLNVAL)) {
        reap(slot, outcomes);
        continue;
      }
    }

    // Watchdog sweep (every live slot, busy or quiet): per-dispatch
    // deadline with SIGTERM → SIGKILL escalation, plus heartbeat-gap
    // accounting. Heartbeats keep flowing from a stalled task's ticker
    // thread, so the deadline is measured from dispatch, not from the
    // last frame.
    for (Slot& slot : slots_) {
      if (!slot.worker) continue;
      if (slot.phase == Slot::Phase::kRunning) {
        const auto held = now - slot.dispatched_at;
        if (!slot.term_sent && held > policy_.stall_timeout) {
          slot.term_sent = true;
          slot.killed_for_stall = true;
          slot.term_at = now;
          kill(slot.worker->pid(), SIGTERM);
          ++stats_.term_kills;
          proc_metrics().term_kills.inc();
        } else if (slot.term_sent && !slot.kill_sent &&
                   now - slot.term_at > policy_.term_grace) {
          slot.kill_sent = true;
          kill(slot.worker->pid(), SIGKILL);
          ++stats_.kill_kills;
          proc_metrics().kill_kills.inc();
        }
      }
      if (!slot.gap_counted &&
          now - slot.last_frame_at > 4 * policy_.heartbeat_interval) {
        slot.gap_counted = true;
        ++stats_.heartbeat_gaps;
        proc_metrics().heartbeat_gaps.inc();
      }
    }
  }
  return outcomes;
}

}  // namespace peak::proc
