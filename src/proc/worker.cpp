#include "proc/worker.hpp"

#include <errno.h>
#include <signal.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <new>
#include <thread>

#include "core/jsonl.hpp"
#include "proc/protocol.hpp"

namespace peak::proc {

namespace {

void apply_limits(const ResourceLimits& limits) {
  if (limits.cpu_seconds > 0) {
    struct rlimit rl;
    rl.rlim_cur = limits.cpu_seconds;
    rl.rlim_max = limits.cpu_seconds + 1;  // SIGKILL backstop at hard cap
    setrlimit(RLIMIT_CPU, &rl);
  }
  if (limits.address_space_bytes > 0) {
    struct rlimit rl;
    rl.rlim_cur = limits.address_space_bytes;
    rl.rlim_max = limits.address_space_bytes;
    setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.disable_core) {
    struct rlimit rl;
    rl.rlim_cur = 0;
    rl.rlim_max = 0;
    setrlimit(RLIMIT_CORE, &rl);
  }
}

/// Serializes concurrent frame writes (task results from the serve loop,
/// heartbeats from the ticker thread) so frames never interleave.
struct ChildWriter {
  int fd;
  std::mutex mutex;

  bool write(const std::string& payload) {
    std::lock_guard lock(mutex);
    return write_frame(fd, payload);
  }
};

[[noreturn]] void serve(const TaskFn& fn,
                        const WorkerProcess::Options& options, int in_fd,
                        int out_fd) {
  // The parent's shutdown/telemetry signal handling must not run here:
  // the supervisor owns this process's lifecycle, and SIGTERM must
  // terminate it so watchdog escalation is observable.
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGPIPE, SIG_DFL);

  apply_limits(options.limits);

  ChildWriter writer{out_fd, {}};
  writer.write("{\"op\":\"hello\",\"pid\":" + std::to_string(getpid()) +
               "}");

  // Liveness ticker: beats as long as the process is scheduled at all,
  // so a missing beat means the worker is stopped or gone, while a
  // stalled *task* is caught by the supervisor's per-dispatch deadline.
  std::atomic<bool> stop_heartbeat{false};
  std::thread heartbeat([&writer, &stop_heartbeat, &options] {
    std::uint64_t seq = 0;
    while (!stop_heartbeat.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(options.heartbeat_interval);
      if (!writer.write("{\"op\":\"hb\",\"seq\":" + std::to_string(++seq) +
                        "}"))
        return;  // parent gone; the serve loop will notice on read
    }
  });
  heartbeat.detach();  // _exit() below never joins; detach is deliberate

  FrameReader reader;
  char buf[4096];
  for (;;) {
    std::optional<std::string> payload;
    while (!(payload = reader.next())) {
      if (reader.corrupted()) _exit(kExitProtocol);
      const ssize_t n = read(in_fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        _exit(kExitProtocol);
      }
      if (n == 0) _exit(kExitProtocol);  // parent died / closed pipe
      reader.feed(buf, static_cast<std::size_t>(n));
    }

    try {
      core::jsonl::JsonParser parser(*payload);
      const core::jsonl::JsonValue cmd = parser.parse();
      const std::string& op = cmd.at("op").as_string();
      if (op == "exit") _exit(0);
      if (op != "run") _exit(kExitProtocol);
      const std::size_t task = cmd.at("task").as_u64();
      const std::size_t attempt = cmd.at("attempt").as_u64();

      std::string result;
      try {
        result = fn(task, attempt);
      } catch (const std::bad_alloc&) {
        _exit(kExitOom);  // RLIMIT_AS (or genuine exhaustion) tripped
      } catch (...) {
        _exit(kExitTaskError);
      }
      if (!writer.write("{\"op\":\"result\",\"task\":" +
                        std::to_string(task) + ",\"payload\":" +
                        core::jsonl::quote(result) + "}"))
        _exit(kExitProtocol);
    } catch (...) {
      _exit(kExitProtocol);  // malformed command frame
    }
  }
}

}  // namespace

std::unique_ptr<WorkerProcess> WorkerProcess::spawn(
    const TaskFn& fn, const Options& options,
    const std::vector<int>& close_in_child) {
  int to_child[2];    // parent writes commands, child reads
  int from_child[2];  // child writes frames, parent reads
  if (pipe(to_child) != 0) return nullptr;
  if (pipe(from_child) != 0) {
    close(to_child[0]);
    close(to_child[1]);
    return nullptr;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]})
      close(fd);
    return nullptr;
  }

  if (pid == 0) {
    // Child. Drop the parent-side ends plus every other worker's pipes
    // (an inherited write end would keep a sibling's pipe "open" after
    // that sibling dies, masking its EOF from the supervisor).
    close(to_child[1]);
    close(from_child[0]);
    for (int fd : close_in_child) close(fd);
    serve(fn, options, to_child[0], from_child[1]);
  }

  // Parent.
  close(to_child[0]);
  close(from_child[1]);
  auto worker = std::unique_ptr<WorkerProcess>(new WorkerProcess);
  worker->pid_ = pid;
  worker->to_child_ = to_child[1];
  worker->from_child_ = from_child[0];
  return worker;
}

WorkerProcess::~WorkerProcess() {
  if (to_child_ >= 0) close(to_child_);
  if (from_child_ >= 0) close(from_child_);
}

bool WorkerProcess::send_run(std::size_t task, std::size_t attempt) {
  return write_frame(to_child_,
                     "{\"op\":\"run\",\"task\":" + std::to_string(task) +
                         ",\"attempt\":" + std::to_string(attempt) + "}");
}

bool WorkerProcess::send_exit() {
  return write_frame(to_child_, "{\"op\":\"exit\"}");
}

}  // namespace peak::proc
