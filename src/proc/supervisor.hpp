#pragma once

/// \file supervisor.hpp
/// Supervised execution of a batch of tasks across forked worker
/// subprocesses (`peak::proc`). run(n) executes tasks 0..n-1 with the
/// same deterministic slot mapping as support::ThreadPool::slotted_for —
/// task i belongs to slot i % workers, each slot processes its items in
/// increasing order — so a caller that merges results in canonical task
/// order gets output independent of worker timing *and* of how many
/// times a worker died along the way.
///
/// The supervisor's event loop polls every worker pipe, feeds a
/// watchdog, and turns each worker death into a typed WorkerFailure:
///   clean    normal exit after being told to (never a failure)
///   signal   killed by an uncaught signal (SIGSEGV, SIGABRT, ...)
///   timeout  killed by the watchdog (stalled past the per-task
///            deadline, SIGTERM then SIGKILL) or by RLIMIT_CPU (SIGXCPU)
///   oom      exited with kExitOom after RLIMIT_AS made an allocation
///            throw std::bad_alloc
///   nonzero  any other exit status (task exception, protocol error)
/// A failed attempt is requeued onto a freshly forked worker with an
/// incremented process-attempt counter; after max_task_attempts failures
/// the task is marked permanently failed and reported with its failure
/// history, so the caller can decide whether the failures were identical
/// (deterministic — quarantine the config) or mixed/transient.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "proc/worker.hpp"

namespace peak::proc {

enum class ExitClass { kClean, kSignal, kTimeout, kOom, kNonzero };

[[nodiscard]] const char* to_string(ExitClass cls);

/// One failed worker attempt, classified.
struct WorkerFailure {
  ExitClass cls = ExitClass::kClean;
  int detail = 0;  ///< signal number (kSignal/kTimeout) or exit status
  std::size_t slot = 0;
  std::size_t task = 0;
  std::size_t attempt = 0;
  double burned_wall_us = 0.0;  ///< wall from dispatch to reap
  /// Stable identity of the failure mode ("signal:11", "timeout",
  /// "oom", "exit:87"); K identical signatures on one task mean the
  /// failure is deterministic.
  std::string signature;
};

struct TaskOutcome {
  bool ok = false;
  std::string payload;  ///< the TaskFn's return value when ok
  std::size_t attempts = 0;
  std::vector<WorkerFailure> failures;

  /// True when every failed attempt shares one signature (and there was
  /// at least one failure) — the caller's deterministic-crash test.
  [[nodiscard]] bool failures_identical() const;
};

struct SupervisorPolicy {
  std::size_t workers = 1;
  std::chrono::milliseconds heartbeat_interval{25};
  /// Per-dispatch deadline: a worker that holds one task longer than
  /// this is stalled and gets SIGTERM.
  std::chrono::milliseconds stall_timeout{10'000};
  /// SIGTERM → SIGKILL escalation grace.
  std::chrono::milliseconds term_grace{250};
  /// Attempts per task before giving up (1 initial + retries).
  std::size_t max_task_attempts = 3;
  ResourceLimits limits;
  /// Publish per-worker rows to WorkerTable::global() (the /workers
  /// endpoint); off for nested/throwaway supervisors in tests.
  bool update_worker_table = true;
};

/// Counters mirrored into the obs registry (proc.* metrics) as they
/// happen; this struct is the per-supervisor view.
struct SupervisorStats {
  std::uint64_t spawned = 0;
  std::uint64_t respawned = 0;
  std::uint64_t term_kills = 0;
  std::uint64_t kill_kills = 0;
  std::uint64_t heartbeat_gaps = 0;
  std::uint64_t tasks_retried = 0;
  std::uint64_t tasks_failed = 0;
  std::uint64_t exits_clean = 0;
  std::uint64_t exits_signal = 0;
  std::uint64_t exits_timeout = 0;
  std::uint64_t exits_oom = 0;
  std::uint64_t exits_nonzero = 0;
  double burned_wall_us = 0.0;  ///< total wall on failed attempts
};

class Supervisor {
public:
  Supervisor(TaskFn fn, SupervisorPolicy policy);
  ~Supervisor();  ///< kills and reaps any worker still alive

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Execute tasks 0..num_tasks-1; returns one outcome per task, in
  /// task order. Throws support::ShutdownRequested (after killing and
  /// reaping the fleet) if a shutdown signal arrives mid-round.
  std::vector<TaskOutcome> run(std::size_t num_tasks);

  [[nodiscard]] const SupervisorStats& stats() const { return stats_; }

private:
  struct Slot;

  void spawn_slot(Slot& slot, bool respawn);
  void dispatch(Slot& slot);
  void reap(Slot& slot, std::vector<TaskOutcome>& outcomes);
  void kill_all();

  TaskFn fn_;
  SupervisorPolicy policy_;
  SupervisorStats stats_;
  std::vector<Slot> slots_;
};

}  // namespace peak::proc
