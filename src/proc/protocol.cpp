#include "proc/protocol.hpp"

#include <errno.h>
#include <unistd.h>

namespace peak::proc {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
  return -1;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  std::string frame(kFramePrefixLen, '0');
  std::size_t n = payload.size();
  for (std::size_t i = kFramePrefixLen; i-- > 0; n >>= 4)
    frame[i] = kHexDigits[n & 0xf];
  frame.append(payload);
  return frame;
}

bool write_frame(int fd, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void FrameReader::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
}

std::optional<std::string> FrameReader::next() {
  if (corrupted_ || buffer_.size() < kFramePrefixLen) return std::nullopt;
  std::size_t len = 0;
  for (std::size_t i = 0; i < kFramePrefixLen; ++i) {
    const int v = hex_value(buffer_[i]);
    if (v < 0) {
      corrupted_ = true;
      return std::nullopt;
    }
    len = (len << 4) | static_cast<std::size_t>(v);
  }
  if (len > kMaxFramePayload) {
    corrupted_ = true;
    return std::nullopt;
  }
  if (buffer_.size() < kFramePrefixLen + len) return std::nullopt;
  std::string payload = buffer_.substr(kFramePrefixLen, len);
  buffer_.erase(0, kFramePrefixLen + len);
  return payload;
}

}  // namespace peak::proc
