#pragma once

/// \file worker_table.hpp
/// Process-wide registry of worker-subprocess state (`peak::proc`). The
/// supervisor updates one row per worker slot as it spawns, dispatches
/// to, and reaps workers; the telemetry server's /workers endpoint and
/// the tests read point-in-time snapshots. Rows are keyed by slot, not
/// pid: a respawned worker replaces its predecessor's row and bumps the
/// respawn count, so the table always shows the current fleet plus its
/// failure history.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <vector>

namespace peak::proc {

class WorkerTable {
public:
  struct Row {
    std::size_t slot = 0;
    pid_t pid = 0;
    std::string state;  ///< "idle" | "running" | "dead" | "done"
    std::size_t current_task = 0;  ///< meaningful while state == running
    std::uint64_t tasks_done = 0;
    std::uint64_t respawns = 0;
    std::string last_failure;  ///< signature of the last failed attempt
    /// Where the worker lives: "" for forked subprocesses (the pid says
    /// it all), the agent name or peer "host:port" for dist fleets.
    std::string label;
  };

  static WorkerTable& global();

  /// Install/replace the row for `slot` (fresh spawn keeps the previous
  /// row's respawn and failure history when `respawn` is true).
  void spawned(std::size_t slot, pid_t pid, bool respawn);
  /// Attach a human-readable location ("host:port" or an agent name) to
  /// the slot's row; survives state changes until the row is replaced.
  void set_label(std::size_t slot, const std::string& label);
  void running(std::size_t slot, std::size_t task);
  void idle(std::size_t slot);
  void finished(std::size_t slot, std::uint64_t tasks_done);
  void died(std::size_t slot, const std::string& failure_signature);
  /// Drop every row (start of a fresh supervised round).
  void clear();

  [[nodiscard]] std::vector<Row> snapshot() const;

  /// Pids of workers currently alive (tests use this to aim real
  /// signals at the fleet).
  [[nodiscard]] std::vector<pid_t> live_pids() const;

  /// The /workers endpoint document.
  [[nodiscard]] std::string json() const;

private:
  mutable std::mutex mutex_;
  std::map<std::size_t, Row> rows_;
};

}  // namespace peak::proc
