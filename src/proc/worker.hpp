#pragma once

/// \file worker.hpp
/// One forked worker subprocess (`peak::proc`). The parent forks at the
/// moment the batch's shared state is frozen, so the child inherits a
/// copy-on-write snapshot of everything the task closure references —
/// per-slot backend clones, memo tables, quarantine copies — without any
/// serialization of inputs. The child then serves "run task N, attempt
/// A" frames over its pipe pair, executes the TaskFn, and replies with a
/// result frame; a detached heartbeat thread emits liveness frames so
/// the supervisor can tell "busy" from "gone".
///
/// The child applies setrlimit caps before serving: RLIMIT_CPU turns a
/// runaway spin into SIGXCPU (classified as a timeout), RLIMIT_AS turns
/// runaway allocation into std::bad_alloc, which the serve loop converts
/// to a dedicated exit code (classified as OOM). RLIMIT_AS is used
/// rather than RLIMIT_RSS because the latter is a no-op on Linux. The
/// child never touches the journal, the rating cache, or any other
/// shared file, and leaves via _exit() so no parent-registered atexit
/// handler or static destructor runs twice.

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

namespace peak::proc {

/// Resource caps applied in the child before it serves tasks. Zero
/// means "leave unlimited".
struct ResourceLimits {
  unsigned cpu_seconds = 0;            ///< RLIMIT_CPU (SIGXCPU at cap)
  std::size_t address_space_bytes = 0; ///< RLIMIT_AS (bad_alloc at cap)
  bool disable_core = true;            ///< RLIMIT_CORE = 0 (crashes are
                                       ///< routine here; no core spam)
};

/// The work a child executes: returns the serialized result payload for
/// (task index, process attempt). Must not throw — escapes are
/// converted to the error exit codes below and the whole attempt is
/// charged as a failure.
using TaskFn =
    std::function<std::string(std::size_t task, std::size_t attempt)>;

/// Child exit codes with classification meaning (avoid 0..2 and the
/// 128+N signal range).
constexpr int kExitOom = 86;        ///< std::bad_alloc escaped the task
constexpr int kExitTaskError = 87;  ///< any other exception escaped
constexpr int kExitProtocol = 88;   ///< command pipe closed / corrupt

/// Parent-side handle to one forked worker.
class WorkerProcess {
public:
  struct Options {
    ResourceLimits limits;
    std::chrono::milliseconds heartbeat_interval{25};
  };

  /// Fork a worker. The child closes every fd in `close_in_child`
  /// (other workers' pipe ends), applies the limits, and serves frames;
  /// it never returns. Returns nullptr if fork() failed.
  static std::unique_ptr<WorkerProcess> spawn(
      const TaskFn& fn, const Options& options,
      const std::vector<int>& close_in_child);

  ~WorkerProcess();  ///< closes the parent-side fds (does not reap)

  WorkerProcess(const WorkerProcess&) = delete;
  WorkerProcess& operator=(const WorkerProcess&) = delete;

  [[nodiscard]] pid_t pid() const { return pid_; }
  /// Parent reads worker frames (results, heartbeats) here.
  [[nodiscard]] int read_fd() const { return from_child_; }

  /// Dispatch one task; false when the pipe is broken (worker gone).
  bool send_run(std::size_t task, std::size_t attempt);
  /// Ask the child to exit cleanly.
  bool send_exit();

private:
  WorkerProcess() = default;

  pid_t pid_ = -1;
  int to_child_ = -1;
  int from_child_ = -1;
};

}  // namespace peak::proc
