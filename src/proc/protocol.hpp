#pragma once

/// \file protocol.hpp
/// Length-prefixed framing for the worker-subprocess wire protocol
/// (`peak::proc`). Every message between the supervisor and a worker is
/// one frame: eight lowercase hex digits giving the payload byte length,
/// then exactly that many payload bytes. Payloads are single-line JSONL
/// records in the same dialect as the journal and rating cache
/// (core/jsonl), so a result frame can carry bit-exact doubles.
///
/// The framing exists because pipes deliver byte streams, not messages: a
/// worker killed mid-write leaves a partial frame, and the reader must be
/// able to tell "incomplete, keep waiting" from "complete, process it"
/// from "corrupt, the peer is broken". FrameReader is incremental — feed
/// it whatever read() returned and drain complete frames — and flags
/// corruption (a non-hex prefix or an absurd length) without throwing, so
/// the supervisor can classify the worker instead of dying with it.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace peak::proc {

/// Upper bound on a single frame payload. Far above anything a member
/// result serializes to; a prefix decoding past it means the stream is
/// garbage (e.g. the peer wrote raw text), not a huge frame.
constexpr std::size_t kMaxFramePayload = 64u << 20;

/// Number of hex digits in the length prefix.
constexpr std::size_t kFramePrefixLen = 8;

/// payload -> "001a2b3c<payload>".
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Write one frame to `fd`, retrying short writes and EINTR. False when
/// the peer is gone (EPIPE / any write error).
bool write_frame(int fd, std::string_view payload);

/// Incremental frame decoder over an arbitrary byte stream.
class FrameReader {
public:
  /// Append raw bytes read from the pipe.
  void feed(const char* data, std::size_t n);

  /// Next complete payload, or nullopt when more bytes are needed (or
  /// the stream is corrupt — check corrupted()).
  std::optional<std::string> next();

  /// True once an invalid prefix was seen; the stream is unusable.
  [[nodiscard]] bool corrupted() const { return corrupted_; }

  /// Bytes buffered but not yet consumed (a partial frame at EOF means
  /// the peer died mid-write).
  [[nodiscard]] std::size_t pending_bytes() const {
    return buffer_.size();
  }

private:
  std::string buffer_;
  bool corrupted_ = false;
};

}  // namespace peak::proc
