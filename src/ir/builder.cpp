#include "ir/builder.hpp"

#include "support/check.hpp"

namespace peak::ir {

FunctionBuilder::FunctionBuilder(std::string name) : fn_(std::move(name)) {
  cur_ = fn_.add_block("entry");
  fn_.set_entry(cur_);
}

VarId FunctionBuilder::add_variable(std::string name, VarKind kind,
                                    bool is_param, bool is_global,
                                    bool is_float, std::size_t size) {
  VarInfo info;
  info.name = std::move(name);
  info.kind = kind;
  info.is_param = is_param;
  info.is_global = is_global;
  info.is_float = is_float;
  info.array_size = size;
  const VarId id = fn_.add_var(std::move(info));
  if (is_param) fn_.add_param(id);
  return id;
}

VarId FunctionBuilder::scalar(std::string name, bool is_float) {
  return add_variable(std::move(name), VarKind::kScalar, false, false,
                      is_float, 0);
}

VarId FunctionBuilder::array(std::string name, std::size_t size,
                             bool is_float) {
  return add_variable(std::move(name), VarKind::kArray, false, false,
                      is_float, size);
}

VarId FunctionBuilder::pointer(std::string name) {
  return add_variable(std::move(name), VarKind::kPointer, false, false,
                      false, 0);
}

VarId FunctionBuilder::param_scalar(std::string name, bool is_float) {
  return add_variable(std::move(name), VarKind::kScalar, true, false,
                      is_float, 0);
}

VarId FunctionBuilder::param_array(std::string name, std::size_t size,
                                   bool is_float) {
  return add_variable(std::move(name), VarKind::kArray, true, false,
                      is_float, size);
}

VarId FunctionBuilder::param_pointer(std::string name) {
  return add_variable(std::move(name), VarKind::kPointer, true, false,
                      false, 0);
}

VarId FunctionBuilder::global_scalar(std::string name, bool is_float) {
  return add_variable(std::move(name), VarKind::kScalar, false, true,
                      is_float, 0);
}

VarId FunctionBuilder::global_array(std::string name, std::size_t size,
                                    bool is_float) {
  return add_variable(std::move(name), VarKind::kArray, false, true,
                      is_float, size);
}

ExprId FunctionBuilder::c(double value) {
  Expr e;
  e.op = ExprOp::kConst;
  e.constant = value;
  return fn_.add_expr(e);
}

ExprId FunctionBuilder::v(VarId var) {
  PEAK_CHECK(fn_.var(var).kind != VarKind::kArray,
             "use at() to read array elements");
  Expr e;
  e.op = ExprOp::kVarRef;
  e.var = var;
  return fn_.add_expr(e);
}

ExprId FunctionBuilder::at(VarId array, ExprId index) {
  PEAK_CHECK(fn_.var(array).kind == VarKind::kArray, "at() needs an array");
  Expr e;
  e.op = ExprOp::kArrayRef;
  e.var = array;
  e.lhs = index;
  return fn_.add_expr(e);
}

ExprId FunctionBuilder::deref(VarId pointer, ExprId index) {
  PEAK_CHECK(fn_.var(pointer).kind == VarKind::kPointer,
             "deref() needs a pointer");
  Expr e;
  e.op = ExprOp::kDeref;
  e.var = pointer;
  e.lhs = index;
  return fn_.add_expr(e);
}

ExprId FunctionBuilder::address_of(VarId array) {
  PEAK_CHECK(fn_.var(array).kind == VarKind::kArray,
             "address_of() needs an array");
  Expr e;
  e.op = ExprOp::kAddressOf;
  e.var = array;
  return fn_.add_expr(e);
}

ExprId FunctionBuilder::binary(ExprOp op, ExprId a, ExprId b) {
  Expr e;
  e.op = op;
  e.lhs = a;
  e.rhs = b;
  return fn_.add_expr(e);
}

ExprId FunctionBuilder::unary(ExprOp op, ExprId a) {
  Expr e;
  e.op = op;
  e.lhs = a;
  return fn_.add_expr(e);
}

ExprId FunctionBuilder::add(ExprId a, ExprId b) { return binary(ExprOp::kAdd, a, b); }
ExprId FunctionBuilder::sub(ExprId a, ExprId b) { return binary(ExprOp::kSub, a, b); }
ExprId FunctionBuilder::mul(ExprId a, ExprId b) { return binary(ExprOp::kMul, a, b); }
ExprId FunctionBuilder::div(ExprId a, ExprId b) { return binary(ExprOp::kDiv, a, b); }
ExprId FunctionBuilder::mod(ExprId a, ExprId b) { return binary(ExprOp::kMod, a, b); }
ExprId FunctionBuilder::neg(ExprId a) { return unary(ExprOp::kNeg, a); }
ExprId FunctionBuilder::min(ExprId a, ExprId b) { return binary(ExprOp::kMin, a, b); }
ExprId FunctionBuilder::max(ExprId a, ExprId b) { return binary(ExprOp::kMax, a, b); }
ExprId FunctionBuilder::abs(ExprId a) { return unary(ExprOp::kAbs, a); }
ExprId FunctionBuilder::sqrt(ExprId a) { return unary(ExprOp::kSqrt, a); }
ExprId FunctionBuilder::floor(ExprId a) { return unary(ExprOp::kFloor, a); }
ExprId FunctionBuilder::lt(ExprId a, ExprId b) { return binary(ExprOp::kLt, a, b); }
ExprId FunctionBuilder::le(ExprId a, ExprId b) { return binary(ExprOp::kLe, a, b); }
ExprId FunctionBuilder::gt(ExprId a, ExprId b) { return binary(ExprOp::kGt, a, b); }
ExprId FunctionBuilder::ge(ExprId a, ExprId b) { return binary(ExprOp::kGe, a, b); }
ExprId FunctionBuilder::eq(ExprId a, ExprId b) { return binary(ExprOp::kEq, a, b); }
ExprId FunctionBuilder::ne(ExprId a, ExprId b) { return binary(ExprOp::kNe, a, b); }
ExprId FunctionBuilder::land(ExprId a, ExprId b) { return binary(ExprOp::kAnd, a, b); }
ExprId FunctionBuilder::lor(ExprId a, ExprId b) { return binary(ExprOp::kOr, a, b); }
ExprId FunctionBuilder::lnot(ExprId a) { return unary(ExprOp::kNot, a); }
ExprId FunctionBuilder::bit_and(ExprId a, ExprId b) { return binary(ExprOp::kBitAnd, a, b); }
ExprId FunctionBuilder::bit_or(ExprId a, ExprId b) { return binary(ExprOp::kBitOr, a, b); }
ExprId FunctionBuilder::bit_xor(ExprId a, ExprId b) { return binary(ExprOp::kBitXor, a, b); }
ExprId FunctionBuilder::shl(ExprId a, ExprId b) { return binary(ExprOp::kShl, a, b); }
ExprId FunctionBuilder::shr(ExprId a, ExprId b) { return binary(ExprOp::kShr, a, b); }

void FunctionBuilder::assign(VarId var, ExprId value) {
  PEAK_CHECK(fn_.var(var).kind != VarKind::kArray,
             "use store() for array elements");
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.lhs.var = var;
  s.rhs = value;
  fn_.block(cur_).stmts.push_back(std::move(s));
}

void FunctionBuilder::store(VarId array, ExprId index, ExprId value) {
  PEAK_CHECK(fn_.var(array).kind == VarKind::kArray,
             "store() needs an array");
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.lhs.var = array;
  s.lhs.index = index;
  s.rhs = value;
  fn_.block(cur_).stmts.push_back(std::move(s));
}

void FunctionBuilder::store_through(VarId pointer, ExprId index,
                                    ExprId value) {
  PEAK_CHECK(fn_.var(pointer).kind == VarKind::kPointer,
             "store_through() needs a pointer");
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.lhs.var = pointer;
  s.lhs.index = index;
  s.lhs.via_pointer = true;
  s.rhs = value;
  fn_.block(cur_).stmts.push_back(std::move(s));
}

void FunctionBuilder::call(std::string callee, std::vector<ExprId> args) {
  Stmt s;
  s.kind = StmtKind::kCall;
  s.callee = std::move(callee);
  s.args = std::move(args);
  fn_.block(cur_).stmts.push_back(std::move(s));
}

void FunctionBuilder::counter(std::uint32_t counter_id) {
  Stmt s;
  s.kind = StmtKind::kCounter;
  s.counter_id = counter_id;
  fn_.block(cur_).stmts.push_back(std::move(s));
}

BlockId FunctionBuilder::new_block(std::string label) {
  label += '.';
  label += std::to_string(label_counter_++);
  return fn_.add_block(std::move(label));
}

void FunctionBuilder::seal_jump(BlockId from, BlockId to) {
  Terminator t;
  t.kind = TermKind::kJump;
  t.on_true = to;
  fn_.block(from).term = t;
}

void FunctionBuilder::if_then(ExprId cond, const BodyFn& then_body) {
  const BlockId then_b = new_block("then");
  const BlockId join = new_block("join");

  Terminator t;
  t.kind = TermKind::kBranch;
  t.cond = cond;
  t.on_true = then_b;
  t.on_false = join;
  fn_.block(cur_).term = t;

  cur_ = then_b;
  then_body();
  seal_jump(cur_, join);
  cur_ = join;
}

void FunctionBuilder::if_else(ExprId cond, const BodyFn& then_body,
                              const BodyFn& else_body) {
  const BlockId then_b = new_block("then");
  const BlockId else_b = new_block("else");
  const BlockId join = new_block("join");

  Terminator t;
  t.kind = TermKind::kBranch;
  t.cond = cond;
  t.on_true = then_b;
  t.on_false = else_b;
  fn_.block(cur_).term = t;

  cur_ = then_b;
  then_body();
  seal_jump(cur_, join);

  cur_ = else_b;
  else_body();
  seal_jump(cur_, join);

  cur_ = join;
}

void FunctionBuilder::for_loop(VarId iv, ExprId lo, ExprId hi,
                               const BodyFn& body) {
  for_loop_step(iv, lo, hi, c(1.0), body);
}

void FunctionBuilder::for_loop_step(VarId iv, ExprId lo, ExprId hi,
                                    ExprId step, const BodyFn& body) {
  assign(iv, lo);
  const BlockId header = new_block("for.header");
  const BlockId body_b = new_block("for.body");
  const BlockId latch = new_block("for.latch");
  const BlockId exit = new_block("for.exit");

  seal_jump(cur_, header);

  Terminator t;
  t.kind = TermKind::kBranch;
  t.cond = lt(v(iv), hi);
  t.on_true = body_b;
  t.on_false = exit;
  fn_.block(header).term = t;

  fn_.block(body_b).is_loop_body = true;
  // `continue` must still run the induction update, so it targets the
  // latch block rather than the header.
  loop_stack_.push_back({latch, exit});
  cur_ = body_b;
  body();
  seal_jump(cur_, latch);
  loop_stack_.pop_back();

  cur_ = latch;
  assign(iv, add(v(iv), step));
  seal_jump(cur_, header);

  cur_ = exit;
}

void FunctionBuilder::while_loop(ExprId cond, const BodyFn& body) {
  const BlockId header = new_block("while.header");
  const BlockId body_b = new_block("while.body");
  const BlockId exit = new_block("while.exit");

  seal_jump(cur_, header);

  Terminator t;
  t.kind = TermKind::kBranch;
  t.cond = cond;
  t.on_true = body_b;
  t.on_false = exit;
  fn_.block(header).term = t;

  fn_.block(body_b).is_loop_body = true;
  loop_stack_.push_back({header, exit});
  cur_ = body_b;
  body();
  seal_jump(cur_, header);
  loop_stack_.pop_back();

  cur_ = exit;
}

void FunctionBuilder::break_if(ExprId cond) {
  PEAK_CHECK(!loop_stack_.empty(), "break_if outside a loop");
  const BlockId cont = new_block("after.break");
  Terminator t;
  t.kind = TermKind::kBranch;
  t.cond = cond;
  t.on_true = loop_stack_.back().exit;
  t.on_false = cont;
  fn_.block(cur_).term = t;
  cur_ = cont;
}

void FunctionBuilder::continue_if(ExprId cond) {
  PEAK_CHECK(!loop_stack_.empty(), "continue_if outside a loop");
  const BlockId cont = new_block("after.continue");
  Terminator t;
  t.kind = TermKind::kBranch;
  t.cond = cond;
  t.on_true = loop_stack_.back().header;
  t.on_false = cont;
  fn_.block(cur_).term = t;
  cur_ = cont;
}

void FunctionBuilder::return_if(ExprId cond) {
  const BlockId ret = new_block("early.ret");
  const BlockId cont = new_block("after.ret");
  Terminator t;
  t.kind = TermKind::kBranch;
  t.cond = cond;
  t.on_true = ret;
  t.on_false = cont;
  fn_.block(cur_).term = t;
  fn_.block(ret).term = Terminator{};  // kReturn
  cur_ = cont;
}

Function FunctionBuilder::build() {
  PEAK_CHECK(!built_, "build() called twice");
  built_ = true;
  fn_.block(cur_).term = Terminator{};  // kReturn
  fn_.finalize();
  return std::move(fn_);
}

}  // namespace peak::ir
