#pragma once

/// \file bytecode.hpp
/// Bytecode compilation + VM execution engine for the mini-IR.
///
/// The tree-walking `ir::Interpreter` is the reference executor, but every
/// rated invocation funnels through it — thousands per tuning run — and a
/// recursive evaluator pays a call per expression node. This pass lowers a
/// finalized `Function` once into a flat, cache-friendly instruction
/// stream (expressions linearized into virtual registers, block entry
/// costs pre-resolved against a `CostModel`, array bases pre-bound at run
/// start, bounds checks folded where range analysis proves them safe) and
/// executes it with a non-recursive dispatch loop.
///
/// Contract: for any finalized function, `BytecodeVm::run` produces a
/// `RunResult` (cycles, block_entries, counters, steps) and memory effects
/// **bit-identical** to `Interpreter::run` under the same options and cost
/// model, including `write_hook` call order and `call_handler` semantics,
/// and including error behavior (step limit, bounds, division by zero)
/// with the same exception messages. The differential fuzz suite
/// (`tests/test_ir_bytecode.cpp`) enforces this over hundreds of random
/// programs; keep it green when touching either engine.

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/interpreter.hpp"

namespace peak::ir {

/// VM opcodes. Operands a/b/c index virtual registers, variables, blocks,
/// the constant pool, or instruction addresses depending on the opcode.
enum class BcOp : std::uint8_t {
  kBlockBegin,    ///< enter block a; cycles += pool[b]
  kStep,          ///< statement guard: ++steps, enforce max_steps
  kLoadConst,     ///< r[a] = pool[b]
  kLoadScalar,    ///< r[a] = scalars[b]
  kStoreScalar,   ///< scalars[a] = r[b]
  kLoadArray,     ///< r[a] = array b[checked r[c]]
  kLoadArrayNC,   ///< r[a] = array b[r[c]] (range analysis proved safe)
  kPointee,       ///< r[a] = validated pointee VarId of pointer b
  kLoadDerefIdx,  ///< r[a] = array VarId(r[b]) [checked r[c]]
  kStoreArray,    ///< array a[checked r[b]] = r[c] (write hook fires)
  kStoreArrayNC,  ///< array a[r[b]] = r[c] (proved safe; hook fires)
  kStoreDerefIdx, ///< array VarId(r[a]) [checked r[b]] = r[c] (hook fires)
  // Binary arithmetic/comparison: r[a] = r[b] op r[c].
  kAdd, kSub, kMul, kMin, kMax,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kCheckDiv,      ///< throw "division by zero" unless r[a] != 0
  kDiv,           ///< r[a] = r[b] / r[c]; divisor already checked
  kMod,           ///< r[a] = int64(r[b]) % int64(r[c]) with range checks
  // Unary: r[a] = op r[b].
  kNeg, kAbs, kSqrt, kFloor, kNot,
  kTestNonZero,   ///< r[a] = (r[b] != 0) ? 1 : 0
  kJump,          ///< pc = a
  kJumpIfZero,    ///< if (r[a] == 0) pc = b
  kJumpIfNonZero, ///< if (r[a] != 0) pc = b
  kBranch,        ///< pc = (r[a] != 0) ? b : c
  kCall,          ///< invoke call site a; cycles += handler result
  kCounter,       ///< ++counters[a]; cycles += pool[b] (counter cost)
  kReturn,
};

/// One 16-byte VM instruction.
struct BcInsn {
  BcOp op = BcOp::kReturn;
  std::uint8_t pad8 = 0;
  std::uint16_t pad16 = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
};

struct BytecodeOptions {
  /// Fold array bounds checks the symbolic range analysis proves
  /// redundant (index interval within [0, size) from values that are
  /// provably finite and unmodified since block entry).
  bool fold_bounds_checks = true;
};

/// Compilation statistics (observability + tests).
struct BytecodeStats {
  std::size_t instructions = 0;
  std::size_t array_accesses = 0;        ///< loads + stores, direct only
  std::size_t bounds_checks_folded = 0;  ///< of those, proved safe
};

/// A compiled program: flat instruction stream + constant pool + call
/// sites. Immutable after compile(); safe to share across VMs and threads.
class BytecodeProgram {
public:
  /// Lower `fn` for execution under `cost`. Block entry prices and the
  /// counter cost are resolved now, so they must not change between
  /// compilation and execution (the simulation backend owns exactly one
  /// cost model per section, making this a compile-once-per-(Function,
  /// CostModel) cache).
  static BytecodeProgram compile(const Function& fn, const CostModel& cost,
                                 const BytecodeOptions& options = {});

  /// Compile with the unit cost model (tests, fuzzing).
  static BytecodeProgram compile(const Function& fn,
                                 const BytecodeOptions& options = {});

  [[nodiscard]] const Function& function() const { return *fn_; }
  [[nodiscard]] const std::vector<BcInsn>& code() const { return code_; }
  [[nodiscard]] std::size_t num_registers() const { return num_regs_; }
  [[nodiscard]] const BytecodeStats& stats() const { return stats_; }

  /// Human-readable listing (debugging / INTERNALS.md examples).
  [[nodiscard]] std::string disassemble() const;

private:
  friend class BytecodeVm;
  friend class BytecodeCompiler;
  struct CallSite {
    std::string callee;
    std::uint32_t first_arg_reg = 0;
    std::uint32_t num_args = 0;
  };

  const Function* fn_ = nullptr;  ///< must outlive the program
  std::vector<BcInsn> code_;
  std::vector<double> pool_;       ///< constants + pre-resolved costs
  std::vector<CallSite> calls_;
  std::size_t num_regs_ = 0;
  std::size_t entry_pc_ = 0;
  BytecodeStats stats_;
};

/// Executes a BytecodeProgram. Holds reusable scratch (virtual registers,
/// pre-bound array bases, call argument buffer) so repeated runs perform
/// no per-run allocations beyond the RunResult vectors. Not thread-safe;
/// use one VM per thread over a shared program.
class BytecodeVm {
public:
  explicit BytecodeVm(const BytecodeProgram& program,
                      InterpreterOptions opts = {});

  /// Execute from the entry block until return. Memory effects and the
  /// RunResult match Interpreter::run bit for bit.
  RunResult run(Memory& memory);

  [[nodiscard]] const BytecodeProgram& program() const { return *program_; }
  [[nodiscard]] const InterpreterOptions& options() const { return opts_; }
  InterpreterOptions& options() { return opts_; }

private:
  [[nodiscard]] std::size_t checked_index(VarId array, double idx,
                                          const Memory& memory) const;
  [[nodiscard]] VarId pointee(VarId pointer, const Memory& memory) const;

  const BytecodeProgram* program_;
  InterpreterOptions opts_;
  std::vector<double> regs_;
  std::vector<double*> bases_;       ///< per-VarId array base, rebound per run
  std::vector<std::size_t> sizes_;   ///< per-VarId array size
  std::vector<double> call_args_;    ///< reused kCall argument buffer
};

}  // namespace peak::ir
