#include "ir/print.hpp"

#include <sstream>

namespace peak::ir {

namespace {

const char* op_symbol(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kDiv: return "/";
    case ExprOp::kMod: return "%";
    case ExprOp::kLt: return "<";
    case ExprOp::kLe: return "<=";
    case ExprOp::kGt: return ">";
    case ExprOp::kGe: return ">=";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kAnd: return "&&";
    case ExprOp::kOr: return "||";
    case ExprOp::kBitAnd: return "&";
    case ExprOp::kBitOr: return "|";
    case ExprOp::kBitXor: return "^";
    case ExprOp::kShl: return "<<";
    case ExprOp::kShr: return ">>";
    case ExprOp::kMin: return "min";
    case ExprOp::kMax: return "max";
    default: return "?";
  }
}

}  // namespace

std::string expr_to_string(const Function& fn, ExprId e) {
  if (e == kNoExpr) return "<none>";
  const Expr& node = fn.expr(e);
  std::ostringstream os;
  switch (node.op) {
    case ExprOp::kConst:
      os << node.constant;
      break;
    case ExprOp::kVarRef:
      os << fn.var(node.var).name;
      break;
    case ExprOp::kArrayRef:
      os << fn.var(node.var).name << '[' << expr_to_string(fn, node.lhs)
         << ']';
      break;
    case ExprOp::kDeref:
      os << "(*" << fn.var(node.var).name << ")["
         << expr_to_string(fn, node.lhs) << ']';
      break;
    case ExprOp::kAddressOf:
      os << '&' << fn.var(node.var).name;
      break;
    case ExprOp::kNeg:
      os << "(-" << expr_to_string(fn, node.lhs) << ')';
      break;
    case ExprOp::kNot:
      os << "(!" << expr_to_string(fn, node.lhs) << ')';
      break;
    case ExprOp::kAbs:
      os << "abs(" << expr_to_string(fn, node.lhs) << ')';
      break;
    case ExprOp::kSqrt:
      os << "sqrt(" << expr_to_string(fn, node.lhs) << ')';
      break;
    case ExprOp::kFloor:
      os << "floor(" << expr_to_string(fn, node.lhs) << ')';
      break;
    case ExprOp::kMin:
    case ExprOp::kMax:
      os << op_symbol(node.op) << '(' << expr_to_string(fn, node.lhs)
         << ", " << expr_to_string(fn, node.rhs) << ')';
      break;
    default:
      os << '(' << expr_to_string(fn, node.lhs) << ' '
         << op_symbol(node.op) << ' ' << expr_to_string(fn, node.rhs)
         << ')';
      break;
  }
  return os.str();
}

std::string to_string(const Function& fn) {
  std::ostringstream os;
  os << "function " << fn.name() << "(";
  bool first = true;
  for (VarId p : fn.params()) {
    if (!first) os << ", ";
    first = false;
    os << fn.var(p).name;
  }
  os << ")\n";

  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    const BasicBlock& bb = fn.block(b);
    os << "  bb" << b << " [" << bb.label << "]"
       << (bb.is_loop_body ? " loop-body" : "") << ":\n";
    for (const Stmt& s : bb.stmts) {
      os << "    ";
      switch (s.kind) {
        case StmtKind::kAssign:
          if (s.lhs.is_scalar()) {
            os << fn.var(s.lhs.var).name;
          } else if (s.lhs.via_pointer) {
            os << "(*" << fn.var(s.lhs.var).name << ")["
               << expr_to_string(fn, s.lhs.index) << ']';
          } else {
            os << fn.var(s.lhs.var).name << '['
               << expr_to_string(fn, s.lhs.index) << ']';
          }
          os << " = " << expr_to_string(fn, s.rhs);
          break;
        case StmtKind::kCall:
          os << "call " << s.callee << "(...)";
          break;
        case StmtKind::kCounter:
          os << "counter #" << s.counter_id << "++";
          break;
        case StmtKind::kNop:
          os << "nop";
          break;
      }
      os << '\n';
    }
    const Terminator& t = bb.term;
    switch (t.kind) {
      case TermKind::kJump:
        os << "    goto bb" << t.on_true << '\n';
        break;
      case TermKind::kBranch:
        os << "    if " << expr_to_string(fn, t.cond) << " goto bb"
           << t.on_true << " else bb" << t.on_false << '\n';
        break;
      case TermKind::kReturn:
        os << "    return\n";
        break;
    }
  }
  return os.str();
}

}  // namespace peak::ir
