#include "ir/validate.hpp"

#include <set>
#include <sstream>

namespace peak::ir {

namespace {

class Validator {
public:
  explicit Validator(const Function& fn) : fn_(fn) {}

  ValidationReport run() {
    check_entry();
    for (BlockId b = 0; b < fn_.num_blocks(); ++b) check_block(b);
    check_reachability();
    return std::move(report_);
  }

private:
  void error(const std::string& msg) {
    report_.issues.push_back(
        {ValidationIssue::Severity::kError, msg});
  }
  void warning(const std::string& msg) {
    report_.issues.push_back(
        {ValidationIssue::Severity::kWarning, msg});
  }

  void check_entry() {
    if (fn_.entry() == kNoBlock || fn_.entry() >= fn_.num_blocks())
      error("entry block is missing or out of range");
  }

  void check_expr(ExprId e, BlockId b, std::set<ExprId>& on_path) {
    if (e == kNoExpr) return;
    if (e >= fn_.num_exprs()) {
      error("bb" + std::to_string(b) + ": expression id out of range");
      return;
    }
    if (!on_path.insert(e).second) {
      error("bb" + std::to_string(b) + ": cyclic expression tree at node " +
            std::to_string(e));
      return;
    }
    const Expr& node = fn_.expr(e);
    if (node.var != kNoVar && node.var >= fn_.num_vars())
      error("bb" + std::to_string(b) + ": expression references variable " +
            std::to_string(node.var) + " outside the symbol table");
    switch (node.op) {
      case ExprOp::kVarRef:
        if (node.var != kNoVar &&
            fn_.var(node.var).kind == VarKind::kArray)
          error("bb" + std::to_string(b) +
                ": VarRef reads whole array '" + fn_.var(node.var).name +
                "' (use ArrayRef)");
        break;
      case ExprOp::kArrayRef:
        if (node.var == kNoVar ||
            fn_.var(node.var).kind != VarKind::kArray)
          error("bb" + std::to_string(b) + ": ArrayRef base is not an array");
        if (node.lhs == kNoExpr)
          error("bb" + std::to_string(b) + ": ArrayRef without index");
        break;
      case ExprOp::kDeref:
        if (node.var == kNoVar ||
            fn_.var(node.var).kind != VarKind::kPointer)
          error("bb" + std::to_string(b) + ": Deref base is not a pointer");
        break;
      case ExprOp::kAddressOf:
        if (node.var == kNoVar ||
            fn_.var(node.var).kind != VarKind::kArray)
          error("bb" + std::to_string(b) +
                ": AddressOf target is not an array");
        break;
      default: {
        const int arity = expr_arity(node.op);
        if (arity >= 1 && node.lhs == kNoExpr)
          error("bb" + std::to_string(b) + ": missing operand");
        if (arity == 2 && node.rhs == kNoExpr)
          error("bb" + std::to_string(b) + ": missing second operand");
        break;
      }
    }
    check_expr(node.lhs, b, on_path);
    check_expr(node.rhs, b, on_path);
    on_path.erase(e);
  }

  void check_root(ExprId e, BlockId b) {
    std::set<ExprId> on_path;
    check_expr(e, b, on_path);
  }

  void check_block(BlockId b) {
    const BasicBlock& bb = fn_.block(b);
    for (const Stmt& s : bb.stmts) {
      switch (s.kind) {
        case StmtKind::kAssign:
          if (s.lhs.var == kNoVar || s.lhs.var >= fn_.num_vars()) {
            error("bb" + std::to_string(b) +
                  ": assignment to unknown variable");
            break;
          }
          if (s.lhs.is_scalar() &&
              fn_.var(s.lhs.var).kind == VarKind::kArray)
            error("bb" + std::to_string(b) +
                  ": scalar assignment targets array '" +
                  fn_.var(s.lhs.var).name + "'");
          if (s.lhs.via_pointer &&
              fn_.var(s.lhs.var).kind != VarKind::kPointer)
            error("bb" + std::to_string(b) +
                  ": pointer store through non-pointer");
          if (!s.lhs.is_scalar()) check_root(s.lhs.index, b);
          check_root(s.rhs, b);
          break;
        case StmtKind::kCall:
          if (s.callee.empty())
            error("bb" + std::to_string(b) + ": call with empty callee");
          for (ExprId a : s.args) check_root(a, b);
          break;
        case StmtKind::kCounter:
        case StmtKind::kNop:
          break;
      }
    }
    const Terminator& t = bb.term;
    auto check_target = [&](BlockId target, const char* which) {
      if (target == kNoBlock || target >= fn_.num_blocks())
        error("bb" + std::to_string(b) + ": " + which +
              " target out of range");
    };
    switch (t.kind) {
      case TermKind::kJump:
        check_target(t.on_true, "jump");
        break;
      case TermKind::kBranch:
        check_target(t.on_true, "branch-true");
        check_target(t.on_false, "branch-false");
        if (t.cond == kNoExpr)
          error("bb" + std::to_string(b) + ": branch without condition");
        else
          check_root(t.cond, b);
        break;
      case TermKind::kReturn:
        break;
    }
  }

  void check_reachability() {
    if (fn_.entry() >= fn_.num_blocks()) return;
    std::vector<bool> reachable(fn_.num_blocks(), false);
    std::vector<BlockId> stack = {fn_.entry()};
    reachable[fn_.entry()] = true;
    bool has_return = false;
    while (!stack.empty()) {
      const BlockId b = stack.back();
      stack.pop_back();
      if (fn_.block(b).term.kind == TermKind::kReturn) has_return = true;
      for (BlockId s : fn_.successors(b)) {
        if (s < fn_.num_blocks() && !reachable[s]) {
          reachable[s] = true;
          stack.push_back(s);
        }
      }
    }
    for (BlockId b = 0; b < fn_.num_blocks(); ++b)
      if (!reachable[b])
        warning("bb" + std::to_string(b) + " is unreachable");
    if (!has_return)
      error("no reachable return: the function cannot terminate normally");
  }

  const Function& fn_;
  ValidationReport report_;
};

}  // namespace

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (const ValidationIssue& issue : issues)
    os << (issue.severity == ValidationIssue::Severity::kError
               ? "error: "
               : "warning: ")
       << issue.message << '\n';
  return os.str();
}

ValidationReport validate(const Function& fn) {
  return Validator(fn).run();
}

}  // namespace peak::ir
