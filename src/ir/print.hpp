#pragma once

/// \file print.hpp
/// Human-readable dump of IR functions — used in tests and when debugging
/// workload kernel models.

#include <string>

#include "ir/function.hpp"

namespace peak::ir {

/// Render one expression tree as a string.
std::string expr_to_string(const Function& fn, ExprId e);

/// Render the whole function (symbol table + blocks + terminators).
std::string to_string(const Function& fn);

}  // namespace peak::ir
