#pragma once

/// \file fuzz.hpp
/// Random structured-program generation for differential testing. The
/// generator emits terminating, in-bounds IR functions (loops have
/// constant trip bounds; every array subscript is wrapped by `mod size`),
/// so any generated program can be interpreted safely. The test suite uses
/// it to check that optimization passes preserve observable semantics and
/// that the dataflow analyses are sound on arbitrary CFGs.

#include <cstdint>

#include "ir/interpreter.hpp"
#include "support/rng.hpp"

namespace peak::ir {

struct FuzzOptions {
  std::size_t scalar_params = 3;
  std::size_t arrays = 2;
  std::size_t pointers = 1;   ///< pointer vars (bound before use)
  std::size_t array_size = 24;
  std::size_t locals = 3;
  int max_depth = 3;        ///< nesting depth of if/for constructs
  int max_stmts = 5;        ///< statements per sequence
  int max_expr_depth = 3;
  double loop_prob = 0.3;
  double if_prob = 0.3;
  double break_prob = 0.15;  ///< chance of a break_if inside a loop
};

/// Generate a random function. The same seed yields the same program.
Function fuzz_function(std::uint64_t seed, const FuzzOptions& options = {});

/// Fill a memory image for `fn` with seeded random values (params and
/// arrays); locals are zeroed as usual.
Memory fuzz_memory(const Function& fn, std::uint64_t seed);

}  // namespace peak::ir
