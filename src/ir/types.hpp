#pragma once

/// \file types.hpp
/// Core identifiers and symbol-table entries for the PEAK mini-IR.
///
/// The IR models tuning sections the way the paper's compiler sees them:
/// functions over scalars, arrays and pointers, lowered to a control-flow
/// graph of basic blocks. It is expressive enough to encode each SPEC
/// tuning-section kernel from Table 1 and to run the paper's analyses
/// (context variables, liveness, def sets, simple points-to) for real.

#include <cstdint>
#include <string>

namespace peak::ir {

using VarId = std::uint32_t;
using ExprId = std::uint32_t;
using BlockId = std::uint32_t;
using StmtId = std::uint32_t;

inline constexpr VarId kNoVar = ~VarId{0};
inline constexpr ExprId kNoExpr = ~ExprId{0};
inline constexpr BlockId kNoBlock = ~BlockId{0};

enum class VarKind : std::uint8_t {
  kScalar,   ///< single numeric slot
  kArray,    ///< contiguous numeric buffer
  kPointer,  ///< may point to an array (simple points-to domain)
};

/// Symbol-table entry. Parameters and globals form the candidate input set
/// of a tuning section; liveness decides which of them are actually live-in.
struct VarInfo {
  std::string name;
  VarKind kind = VarKind::kScalar;
  bool is_param = false;   ///< function parameter (TS input candidate)
  bool is_global = false;  ///< persists across TS invocations
  bool is_float = false;   ///< carries floating-point data (cost model)
  std::size_t array_size = 0;  ///< default allocation for kArray
};

}  // namespace peak::ir
