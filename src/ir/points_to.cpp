#include "ir/points_to.hpp"

#include "support/check.hpp"

namespace peak::ir {

PointsTo::PointsTo(const Function& fn)
    : fn_(fn),
      targets_(fn.num_vars()),
      unknown_(fn.num_vars(), false),
      modified_(fn.num_vars(), false) {
  for (VarId v = 0; v < fn.num_vars(); ++v)
    if (fn.var(v).kind == VarKind::kArray) all_arrays_.push_back(v);

  // Parameters and globals of pointer kind arrive with an unseen value:
  // their initial binding is external, which is fine (it is fixed for the
  // invocation), so it does not count as "unknown" by itself — but we have
  // no target set for it either. Model the incoming binding as unknown
  // targets unless the body rebinds from a visible address.
  for (VarId v = 0; v < fn.num_vars(); ++v) {
    const VarInfo& info = fn.var(v);
    if (info.kind == VarKind::kPointer && (info.is_param || info.is_global))
      unknown_[v] = true;
  }

  // One forward pass plus a closure loop (the lattice is tiny).
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 64) {
    changed = false;
    for (BlockId b = 0; b < fn.num_blocks(); ++b) {
      for (const Stmt& s : fn.block(b).stmts) {
        if (s.kind != StmtKind::kAssign || !s.lhs.is_scalar()) continue;
        const VarId lhs = s.lhs.var;
        if (fn.var(lhs).kind != VarKind::kPointer) continue;
        modified_[lhs] = true;
        const Expr& rhs = fn.expr(s.rhs);
        if (rhs.op == ExprOp::kAddressOf) {
          changed |= targets_[lhs].insert(rhs.var).second;
        } else if (rhs.op == ExprOp::kVarRef &&
                   fn.var(rhs.var).kind == VarKind::kPointer) {
          if (unknown_[rhs.var] && !unknown_[lhs]) {
            unknown_[lhs] = true;
            changed = true;
          }
          for (VarId t : targets_[rhs.var])
            changed |= targets_[lhs].insert(t).second;
        } else if (!unknown_[lhs]) {
          unknown_[lhs] = true;  // arithmetic on pointers: give up
          changed = true;
        }
      }
    }
  }
}

const std::set<VarId>& PointsTo::targets(VarId ptr) const {
  PEAK_DCHECK(ptr < targets_.size());
  return targets_[ptr];
}

bool PointsTo::unknown(VarId ptr) const {
  PEAK_DCHECK(ptr < unknown_.size());
  return unknown_[ptr];
}

bool PointsTo::pointer_modified(VarId ptr) const {
  PEAK_DCHECK(ptr < modified_.size());
  return modified_[ptr];
}

std::vector<VarId> PointsTo::may_store_targets(VarId ptr) const {
  if (unknown(ptr)) return all_arrays_;
  return {targets_[ptr].begin(), targets_[ptr].end()};
}

}  // namespace peak::ir
