#include "ir/liveness.hpp"

#include <algorithm>

namespace peak::ir {

namespace {

void expr_uses(const Function& fn, const PointsTo& pt, ExprId e,
               support::DynBitset& uses) {
  if (e == kNoExpr) return;
  const Expr& node = fn.expr(e);
  switch (node.op) {
    case ExprOp::kVarRef:
      uses.set(node.var);
      break;
    case ExprOp::kArrayRef:
      uses.set(node.var);
      break;
    case ExprOp::kDeref:
      uses.set(node.var);  // the pointer itself
      for (VarId t : pt.may_store_targets(node.var)) uses.set(t);
      break;
    case ExprOp::kAddressOf:
      // Taking an address is not a read of the array's contents.
      break;
    default:
      break;
  }
  expr_uses(fn, pt, node.lhs, uses);
  expr_uses(fn, pt, node.rhs, uses);
}

}  // namespace

Liveness::Liveness(const Function& fn, const PointsTo& pt)
    : fn_(fn), pt_(pt) {
  const std::size_t nb = fn.num_blocks();
  const std::size_t nv = fn.num_vars();
  live_in_.assign(nb, support::DynBitset(nv));
  live_out_.assign(nb, support::DynBitset(nv));

  // Per-block upward-exposed uses and strong defs, computed by a backward
  // scan of the block body.
  std::vector<support::DynBitset> ue_use(nb, support::DynBitset(nv));
  std::vector<support::DynBitset> strong_def(nb, support::DynBitset(nv));

  for (BlockId b = 0; b < nb; ++b) {
    support::DynBitset use(nv);
    support::DynBitset def(nv);
    auto note_use = [&](const support::DynBitset& u) {
      // use \ def: only upward-exposed reads matter.
      support::DynBitset masked = u;
      masked.subtract(def);
      use.union_with(masked);
    };

    const BasicBlock& bb = fn.block(b);
    for (const Stmt& s : bb.stmts) {
      support::DynBitset u(nv);
      switch (s.kind) {
        case StmtKind::kAssign: {
          expr_uses(fn_, pt_, s.rhs, u);
          if (!s.lhs.is_scalar()) {
            expr_uses(fn_, pt_, s.lhs.index, u);
            if (s.lhs.via_pointer) u.set(s.lhs.var);  // reads the pointer
          }
          note_use(u);
          if (s.lhs.is_scalar()) def.set(s.lhs.var);
          // Array/pointer stores are weak defs: no liveness kill.
          break;
        }
        case StmtKind::kCall:
          for (ExprId a : s.args) expr_uses(fn_, pt_, a, u);
          note_use(u);
          break;
        case StmtKind::kCounter:
        case StmtKind::kNop:
          break;
      }
    }
    if (bb.term.kind == TermKind::kBranch) {
      support::DynBitset u(nv);
      expr_uses(fn_, pt_, bb.term.cond, u);
      note_use(u);
    }
    ue_use[b] = std::move(use);
    strong_def[b] = std::move(def);
  }

  // Backward fixpoint: out(b) = ∪ in(succ); in(b) = use(b) ∪ (out(b) \ def(b)).
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId bi = static_cast<BlockId>(nb); bi-- > 0;) {
      support::DynBitset out(nv);
      for (BlockId s : fn.successors(bi)) out.union_with(live_in_[s]);
      support::DynBitset in = out;
      in.subtract(strong_def[bi]);
      in.union_with(ue_use[bi]);
      if (!(in == live_in_[bi]) || !(out == live_out_[bi])) {
        live_in_[bi] = std::move(in);
        live_out_[bi] = std::move(out);
        changed = true;
      }
    }
  }
}

std::vector<VarId> Liveness::input_set() const {
  std::vector<VarId> out;
  live_in_[fn_.entry()].for_each_set(
      [&](std::size_t i) { out.push_back(static_cast<VarId>(i)); });
  return out;
}

std::vector<VarId> def_set(const Function& fn, const PointsTo& pt) {
  support::DynBitset defs(fn.num_vars());
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    for (const Stmt& s : fn.block(b).stmts) {
      if (s.kind != StmtKind::kAssign) continue;
      if (s.lhs.is_scalar()) {
        defs.set(s.lhs.var);
      } else if (s.lhs.via_pointer) {
        for (VarId t : pt.may_store_targets(s.lhs.var)) defs.set(t);
      } else {
        defs.set(s.lhs.var);
      }
    }
  }
  std::vector<VarId> out;
  defs.for_each_set(
      [&](std::size_t i) { out.push_back(static_cast<VarId>(i)); });
  return out;
}

std::vector<VarId> modified_input_set(const Function& fn,
                                      const PointsTo& pt) {
  const Liveness live(fn, pt);
  const std::vector<VarId> input = live.input_set();
  const std::vector<VarId> defs = def_set(fn, pt);
  std::vector<VarId> out;
  std::set_intersection(input.begin(), input.end(), defs.begin(), defs.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace peak::ir
