#include "ir/bytecode.hpp"

#include <bit>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>

#include "ir/range_analysis.hpp"
#include "support/check.hpp"

namespace peak::ir {

namespace {

/// Patch field selector for forward jumps.
enum class Field : std::uint8_t { kA, kB, kC };

}  // namespace

class BytecodeCompiler {
public:
  BytecodeCompiler(const Function& fn, const CostModel& cost,
           const BytecodeOptions& options)
      : fn_(fn), cost_(cost), options_(options) {}

  BytecodeProgram compile() {
    PEAK_CHECK(fn_.finalized(), "bytecode-compile only finalized functions");
    if (options_.fold_bounds_checks)
      ranges_.emplace(fn_);

    const std::uint32_t counter_cost_pool = pool_const(cost_.counter_cost());
    std::vector<std::size_t> block_pc(fn_.num_blocks(), 0);
    std::vector<std::pair<std::size_t, Field>> block_patches;
    std::vector<BlockId> block_patch_targets;

    for (BlockId b = 0; b < fn_.num_blocks(); ++b) {
      block_pc[b] = prog_.code_.size();
      emit(BcOp::kBlockBegin, b, pool_const(cost_.block_entry_cost(fn_, b)));

      // Scalars assigned earlier in this block: their block-entry interval
      // no longer describes their current value, so bounds-check folding
      // must not rely on it.
      dirty_.assign(fn_.num_vars(), false);
      cur_block_ = b;

      for (const Stmt& s : fn_.block(b).stmts) {
        emit(BcOp::kStep);
        switch (s.kind) {
          case StmtKind::kAssign:
            compile_assign(s);
            break;
          case StmtKind::kCall: {
            BytecodeProgram::CallSite site;
            site.callee = s.callee;
            site.first_arg_reg = 0;
            site.num_args = static_cast<std::uint32_t>(s.args.size());
            for (std::size_t i = 0; i < s.args.size(); ++i)
              compile_expr(s.args[i], static_cast<std::uint32_t>(i));
            prog_.calls_.push_back(std::move(site));
            emit(BcOp::kCall,
                 static_cast<std::uint32_t>(prog_.calls_.size() - 1));
            // The call handler receives a mutable Memory and may write
            // any variable.
            dirty_.assign(fn_.num_vars(), true);
            break;
          }
          case StmtKind::kCounter:
            emit(BcOp::kCounter, s.counter_id, counter_cost_pool);
            break;
          case StmtKind::kNop:
            break;
        }
      }

      const Terminator& t = fn_.block(b).term;
      switch (t.kind) {
        case TermKind::kJump:
          block_patches.emplace_back(prog_.code_.size(), Field::kA);
          block_patch_targets.push_back(t.on_true);
          emit(BcOp::kJump);
          break;
        case TermKind::kBranch: {
          compile_expr(t.cond, 0);
          block_patches.emplace_back(prog_.code_.size(), Field::kB);
          block_patch_targets.push_back(t.on_true);
          block_patches.emplace_back(prog_.code_.size(), Field::kC);
          block_patch_targets.push_back(t.on_false);
          emit(BcOp::kBranch, 0);
          break;
        }
        case TermKind::kReturn:
          emit(BcOp::kReturn);
          break;
      }
    }

    for (std::size_t i = 0; i < block_patches.size(); ++i) {
      const auto [pc, field] = block_patches[i];
      const auto target =
          static_cast<std::uint32_t>(block_pc[block_patch_targets[i]]);
      patch(pc, field, target);
    }

    // The dispatch loop starts at pc 0; make that the entry block.
    PEAK_CHECK(fn_.entry() < fn_.num_blocks(), "function has no entry");
    entry_pc_ = block_pc[fn_.entry()];

    prog_.fn_ = &fn_;
    prog_.num_regs_ = max_reg_ + 1;
    prog_.stats_.instructions = prog_.code_.size();
    return std::move(prog_);
  }

  [[nodiscard]] std::size_t entry_pc() const { return entry_pc_; }

private:
  void emit(BcOp op, std::uint32_t a = 0, std::uint32_t b = 0,
            std::uint32_t c = 0) {
    prog_.code_.push_back(BcInsn{op, 0, 0, a, b, c});
  }

  void patch(std::size_t pc, Field field, std::uint32_t value) {
    BcInsn& insn = prog_.code_[pc];
    switch (field) {
      case Field::kA: insn.a = value; break;
      case Field::kB: insn.b = value; break;
      case Field::kC: insn.c = value; break;
    }
  }

  std::uint32_t pool_const(double v) {
    // Dedup by bit pattern: double ordering would conflate -0.0 with 0.0
    // and misbehave on NaN payloads.
    const auto [it, inserted] = pool_index_.emplace(
        std::bit_cast<std::uint64_t>(v),
        static_cast<std::uint32_t>(prog_.pool_.size()));
    if (inserted) prog_.pool_.push_back(v);
    return it->second;
  }

  void touch_reg(std::uint32_t r) { max_reg_ = std::max(max_reg_, r); }

  void compile_assign(const Stmt& s) {
    // Same evaluation order as the interpreter: value, then (for pointer
    // stores) the pointee resolution, then the index.
    compile_expr(s.rhs, 0);
    if (s.lhs.is_scalar()) {
      emit(BcOp::kStoreScalar, s.lhs.var, 0);
      dirty_[s.lhs.var] = true;
      return;
    }
    if (s.lhs.via_pointer) {
      emit(BcOp::kPointee, 1, s.lhs.var);
      touch_reg(1);
      compile_expr(s.lhs.index, 2);
      emit(BcOp::kStoreDerefIdx, 1, 2, 0);
      return;
    }
    compile_expr(s.lhs.index, 1);
    ++prog_.stats_.array_accesses;
    if (index_provably_safe(s.lhs.index, s.lhs.var)) {
      ++prog_.stats_.bounds_checks_folded;
      emit(BcOp::kStoreArrayNC, s.lhs.var, 1, 0);
    } else {
      emit(BcOp::kStoreArray, s.lhs.var, 1, 0);
    }
  }

  void compile_expr(ExprId e, std::uint32_t dst) {
    touch_reg(dst);
    const Expr& node = fn_.expr(e);
    switch (node.op) {
      case ExprOp::kConst:
        emit(BcOp::kLoadConst, dst, pool_const(node.constant));
        return;
      case ExprOp::kVarRef:
        emit(BcOp::kLoadScalar, dst, node.var);
        return;
      case ExprOp::kArrayRef: {
        compile_expr(node.lhs, dst);
        ++prog_.stats_.array_accesses;
        if (index_provably_safe(node.lhs, node.var)) {
          ++prog_.stats_.bounds_checks_folded;
          emit(BcOp::kLoadArrayNC, dst, node.var, dst);
        } else {
          emit(BcOp::kLoadArray, dst, node.var, dst);
        }
        return;
      }
      case ExprOp::kDeref:
        // Pointee validation happens before the index is evaluated, as in
        // the tree-walker.
        emit(BcOp::kPointee, dst, node.var);
        compile_expr(node.lhs, dst + 1);
        emit(BcOp::kLoadDerefIdx, dst, dst, dst + 1);
        return;
      case ExprOp::kAddressOf:
        emit(BcOp::kLoadConst, dst,
             pool_const(static_cast<double>(node.var)));
        return;
      case ExprOp::kDiv:
        // The divisor is evaluated and checked before the dividend.
        compile_expr(node.rhs, dst);
        emit(BcOp::kCheckDiv, dst);
        compile_expr(node.lhs, dst + 1);
        emit(BcOp::kDiv, dst, dst + 1, dst);
        return;
      case ExprOp::kNeg:
      case ExprOp::kAbs:
      case ExprOp::kSqrt:
      case ExprOp::kFloor:
      case ExprOp::kNot:
        compile_expr(node.lhs, dst);
        emit(unary_op(node.op), dst, dst);
        return;
      case ExprOp::kAnd: {
        // Short-circuit exactly like `eval(lhs) != 0 && eval(rhs) != 0`:
        // the right operand (and any error it raises) is skipped when the
        // left is zero.
        compile_expr(node.lhs, dst);
        const std::size_t jz = prog_.code_.size();
        emit(BcOp::kJumpIfZero, dst);
        compile_expr(node.rhs, dst + 1);
        emit(BcOp::kTestNonZero, dst, dst + 1);
        const std::size_t jend = prog_.code_.size();
        emit(BcOp::kJump);
        patch(jz, Field::kB, static_cast<std::uint32_t>(prog_.code_.size()));
        emit(BcOp::kLoadConst, dst, pool_const(0.0));
        patch(jend, Field::kA,
              static_cast<std::uint32_t>(prog_.code_.size()));
        return;
      }
      case ExprOp::kOr: {
        compile_expr(node.lhs, dst);
        const std::size_t jnz = prog_.code_.size();
        emit(BcOp::kJumpIfNonZero, dst);
        compile_expr(node.rhs, dst + 1);
        emit(BcOp::kTestNonZero, dst, dst + 1);
        const std::size_t jend = prog_.code_.size();
        emit(BcOp::kJump);
        patch(jnz, Field::kB,
              static_cast<std::uint32_t>(prog_.code_.size()));
        emit(BcOp::kLoadConst, dst, pool_const(1.0));
        patch(jend, Field::kA,
              static_cast<std::uint32_t>(prog_.code_.size()));
        return;
      }
      default: {
        compile_expr(node.lhs, dst);
        compile_expr(node.rhs, dst + 1);
        emit(binary_op(node.op), dst, dst, dst + 1);
        return;
      }
    }
  }

  static BcOp unary_op(ExprOp op) {
    switch (op) {
      case ExprOp::kNeg: return BcOp::kNeg;
      case ExprOp::kAbs: return BcOp::kAbs;
      case ExprOp::kSqrt: return BcOp::kSqrt;
      case ExprOp::kFloor: return BcOp::kFloor;
      case ExprOp::kNot: return BcOp::kNot;
      default: break;
    }
    PEAK_CHECK(false, "not a unary op");
    return BcOp::kReturn;
  }

  static BcOp binary_op(ExprOp op) {
    switch (op) {
      case ExprOp::kAdd: return BcOp::kAdd;
      case ExprOp::kSub: return BcOp::kSub;
      case ExprOp::kMul: return BcOp::kMul;
      case ExprOp::kMod: return BcOp::kMod;
      case ExprOp::kMin: return BcOp::kMin;
      case ExprOp::kMax: return BcOp::kMax;
      case ExprOp::kLt: return BcOp::kLt;
      case ExprOp::kLe: return BcOp::kLe;
      case ExprOp::kGt: return BcOp::kGt;
      case ExprOp::kGe: return BcOp::kGe;
      case ExprOp::kEq: return BcOp::kEq;
      case ExprOp::kNe: return BcOp::kNe;
      case ExprOp::kBitAnd: return BcOp::kBitAnd;
      case ExprOp::kBitOr: return BcOp::kBitOr;
      case ExprOp::kBitXor: return BcOp::kBitXor;
      case ExprOp::kShl: return BcOp::kShl;
      case ExprOp::kShr: return BcOp::kShr;
      default: break;
    }
    PEAK_CHECK(false, "not a binary op");
    return BcOp::kReturn;
  }

  /// True when the access `array[index]` needs no runtime bounds check:
  /// the index expression provably evaluates (without overflow, NaN, or
  /// reads of values modified since block entry) to a value in
  /// [0, array_size - 1]. Conservative on purpose — any doubt keeps the
  /// check.
  bool index_provably_safe(ExprId index, VarId array) {
    if (!ranges_) return false;
    const std::size_t size = fn_.var(array).array_size;
    if (size == 0) return false;
    if (!interval_sound(index)) return false;
    const Interval iv = ranges_->expr_range_at(cur_block_, index);
    return iv.lo >= 0.0 &&
           iv.hi <= static_cast<double>(size) - 1.0;
  }

  /// The runtime value of `e` is guaranteed to lie within its block-entry
  /// interval (or execution throws first). Requires: a NaN/overflow-free
  /// operator subset, a strictly bounded interval at every node (finite
  /// values in, finite values out for these ops), and no operand variable
  /// redefined earlier in the current block.
  bool interval_sound(ExprId e) {
    const Expr& node = fn_.expr(e);
    switch (node.op) {
      case ExprOp::kConst:
        break;
      case ExprOp::kVarRef:
        if (fn_.var(node.var).kind != VarKind::kScalar) return false;
        if (dirty_[node.var]) return false;
        break;
      case ExprOp::kAdd:
      case ExprOp::kSub:
      case ExprOp::kMul:
      case ExprOp::kMin:
      case ExprOp::kMax:
      case ExprOp::kMod:
        if (!interval_sound(node.lhs) || !interval_sound(node.rhs))
          return false;
        break;
      case ExprOp::kNeg:
      case ExprOp::kAbs:
      case ExprOp::kFloor:
        if (!interval_sound(node.lhs)) return false;
        break;
      default:
        // Division and sqrt can produce NaN/inf from in-interval inputs;
        // array reads, pointer reads, comparisons and bit ops are not
        // tracked precisely enough. Keep the runtime check.
        return false;
    }
    const Interval iv = ranges_->expr_range_at(cur_block_, e);
    return iv.lo > -Interval::kInf && iv.hi < Interval::kInf;
  }

  const Function& fn_;
  const CostModel& cost_;
  BytecodeOptions options_;
  BytecodeProgram prog_;
  std::optional<RangeAnalysis> ranges_;
  std::vector<bool> dirty_;
  BlockId cur_block_ = 0;
  std::map<std::uint64_t, std::uint32_t> pool_index_;
  std::uint32_t max_reg_ = 0;
  std::size_t entry_pc_ = 0;
};

BytecodeProgram BytecodeProgram::compile(const Function& fn,
                                         const CostModel& cost,
                                         const BytecodeOptions& options) {
  BytecodeCompiler compiler(fn, cost, options);
  BytecodeProgram program = compiler.compile();
  program.entry_pc_ = compiler.entry_pc();
  return program;
}

BytecodeProgram BytecodeProgram::compile(const Function& fn,
                                         const BytecodeOptions& options) {
  return compile(fn, UnitCostModel{}, options);
}

namespace {

const char* op_name(BcOp op) {
  switch (op) {
    case BcOp::kBlockBegin: return "block";
    case BcOp::kStep: return "step";
    case BcOp::kLoadConst: return "ldc";
    case BcOp::kLoadScalar: return "lds";
    case BcOp::kStoreScalar: return "sts";
    case BcOp::kLoadArray: return "lda";
    case BcOp::kLoadArrayNC: return "lda.nc";
    case BcOp::kPointee: return "pointee";
    case BcOp::kLoadDerefIdx: return "lda.ind";
    case BcOp::kStoreArray: return "sta";
    case BcOp::kStoreArrayNC: return "sta.nc";
    case BcOp::kStoreDerefIdx: return "sta.ind";
    case BcOp::kAdd: return "add";
    case BcOp::kSub: return "sub";
    case BcOp::kMul: return "mul";
    case BcOp::kMin: return "min";
    case BcOp::kMax: return "max";
    case BcOp::kLt: return "lt";
    case BcOp::kLe: return "le";
    case BcOp::kGt: return "gt";
    case BcOp::kGe: return "ge";
    case BcOp::kEq: return "eq";
    case BcOp::kNe: return "ne";
    case BcOp::kBitAnd: return "and";
    case BcOp::kBitOr: return "or";
    case BcOp::kBitXor: return "xor";
    case BcOp::kShl: return "shl";
    case BcOp::kShr: return "shr";
    case BcOp::kCheckDiv: return "chkdiv";
    case BcOp::kDiv: return "div";
    case BcOp::kMod: return "mod";
    case BcOp::kNeg: return "neg";
    case BcOp::kAbs: return "abs";
    case BcOp::kSqrt: return "sqrt";
    case BcOp::kFloor: return "floor";
    case BcOp::kNot: return "not";
    case BcOp::kTestNonZero: return "tnz";
    case BcOp::kJump: return "jmp";
    case BcOp::kJumpIfZero: return "jz";
    case BcOp::kJumpIfNonZero: return "jnz";
    case BcOp::kBranch: return "br";
    case BcOp::kCall: return "call";
    case BcOp::kCounter: return "ctr";
    case BcOp::kReturn: return "ret";
  }
  return "?";
}

}  // namespace

std::string BytecodeProgram::disassemble() const {
  std::ostringstream os;
  os << "; " << fn_->name() << ": " << code_.size() << " insns, "
     << num_regs_ << " regs, " << pool_.size() << " consts\n";
  for (std::size_t pc = 0; pc < code_.size(); ++pc) {
    const BcInsn& in = code_[pc];
    os << pc << ":\t" << op_name(in.op) << ' ' << in.a << ' ' << in.b
       << ' ' << in.c;
    if (in.op == BcOp::kLoadConst || in.op == BcOp::kBlockBegin ||
        in.op == BcOp::kCounter)
      os << "\t; pool=" << pool_[in.b];
    os << '\n';
  }
  return os.str();
}

BytecodeVm::BytecodeVm(const BytecodeProgram& program, InterpreterOptions opts)
    : program_(&program), opts_(std::move(opts)) {
  regs_.assign(program.num_registers(), 0.0);
}

VarId BytecodeVm::pointee(VarId pointer, const Memory& memory) const {
  const Function& fn = *program_->fn_;
  const auto target = static_cast<VarId>(memory.scalar(pointer));
  PEAK_CHECK(target != kNoVar && target < fn.num_vars(),
             "dereference of unbound pointer in " + fn.name());
  PEAK_CHECK(fn.var(target).kind == VarKind::kArray,
             "pointer target is not an array");
  return target;
}

std::size_t BytecodeVm::checked_index(VarId array, double idx,
                                      const Memory& memory) const {
  const Function& fn = *program_->fn_;
  PEAK_CHECK(std::isfinite(idx), "non-finite array index in " + fn.name());
  const auto i = static_cast<std::int64_t>(idx);
  PEAK_CHECK(i >= 0 && static_cast<std::size_t>(i) <
                           memory.array(array).size(),
             "array index out of bounds: " + fn.var(array).name + "[" +
                 std::to_string(i) + "] size " +
                 std::to_string(memory.array(array).size()) + " in " +
                 fn.name());
  return static_cast<std::size_t>(i);
}

RunResult BytecodeVm::run(Memory& memory) {
  const Function& fn = *program_->fn_;
  RunResult result;
  const bool record_blocks = opts_.record_block_entries;
  if (record_blocks) result.block_entries.assign(fn.num_blocks(), 0);
  result.counters.assign(fn.num_counters(), 0);

  // Pre-bind array bases; array buffers are never resized mid-run (stores
  // are bounds-checked and binders run before execution). Rebound after
  // user call handlers, which receive a mutable Memory.
  const std::size_t nv = fn.num_vars();
  bases_.assign(nv, nullptr);
  sizes_.assign(nv, 0);
  auto rebind = [&] {
    for (VarId v = 0; v < nv; ++v) {
      if (fn.var(v).kind == VarKind::kArray) {
        bases_[v] = memory.arrays[v].data();
        sizes_[v] = memory.arrays[v].size();
      }
    }
  };
  rebind();

  double* const scalars = memory.scalars.data();
  double* const regs = regs_.data();
  const BcInsn* const code = program_->code_.data();
  const double* const pool = program_->pool_.data();
  const bool has_hook = static_cast<bool>(opts_.write_hook);
  const std::uint64_t max_steps = opts_.max_steps;

  std::size_t pc = program_->entry_pc_;
  for (;;) {
    const BcInsn& in = code[pc];
    switch (in.op) {
      case BcOp::kBlockBegin:
        if (record_blocks) ++result.block_entries[in.a];
        result.cycles += pool[in.b];
        break;
      case BcOp::kStep:
        ++result.steps;
        PEAK_CHECK(result.steps <= max_steps,
                   "interpreter step limit exceeded in " + fn.name());
        break;
      case BcOp::kLoadConst:
        regs[in.a] = pool[in.b];
        break;
      case BcOp::kLoadScalar:
        regs[in.a] = scalars[in.b];
        break;
      case BcOp::kStoreScalar:
        scalars[in.a] = regs[in.b];
        break;
      case BcOp::kLoadArray:
        regs[in.a] =
            bases_[in.b][checked_index(in.b, regs[in.c], memory)];
        break;
      case BcOp::kLoadArrayNC:
        regs[in.a] = bases_[in.b][static_cast<std::size_t>(
            static_cast<std::int64_t>(regs[in.c]))];
        break;
      case BcOp::kPointee:
        regs[in.a] = static_cast<double>(pointee(in.b, memory));
        break;
      case BcOp::kLoadDerefIdx: {
        const auto target = static_cast<VarId>(regs[in.b]);
        regs[in.a] =
            bases_[target][checked_index(target, regs[in.c], memory)];
        break;
      }
      case BcOp::kStoreArray: {
        const std::size_t i = checked_index(in.a, regs[in.b], memory);
        if (has_hook) opts_.write_hook(in.a, i, bases_[in.a][i]);
        bases_[in.a][i] = regs[in.c];
        break;
      }
      case BcOp::kStoreArrayNC: {
        const auto i = static_cast<std::size_t>(
            static_cast<std::int64_t>(regs[in.b]));
        if (has_hook) opts_.write_hook(in.a, i, bases_[in.a][i]);
        bases_[in.a][i] = regs[in.c];
        break;
      }
      case BcOp::kStoreDerefIdx: {
        const auto target = static_cast<VarId>(regs[in.a]);
        const std::size_t i = checked_index(target, regs[in.b], memory);
        if (has_hook) opts_.write_hook(target, i, bases_[target][i]);
        bases_[target][i] = regs[in.c];
        break;
      }
      case BcOp::kAdd:
        regs[in.a] = regs[in.b] + regs[in.c];
        break;
      case BcOp::kSub:
        regs[in.a] = regs[in.b] - regs[in.c];
        break;
      case BcOp::kMul:
        regs[in.a] = regs[in.b] * regs[in.c];
        break;
      case BcOp::kMin:
        regs[in.a] = std::min(regs[in.b], regs[in.c]);
        break;
      case BcOp::kMax:
        regs[in.a] = std::max(regs[in.b], regs[in.c]);
        break;
      case BcOp::kLt:
        regs[in.a] = regs[in.b] < regs[in.c] ? 1.0 : 0.0;
        break;
      case BcOp::kLe:
        regs[in.a] = regs[in.b] <= regs[in.c] ? 1.0 : 0.0;
        break;
      case BcOp::kGt:
        regs[in.a] = regs[in.b] > regs[in.c] ? 1.0 : 0.0;
        break;
      case BcOp::kGe:
        regs[in.a] = regs[in.b] >= regs[in.c] ? 1.0 : 0.0;
        break;
      case BcOp::kEq:
        regs[in.a] = regs[in.b] == regs[in.c] ? 1.0 : 0.0;
        break;
      case BcOp::kNe:
        regs[in.a] = regs[in.b] != regs[in.c] ? 1.0 : 0.0;
        break;
      case BcOp::kBitAnd:
        regs[in.a] = static_cast<double>(
            static_cast<std::int64_t>(regs[in.b]) &
            static_cast<std::int64_t>(regs[in.c]));
        break;
      case BcOp::kBitOr:
        regs[in.a] = static_cast<double>(
            static_cast<std::int64_t>(regs[in.b]) |
            static_cast<std::int64_t>(regs[in.c]));
        break;
      case BcOp::kBitXor:
        regs[in.a] = static_cast<double>(
            static_cast<std::int64_t>(regs[in.b]) ^
            static_cast<std::int64_t>(regs[in.c]));
        break;
      case BcOp::kShl:
        regs[in.a] = static_cast<double>(
            static_cast<std::int64_t>(regs[in.b])
            << static_cast<std::int64_t>(regs[in.c]));
        break;
      case BcOp::kShr:
        regs[in.a] = static_cast<double>(
            static_cast<std::int64_t>(regs[in.b]) >>
            static_cast<std::int64_t>(regs[in.c]));
        break;
      case BcOp::kCheckDiv:
        PEAK_CHECK(regs[in.a] != 0.0, "division by zero in " + fn.name());
        break;
      case BcOp::kDiv:
        regs[in.a] = regs[in.b] / regs[in.c];
        break;
      case BcOp::kMod: {
        const double da = regs[in.b];
        const double db = regs[in.c];
        PEAK_CHECK(std::isfinite(da) && std::isfinite(db) &&
                       std::fabs(da) < 9.2e18 && std::fabs(db) < 9.2e18,
                   "mod operand out of integer range in " + fn.name());
        const auto ia = static_cast<std::int64_t>(da);
        const auto ib = static_cast<std::int64_t>(db);
        PEAK_CHECK(ib != 0, "mod by zero in " + fn.name());
        regs[in.a] = static_cast<double>(ia % ib);
        break;
      }
      case BcOp::kNeg:
        regs[in.a] = -regs[in.b];
        break;
      case BcOp::kAbs:
        regs[in.a] = std::fabs(regs[in.b]);
        break;
      case BcOp::kSqrt:
        regs[in.a] = std::sqrt(regs[in.b]);
        break;
      case BcOp::kFloor:
        regs[in.a] = std::floor(regs[in.b]);
        break;
      case BcOp::kNot:
        regs[in.a] = regs[in.b] == 0.0 ? 1.0 : 0.0;
        break;
      case BcOp::kTestNonZero:
        regs[in.a] = regs[in.b] != 0.0 ? 1.0 : 0.0;
        break;
      case BcOp::kJump:
        pc = in.a;
        continue;
      case BcOp::kJumpIfZero:
        if (regs[in.a] == 0.0) {
          pc = in.b;
          continue;
        }
        break;
      case BcOp::kJumpIfNonZero:
        if (regs[in.a] != 0.0) {
          pc = in.b;
          continue;
        }
        break;
      case BcOp::kBranch:
        pc = regs[in.a] != 0.0 ? in.b : in.c;
        continue;
      case BcOp::kCall: {
        const BytecodeProgram::CallSite& site = program_->calls_[in.a];
        call_args_.assign(regs + site.first_arg_reg,
                          regs + site.first_arg_reg + site.num_args);
        if (opts_.call_handler) {
          result.cycles +=
              opts_.call_handler(site.callee, call_args_, memory);
          // The handler may have grown or shrunk array buffers.
          rebind();
        } else {
          result.cycles += default_call_cost(site.callee, call_args_, memory);
        }
        break;
      }
      case BcOp::kCounter:
        ++result.counters[in.a];
        result.cycles += pool[in.b];
        break;
      case BcOp::kReturn:
        return result;
    }
    ++pc;
  }
}

}  // namespace peak::ir
