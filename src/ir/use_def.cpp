#include "ir/use_def.hpp"

#include "support/check.hpp"

namespace peak::ir {

UseDefChains::UseDefChains(const Function& fn, const PointsTo& pt)
    : fn_(fn), pt_(pt) {
  const std::size_t nv = fn.num_vars();
  const std::size_t nb = fn.num_blocks();

  // Entry definitions first: def id == VarId for convenience.
  defs_.reserve(nv);
  defs_of_var_.assign(nv, {});
  for (VarId v = 0; v < nv; ++v) {
    DefSite d;
    d.is_entry = true;
    d.var = v;
    defs_.push_back(d);
    defs_of_var_[v].push_back(static_cast<std::uint32_t>(v));
  }

  // Enumerate textual definitions.
  stmt_defs_.assign(nb, {});
  for (BlockId b = 0; b < nb; ++b) {
    const BasicBlock& bb = fn.block(b);
    stmt_defs_[b].assign(bb.stmts.size(), {});
    for (std::uint32_t si = 0; si < bb.stmts.size(); ++si) {
      const Stmt& s = bb.stmts[si];
      if (s.kind != StmtKind::kAssign) continue;
      auto add_def = [&](VarId var, bool strong) {
        DefSite d;
        d.var = var;
        d.block = b;
        d.stmt = si;
        d.is_strong = strong;
        const auto id = static_cast<std::uint32_t>(defs_.size());
        defs_.push_back(d);
        defs_of_var_[var].push_back(id);
        stmt_defs_[b][si].push_back(id);
      };
      if (s.lhs.is_scalar()) {
        add_def(s.lhs.var, /*strong=*/true);
      } else if (s.lhs.via_pointer) {
        for (VarId t : pt.may_store_targets(s.lhs.var))
          add_def(t, /*strong=*/false);
      } else {
        add_def(s.lhs.var, /*strong=*/false);
      }
    }
  }

  const std::size_t nd = defs_.size();

  // Per-block gen/kill by a forward scan.
  std::vector<support::DynBitset> gen(nb, support::DynBitset(nd));
  std::vector<support::DynBitset> kill(nb, support::DynBitset(nd));
  for (BlockId b = 0; b < nb; ++b) {
    support::DynBitset g(nd);
    support::DynBitset k(nd);
    const BasicBlock& bb = fn.block(b);
    for (std::uint32_t si = 0; si < bb.stmts.size(); ++si) {
      for (std::uint32_t id : stmt_defs_[b][si]) {
        const DefSite& d = defs_[id];
        if (d.is_strong) {
          // Kill all other defs of this variable (including entry).
          for (std::uint32_t other : defs_of_var_[d.var]) {
            if (other == id) continue;
            k.set(other);
            g.reset(other);
          }
        }
        g.set(id);
        k.reset(id);
      }
    }
    gen[b] = std::move(g);
    kill[b] = std::move(k);
  }

  // Forward fixpoint. Entry block starts with every entry def live.
  rd_in_.assign(nb, support::DynBitset(nd));
  support::DynBitset entry_defs(nd);
  for (VarId v = 0; v < nv; ++v) entry_defs.set(v);

  std::vector<support::DynBitset> rd_out(nb, support::DynBitset(nd));
  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b = 0; b < nb; ++b) {
      support::DynBitset in(nd);
      if (b == fn.entry()) in = entry_defs;
      for (BlockId p : fn.predecessors()[b]) in.union_with(rd_out[p]);
      support::DynBitset out = in;
      out.subtract(kill[b]);
      out.union_with(gen[b]);
      if (!(in == rd_in_[b]) || !(out == rd_out[b])) {
        rd_in_[b] = std::move(in);
        rd_out[b] = std::move(out);
        changed = true;
      }
    }
  }
}

void UseDefChains::apply_stmt(BlockId b, std::uint32_t stmt_idx,
                              support::DynBitset& rd) const {
  for (std::uint32_t id : stmt_defs_[b][stmt_idx]) {
    const DefSite& d = defs_[id];
    if (d.is_strong)
      for (std::uint32_t other : defs_of_var_[d.var]) rd.reset(other);
    rd.set(id);
  }
}

std::vector<DefSite> UseDefChains::reaching_defs(
    VarId v, BlockId b, std::uint32_t stmt_idx) const {
  PEAK_CHECK(b < fn_.num_blocks(), "bad block id");
  PEAK_CHECK(stmt_idx <= fn_.block(b).stmts.size(), "bad stmt index");
  support::DynBitset rd = rd_in_[b];
  for (std::uint32_t si = 0; si < stmt_idx; ++si) apply_stmt(b, si, rd);

  std::vector<DefSite> result;
  for (std::uint32_t id : defs_of_var_[v])
    if (rd.test(id)) result.push_back(defs_[id]);
  return result;
}

}  // namespace peak::ir
