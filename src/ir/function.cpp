#include "ir/function.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peak::ir {

int expr_arity(ExprOp op) {
  switch (op) {
    case ExprOp::kConst:
    case ExprOp::kVarRef:
    case ExprOp::kAddressOf:
      return 0;
    case ExprOp::kArrayRef:
    case ExprOp::kDeref:
    case ExprOp::kNeg:
    case ExprOp::kAbs:
    case ExprOp::kSqrt:
    case ExprOp::kFloor:
    case ExprOp::kNot:
      return 1;
    default:
      return 2;
  }
}

bool expr_is_boolean(ExprOp op) {
  switch (op) {
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kNot:
      return true;
    default:
      return false;
  }
}

VarId Function::add_var(VarInfo info) {
  PEAK_CHECK(!finalized_, "cannot modify a finalized function");
  vars_.push_back(std::move(info));
  return static_cast<VarId>(vars_.size() - 1);
}

ExprId Function::add_expr(Expr e) {
  // Allowed even on finalized functions: optimization passes append fresh
  // expression trees (orphan nodes are harmless; statements reference
  // roots explicitly).
  exprs_.push_back(e);
  return static_cast<ExprId>(exprs_.size() - 1);
}

BlockId Function::add_block(std::string label) {
  PEAK_CHECK(!finalized_, "cannot modify a finalized function");
  blocks_.push_back(BasicBlock{});
  blocks_.back().label = std::move(label);
  return static_cast<BlockId>(blocks_.size() - 1);
}

BasicBlock& Function::block(BlockId b) {
  PEAK_DCHECK(b < blocks_.size());
  return blocks_[b];
}

const BasicBlock& Function::block(BlockId b) const {
  PEAK_DCHECK(b < blocks_.size());
  return blocks_[b];
}

const Expr& Function::expr(ExprId e) const {
  PEAK_DCHECK(e < exprs_.size());
  return exprs_[e];
}

Expr& Function::expr_mut(ExprId e) {
  PEAK_DCHECK(e < exprs_.size());
  return exprs_[e];
}

const VarInfo& Function::var(VarId v) const {
  PEAK_DCHECK(v < vars_.size());
  return vars_[v];
}

std::optional<VarId> Function::find_var(std::string_view name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i)
    if (vars_[i].name == name) return static_cast<VarId>(i);
  return std::nullopt;
}

std::vector<BlockId> Function::successors(BlockId b) const {
  const Terminator& t = block(b).term;
  switch (t.kind) {
    case TermKind::kJump:
      return {t.on_true};
    case TermKind::kBranch:
      return {t.on_true, t.on_false};
    case TermKind::kReturn:
      return {};
  }
  return {};
}

void Function::collect_used_vars(ExprId e, std::vector<VarId>& out) const {
  if (e == kNoExpr) return;
  const Expr& node = expr(e);
  if (node.var != kNoVar && node.op != ExprOp::kAddressOf)
    out.push_back(node.var);
  if (node.op == ExprOp::kAddressOf) out.push_back(node.var);
  collect_used_vars(node.lhs, out);
  collect_used_vars(node.rhs, out);
}

void Function::accumulate_expr_traits(ExprId e, BlockTraits& t) const {
  if (e == kNoExpr) return;
  const Expr& node = expr(e);
  switch (node.op) {
    case ExprOp::kConst:
    case ExprOp::kAddressOf:
      break;
    case ExprOp::kVarRef:
      // Scalar reads are register-like; only memory traffic is priced.
      break;
    case ExprOp::kArrayRef:
    case ExprOp::kDeref:
      ++t.loads;
      break;
    case ExprOp::kDiv:
    case ExprOp::kMod:
      ++t.divs;
      break;
    case ExprOp::kSqrt:
      ++t.fp_transcend;
      break;
    default: {
      const bool fp =
          node.var != kNoVar ? var(node.var).is_float : false;
      // Classify by operand variable type when visible; comparisons and
      // logic count as integer ops.
      if (!expr_is_boolean(node.op) && fp)
        ++t.fp_ops;
      else
        ++t.int_ops;
      break;
    }
  }
  accumulate_expr_traits(node.lhs, t);
  accumulate_expr_traits(node.rhs, t);
}

void Function::finalize() {
  PEAK_CHECK(!finalized_, "finalize() called twice");
  PEAK_CHECK(entry_ != kNoBlock, "function has no entry block");

  preds_.assign(blocks_.size(), {});
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    for (BlockId s : successors(b)) {
      PEAK_CHECK(s < blocks_.size(), "terminator targets missing block");
      preds_[s].push_back(b);
    }
  }

  for (auto& bb : blocks_) {
    BlockTraits t;
    for (const Stmt& s : bb.stmts) {
      switch (s.kind) {
        case StmtKind::kAssign: {
          accumulate_expr_traits(s.rhs, t);
          if (s.lhs.is_scalar()) {
            // Register-allocated scalar write: track as an int/fp op only
            // when the rhs was a pure leaf (move); cheap either way.
          } else {
            ++t.stores;
            accumulate_expr_traits(s.lhs.index, t);
          }
          // Classify the move itself.
          if (s.lhs.var != kNoVar && vars_[s.lhs.var].is_float)
            ++t.fp_ops;
          else
            ++t.int_ops;
          break;
        }
        case StmtKind::kCall:
          ++t.calls;
          for (ExprId a : s.args) accumulate_expr_traits(a, t);
          break;
        case StmtKind::kCounter:
          // Instrumentation is priced by the execution backend separately
          // so that counter overhead can be modelled (and removed when the
          // tuned binary is produced).
          break;
        case StmtKind::kNop:
          break;
      }
    }
    if (bb.term.kind == TermKind::kBranch) {
      ++t.branches;
      accumulate_expr_traits(bb.term.cond, t);
    }
    bb.traits = t;
  }

  finalized_ = true;
}

std::uint32_t Function::num_counters() const {
  std::uint32_t max_id = 0;
  bool any = false;
  for (const auto& bb : blocks_) {
    for (const Stmt& s : bb.stmts) {
      if (s.kind == StmtKind::kCounter) {
        any = true;
        max_id = std::max(max_id, s.counter_id);
      }
    }
  }
  return any ? max_id + 1 : 0;
}

}  // namespace peak::ir
