#include "ir/fuzz.hpp"

#include <vector>

#include "ir/builder.hpp"

namespace peak::ir {

namespace {

class Generator {
public:
  Generator(support::Rng rng, const FuzzOptions& options)
      : rng_(std::move(rng)), options_(options), b_("fuzz") {}

  Function generate() {
    for (std::size_t i = 0; i < options_.scalar_params; ++i)
      scalars_.push_back(
          b_.param_scalar("p" + std::to_string(i), rng_.bernoulli(0.5)));
    for (std::size_t i = 0; i < options_.arrays; ++i)
      arrays_.push_back(b_.param_array("a" + std::to_string(i),
                                       options_.array_size,
                                       rng_.bernoulli(0.5)));
    if (options_.pointers > 0) {
      // Pointers are always bound to a visible array before any use, so
      // generated programs never dereference an unbound pointer.
      for (std::size_t i = 0; i < options_.pointers; ++i) {
        const VarId ptr = b_.pointer("q" + std::to_string(i));
        b_.assign(ptr, b_.address_of(pick(arrays_)));
        pointers_.push_back(ptr);
      }
    }
    for (std::size_t i = 0; i < options_.locals; ++i) {
      const VarId v = b_.scalar("t" + std::to_string(i));
      b_.assign(v, b_.c(rng_.uniform(-4.0, 4.0)));  // defined before use
      scalars_.push_back(v);
    }
    sequence(options_.max_depth);
    return b_.build();
  }

private:
  ExprId index_expr(int depth) {
    // Always in bounds: mod(abs(e), size).
    return b_.mod(b_.abs(expr(depth)),
                  b_.c(static_cast<double>(options_.array_size)));
  }

  ExprId expr(int depth) {
    if (depth <= 0 || rng_.bernoulli(0.3)) {
      // Leaf.
      if (rng_.bernoulli(0.4))
        return b_.c(static_cast<double>(rng_.uniform_int(-8, 8)));
      return b_.v(pick(scalars_));
    }
    switch (rng_.uniform_int(0, 6)) {
      case 0: return b_.add(expr(depth - 1), expr(depth - 1));
      case 1: return b_.sub(expr(depth - 1), expr(depth - 1));
      case 2: return b_.mul(expr(depth - 1), expr(depth - 1));
      case 3: return b_.min(expr(depth - 1), expr(depth - 1));
      case 4: return b_.max(expr(depth - 1), expr(depth - 1));
      case 5: return b_.abs(expr(depth - 1));
      default:
        if (!pointers_.empty() && rng_.bernoulli(0.3))
          return b_.deref(pick(pointers_), index_expr(depth - 1));
        return b_.at(pick(arrays_), index_expr(depth - 1));
    }
  }

  ExprId condition(int depth) {
    switch (rng_.uniform_int(0, 3)) {
      case 0: return b_.lt(expr(depth), expr(depth));
      case 1: return b_.ge(expr(depth), expr(depth));
      case 2: return b_.eq(b_.mod(b_.abs(expr(depth)), b_.c(3.0)), b_.c(0.0));
      default: return b_.land(condition(0), condition(0));
    }
  }

  /// Keep scalar values finite: iterated multiplication in loops would
  /// otherwise blow up to infinity within a handful of iterations.
  ExprId clamped(ExprId e) {
    return b_.min(b_.max(e, b_.c(-1e6)), b_.c(1e6));
  }

  void statement(int depth, bool in_loop) {
    const int choice = rng_.uniform_int(0, 9);
    if (choice < 4) {
      b_.assign(pick(scalars_), clamped(expr(options_.max_expr_depth)));
    } else if (choice < 6) {
      if (!pointers_.empty() && rng_.bernoulli(0.25)) {
        // Occasionally re-bind a pointer or store through it.
        const VarId ptr = pick(pointers_);
        if (rng_.bernoulli(0.3))
          b_.assign(ptr, b_.address_of(pick(arrays_)));
        else
          b_.store_through(ptr, index_expr(2),
                           expr(options_.max_expr_depth));
      } else {
        b_.store(pick(arrays_), index_expr(2),
                 expr(options_.max_expr_depth));
      }
    } else if (choice < 8 && depth > 0 && rng_.bernoulli(options_.if_prob * 2)) {
      if (rng_.bernoulli(0.5)) {
        b_.if_then(condition(1), [&] { sequence(depth - 1, in_loop); });
      } else {
        b_.if_else(condition(1), [&] { sequence(depth - 1, in_loop); },
                   [&] { sequence(depth - 1, in_loop); });
      }
    } else if (depth > 0 && rng_.bernoulli(options_.loop_prob * 2)) {
      const VarId iv = b_.scalar("iv" + std::to_string(fresh_++));
      const double trip = static_cast<double>(rng_.uniform_int(1, 6));
      b_.for_loop(iv, b_.c(0.0), b_.c(trip), [&] {
        if (rng_.bernoulli(options_.break_prob))
          b_.break_if(condition(1));
        sequence(depth - 1, /*in_loop=*/true);
      });
      scalars_.push_back(iv);
    } else {
      b_.assign(pick(scalars_), clamped(expr(1)));
    }
    if (in_loop && rng_.bernoulli(options_.break_prob / 2))
      b_.continue_if(condition(0));
  }

  void sequence(int depth, bool in_loop = false) {
    const int n = static_cast<int>(rng_.uniform_int(1, options_.max_stmts));
    for (int i = 0; i < n; ++i) statement(depth, in_loop);
  }

  template <typename T>
  const T& pick(const std::vector<T>& xs) {
    return xs[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1))];
  }

  support::Rng rng_;
  FuzzOptions options_;
  FunctionBuilder b_;
  std::vector<VarId> scalars_;
  std::vector<VarId> arrays_;
  std::vector<VarId> pointers_;
  int fresh_ = 0;
};

}  // namespace

Function fuzz_function(std::uint64_t seed, const FuzzOptions& options) {
  Generator gen(support::Rng(seed), options);
  return gen.generate();
}

Memory fuzz_memory(const Function& fn, std::uint64_t seed) {
  Memory memory = Memory::for_function(fn);
  support::Rng rng(seed ^ 0xf00d);
  for (VarId p : fn.params()) {
    if (fn.var(p).kind == VarKind::kScalar)
      memory.scalar(p) = static_cast<double>(rng.uniform_int(-6, 6));
    else if (fn.var(p).kind == VarKind::kArray)
      for (double& x : memory.array(p))
        x = static_cast<double>(rng.uniform_int(-8, 8));
  }
  return memory;
}

}  // namespace peak::ir
