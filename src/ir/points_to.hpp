#pragma once

/// \file points_to.hpp
/// Simple flow-insensitive points-to analysis. The paper (Section 2.2)
/// notes that "simple points-to analysis is sufficient" to classify memory
/// references by pointers that are not changed within the tuning section as
/// scalar context variables — this class provides exactly that facility,
/// and also feeds the may-def sets used by liveness and Def(TS).

#include <set>
#include <vector>

#include "ir/function.hpp"

namespace peak::ir {

class PointsTo {
public:
  explicit PointsTo(const Function& fn);

  /// Arrays this pointer may reference. Meaningless if unknown(ptr).
  [[nodiscard]] const std::set<VarId>& targets(VarId ptr) const;

  /// True when the pointer may hold an address the analysis cannot see
  /// (assigned from arithmetic, an unanalyzed call, ...). Conservative
  /// clients must then assume it aliases every array.
  [[nodiscard]] bool unknown(VarId ptr) const;

  /// True if the pointer variable itself is (re)assigned anywhere in the
  /// function body — the paper's "changed within the tuning section" test.
  [[nodiscard]] bool pointer_modified(VarId ptr) const;

  /// All arrays a store through `ptr` may modify (every array if unknown).
  [[nodiscard]] std::vector<VarId> may_store_targets(VarId ptr) const;

private:
  const Function& fn_;
  std::vector<std::set<VarId>> targets_;
  std::vector<bool> unknown_;
  std::vector<bool> modified_;
  std::vector<VarId> all_arrays_;
};

}  // namespace peak::ir
