#include "ir/range_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace peak::ir {

namespace {

constexpr double kInf = Interval::kInf;

double clamp_inf(double v) {
  if (v > kInf) return kInf;
  if (v < -kInf) return -kInf;
  return std::isnan(v) ? kInf : v;
}

}  // namespace

Interval hull(const Interval& a, const Interval& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval intersect(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval iv_add(const Interval& a, const Interval& b) {
  return {clamp_inf(a.lo + b.lo), clamp_inf(a.hi + b.hi)};
}

Interval iv_sub(const Interval& a, const Interval& b) {
  return {clamp_inf(a.lo - b.hi), clamp_inf(a.hi - b.lo)};
}

Interval iv_mul(const Interval& a, const Interval& b) {
  const double c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  double lo = c[0], hi = c[0];
  for (double v : c) {
    if (std::isnan(v)) return Interval::top();  // 0 * inf
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {clamp_inf(lo), clamp_inf(hi)};
}

Interval iv_div(const Interval& a, const Interval& b) {
  if (b.lo <= 0.0 && b.hi >= 0.0) return Interval::top();
  const double c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
  double lo = c[0], hi = c[0];
  for (double v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {clamp_inf(lo), clamp_inf(hi)};
}

Interval iv_neg(const Interval& a) { return {-a.hi, -a.lo}; }

Interval iv_min(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval iv_max(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval iv_abs(const Interval& a) {
  if (a.lo >= 0.0) return a;
  if (a.hi <= 0.0) return iv_neg(a);
  return {0.0, std::max(-a.lo, a.hi)};
}

Interval iv_floor(const Interval& a) {
  return {a.lo <= -kInf ? -kInf : std::floor(a.lo),
          a.hi >= kInf ? kInf : std::floor(a.hi)};
}

Interval iv_mod(const Interval& a, const Interval& b) {
  // a % b lies in (-|b|max, |b|max); non-negative a gives [0, |b|max).
  const double bmax = std::max(std::fabs(b.lo), std::fabs(b.hi));
  if (bmax >= kInf) return Interval::top();
  if (a.lo >= 0.0) return {0.0, bmax - 1.0 < 0.0 ? 0.0 : bmax - 1.0};
  return {-(bmax - 1.0), bmax - 1.0};
}

RangeAnalysis::RangeAnalysis(const Function& fn,
                             std::map<VarId, Interval> entry_bounds)
    : fn_(fn) {
  PEAK_CHECK(fn.finalized(), "range analysis needs a finalized function");
  const std::size_t nv = fn.num_vars();
  const std::size_t nb = fn.num_blocks();

  State entry(nv, Interval::top());
  for (const auto& [v, iv] : entry_bounds) {
    PEAK_CHECK(v < nv, "entry bound for unknown variable");
    entry[v] = iv;
  }

  // Empty state = unreachable (intervals with lo > hi everywhere).
  const State unreachable(nv, Interval{1.0, 0.0});
  block_in_.assign(nb, unreachable);
  block_in_[fn.entry()] = entry;

  // Round-robin fixpoint. Early sweeps join precisely; once a bound keeps
  // moving past kWidenAfter sweeps it is widened to infinity (classic
  // interval widening), after which the branch refinements on loop-header
  // edges re-establish the finite bounds that matter (i < n ⇒ i ≤ n.hi).
  constexpr int kMaxSweeps = 40;
  constexpr int kWidenAfter = 6;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    const bool widen = sweep >= kWidenAfter;
    bool changed = false;

    // Widening with thresholds: a still-growing bound first jumps to the
    // nearest refinement-derived threshold; only past the last threshold
    // does it give up to infinity.
    auto widen_hi = [&](double hi) {
      const auto it = thresholds_.lower_bound(hi);
      return it != thresholds_.end() ? *it : kInf;
    };
    auto widen_lo = [&](double lo) {
      auto it = thresholds_.upper_bound(lo);
      if (it == thresholds_.begin()) return -kInf;
      return *std::prev(it);
    };
    auto join_into = [&](State& dst, const State& src) {
      for (std::size_t v = 0; v < nv; ++v) {
        Interval merged = hull(dst[v], src[v]);
        if (merged == dst[v]) continue;
        if (widen && !dst[v].empty()) {
          if (merged.lo < dst[v].lo) merged.lo = widen_lo(merged.lo);
          if (merged.hi > dst[v].hi) merged.hi = widen_hi(merged.hi);
        }
        if (!(merged == dst[v])) {
          dst[v] = merged;
          changed = true;
        }
      }
    };

    for (BlockId b = 0; b < nb; ++b) {
      State state = block_in_[b];
      if (std::all_of(state.begin(), state.end(),
                      [](const Interval& iv) { return iv.empty(); }))
        continue;  // unreachable so far
      for (const Stmt& s : fn.block(b).stmts) apply_stmt(state, s);

      const Terminator& t = fn.block(b).term;
      switch (t.kind) {
        case TermKind::kJump:
          join_into(block_in_[t.on_true], state);
          break;
        case TermKind::kBranch: {
          State taken = state;
          refine(taken, t.cond, true);
          State not_taken = state;
          refine(not_taken, t.cond, false);
          join_into(block_in_[t.on_true], taken);
          join_into(block_in_[t.on_false], not_taken);
          break;
        }
        case TermKind::kReturn:
          break;
      }
    }
    if (!changed) break;
  }

  // Narrowing: widening overshoots (a widened loop-header bound hides the
  // finite limit the branch refinement provides), and joins only grow.
  // Starting from the post-widening over-approximation, recompute each
  // block's in-state from scratch as the hull of its incoming refined
  // edge states — a decreasing iteration, sound above the fixpoint.
  constexpr int kNarrowSweeps = 10;
  for (int sweep = 0; sweep < kNarrowSweeps; ++sweep) {
    std::vector<State> next(nb, unreachable);
    next[fn.entry()] = entry;
    for (BlockId b = 0; b < nb; ++b) {
      State state = block_in_[b];
      if (std::all_of(state.begin(), state.end(),
                      [](const Interval& iv) { return iv.empty(); }))
        continue;
      for (const Stmt& s : fn.block(b).stmts) apply_stmt(state, s);
      auto accumulate = [&](BlockId target, const State& src) {
        for (std::size_t v = 0; v < nv; ++v)
          next[target][v] = hull(next[target][v], src[v]);
      };
      const Terminator& t = fn.block(b).term;
      switch (t.kind) {
        case TermKind::kJump:
          accumulate(t.on_true, state);
          break;
        case TermKind::kBranch: {
          State taken = state;
          refine(taken, t.cond, true);
          State not_taken = state;
          refine(not_taken, t.cond, false);
          accumulate(t.on_true, taken);
          accumulate(t.on_false, not_taken);
          break;
        }
        case TermKind::kReturn:
          break;
      }
    }
    if (next == block_in_) break;
    block_in_ = std::move(next);
  }

  // Collect written ranges per array.
  for (BlockId b = 0; b < nb; ++b) {
    State state = block_in_[b];
    if (std::all_of(state.begin(), state.end(),
                    [](const Interval& iv) { return iv.empty(); }))
      continue;  // unreachable block: its stores never execute
    for (const Stmt& s : fn.block(b).stmts) {
      if (s.kind == StmtKind::kAssign && !s.lhs.is_scalar()) {
        const bool via_ptr = s.lhs.via_pointer;
        const Interval idx = eval(state, s.lhs.index);
        auto note = [&](VarId array) {
          const std::size_t size = fn.var(array).array_size;
          auto [it, inserted] = written_.emplace(array, WrittenRange{});
          WrittenRange& range = it->second;
          if (via_ptr || !idx.bounded() || idx.lo < 0.0 ||
              idx.hi >= static_cast<double>(size)) {
            range.bounded = false;
            range.lo = 0;
            range.hi = size ? size - 1 : 0;
          } else {
            const auto lo = static_cast<std::size_t>(idx.lo);
            const auto hi = static_cast<std::size_t>(idx.hi);
            if (inserted) {
              range = {lo, hi, true};
            } else if (range.bounded) {
              range.lo = std::min(range.lo, lo);
              range.hi = std::max(range.hi, hi);
            }
          }
        };
        if (via_ptr) {
          // Pointer stores: conservatively whole-array for all arrays
          // (callers should combine with points-to for precision).
          for (VarId v = 0; v < fn.num_vars(); ++v)
            if (fn.var(v).kind == VarKind::kArray) note(v);
        } else {
          note(s.lhs.var);
        }
      }
      apply_stmt(state, s);
    }
  }
}

Interval RangeAnalysis::eval(const State& state, ExprId e) const {
  if (e == kNoExpr) return Interval::top();
  const Expr& node = fn_.expr(e);
  switch (node.op) {
    case ExprOp::kConst:
      return Interval::constant(node.constant);
    case ExprOp::kVarRef:
      return state[node.var];
    case ExprOp::kArrayRef:
    case ExprOp::kDeref:
      return Interval::top();  // array contents are not tracked
    case ExprOp::kAddressOf:
      return Interval::top();
    case ExprOp::kAdd:
      return iv_add(eval(state, node.lhs), eval(state, node.rhs));
    case ExprOp::kSub:
      return iv_sub(eval(state, node.lhs), eval(state, node.rhs));
    case ExprOp::kMul:
      return iv_mul(eval(state, node.lhs), eval(state, node.rhs));
    case ExprOp::kDiv:
      return iv_div(eval(state, node.lhs), eval(state, node.rhs));
    case ExprOp::kMod:
      return iv_mod(eval(state, node.lhs), eval(state, node.rhs));
    case ExprOp::kNeg:
      return iv_neg(eval(state, node.lhs));
    case ExprOp::kMin:
      return iv_min(eval(state, node.lhs), eval(state, node.rhs));
    case ExprOp::kMax:
      return iv_max(eval(state, node.lhs), eval(state, node.rhs));
    case ExprOp::kAbs:
      return iv_abs(eval(state, node.lhs));
    case ExprOp::kSqrt: {
      const Interval a = eval(state, node.lhs);
      return {a.lo > 0.0 ? std::sqrt(a.lo) : 0.0,
              a.hi < kInf && a.hi > 0.0 ? std::sqrt(a.hi) : kInf};
    }
    case ExprOp::kFloor:
      return iv_floor(eval(state, node.lhs));
    // Comparisons / logic yield {0, 1}.
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
    case ExprOp::kNot:
      return {0.0, 1.0};
    default:
      return Interval::top();  // bit ops: give up
  }
}

void RangeAnalysis::apply_stmt(State& state, const Stmt& s) const {
  if (s.kind != StmtKind::kAssign) return;
  if (s.lhs.is_scalar()) state[s.lhs.var] = eval(state, s.rhs);
  // Array stores do not change scalar intervals.
}

void RangeAnalysis::refine(State& state, ExprId cond,
                           bool branch_taken) {
  const Expr& node = fn_.expr(cond);
  ExprOp op = node.op;
  if (!branch_taken) {
    // Negate the comparison.
    switch (op) {
      case ExprOp::kLt: op = ExprOp::kGe; break;
      case ExprOp::kLe: op = ExprOp::kGt; break;
      case ExprOp::kGt: op = ExprOp::kLe; break;
      case ExprOp::kGe: op = ExprOp::kLt; break;
      case ExprOp::kEq: op = ExprOp::kNe; break;
      case ExprOp::kNe: op = ExprOp::kEq; break;
      case ExprOp::kAnd:
        return;  // !(a && b) gives no per-variable facts
      default:
        return;
    }
  } else if (op == ExprOp::kAnd) {
    // (a && b) taken: both hold.
    refine(state, node.lhs, true);
    refine(state, node.rhs, true);
    return;
  }

  // Strict comparisons refine to the interval closure (x < b ⇒ x ≤ b):
  // sound for reals, one element conservative for the integral induction
  // variables this mostly targets.
  auto refine_var = [&](ExprId side, const Interval& bound,
                        bool is_upper, bool /*strict*/) {
    const Expr& v = fn_.expr(side);
    if (v.op != ExprOp::kVarRef) return;
    Interval& iv = state[v.var];
    if (is_upper) {
      iv = intersect(iv, {-kInf, bound.hi});
      if (bound.hi < kInf) thresholds_.insert(bound.hi);
    } else {
      iv = intersect(iv, {bound.lo, kInf});
      if (bound.lo > -kInf) thresholds_.insert(bound.lo);
    }
  };

  const Interval lhs = eval(state, node.lhs);
  const Interval rhs = eval(state, node.rhs);
  switch (op) {
    case ExprOp::kLt:
      refine_var(node.lhs, rhs, /*is_upper=*/true, /*strict=*/true);
      refine_var(node.rhs, lhs, /*is_upper=*/false, /*strict=*/true);
      break;
    case ExprOp::kLe:
      refine_var(node.lhs, rhs, true, false);
      refine_var(node.rhs, lhs, false, false);
      break;
    case ExprOp::kGt:
      refine_var(node.lhs, rhs, false, true);
      refine_var(node.rhs, lhs, true, true);
      break;
    case ExprOp::kGe:
      refine_var(node.lhs, rhs, false, false);
      refine_var(node.rhs, lhs, true, false);
      break;
    case ExprOp::kEq: {
      const Expr& l = fn_.expr(node.lhs);
      if (l.op == ExprOp::kVarRef)
        state[l.var] = intersect(state[l.var], rhs);
      const Expr& r = fn_.expr(node.rhs);
      if (r.op == ExprOp::kVarRef)
        state[r.var] = intersect(state[r.var], lhs);
      break;
    }
    default:
      break;
  }
}

Interval RangeAnalysis::var_range_at(BlockId b, VarId v) const {
  PEAK_CHECK(b < block_in_.size() && v < fn_.num_vars(), "bad query");
  return block_in_[b][v];
}

Interval RangeAnalysis::expr_range_at(BlockId b, ExprId e) const {
  PEAK_CHECK(b < block_in_.size(), "bad block");
  return eval(block_in_[b], e);
}

}  // namespace peak::ir
