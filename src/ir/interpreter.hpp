#pragma once

/// \file interpreter.hpp
/// Executes an IR function over a memory image. The interpreter serves
/// three roles in the reproduction:
///   1. functional execution of the workload kernels (results checked
///      against native C++ implementations in the tests);
///   2. profiling: it records per-basic-block entry counts, which feed the
///      MBR component analysis, and instrumentation counter values;
///   3. virtual timing: each block entry is priced by a CostModel, giving
///      a deterministic cycle count that the simulated machine and the
///      flag-effect model then perturb per optimization configuration.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.hpp"

namespace peak::ir {

/// Memory image for one function: one slot per scalar/pointer variable and
/// one buffer per array variable. Pointer slots store the VarId of the
/// pointee array encoded as a double (kNoVar-encoded when null).
struct Memory {
  std::vector<double> scalars;
  std::vector<std::vector<double>> arrays;

  /// Allocate slots/buffers to match the function's symbol table; arrays
  /// get their declared default size unless already sized larger.
  static Memory for_function(const Function& fn);

  /// Restore the image to its for_function(fn) state without releasing
  /// buffer capacity: zero scalars and arrays, re-null pointers. The hot
  /// execution paths (one image per cached base run) reuse one pooled
  /// image through this instead of reallocating the vector-of-vectors.
  void reset(const Function& fn);

  double& scalar(VarId v) { return scalars[v]; }
  [[nodiscard]] double scalar(VarId v) const { return scalars[v]; }
  std::vector<double>& array(VarId v) { return arrays[v]; }
  [[nodiscard]] const std::vector<double>& array(VarId v) const {
    return arrays[v];
  }

  void set_pointer(VarId pointer, VarId target) {
    scalars[pointer] = static_cast<double>(target);
  }
};

/// Prices one entry of a basic block. Implementations live in peak::sim;
/// the default UnitCostModel makes cycle counts equal to operation counts.
class CostModel {
public:
  virtual ~CostModel() = default;
  /// Cost in cycles charged each time `block` is entered.
  [[nodiscard]] virtual double block_entry_cost(
      const Function& fn, BlockId block) const = 0;
  /// Extra cost charged per executed kCounter statement (instrumentation
  /// overhead; 0 in the idealised model).
  [[nodiscard]] virtual double counter_cost() const { return 0.0; }
};

class UnitCostModel final : public CostModel {
public:
  [[nodiscard]] double block_entry_cost(const Function& fn,
                                        BlockId block) const override {
    return static_cast<double>(fn.block(block).traits.total_ops()) + 1.0;
  }
};

/// Result of one interpreted invocation.
struct RunResult {
  double cycles = 0.0;                         ///< virtual time
  std::vector<std::uint64_t> block_entries;    ///< per BlockId
  std::vector<std::uint64_t> counters;         ///< per counter_id
  std::uint64_t steps = 0;                     ///< executed statements
};

/// Observes array/pointer stores: fn(array_var, index, old_value).
/// The RBR write inspector uses this to build undo logs for irregular
/// writes that static analysis cannot bound.
using WriteHook =
    std::function<void(VarId array, std::size_t index, double old_value)>;

/// Handles external calls (kCall). Returns the virtual cost of the call.
/// The default handler knows the side-effect-free math intrinsics and
/// charges a flat cost for anything else.
using CallHandler = std::function<double(
    const std::string& callee, const std::vector<double>& args, Memory&)>;

/// The pricing applied when no CallHandler is installed — shared by the
/// tree-walking interpreter and the bytecode VM so both engines charge
/// external calls identically.
double default_call_cost(const std::string& callee,
                         const std::vector<double>& args, Memory& memory);

struct InterpreterOptions {
  /// Abort (throw) after this many executed statements; guards tests
  /// against accidental infinite loops in hand-built IR.
  std::uint64_t max_steps = 500'000'000;
  /// Record per-block entry counts (small overhead; on by default).
  bool record_block_entries = true;
  WriteHook write_hook;
  CallHandler call_handler;
};

class Interpreter {
public:
  explicit Interpreter(const Function& fn, InterpreterOptions opts = {});

  /// Execute from the entry block until a return terminator.
  RunResult run(Memory& memory, const CostModel& cost) const;

  /// Convenience: run with the unit cost model.
  RunResult run(Memory& memory) const;

  [[nodiscard]] const Function& function() const { return fn_; }

private:
  double eval(ExprId e, const Memory& memory) const;
  [[nodiscard]] std::size_t checked_index(VarId array, double idx,
                                          const Memory& memory) const;
  [[nodiscard]] VarId pointee(VarId pointer, const Memory& memory) const;

  const Function& fn_;
  InterpreterOptions opts_;
};

}  // namespace peak::ir
