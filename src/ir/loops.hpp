#pragma once

/// \file loops.hpp
/// Dominator tree and natural-loop detection over the CFG. The paper's TS
/// Selector partitions a program into "the most time-consuming functions
/// and loops" (Section 4.1); loop structure is what lets the partitioner
/// treat a loop nest as a tuning-section candidate, and it gives the trait
/// derivation real loop-nesting depth instead of heuristics.

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace peak::ir {

/// Immediate-dominator tree (Cooper/Harvey/Kennedy iterative algorithm).
class DominatorTree {
public:
  explicit DominatorTree(const Function& fn);

  /// Immediate dominator; the entry block's idom is itself.
  [[nodiscard]] BlockId idom(BlockId b) const { return idom_[b]; }

  /// Does a dominate b (reflexive)?
  [[nodiscard]] bool dominates(BlockId a, BlockId b) const;

  /// Blocks unreachable from entry have no dominator information.
  [[nodiscard]] bool reachable(BlockId b) const {
    return idom_[b] != kNoBlock || b == entry_;
  }

private:
  BlockId entry_;
  std::vector<BlockId> idom_;
  std::vector<std::uint32_t> rpo_index_;
};

/// One natural loop: a back edge latch->header plus the loop body.
struct NaturalLoop {
  BlockId header = kNoBlock;
  std::vector<BlockId> latches;   ///< sources of back edges to header
  std::vector<BlockId> blocks;    ///< body, header included, sorted
  std::size_t depth = 1;          ///< nesting depth (outermost = 1)

  [[nodiscard]] bool contains(BlockId b) const;
};

/// All natural loops, one entry per header (back edges to the same header
/// are merged, as usual).
struct LoopInfo {
  std::vector<NaturalLoop> loops;

  /// Innermost loop containing b, or nullptr.
  [[nodiscard]] const NaturalLoop* innermost(BlockId b) const;
  /// Nesting depth of b (0 = not in any loop).
  [[nodiscard]] std::size_t depth_of(BlockId b) const;
  [[nodiscard]] std::size_t max_depth() const;
};

LoopInfo find_natural_loops(const Function& fn, const DominatorTree& dom);
LoopInfo find_natural_loops(const Function& fn);

}  // namespace peak::ir
