#pragma once

/// \file expr.hpp
/// Side-effect-free expression trees. Nodes live in a per-function arena
/// (vector of Expr indexed by ExprId), so expressions are cheap to share
/// and the whole function remains trivially copyable.

#include <cstdint>

#include "ir/types.hpp"

namespace peak::ir {

enum class ExprOp : std::uint8_t {
  kConst,      ///< literal; value in Expr::constant
  kVarRef,     ///< read scalar/pointer variable Expr::var
  kArrayRef,   ///< var[lhs]; var is kArray
  kDeref,      ///< (*var)[lhs]; var is kPointer, indexes the pointee array
  kAddressOf,  ///< &var; yields a pointer value to array Expr::var
  // Arithmetic.
  kAdd, kSub, kMul, kDiv, kMod, kNeg,
  kMin, kMax, kAbs, kSqrt, kFloor,
  // Comparison (yield 0.0 / 1.0).
  kLt, kLe, kGt, kGe, kEq, kNe,
  // Logic (operands treated as booleans: nonzero = true).
  kAnd, kOr, kNot,
  // Integer bit operations (operands truncated to int64).
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

/// Number of child operands an op consumes (kArrayRef/kDeref use lhs as the
/// index; kVarRef/kConst/kAddressOf are leaves).
int expr_arity(ExprOp op);

/// True for comparison and logic ops (results are 0/1).
bool expr_is_boolean(ExprOp op);

struct Expr {
  ExprOp op = ExprOp::kConst;
  double constant = 0.0;   ///< kConst payload
  VarId var = kNoVar;      ///< kVarRef / kArrayRef / kDeref / kAddressOf
  ExprId lhs = kNoExpr;    ///< first child (index expr for Array/Deref)
  ExprId rhs = kNoExpr;    ///< second child
};

}  // namespace peak::ir
