#pragma once

/// \file liveness.hpp
/// Backward liveness analysis over the CFG. The paper uses it to compute
/// the RBR input set: Input(TS) = LiveIn(b1), the live-in set of the first
/// block of the tuning section (Section 2.4.1).
///
/// Granularity is the whole variable: a read of any array element makes the
/// array live; a store to an element is a *weak* def and does not kill the
/// array's liveness (other elements may still carry incoming values).

#include <vector>

#include "ir/function.hpp"
#include "ir/points_to.hpp"
#include "support/bitset.hpp"

namespace peak::ir {

class Liveness {
public:
  Liveness(const Function& fn, const PointsTo& pt);

  [[nodiscard]] const support::DynBitset& live_in(BlockId b) const {
    return live_in_[b];
  }
  [[nodiscard]] const support::DynBitset& live_out(BlockId b) const {
    return live_out_[b];
  }

  /// Input(TS): variables live into the entry block.
  [[nodiscard]] std::vector<VarId> input_set() const;

private:
  /// use/def of a single statement (weak defs excluded from `defs`).
  void stmt_uses(const Stmt& s, support::DynBitset& uses) const;

  const Function& fn_;
  const PointsTo& pt_;
  std::vector<support::DynBitset> live_in_;
  std::vector<support::DynBitset> live_out_;
};

/// Def(TS): every variable the section may write (strong scalar defs plus
/// weak array defs, resolving pointer stores through points-to).
std::vector<VarId> def_set(const Function& fn, const PointsTo& pt);

/// Modified_Input(TS) = Input(TS) ∩ Def(TS) (paper Eq. 6) — the only state
/// RBR must checkpoint and restore between the two timed executions.
std::vector<VarId> modified_input_set(const Function& fn,
                                      const PointsTo& pt);

}  // namespace peak::ir
