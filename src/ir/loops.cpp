#include "ir/loops.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peak::ir {

namespace {

/// Reverse postorder of the reachable CFG.
std::vector<BlockId> reverse_postorder(const Function& fn) {
  std::vector<BlockId> order;
  std::vector<std::uint8_t> state(fn.num_blocks(), 0);  // 0 new, 1 open, 2 done
  // Iterative DFS with an explicit stack of (block, next-successor).
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(fn.entry(), 0);
  state[fn.entry()] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const std::vector<BlockId> succs = fn.successors(b);
    if (next < succs.size()) {
      const BlockId s = succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

DominatorTree::DominatorTree(const Function& fn)
    : entry_(fn.entry()),
      idom_(fn.num_blocks(), kNoBlock),
      rpo_index_(fn.num_blocks(), ~0u) {
  PEAK_CHECK(fn.finalized(), "dominators need a finalized function");
  const std::vector<BlockId> rpo = reverse_postorder(fn);
  for (std::size_t i = 0; i < rpo.size(); ++i)
    rpo_index_[rpo[i]] = static_cast<std::uint32_t>(i);

  idom_[entry_] = entry_;
  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index_[a] > rpo_index_[b]) a = idom_[a];
      while (rpo_index_[b] > rpo_index_[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == entry_) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : fn.predecessors()[b]) {
        if (idom_[p] == kNoBlock && p != entry_) continue;  // unprocessed
        if (rpo_index_[p] == ~0u) continue;                 // unreachable
        new_idom = new_idom == kNoBlock ? p : intersect(new_idom, p);
      }
      if (new_idom != kNoBlock && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(BlockId a, BlockId b) const {
  if (!reachable(b)) return false;
  BlockId cur = b;
  for (;;) {
    if (cur == a) return true;
    if (cur == entry_) return false;
    cur = idom_[cur];
    if (cur == kNoBlock) return false;
  }
}

bool NaturalLoop::contains(BlockId b) const {
  return std::binary_search(blocks.begin(), blocks.end(), b);
}

const NaturalLoop* LoopInfo::innermost(BlockId b) const {
  const NaturalLoop* best = nullptr;
  for (const NaturalLoop& loop : loops)
    if (loop.contains(b) && (!best || loop.depth > best->depth))
      best = &loop;
  return best;
}

std::size_t LoopInfo::depth_of(BlockId b) const {
  const NaturalLoop* loop = innermost(b);
  return loop ? loop->depth : 0;
}

std::size_t LoopInfo::max_depth() const {
  std::size_t d = 0;
  for (const NaturalLoop& loop : loops) d = std::max(d, loop.depth);
  return d;
}

LoopInfo find_natural_loops(const Function& fn, const DominatorTree& dom) {
  LoopInfo info;

  // Back edges: edge b -> h where h dominates b.
  std::vector<std::pair<BlockId, BlockId>> back_edges;
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    if (!dom.reachable(b)) continue;
    for (BlockId s : fn.successors(b))
      if (dom.dominates(s, b)) back_edges.emplace_back(b, s);
  }

  // Merge back edges by header; flood backwards from the latches.
  std::sort(back_edges.begin(), back_edges.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (std::size_t i = 0; i < back_edges.size();) {
    const BlockId header = back_edges[i].second;
    NaturalLoop loop;
    loop.header = header;

    std::vector<bool> in_loop(fn.num_blocks(), false);
    in_loop[header] = true;
    std::vector<BlockId> worklist;
    while (i < back_edges.size() && back_edges[i].second == header) {
      const BlockId latch = back_edges[i].first;
      loop.latches.push_back(latch);
      if (!in_loop[latch]) {
        in_loop[latch] = true;
        worklist.push_back(latch);
      }
      ++i;
    }
    while (!worklist.empty()) {
      const BlockId b = worklist.back();
      worklist.pop_back();
      for (BlockId p : fn.predecessors()[b]) {
        if (!in_loop[p] && dom.reachable(p)) {
          in_loop[p] = true;
          worklist.push_back(p);
        }
      }
    }
    for (BlockId b = 0; b < fn.num_blocks(); ++b)
      if (in_loop[b]) loop.blocks.push_back(b);
    info.loops.push_back(std::move(loop));
  }

  // Nesting depth: loop A is nested in B if A's header is in B's body and
  // A != B.
  for (NaturalLoop& loop : info.loops) {
    loop.depth = 1;
    for (const NaturalLoop& outer : info.loops) {
      if (&outer == &loop) continue;
      if (outer.contains(loop.header) &&
          outer.blocks.size() > loop.blocks.size())
        ++loop.depth;
    }
  }
  return info;
}

LoopInfo find_natural_loops(const Function& fn) {
  const DominatorTree dom(fn);
  return find_natural_loops(fn, dom);
}

}  // namespace peak::ir
