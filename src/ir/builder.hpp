#pragma once

/// \file builder.hpp
/// Structured construction of IR functions. Workload kernels are written
/// against this builder in a style close to the original C/Fortran source
/// (for-loops, ifs, early exits) and lowered to the basic-block CFG that
/// the analyses and the interpreter consume.
///
/// Example (sum of positive elements):
/// \code
///   FunctionBuilder b("sum_pos");
///   auto n   = b.param_scalar("n");
///   auto a   = b.param_array("a", 1024, /*is_float=*/true);
///   auto s   = b.scalar("s", /*is_float=*/true);
///   auto i   = b.scalar("i");
///   b.assign(s, b.c(0.0));
///   b.for_loop(i, b.c(0.0), b.v(n), [&] {
///     b.if_then(b.gt(b.at(a, b.v(i)), b.c(0.0)),
///               [&] { b.assign(s, b.add(b.v(s), b.at(a, b.v(i)))); });
///   });
///   ir::Function fn = b.build();
/// \endcode

#include <functional>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace peak::ir {

class FunctionBuilder {
public:
  explicit FunctionBuilder(std::string name);

  // --- symbol table -------------------------------------------------------
  VarId scalar(std::string name, bool is_float = false);
  VarId array(std::string name, std::size_t size, bool is_float = false);
  VarId pointer(std::string name);
  VarId param_scalar(std::string name, bool is_float = false);
  VarId param_array(std::string name, std::size_t size,
                    bool is_float = false);
  VarId param_pointer(std::string name);
  /// Global: persists across invocations (state the TS may carry over).
  VarId global_scalar(std::string name, bool is_float = false);
  VarId global_array(std::string name, std::size_t size,
                     bool is_float = false);

  // --- expressions (pure; can be built at any time) ------------------------
  ExprId c(double value);                ///< constant
  ExprId v(VarId var);                   ///< scalar/pointer read
  ExprId at(VarId array, ExprId index);  ///< array[index]
  ExprId deref(VarId pointer, ExprId index);  ///< (*pointer)[index]
  ExprId address_of(VarId array);

  ExprId add(ExprId a, ExprId b);
  ExprId sub(ExprId a, ExprId b);
  ExprId mul(ExprId a, ExprId b);
  ExprId div(ExprId a, ExprId b);
  ExprId mod(ExprId a, ExprId b);
  ExprId neg(ExprId a);
  ExprId min(ExprId a, ExprId b);
  ExprId max(ExprId a, ExprId b);
  ExprId abs(ExprId a);
  ExprId sqrt(ExprId a);
  ExprId floor(ExprId a);
  ExprId lt(ExprId a, ExprId b);
  ExprId le(ExprId a, ExprId b);
  ExprId gt(ExprId a, ExprId b);
  ExprId ge(ExprId a, ExprId b);
  ExprId eq(ExprId a, ExprId b);
  ExprId ne(ExprId a, ExprId b);
  ExprId land(ExprId a, ExprId b);
  ExprId lor(ExprId a, ExprId b);
  ExprId lnot(ExprId a);
  ExprId bit_and(ExprId a, ExprId b);
  ExprId bit_or(ExprId a, ExprId b);
  ExprId bit_xor(ExprId a, ExprId b);
  ExprId shl(ExprId a, ExprId b);
  ExprId shr(ExprId a, ExprId b);

  // --- statements (appended to the current block) ---------------------------
  void assign(VarId var, ExprId value);
  void store(VarId array, ExprId index, ExprId value);
  void store_through(VarId pointer, ExprId index, ExprId value);
  void call(std::string callee, std::vector<ExprId> args = {});
  void counter(std::uint32_t counter_id);

  // --- structured control flow ---------------------------------------------
  using BodyFn = std::function<void()>;

  /// if (cond) { then_body() }
  void if_then(ExprId cond, const BodyFn& then_body);
  /// if (cond) { then_body() } else { else_body() }
  void if_else(ExprId cond, const BodyFn& then_body, const BodyFn& else_body);

  /// for (iv = lo; iv < hi; iv += step) body()   (step defaults to 1)
  void for_loop(VarId iv, ExprId lo, ExprId hi, const BodyFn& body);
  void for_loop_step(VarId iv, ExprId lo, ExprId hi, ExprId step,
                     const BodyFn& body);

  /// while (cond) body(). The condition expression is re-evaluated each
  /// iteration (expressions are pure, so one ExprId suffices).
  void while_loop(ExprId cond, const BodyFn& body);

  /// Inside a loop body: if (cond) break;
  void break_if(ExprId cond);
  /// Inside a loop body: if (cond) continue;
  void continue_if(ExprId cond);

  /// Early return from the function: if (cond) return;
  void return_if(ExprId cond);

  /// Finish construction: seal the current block with a return, finalize
  /// traits/preds, and hand over the function. The builder is then spent.
  Function build();

private:
  struct LoopFrame {
    BlockId header;  ///< continue target
    BlockId exit;    ///< break target
  };

  BlockId new_block(std::string label);
  void seal_jump(BlockId from, BlockId to);
  ExprId binary(ExprOp op, ExprId a, ExprId b);
  ExprId unary(ExprOp op, ExprId a);
  VarId add_variable(std::string name, VarKind kind, bool is_param,
                     bool is_global, bool is_float, std::size_t size);

  Function fn_;
  BlockId cur_;
  std::vector<LoopFrame> loop_stack_;
  int label_counter_ = 0;
  bool built_ = false;
};

}  // namespace peak::ir
