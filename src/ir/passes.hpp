#pragma once

/// \file passes.hpp
/// IR-level optimization passes — the "static compiler" of the paper's
/// pipeline (Section 2.1: each tuning section is first optimized
/// statically, as in a conventional compiler). The passes operate on the
/// same CFG the analyses use and must preserve observable semantics: the
/// property-based tests interpret random programs before and after each
/// pass and require identical memory states.
///
/// Provided passes:
///  * constant folding          — evaluate constant expression trees
///  * copy propagation          — forward  x = y  through straight-line code
///  * dead code elimination     — drop assignments to never-read scalars
///  * loop-invariant code motion— hoist invariant scalar assignments into
///                                a preheader
///  * unreachable block elimination
///
/// Each pass reports whether it changed anything so the PassManager can
/// iterate to a fixpoint.

#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace peak::ir {

class Pass {
public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Transform in place; return true if anything changed.
  virtual bool run(Function& fn) const = 0;
};

class ConstantFolding final : public Pass {
public:
  [[nodiscard]] std::string name() const override {
    return "constant-folding";
  }
  bool run(Function& fn) const override;
};

class CopyPropagation final : public Pass {
public:
  [[nodiscard]] std::string name() const override {
    return "copy-propagation";
  }
  bool run(Function& fn) const override;
};

class DeadCodeElimination final : public Pass {
public:
  [[nodiscard]] std::string name() const override { return "dce"; }
  bool run(Function& fn) const override;
};

class LoopInvariantCodeMotion final : public Pass {
public:
  [[nodiscard]] std::string name() const override { return "licm"; }
  bool run(Function& fn) const override;
};

/// Block-local common subexpression elimination by value numbering:
/// when two scalar assignments in one block compute structurally identical
/// pure expressions with no intervening redefinition of their inputs, the
/// second becomes a copy of the first's target (which copy propagation and
/// DCE then clean up).
class CommonSubexpressionElimination final : public Pass {
public:
  [[nodiscard]] std::string name() const override { return "cse"; }
  bool run(Function& fn) const override;
};

class UnreachableBlockElimination final : public Pass {
public:
  [[nodiscard]] std::string name() const override {
    return "unreachable-elim";
  }
  bool run(Function& fn) const override;
};

/// Runs passes to a fixpoint (bounded). Functions must be re-finalized by
/// the manager after structural changes; it handles that internally.
class PassManager {
public:
  PassManager& add(std::unique_ptr<Pass> pass);

  /// The conventional -O2-ish pipeline over our pass set.
  static PassManager standard_pipeline();

  /// Returns the number of individual pass applications that changed
  /// something.
  std::size_t run(Function& fn, int max_iterations = 4) const;

private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Rebuild CFG bookkeeping (predecessors, traits) after a pass mutated the
/// function. Exposed for pass implementations and tests.
void refinalize(Function& fn);

}  // namespace peak::ir
