#include "ir/passes.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "ir/liveness.hpp"
#include "ir/loops.hpp"
#include "ir/points_to.hpp"
#include "support/bitset.hpp"
#include "support/check.hpp"

namespace peak::ir {

namespace {

bool is_const(const Function& fn, ExprId e, double* value = nullptr) {
  if (e == kNoExpr) return false;
  const Expr& node = fn.expr(e);
  if (node.op != ExprOp::kConst) return false;
  if (value) *value = node.constant;
  return true;
}

/// Fold one node if both children are constants. Returns true on change.
bool fold_node(Function& fn, ExprId e) {
  Expr& node = fn.expr_mut(e);
  const int arity = expr_arity(node.op);
  if (node.op == ExprOp::kConst || arity == 0) return false;

  double a = 0.0, b = 0.0;
  if (!is_const(fn, node.lhs, &a)) return false;
  if (arity == 2 && !is_const(fn, node.rhs, &b)) return false;

  double result = 0.0;
  switch (node.op) {
    case ExprOp::kAdd: result = a + b; break;
    case ExprOp::kSub: result = a - b; break;
    case ExprOp::kMul: result = a * b; break;
    case ExprOp::kDiv:
      if (b == 0.0) return false;  // preserve the runtime error
      result = a / b;
      break;
    case ExprOp::kMod:
      if (static_cast<std::int64_t>(b) == 0) return false;
      result = static_cast<double>(static_cast<std::int64_t>(a) %
                                   static_cast<std::int64_t>(b));
      break;
    case ExprOp::kNeg: result = -a; break;
    case ExprOp::kMin: result = std::min(a, b); break;
    case ExprOp::kMax: result = std::max(a, b); break;
    case ExprOp::kAbs: result = std::fabs(a); break;
    case ExprOp::kSqrt: result = std::sqrt(a); break;
    case ExprOp::kFloor: result = std::floor(a); break;
    case ExprOp::kLt: result = a < b; break;
    case ExprOp::kLe: result = a <= b; break;
    case ExprOp::kGt: result = a > b; break;
    case ExprOp::kGe: result = a >= b; break;
    case ExprOp::kEq: result = a == b; break;
    case ExprOp::kNe: result = a != b; break;
    case ExprOp::kAnd: result = (a != 0.0 && b != 0.0); break;
    case ExprOp::kOr: result = (a != 0.0 || b != 0.0); break;
    case ExprOp::kNot: result = a == 0.0; break;
    default:
      return false;  // bit ops / memory ops: leave alone
  }

  node.op = ExprOp::kConst;
  node.constant = result;
  node.var = kNoVar;
  node.lhs = kNoExpr;
  node.rhs = kNoExpr;
  return true;
}

bool fold_tree(Function& fn, ExprId e) {
  if (e == kNoExpr) return false;
  bool changed = false;
  // Post-order: children first. Copy the child ids before folding mutates
  // the node.
  const ExprId lhs = fn.expr(e).lhs;
  const ExprId rhs = fn.expr(e).rhs;
  changed |= fold_tree(fn, lhs);
  changed |= fold_tree(fn, rhs);
  changed |= fold_node(fn, e);
  return changed;
}

/// Clone the tree rooted at `e`, substituting reads of `from` by `to`.
ExprId clone_substituting(Function& fn, ExprId e, VarId from, VarId to) {
  if (e == kNoExpr) return kNoExpr;
  Expr node = fn.expr(e);
  node.lhs = clone_substituting(fn, node.lhs, from, to);
  node.rhs = clone_substituting(fn, node.rhs, from, to);
  if (node.op == ExprOp::kVarRef && node.var == from) node.var = to;
  return fn.add_expr(node);
}

bool tree_reads_var(const Function& fn, ExprId e, VarId v) {
  if (e == kNoExpr) return false;
  const Expr& node = fn.expr(e);
  if (node.op == ExprOp::kVarRef && node.var == v) return true;
  return tree_reads_var(fn, node.lhs, v) || tree_reads_var(fn, node.rhs, v);
}

bool tree_reads_memory(const Function& fn, ExprId e) {
  if (e == kNoExpr) return false;
  const Expr& node = fn.expr(e);
  if (node.op == ExprOp::kArrayRef || node.op == ExprOp::kDeref)
    return true;
  return tree_reads_memory(fn, node.lhs) || tree_reads_memory(fn, node.rhs);
}

}  // namespace

bool ConstantFolding::run(Function& fn) const {
  bool changed = false;
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    BasicBlock& bb = fn.block(b);
    for (Stmt& s : bb.stmts) {
      if (s.kind == StmtKind::kAssign) {
        changed |= fold_tree(fn, s.rhs);
        if (!s.lhs.is_scalar()) changed |= fold_tree(fn, s.lhs.index);
      } else if (s.kind == StmtKind::kCall) {
        for (ExprId a : s.args) changed |= fold_tree(fn, a);
      }
    }
    if (bb.term.kind == TermKind::kBranch) {
      changed |= fold_tree(fn, bb.term.cond);
      // A constant condition turns the branch into a jump (and feeds
      // unreachable-block elimination).
      double cond = 0.0;
      if (is_const(fn, bb.term.cond, &cond)) {
        const BlockId target =
            cond != 0.0 ? bb.term.on_true : bb.term.on_false;
        bb.term = Terminator{TermKind::kJump, kNoExpr, target, kNoBlock};
        changed = true;
      }
    }
  }
  if (changed) fn.refinalize();
  return changed;
}

bool CopyPropagation::run(Function& fn) const {
  // Block-local: after  x = y  (both scalars), later reads of x in the
  // same block become reads of y, until either side is redefined. Use
  // trees are cloned before substitution because expression nodes may be
  // shared between statements.
  bool changed = false;
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    BasicBlock& bb = fn.block(b);
    for (std::size_t si = 0; si < bb.stmts.size(); ++si) {
      const Stmt& copy = bb.stmts[si];
      if (copy.kind != StmtKind::kAssign || !copy.lhs.is_scalar()) continue;
      const Expr& rhs = fn.expr(copy.rhs);
      if (rhs.op != ExprOp::kVarRef) continue;
      const VarId x = copy.lhs.var;
      const VarId y = rhs.var;
      if (x == y || fn.var(y).kind == VarKind::kPointer) continue;

      for (std::size_t sj = si + 1; sj < bb.stmts.size(); ++sj) {
        Stmt& use = bb.stmts[sj];
        if (use.kind == StmtKind::kAssign) {
          if (tree_reads_var(fn, use.rhs, x)) {
            use.rhs = clone_substituting(fn, use.rhs, x, y);
            changed = true;
          }
          if (!use.lhs.is_scalar() &&
              tree_reads_var(fn, use.lhs.index, x)) {
            use.lhs.index = clone_substituting(fn, use.lhs.index, x, y);
            changed = true;
          }
          // Stop at redefinitions of either variable.
          if (use.lhs.is_scalar() &&
              (use.lhs.var == x || use.lhs.var == y))
            break;
        } else if (use.kind == StmtKind::kCall) {
          for (ExprId& a : use.args) {
            if (tree_reads_var(fn, a, x)) {
              a = clone_substituting(fn, a, x, y);
              changed = true;
            }
          }
        }
      }
    }
  }
  if (changed) fn.refinalize();
  return changed;
}

bool DeadCodeElimination::run(Function& fn) const {
  const PointsTo pt(fn);
  const Liveness live(fn, pt);
  bool changed = false;

  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    BasicBlock& bb = fn.block(b);
    // Backward scan with a running live set.
    support::DynBitset live_set = live.live_out(b);
    // The terminator's uses are live.
    if (bb.term.kind == TermKind::kBranch) {
      std::vector<VarId> used;
      fn.collect_used_vars(bb.term.cond, used);
      for (VarId v : used) live_set.set(v);
    }
    std::vector<bool> keep(bb.stmts.size(), true);
    for (std::size_t si = bb.stmts.size(); si-- > 0;) {
      const Stmt& s = bb.stmts[si];
      // Parameters and globals are observable after the section returns
      // (they are the TS's outputs); only local temporaries can be dead.
      const bool observable =
          s.kind == StmtKind::kAssign && s.lhs.is_scalar() &&
          (fn.var(s.lhs.var).is_param || fn.var(s.lhs.var).is_global);
      if (s.kind == StmtKind::kAssign && s.lhs.is_scalar() &&
          !observable && !live_set.test(s.lhs.var)) {
        keep[si] = false;  // value never read
        changed = true;
        continue;
      }
      // Update liveness through this statement.
      if (s.kind == StmtKind::kAssign) {
        if (s.lhs.is_scalar()) live_set.reset(s.lhs.var);
        std::vector<VarId> used;
        fn.collect_used_vars(s.rhs, used);
        if (!s.lhs.is_scalar()) {
          fn.collect_used_vars(s.lhs.index, used);
          if (s.lhs.via_pointer) used.push_back(s.lhs.var);
        }
        for (VarId v : used) live_set.set(v);
      } else if (s.kind == StmtKind::kCall) {
        std::vector<VarId> used;
        for (ExprId a : s.args) fn.collect_used_vars(a, used);
        for (VarId v : used) live_set.set(v);
      }
    }
    if (std::find(keep.begin(), keep.end(), false) != keep.end()) {
      std::vector<Stmt> kept;
      for (std::size_t si = 0; si < bb.stmts.size(); ++si)
        if (keep[si]) kept.push_back(std::move(bb.stmts[si]));
      bb.stmts = std::move(kept);
    }
  }
  if (changed) fn.refinalize();
  return changed;
}

bool LoopInvariantCodeMotion::run(Function& fn) const {
  const DominatorTree dom(fn);
  const LoopInfo loops = find_natural_loops(fn, dom);
  const PointsTo pt(fn);
  const Liveness live(fn, pt);
  bool changed = false;

  for (const NaturalLoop& loop : loops.loops) {
    // Preheader: the unique predecessor of the header outside the loop,
    // ending in an unconditional jump (our builder always creates one).
    BlockId preheader = kNoBlock;
    bool unique = true;
    for (BlockId p : fn.predecessors()[loop.header]) {
      if (loop.contains(p)) continue;
      if (preheader != kNoBlock) unique = false;
      preheader = p;
    }
    if (preheader == kNoBlock || !unique ||
        fn.block(preheader).term.kind != TermKind::kJump)
      continue;

    // Variables defined anywhere in the loop.
    std::set<VarId> defined_in_loop;
    std::map<VarId, int> scalar_defs;
    for (BlockId b : loop.blocks) {
      for (const Stmt& s : fn.block(b).stmts) {
        if (s.kind != StmtKind::kAssign) continue;
        if (s.lhs.is_scalar()) {
          defined_in_loop.insert(s.lhs.var);
          ++scalar_defs[s.lhs.var];
        } else if (s.lhs.via_pointer) {
          for (VarId t : pt.may_store_targets(s.lhs.var))
            defined_in_loop.insert(t);
        } else {
          defined_in_loop.insert(s.lhs.var);
        }
      }
    }

    auto dominates_all_latches = [&](BlockId b) {
      return std::all_of(loop.latches.begin(), loop.latches.end(),
                         [&](BlockId latch) {
                           return dom.dominates(b, latch);
                         });
    };

    for (BlockId b : loop.blocks) {
      if (!dominates_all_latches(b)) continue;
      BasicBlock& bb = fn.block(b);
      for (std::size_t si = 0; si < bb.stmts.size();) {
        const Stmt& s = bb.stmts[si];
        bool hoistable = s.kind == StmtKind::kAssign && s.lhs.is_scalar();
        if (hoistable) {
          const VarId x = s.lhs.var;
          // Params/globals are observable even when never read here: a
          // zero-trip loop must leave them untouched, so never hoist them.
          hoistable = !fn.var(x).is_param && !fn.var(x).is_global &&
                      scalar_defs[x] == 1 &&           // single def in loop
                      !live.live_in(loop.header).test(x) &&  // no prior use,
                                                        // zero-trip safe
                      !tree_reads_memory(fn, s.rhs);    // loads may vary
          if (hoistable) {
            std::vector<VarId> used;
            fn.collect_used_vars(s.rhs, used);
            for (VarId v : used)
              if (defined_in_loop.contains(v)) hoistable = false;
          }
        }
        if (hoistable) {
          fn.block(preheader).stmts.push_back(bb.stmts[si]);
          bb.stmts.erase(bb.stmts.begin() +
                         static_cast<std::ptrdiff_t>(si));
          changed = true;
          // Only one hoist per pass-run keeps the analyses coherent; the
          // PassManager iterates to a fixpoint.
          fn.refinalize();
          return true;
        }
        ++si;
      }
    }
  }
  if (changed) fn.refinalize();
  return changed;
}

namespace {

/// Structural fingerprint of a pure expression tree; memory reads poison
/// the hash (they may change between statements).
bool pure_fingerprint(const Function& fn, ExprId e, std::string& out) {
  if (e == kNoExpr) {
    out += '.';
    return true;
  }
  const Expr& node = fn.expr(e);
  switch (node.op) {
    case ExprOp::kArrayRef:
    case ExprOp::kDeref:
    case ExprOp::kAddressOf:
      return false;  // not a candidate
    case ExprOp::kConst:
      out += 'c';
      out += std::to_string(node.constant);
      return true;
    case ExprOp::kVarRef:
      out += 'v';
      out += std::to_string(node.var);
      out += ';';  // delimiter: var 1 must not match inside var 12
      return true;
    default:
      out += 'o';
      out += std::to_string(static_cast<int>(node.op));
      out += '(';
      if (!pure_fingerprint(fn, node.lhs, out)) return false;
      out += ',';
      if (!pure_fingerprint(fn, node.rhs, out)) return false;
      out += ')';
      return true;
  }
}

}  // namespace

bool CommonSubexpressionElimination::run(Function& fn) const {
  bool changed = false;
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    BasicBlock& bb = fn.block(b);
    // fingerprint -> (holder var, statement index of the defining assign)
    std::map<std::string, VarId> available;
    for (Stmt& s : bb.stmts) {
      if (s.kind != StmtKind::kAssign) continue;
      if (s.lhs.is_scalar()) {
        std::string fp;
        const bool pure =
            expr_arity(fn.expr(s.rhs).op) > 0 &&  // skip trivial leaves
            pure_fingerprint(fn, s.rhs, fp);

        bool rewritten = false;
        if (pure) {
          const auto it = available.find(fp);
          if (it != available.end() && it->second != s.lhs.var) {
            // Reuse the earlier computation: s becomes a plain copy.
            Expr copy;
            copy.op = ExprOp::kVarRef;
            copy.var = it->second;
            s.rhs = fn.add_expr(copy);
            changed = true;
            rewritten = true;
          }
        }

        // The redefinition invalidates every expression reading the var —
        // and any expression the var was holding...
        const VarId killed = s.lhs.var;
        for (auto it = available.begin(); it != available.end();) {
          const bool reads =
              it->first.find('v' + std::to_string(killed) + ';') !=
              std::string::npos;
          if (reads || it->second == killed)
            it = available.erase(it);
          else
            ++it;
        }
        // ... and only then does the freshly computed value become
        // available (unless its own expression reads the killed var).
        if (pure && !rewritten &&
            fp.find('v' + std::to_string(killed) + ';') ==
                std::string::npos)
          available.emplace(fp, s.lhs.var);
      }
    }
  }
  if (changed) fn.refinalize();
  return changed;
}

bool UnreachableBlockElimination::run(Function& fn) const {
  std::vector<bool> reachable(fn.num_blocks(), false);
  std::vector<BlockId> worklist = {fn.entry()};
  reachable[fn.entry()] = true;
  while (!worklist.empty()) {
    const BlockId b = worklist.back();
    worklist.pop_back();
    for (BlockId s : fn.successors(b)) {
      if (!reachable[s]) {
        reachable[s] = true;
        worklist.push_back(s);
      }
    }
  }
  bool changed = false;
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    if (reachable[b]) continue;
    BasicBlock& bb = fn.block(b);
    if (!bb.stmts.empty() || bb.term.kind != TermKind::kReturn) {
      bb.stmts.clear();
      bb.term = Terminator{};  // return
      changed = true;
    }
  }
  if (changed) fn.refinalize();
  return changed;
}

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager PassManager::standard_pipeline() {
  PassManager pm;
  pm.add(std::make_unique<ConstantFolding>())
      .add(std::make_unique<CommonSubexpressionElimination>())
      .add(std::make_unique<CopyPropagation>())
      .add(std::make_unique<LoopInvariantCodeMotion>())
      .add(std::make_unique<DeadCodeElimination>())
      .add(std::make_unique<UnreachableBlockElimination>());
  return pm;
}

std::size_t PassManager::run(Function& fn, int max_iterations) const {
  std::size_t applications = 0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (const auto& pass : passes_) {
      if (pass->run(fn)) {
        changed = true;
        ++applications;
      }
    }
    if (!changed) break;
  }
  return applications;
}

void refinalize(Function& fn) { fn.refinalize(); }

}  // namespace peak::ir
