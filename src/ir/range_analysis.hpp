#pragma once

/// \file range_analysis.hpp
/// Symbolic range (interval) analysis over the CFG — the paper's cited
/// technique (Blume & Eigenmann [1]) for shrinking RBR's save/restore
/// overhead: if every store to an array provably hits indices within
/// [lo, hi], the checkpoint only needs that slice of the array instead of
/// the whole buffer.
///
/// The analysis is a forward abstract interpretation on intervals with
/// branch refinement (loop headers bound their induction variables) and
/// widening for termination. Entry bounds for parameters come from the
/// profile run (the observed context values) — unknown parameters default
/// to (-inf, +inf) and simply yield unbounded, i.e. whole-array, regions.

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ir/function.hpp"

namespace peak::ir {

/// Closed interval over the extended reals.
struct Interval {
  double lo = -kInf;
  double hi = kInf;

  static constexpr double kInf = 1e308;

  static Interval top() { return {}; }
  static Interval constant(double v) { return {v, v}; }

  [[nodiscard]] bool is_top() const { return lo <= -kInf && hi >= kInf; }
  [[nodiscard]] bool bounded() const { return lo > -kInf && hi < kInf; }
  [[nodiscard]] bool empty() const { return lo > hi; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

Interval hull(const Interval& a, const Interval& b);
Interval intersect(const Interval& a, const Interval& b);

// Interval arithmetic (conservative; division by an interval containing 0
// yields top).
Interval iv_add(const Interval& a, const Interval& b);
Interval iv_sub(const Interval& a, const Interval& b);
Interval iv_mul(const Interval& a, const Interval& b);
Interval iv_div(const Interval& a, const Interval& b);
Interval iv_neg(const Interval& a);
Interval iv_min(const Interval& a, const Interval& b);
Interval iv_max(const Interval& a, const Interval& b);
Interval iv_abs(const Interval& a);
Interval iv_floor(const Interval& a);
Interval iv_mod(const Interval& a, const Interval& b);

/// Byte-accurate region of one array a store may touch.
struct WrittenRange {
  std::size_t lo = 0;
  std::size_t hi = 0;  ///< inclusive
  bool bounded = false;  ///< false => assume the whole array
};

class RangeAnalysis {
public:
  /// \param entry_bounds known intervals for variables at entry (from the
  ///   profile's observed context values); everything else starts top.
  RangeAnalysis(const Function& fn,
                std::map<VarId, Interval> entry_bounds = {});

  /// Interval of a variable at entry to block b.
  [[nodiscard]] Interval var_range_at(BlockId b, VarId v) const;

  /// Interval of an expression evaluated at entry to block b.
  [[nodiscard]] Interval expr_range_at(BlockId b, ExprId e) const;

  /// Conservative written index range per array (direct stores only;
  /// pointer stores force unbounded for every may-target).
  [[nodiscard]] const std::map<VarId, WrittenRange>& written_ranges() const {
    return written_;
  }

private:
  using State = std::vector<Interval>;  // per VarId

  [[nodiscard]] Interval eval(const State& state, ExprId e) const;
  void apply_stmt(State& state, const Stmt& s) const;
  /// Refine `state` with the knowledge that `cond` evaluated to
  /// `branch_taken` (loop-header bounds, guards). Finite refinement bounds
  /// are recorded as widening thresholds.
  void refine(State& state, ExprId cond, bool branch_taken);

  const Function& fn_;
  std::vector<State> block_in_;
  std::map<VarId, WrittenRange> written_;
  /// Widening thresholds: candidate stable bounds harvested from branch
  /// refinements (loop limits like n-1, n³). Widening jumps to the nearest
  /// threshold before giving up to infinity, so slowly counting induction
  /// variables keep their finite loop bounds.
  std::set<double> thresholds_;
};

}  // namespace peak::ir
