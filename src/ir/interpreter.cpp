#include "ir/interpreter.hpp"

#include <cmath>

#include "support/check.hpp"

namespace peak::ir {

Memory Memory::for_function(const Function& fn) {
  Memory m;
  m.scalars.assign(fn.num_vars(), 0.0);
  m.arrays.resize(fn.num_vars());
  for (VarId v = 0; v < fn.num_vars(); ++v) {
    const VarInfo& info = fn.var(v);
    if (info.kind == VarKind::kArray)
      m.arrays[v].assign(info.array_size, 0.0);
    else if (info.kind == VarKind::kPointer)
      m.scalars[v] = static_cast<double>(kNoVar);
  }
  return m;
}

void Memory::reset(const Function& fn) {
  scalars.assign(fn.num_vars(), 0.0);
  arrays.resize(fn.num_vars());
  for (VarId v = 0; v < fn.num_vars(); ++v) {
    const VarInfo& info = fn.var(v);
    if (info.kind == VarKind::kArray)
      arrays[v].assign(info.array_size, 0.0);
    else if (info.kind == VarKind::kPointer)
      scalars[v] = static_cast<double>(kNoVar);
  }
}

Interpreter::Interpreter(const Function& fn, InterpreterOptions opts)
    : fn_(fn), opts_(std::move(opts)) {
  PEAK_CHECK(fn.finalized(), "interpret only finalized functions");
}

VarId Interpreter::pointee(VarId pointer, const Memory& memory) const {
  const auto target = static_cast<VarId>(memory.scalar(pointer));
  PEAK_CHECK(target != kNoVar && target < fn_.num_vars(),
             "dereference of unbound pointer in " + fn_.name());
  PEAK_CHECK(fn_.var(target).kind == VarKind::kArray,
             "pointer target is not an array");
  return target;
}

std::size_t Interpreter::checked_index(VarId array, double idx,
                                       const Memory& memory) const {
  PEAK_CHECK(std::isfinite(idx),
             "non-finite array index in " + fn_.name());
  const auto i = static_cast<std::int64_t>(idx);
  PEAK_CHECK(i >= 0 && static_cast<std::size_t>(i) <
                           memory.array(array).size(),
             "array index out of bounds: " + fn_.var(array).name + "[" +
                 std::to_string(i) + "] size " +
                 std::to_string(memory.array(array).size()) + " in " +
                 fn_.name());
  return static_cast<std::size_t>(i);
}

double Interpreter::eval(ExprId e, const Memory& memory) const {
  const Expr& node = fn_.expr(e);
  switch (node.op) {
    case ExprOp::kConst:
      return node.constant;
    case ExprOp::kVarRef:
      return memory.scalar(node.var);
    case ExprOp::kArrayRef: {
      const double idx = eval(node.lhs, memory);
      return memory.array(node.var)[checked_index(node.var, idx, memory)];
    }
    case ExprOp::kDeref: {
      const VarId target = pointee(node.var, memory);
      const double idx = eval(node.lhs, memory);
      return memory.array(target)[checked_index(target, idx, memory)];
    }
    case ExprOp::kAddressOf:
      return static_cast<double>(node.var);
    case ExprOp::kAdd:
      return eval(node.lhs, memory) + eval(node.rhs, memory);
    case ExprOp::kSub:
      return eval(node.lhs, memory) - eval(node.rhs, memory);
    case ExprOp::kMul:
      return eval(node.lhs, memory) * eval(node.rhs, memory);
    case ExprOp::kDiv: {
      const double d = eval(node.rhs, memory);
      PEAK_CHECK(d != 0.0, "division by zero in " + fn_.name());
      return eval(node.lhs, memory) / d;
    }
    case ExprOp::kMod: {
      const double da = eval(node.lhs, memory);
      const double db = eval(node.rhs, memory);
      PEAK_CHECK(std::isfinite(da) && std::isfinite(db) &&
                     std::fabs(da) < 9.2e18 && std::fabs(db) < 9.2e18,
                 "mod operand out of integer range in " + fn_.name());
      const auto a = static_cast<std::int64_t>(da);
      const auto b = static_cast<std::int64_t>(db);
      PEAK_CHECK(b != 0, "mod by zero in " + fn_.name());
      return static_cast<double>(a % b);
    }
    case ExprOp::kNeg:
      return -eval(node.lhs, memory);
    case ExprOp::kMin:
      return std::min(eval(node.lhs, memory), eval(node.rhs, memory));
    case ExprOp::kMax:
      return std::max(eval(node.lhs, memory), eval(node.rhs, memory));
    case ExprOp::kAbs:
      return std::fabs(eval(node.lhs, memory));
    case ExprOp::kSqrt:
      return std::sqrt(eval(node.lhs, memory));
    case ExprOp::kFloor:
      return std::floor(eval(node.lhs, memory));
    case ExprOp::kLt:
      return eval(node.lhs, memory) < eval(node.rhs, memory) ? 1.0 : 0.0;
    case ExprOp::kLe:
      return eval(node.lhs, memory) <= eval(node.rhs, memory) ? 1.0 : 0.0;
    case ExprOp::kGt:
      return eval(node.lhs, memory) > eval(node.rhs, memory) ? 1.0 : 0.0;
    case ExprOp::kGe:
      return eval(node.lhs, memory) >= eval(node.rhs, memory) ? 1.0 : 0.0;
    case ExprOp::kEq:
      return eval(node.lhs, memory) == eval(node.rhs, memory) ? 1.0 : 0.0;
    case ExprOp::kNe:
      return eval(node.lhs, memory) != eval(node.rhs, memory) ? 1.0 : 0.0;
    case ExprOp::kAnd:
      return (eval(node.lhs, memory) != 0.0 && eval(node.rhs, memory) != 0.0)
                 ? 1.0
                 : 0.0;
    case ExprOp::kOr:
      return (eval(node.lhs, memory) != 0.0 || eval(node.rhs, memory) != 0.0)
                 ? 1.0
                 : 0.0;
    case ExprOp::kNot:
      return eval(node.lhs, memory) == 0.0 ? 1.0 : 0.0;
    case ExprOp::kBitAnd:
      return static_cast<double>(
          static_cast<std::int64_t>(eval(node.lhs, memory)) &
          static_cast<std::int64_t>(eval(node.rhs, memory)));
    case ExprOp::kBitOr:
      return static_cast<double>(
          static_cast<std::int64_t>(eval(node.lhs, memory)) |
          static_cast<std::int64_t>(eval(node.rhs, memory)));
    case ExprOp::kBitXor:
      return static_cast<double>(
          static_cast<std::int64_t>(eval(node.lhs, memory)) ^
          static_cast<std::int64_t>(eval(node.rhs, memory)));
    case ExprOp::kShl:
      return static_cast<double>(
          static_cast<std::int64_t>(eval(node.lhs, memory))
          << static_cast<std::int64_t>(eval(node.rhs, memory)));
    case ExprOp::kShr:
      return static_cast<double>(
          static_cast<std::int64_t>(eval(node.lhs, memory)) >>
          static_cast<std::int64_t>(eval(node.rhs, memory)));
  }
  PEAK_CHECK(false, "unhandled ExprOp");
  return 0.0;
}

double default_call_cost(const std::string& callee,
                         const std::vector<double>& args, Memory&) {
  // Pure math intrinsics the kernels may use; results are discarded (calls
  // are statements), so only the cost matters here.
  (void)args;
  if (callee == "sin" || callee == "cos" || callee == "exp" ||
      callee == "log")
    return 20.0;
  return 50.0;  // unknown external routine: flat cost
}

RunResult Interpreter::run(Memory& memory, const CostModel& cost) const {
  RunResult result;
  if (opts_.record_block_entries)
    result.block_entries.assign(fn_.num_blocks(), 0);
  result.counters.assign(fn_.num_counters(), 0);

  // Per-block entry prices are invariant across the run; cache them.
  std::vector<double> block_cost(fn_.num_blocks());
  for (BlockId b = 0; b < fn_.num_blocks(); ++b)
    block_cost[b] = cost.block_entry_cost(fn_, b);
  const double counter_cost = cost.counter_cost();

  BlockId cur = fn_.entry();
  for (;;) {
    const BasicBlock& bb = fn_.block(cur);
    if (opts_.record_block_entries) ++result.block_entries[cur];
    result.cycles += block_cost[cur];

    for (const Stmt& s : bb.stmts) {
      ++result.steps;
      PEAK_CHECK(result.steps <= opts_.max_steps,
                 "interpreter step limit exceeded in " + fn_.name());
      switch (s.kind) {
        case StmtKind::kAssign: {
          const double value = eval(s.rhs, memory);
          if (s.lhs.is_scalar()) {
            memory.scalar(s.lhs.var) = value;
          } else {
            const VarId target = s.lhs.via_pointer
                                     ? pointee(s.lhs.var, memory)
                                     : s.lhs.var;
            const double idx = eval(s.lhs.index, memory);
            const std::size_t i = checked_index(target, idx, memory);
            if (opts_.write_hook)
              opts_.write_hook(target, i, memory.array(target)[i]);
            memory.array(target)[i] = value;
          }
          break;
        }
        case StmtKind::kCall: {
          std::vector<double> args;
          args.reserve(s.args.size());
          for (ExprId a : s.args) args.push_back(eval(a, memory));
          result.cycles += opts_.call_handler
                               ? opts_.call_handler(s.callee, args, memory)
                               : default_call_cost(s.callee, args, memory);
          break;
        }
        case StmtKind::kCounter:
          ++result.counters[s.counter_id];
          result.cycles += counter_cost;
          break;
        case StmtKind::kNop:
          break;
      }
    }

    const Terminator& t = bb.term;
    switch (t.kind) {
      case TermKind::kJump:
        cur = t.on_true;
        break;
      case TermKind::kBranch:
        cur = eval(t.cond, memory) != 0.0 ? t.on_true : t.on_false;
        break;
      case TermKind::kReturn:
        return result;
    }
  }
}

RunResult Interpreter::run(Memory& memory) const {
  return run(memory, UnitCostModel{});
}

}  // namespace peak::ir
