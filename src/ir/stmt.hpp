#pragma once

/// \file stmt.hpp
/// Statements and block terminators. A statement either assigns an
/// expression to an l-value (scalar, array element, or through a pointer),
/// calls an external routine, or bumps an instrumentation counter (the
/// MBR block-entry counters the paper inserts; see Section 2.3 — they add
/// no control or data dependences to the original code).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.hpp"

namespace peak::ir {

/// Assignment target.
struct LValue {
  VarId var = kNoVar;
  ExprId index = kNoExpr;  ///< kNoExpr => scalar slot; else array element
  bool via_pointer = false;  ///< var is a pointer; store into its pointee

  [[nodiscard]] bool is_scalar() const {
    return index == kNoExpr && !via_pointer;
  }
};

enum class StmtKind : std::uint8_t {
  kAssign,   ///< lhs = rhs
  kCall,     ///< callee(args...), possibly side-effecting
  kCounter,  ///< counters[counter_id] += 1 (instrumentation)
  kNop,
};

struct Stmt {
  StmtKind kind = StmtKind::kNop;
  LValue lhs;
  ExprId rhs = kNoExpr;
  std::string callee;           ///< kCall
  std::vector<ExprId> args;     ///< kCall
  std::uint32_t counter_id = 0; ///< kCounter
};

enum class TermKind : std::uint8_t { kJump, kBranch, kReturn };

/// Block terminator. kBranch evaluates cond and transfers to on_true /
/// on_false; these conditions are exactly the "control statements" that
/// the context-variable analysis of Figure 1 starts from.
struct Terminator {
  TermKind kind = TermKind::kReturn;
  ExprId cond = kNoExpr;
  BlockId on_true = kNoBlock;
  BlockId on_false = kNoBlock;
};

}  // namespace peak::ir
