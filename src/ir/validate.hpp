#pragma once

/// \file validate.hpp
/// Structural validation of IR functions. The builder cannot produce
/// malformed CFGs, but users constructing or transforming IR by hand (and
/// the optimization passes) can; validate() gives them a precise
/// diagnostic instead of an interpreter crash three layers later.

#include <string>
#include <vector>

#include "ir/function.hpp"

namespace peak::ir {

struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string message;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  [[nodiscard]] bool ok() const {
    for (const ValidationIssue& issue : issues)
      if (issue.severity == ValidationIssue::Severity::kError) return false;
    return true;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Checks performed:
///  * entry block exists and is in range
///  * every terminator target is a valid block
///  * every statement/terminator expression id is in range
///  * expression trees are acyclic and reference valid variables
///  * operand kinds match (at() on arrays, deref on pointers, scalar
///    assignment targets are not arrays)
///  * warnings: unreachable blocks, blocks with no path to a return
ValidationReport validate(const Function& fn);

}  // namespace peak::ir
