#pragma once

/// \file function.hpp
/// The Function is the unit the tuning system works on: one tuning section
/// lowered to a CFG of basic blocks, plus its symbol table and expression
/// arena. BlockTraits summarise the operation mix of each block; the
/// simulated machine prices a block entry from those traits, and the
/// flag-effect model perturbs the prices per optimization option.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "ir/stmt.hpp"
#include "ir/types.hpp"

namespace peak::ir {

/// Static operation mix of one basic block (per single entry).
struct BlockTraits {
  std::uint32_t int_ops = 0;
  std::uint32_t fp_ops = 0;
  std::uint32_t loads = 0;
  std::uint32_t stores = 0;
  std::uint32_t branches = 0;   ///< 1 if terminator is a conditional branch
  std::uint32_t calls = 0;
  std::uint32_t divs = 0;       ///< expensive ops priced separately
  std::uint32_t fp_transcend = 0;  ///< sqrt etc.

  [[nodiscard]] std::uint32_t total_ops() const {
    return int_ops + fp_ops + loads + stores + branches + calls + divs +
           fp_transcend;
  }
};

struct BasicBlock {
  std::string label;
  std::vector<Stmt> stmts;
  Terminator term;
  BlockTraits traits;  ///< filled by Function::finalize()
  bool is_loop_body = false;  ///< set by the builder for loop bodies
};

class Function {
public:
  explicit Function(std::string name = "fn") : name_(std::move(name)) {}

  // --- construction (used by FunctionBuilder) ---
  VarId add_var(VarInfo info);
  ExprId add_expr(Expr e);
  BlockId add_block(std::string label);

  BasicBlock& block(BlockId b);
  [[nodiscard]] const BasicBlock& block(BlockId b) const;
  [[nodiscard]] const Expr& expr(ExprId e) const;
  /// Mutable expression access for optimization passes (which rewrite
  /// trees in place and then call refinalize()).
  Expr& expr_mut(ExprId e);
  [[nodiscard]] const VarInfo& var(VarId v) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_vars() const { return vars_.size(); }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] std::size_t num_exprs() const { return exprs_.size(); }
  [[nodiscard]] BlockId entry() const { return entry_; }
  void set_entry(BlockId b) { entry_ = b; }

  [[nodiscard]] const std::vector<VarId>& params() const { return params_; }
  void add_param(VarId v) { params_.push_back(v); }

  /// Find a variable by name; useful in tests and trace binding.
  [[nodiscard]] std::optional<VarId> find_var(std::string_view name) const;

  /// Successor block ids of b (0, 1, or 2 entries).
  [[nodiscard]] std::vector<BlockId> successors(BlockId b) const;

  /// Predecessor lists (computed by finalize()).
  [[nodiscard]] const std::vector<std::vector<BlockId>>& predecessors()
      const {
    return preds_;
  }

  /// Variables read by an expression tree (arrays/pointers included once).
  void collect_used_vars(ExprId e, std::vector<VarId>& out) const;

  /// Compute block traits, predecessor lists, and validate terminators.
  /// Must be called once construction is complete (the builder does).
  void finalize();

  /// Recompute the derived CFG bookkeeping after an optimization pass
  /// mutated statements or terminators.
  void refinalize() {
    finalized_ = false;
    finalize();
  }

  [[nodiscard]] bool finalized() const { return finalized_; }

  /// Number of distinct instrumentation counters referenced by kCounter
  /// statements (max counter_id + 1; 0 when uninstrumented).
  [[nodiscard]] std::uint32_t num_counters() const;

private:
  void accumulate_expr_traits(ExprId e, BlockTraits& t) const;

  std::string name_;
  std::vector<VarInfo> vars_;
  std::vector<Expr> exprs_;
  std::vector<BasicBlock> blocks_;
  std::vector<std::vector<BlockId>> preds_;
  std::vector<VarId> params_;
  BlockId entry_ = kNoBlock;
  bool finalized_ = false;
};

}  // namespace peak::ir
