#include "core/jsonl.hpp"

#include <bit>
#include <cctype>
#include <cstdio>

#include "support/check.hpp"

namespace peak::core::jsonl {

std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex_double(double d) {
  return hex_u64(std::bit_cast<std::uint64_t>(d));
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  PEAK_CHECK(type == Type::kObject, "jsonl: not an object");
  auto it = object->find(key);
  PEAK_CHECK(it != object->end(), "jsonl: missing key " + key);
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return type == Type::kObject && object->count(key) > 0;
}

const std::string& JsonValue::as_string() const {
  PEAK_CHECK(type == Type::kString, "jsonl: not a string");
  return str;
}

std::uint64_t JsonValue::as_u64() const {
  PEAK_CHECK(type == Type::kNumber && !is_real, "jsonl: not an integer");
  return num;
}

double JsonValue::as_double() const {
  PEAK_CHECK(type == Type::kNumber, "jsonl: not a number");
  return is_real ? real : static_cast<double>(num);
}

bool JsonValue::as_bool() const {
  PEAK_CHECK(type == Type::kBool, "jsonl: not a bool");
  return boolean;
}

const JsonArray& JsonValue::as_array() const {
  PEAK_CHECK(type == Type::kArray, "jsonl: not an array");
  return *array;
}

double JsonValue::as_hex_double() const {
  return std::bit_cast<double>(
      static_cast<std::uint64_t>(std::stoull(as_string(), nullptr, 16)));
}

JsonValue JsonParser::parse() {
  JsonValue v = value();
  skip_ws();
  PEAK_CHECK(pos_ == text_.size(), "jsonl: trailing garbage");
  return v;
}

void JsonParser::skip_ws() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_])))
    ++pos_;
}

char JsonParser::peek() {
  PEAK_CHECK(pos_ < text_.size(), "jsonl: truncated record");
  return text_[pos_];
}

void JsonParser::expect(char c) {
  PEAK_CHECK(peek() == c, std::string("jsonl: expected '") + c + "'");
  ++pos_;
}

JsonValue JsonParser::value() {
  skip_ws();
  switch (peek()) {
    case '{': return object();
    case '[': return array();
    case '"': return string();
    case 't':
    case 'f': return boolean();
    default: return number();
  }
}

JsonValue JsonParser::object() {
  JsonValue v;
  v.type = JsonValue::Type::kObject;
  v.object = std::make_shared<JsonObject>();
  expect('{');
  skip_ws();
  if (peek() == '}') { ++pos_; return v; }
  while (true) {
    skip_ws();
    JsonValue key = string();
    skip_ws();
    expect(':');
    (*v.object)[key.str] = value();
    skip_ws();
    if (peek() == ',') { ++pos_; continue; }
    expect('}');
    return v;
  }
}

JsonValue JsonParser::array() {
  JsonValue v;
  v.type = JsonValue::Type::kArray;
  v.array = std::make_shared<JsonArray>();
  expect('[');
  skip_ws();
  if (peek() == ']') { ++pos_; return v; }
  while (true) {
    v.array->push_back(value());
    skip_ws();
    if (peek() == ',') { ++pos_; continue; }
    expect(']');
    return v;
  }
}

JsonValue JsonParser::string() {
  JsonValue v;
  v.type = JsonValue::Type::kString;
  expect('"');
  while (true) {
    char c = peek();
    ++pos_;
    if (c == '"') return v;
    if (c == '\\') {
      char esc = peek();
      ++pos_;
      switch (esc) {
        case 'n': v.str += '\n'; break;
        case 't': v.str += '\t'; break;
        default: v.str += esc;
      }
    } else {
      v.str += c;
    }
  }
}

JsonValue JsonParser::boolean() {
  JsonValue v;
  v.type = JsonValue::Type::kBool;
  if (text_.compare(pos_, 4, "true") == 0) {
    v.boolean = true;
    pos_ += 4;
  } else if (text_.compare(pos_, 5, "false") == 0) {
    v.boolean = false;
    pos_ += 5;
  } else {
    PEAK_CHECK(false, "jsonl: bad literal");
  }
  return v;
}

JsonValue JsonParser::number() {
  JsonValue v;
  v.type = JsonValue::Type::kNumber;
  const std::size_t begin = pos_;
  bool real = false;
  if (pos_ < text_.size() && text_[pos_] == '-') {
    real = true;
    ++pos_;
  }
  const std::size_t digits_begin = pos_;
  auto take_digits = [&] {
    const std::size_t at = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > at;
  };
  PEAK_CHECK(take_digits(), "jsonl: bad number");
  if (pos_ < text_.size() && text_[pos_] == '.') {
    real = true;
    ++pos_;
    PEAK_CHECK(take_digits(), "jsonl: bad number");
  }
  if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
    real = true;
    ++pos_;
    if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    PEAK_CHECK(take_digits(), "jsonl: bad number");
  }
  const std::string lit(text_.substr(begin, pos_ - begin));
  if (real) {
    v.is_real = true;
    v.real = std::stod(lit);
  } else {
    // 20 digits can overflow stoull; journal/cache writers only emit
    // in-range values, but a hostile record must throw CheckError, not
    // std::out_of_range.
    const std::string digits(text_.substr(digits_begin, pos_ - digits_begin));
    PEAK_CHECK(
        digits.size() < 20 ||
            (digits.size() == 20 && digits <= "18446744073709551615"),
        "jsonl: integer out of range");
    v.num = std::stoull(lit);
  }
  return v;
}

}  // namespace peak::core::jsonl
