#include "core/rating_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>

#include "core/jsonl.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace peak::core {

namespace {

using jsonl::hex_double;
using jsonl::JsonParser;
using jsonl::JsonValue;
using jsonl::quote;

struct CacheMetrics {
  obs::Counter& hits = obs::counter("search.cache.hit");
  obs::Counter& misses = obs::counter("search.cache.miss");
  obs::Counter& stores = obs::counter("search.cache.store");
  obs::Counter& corrupt = obs::counter("search.cache.corrupt_lines");

  static CacheMetrics& get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

/// EINTR-safe full write of `data` to `fd`; false on any hard error.
bool full_write(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string render_entry(const std::string& key,
                         const RatingCacheEntry& e) {
  std::ostringstream os;
  os << "{\"type\":\"rating\",\"key\":" << quote(key)
     << ",\"r\":" << quote(hex_double(e.r));
  if (!e.memo_added.empty()) {
    os << ",\"memo\":[";
    for (std::size_t i = 0; i < e.memo_added.size(); ++i)
      os << (i ? "," : "") << "{\"k\":" << quote(e.memo_added[i].first)
         << ",\"v\":" << quote(hex_double(e.memo_added[i].second)) << "}";
    os << "]";
  }
  if (!e.rating_obs.empty()) {
    os << ",\"robs\":[";
    for (std::size_t i = 0; i < e.rating_obs.size(); ++i)
      os << (i ? "," : "") << "{\"c\":"
         << (e.rating_obs[i].converged ? "true" : "false")
         << ",\"s\":" << e.rating_obs[i].samples << "}";
    os << "]";
  }
  os << ",\"inv\":" << e.invocations << ",\"rs\":" << e.ratings_started
     << ",\"rx\":" << e.exhausted
     << ",\"whl\":" << quote(hex_double(e.whole_program_surcharge));
  const sim::SimExecutionBackend::CostDeltas& c = e.cost;
  os << ",\"cost\":{\"acc\":" << quote(hex_double(c.accumulated))
     << ",\"timed\":" << quote(hex_double(c.timed))
     << ",\"pre\":" << quote(hex_double(c.precondition))
     << ",\"ckpt\":" << quote(hex_double(c.checkpoint))
     << ",\"faulted\":" << quote(hex_double(c.faulted))
     << ",\"retry\":" << quote(hex_double(c.retry))
     << ",\"saves\":" << c.saves << ",\"restores\":" << c.restores
     << ",\"ckpt_bytes\":" << c.checkpoint_bytes << "}";
  if (e.mbr_residual.has_value())
    os << ",\"mbr\":" << quote(hex_double(*e.mbr_residual));
  os << "}";
  return os.str();
}

RatingCacheEntry parse_entry(const JsonValue& j) {
  RatingCacheEntry e;
  e.r = j.at("r").as_hex_double();
  if (j.has("memo"))
    for (const JsonValue& m : j.at("memo").as_array())
      e.memo_added.emplace_back(m.at("k").as_string(),
                                m.at("v").as_hex_double());
  if (j.has("robs"))
    for (const JsonValue& o : j.at("robs").as_array()) {
      RatingCacheEntry::RatingObs obs;
      obs.converged = o.at("c").as_bool();
      obs.samples = o.at("s").as_u64();
      e.rating_obs.push_back(obs);
    }
  e.invocations = j.at("inv").as_u64();
  e.ratings_started = j.at("rs").as_u64();
  e.exhausted = j.at("rx").as_u64();
  e.whole_program_surcharge = j.at("whl").as_hex_double();
  const JsonValue& c = j.at("cost");
  e.cost.accumulated = c.at("acc").as_hex_double();
  e.cost.timed = c.at("timed").as_hex_double();
  e.cost.precondition = c.at("pre").as_hex_double();
  e.cost.checkpoint = c.at("ckpt").as_hex_double();
  e.cost.faulted = c.at("faulted").as_hex_double();
  e.cost.retry = c.at("retry").as_hex_double();
  e.cost.saves = c.at("saves").as_u64();
  e.cost.restores = c.at("restores").as_u64();
  e.cost.checkpoint_bytes = c.at("ckpt_bytes").as_u64();
  if (j.has("mbr")) e.mbr_residual = j.at("mbr").as_hex_double();
  return e;
}

}  // namespace

RatingCache::RatingCache(std::string path) : path_(std::move(path)) {
  // Load whatever a previous run left behind; a missing file just means
  // a cold cache. Damaged complete lines (a garbage write, a flipped bit)
  // are skipped and counted; a partial trailing line (a kill mid-store)
  // is skipped silently — that one is expected, not damage. Entries are
  // keyed, not sequenced, so a skipped line costs only itself.
  std::ifstream in(path_, std::ios::binary);
  if (in.good()) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const bool complete = !in.eof();  // terminated by '\n'
      try {
        if (line.back() != '}')
          throw support::CheckError("unterminated cache record");
        const JsonValue record = JsonParser(line).parse();
        if (!record.has("type") ||
            record.at("type").as_string() != "rating")
          continue;  // unknown record type: forward-compat, not damage
        entries_.emplace(record.at("key").as_string(),
                         parse_entry(record));
      } catch (const std::exception&) {
        // std::exception, not just CheckError: a flipped bit inside a
        // hex field surfaces as std::invalid_argument from stoull.
        if (complete) CacheMetrics::get().corrupt.inc();
      }
    }
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  PEAK_CHECK(fd_ >= 0, "cannot open rating cache " + path_);
}

RatingCache::~RatingCache() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<RatingCacheEntry> RatingCache::lookup(
    const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    CacheMetrics::get().misses.inc();
    return std::nullopt;
  }
  CacheMetrics::get().hits.inc();
  return it->second;
}

void RatingCache::store(const std::string& key,
                        const RatingCacheEntry& entry) {
  std::lock_guard lock(mutex_);
  if (!entries_.emplace(key, entry).second) return;
  const std::string line = render_entry(key, entry) + "\n";
  // flock serializes whole-line appends against every other writer —
  // other processes, and other RatingCache instances in this process
  // (flock is per open file description, and each instance holds its
  // own) — so two simultaneous stores interleave as two complete lines,
  // never as spliced bytes.
  while (::flock(fd_, LOCK_EX) != 0) {
    if (errno != EINTR) break;  // lock unavailable: still write the line
  }
  full_write(fd_, line);
  ::flock(fd_, LOCK_UN);
  CacheMetrics::get().stores.inc();
}

std::size_t RatingCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace peak::core
