#pragma once

/// \file journal.hpp
/// Crash-safe tuning journal: an append-only JSONL log of everything the
/// tuning driver decided — configurations tried, the ratings they
/// received, faults observed, quarantine transitions — plus, per
/// evaluation, a bit-exact snapshot of the evaluator's stochastic state.
/// A tuning run killed at any point can be resumed from the journal: the
/// driver replays the recorded evaluations (the deterministic search
/// re-issues the identical probe sequence, the journal supplies the
/// recorded ratings without touching the backend), restores the snapshot
/// of the last record, and continues live — producing a TuningOutcome
/// bit-identical to the uninterrupted run.
///
/// Doubles are serialized as 16-hex-digit IEEE-754 bit patterns, never as
/// decimal text, so a round trip through the journal is exact.

#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "fault/guarded_executor.hpp"
#include "sim/exec_backend.hpp"

namespace peak::core {

/// One recorded relative_improvement() evaluation, with the state deltas
/// replay needs (memoized ratings, validated configs, quarantine failure
/// counts) and the full post-evaluation snapshot.
struct JournalEval {
  std::string base_key;
  std::string cfg_key;
  double r = 0.0;

  /// rate_time memo entries added during this evaluation.
  std::vector<std::pair<std::string, double>> memo_added;
  /// Config keys that passed output validation during this evaluation.
  std::vector<std::string> validated_added;

  /// Post-evaluation quarantine state of every key touched during this
  /// evaluation (absolute counts, so replay is idempotent).
  struct FailDelta {
    std::string key;
    fault::FaultKind kind = fault::FaultKind::kNone;
    std::size_t failures = 0;
    bool quarantined = false;
  };
  std::vector<FailDelta> fails;

  /// Ratings completed during this evaluation, in order: whether each
  /// converged and how many window samples it consumed. Replay feeds
  /// these into the obs registry so a resumed run's rating.* counters and
  /// window-occupancy histogram match the uninterrupted run, instead of
  /// silently restarting from zero.
  struct RatingObs {
    bool converged = false;
    std::uint64_t samples = 0;
  };
  std::vector<RatingObs> ratings_observed;

  /// Bit-exact evaluator state after this evaluation. Replay restores the
  /// snapshot of the last recorded evaluation only; earlier snapshots are
  /// dead weight kept for debuggability.
  struct Snapshot {
    sim::SimExecutionBackend::Snapshot backend;
    std::size_t cursor = 0;
    std::size_t invocations = 0;
    std::size_t evaluations = 0;
    std::size_t ratings = 0;
    std::size_t exhausted = 0;
    double whole_program_surcharge = 0.0;
  };
  Snapshot snap;
};

/// The evaluations of one tune(method) call, in order.
struct JournalSegment {
  std::string method;
  std::vector<JournalEval> evals;
};

/// Append-only journal writer. Every record is one JSON object per line,
/// flushed on write, so a kill between lines loses at most the evaluation
/// in flight — which resume then simply re-runs.
class TuningJournal {
public:
  /// Opens `path` for appending (creating it if absent).
  explicit TuningJournal(std::string path);

  /// A tune(method) call is starting a fresh (non-replayed) segment.
  void start_segment(const std::string& method);

  void record_eval(const JournalEval& eval);

  /// Informational fault record (replay derives everything it needs from
  /// the eval records; fault lines are for humans and the obs exporters).
  void record_fault(const fault::FaultEvent& event);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// What load() found besides the records: how much of the file is
  /// replayable and how much was rejected.
  struct LoadStats {
    /// Lines discarded as corrupt: the first damaged complete line plus
    /// everything after it. The eval chain is sequence-checked, so a
    /// record past a damaged one cannot be replayed even if it parses —
    /// the whole tail counts as lost.
    std::uint64_t corrupt_lines = 0;
    /// Byte offset just past the last replayable record. A resume that
    /// appends must truncate the file here first, or its new records
    /// would land after the corrupt tail and be lost on the next load.
    std::uint64_t good_bytes = 0;
    /// True when load() stopped before the end of the file (mid-file
    /// corruption; a partial trailing line alone does not set this).
    bool truncated = false;
  };

  /// Parse a journal back into segments. Unknown record types and a
  /// trailing partial line (the record being written when the process
  /// died) are skipped in either mode. A damaged *complete* line mid-file
  /// ends the replayable prefix: lenient mode (strict == false, the
  /// default) returns the records before it, counts the discarded tail in
  /// `stats` and the "journal.corrupt_lines" obs counter; strict mode
  /// throws support::CheckError instead.
  static std::vector<JournalSegment> load(const std::string& path,
                                          bool strict = false,
                                          LoadStats* stats = nullptr);

private:
  void write_line(const std::string& line);

  std::string path_;
  std::ofstream out_;
};

}  // namespace peak::core
