#include "core/profile.hpp"

#include <map>
#include <set>

#include "analysis/instrumentation.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/timer.hpp"
#include "stats/regression.hpp"
#include "ir/bytecode.hpp"
#include "ir/interpreter.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::core {

namespace {

/// Order-insensitive hash of an array's contents.
std::uint64_t hash_array(const std::vector<double>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (double v : values) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    h = support::hash_combine(h, bits);
  }
  return h;
}

}  // namespace

ProfileData profile_workload(const workloads::Workload& workload,
                             const workloads::Trace& trace,
                             const sim::MachineModel& machine,
                             const ProfileOptions& options) {
  ProfileData data;
  const ir::Function& fn = workload.function();

  obs::ScopedSpan profile_span("profile", "profile");
  if (profile_span.active())
    profile_span.add(obs::attr("section", workload.full_name()));

  // The profile phase charges the ledger at the section level — a
  // sibling of the per-method subtrees tune() builds, since profiling
  // happens once before any rating method runs.
  obs::AttributionScope machine_scope(machine.name);
  obs::AttributionScope benchmark_scope(workload.benchmark());
  obs::AttributionScope section_scope(workload.ts_name());
  runtime::WallTimer profile_wall;
  profile_wall.start();

  // --- static compiler analyses -------------------------------------------
  {
    obs::ScopedSpan span("static_analysis", "profile");
    data.context_analysis = analysis::analyze_context_variables(fn);
    data.input_sets = analysis::analyze_input_sets(fn);
    data.rbr_screen = analysis::screen_for_rbr(fn);
    data.invocations_per_run = trace.invocations.size();
  }

  // --- context census over the (bounded) trace ------------------------------
  {
    obs::ScopedSpan span("context_census", "profile");
    std::set<std::vector<double>> distinct;
    const std::size_t limit =
        std::min(options.context_scan_limit, trace.invocations.size());
    for (std::size_t i = 0; i < limit; ++i)
      distinct.insert(trace.invocations[i].context);
    data.num_contexts = distinct.size();
  }

  // --- detailed pass: block counts, content hashes, cycle costs -------------
  const sim::MachineCostModel cost(machine);
  std::vector<std::vector<std::uint64_t>> block_profiles;
  std::vector<double> observed_times;  ///< cycles × data irregularity
  double profiled_cycles = 0.0;        ///< detailed-pass simulated cost

  {
  obs::ScopedSpan span("detailed_pass", "profile");
  const ir::Function instrumented = analysis::instrument_all_blocks(fn);
  // Compiled once, executed per detailed invocation: the profiling pass is
  // the second-hottest interpreter client after the simulation backend.
  const ir::BytecodeProgram program =
      ir::BytecodeProgram::compile(instrumented, cost);
  ir::BytecodeVm vm(program);
  std::map<ir::VarId, std::set<std::uint64_t>> content_hashes;
  double total_cycles = 0.0;

  const std::size_t detailed =
      std::min(options.detailed_invocations, trace.invocations.size());
  if (span.active()) span.add(obs::attr("invocations", detailed));
  ir::Memory memory = ir::Memory::for_function(instrumented);
  for (std::size_t i = 0; i < detailed; ++i) {
    const sim::Invocation& inv = trace.invocations[i];
    inv.bind(memory);

    // Observed parameter bounds seed the symbolic range analysis.
    for (ir::VarId p : fn.params()) {
      if (fn.var(p).kind != ir::VarKind::kScalar) continue;
      const double value = memory.scalar(p);
      auto [it, inserted] =
          data.param_bounds.emplace(p, ir::Interval::constant(value));
      if (!inserted)
        it->second = ir::hull(it->second, ir::Interval::constant(value));
    }

    // Run-time-constant check for array-content context variables
    // *before* execution mutates anything.
    for (const analysis::ContextVar& cv :
         data.context_analysis.context_vars) {
      if (cv.kind != analysis::ContextVarKind::kArrayContent) continue;
      if (cv.via_pointer) continue;  // resolved at bind time; skip hashing
      content_hashes[cv.var].insert(hash_array(memory.array(cv.var)));
    }

    ir::RunResult run = vm.run(memory);
    total_cycles += run.cycles;
    observed_times.push_back(run.cycles * inv.irregularity);
    // counters hold per-block entries (counter_id == BlockId).
    block_profiles.push_back(std::move(run.counters));
  }

  for (const auto& [var, hashes] : content_hashes) {
    if (hashes.size() > 1) {
      data.array_contents_constant = false;
      break;
    }
  }

  if (detailed > 0) {
    data.avg_invocation_cycles = total_cycles / static_cast<double>(detailed);
    data.run_total_cycles = data.avg_invocation_cycles *
                            static_cast<double>(trace.invocations.size());
  }
  profiled_cycles = total_cycles;
  }  // detailed_pass span

  // --- component analysis for MBR -------------------------------------------
  {
  obs::ScopedSpan span("component_analysis", "profile");
  data.components =
      analysis::analyze_components(fn, block_profiles, options.components);

  // Gate: the model must explain the *observed* times, not just the
  // deterministic cycle counts. Irregular codes leave a large residual.
  if (data.components.mbr_applicable && !block_profiles.empty()) {
    const std::size_t ncomp = data.components.num_components();
    stats::Matrix design(block_profiles.size(), ncomp);
    for (std::size_t r = 0; r < block_profiles.size(); ++r) {
      const std::vector<double> row =
          data.components.count_row(block_profiles[r]);
      for (std::size_t c = 0; c < ncomp; ++c) design(r, c) = row[c];
    }
    const stats::RegressionResult fit =
        stats::least_squares_nonneg(design, observed_times);
    if (!fit.ok) {
      data.components.mbr_applicable = false;
      data.components.failure_reason = "profile regression is degenerate";
    } else if (fit.var_ratio() > options.mbr_profile_var_threshold) {
      data.components.mbr_applicable = false;
      data.components.failure_reason =
          "component model leaves " +
          std::to_string(fit.var_ratio() * 100.0) +
          "% of profiled time variance unexplained (irregular code)";
    }
  }

  if (data.components.mbr_applicable) {
    // C_avg per component (constant column last), and the dominant
    // component by modelled time share.
    const std::size_t ncomp = data.components.num_components();
    std::vector<double> c_avg(ncomp, 0.0);
    std::vector<double> comp_cycles(ncomp, 0.0);
    for (const auto& row : block_profiles) {
      const std::vector<double> counts = data.components.count_row(row);
      for (std::size_t c = 0; c < ncomp; ++c) c_avg[c] += counts[c];
    }
    for (double& v : c_avg) v /= static_cast<double>(block_profiles.size());

    // Per-component modelled time: Σ blocks cost·avg entries.
    std::vector<double> avg_entries(fn.num_blocks(), 0.0);
    for (const auto& row : block_profiles)
      for (std::size_t b = 0; b < fn.num_blocks(); ++b)
        avg_entries[b] += static_cast<double>(row[b]);
    for (double& v : avg_entries)
      v /= static_cast<double>(block_profiles.size());
    for (std::size_t c = 0; c < data.components.varying.size(); ++c)
      for (ir::BlockId b : data.components.varying[c].blocks)
        comp_cycles[c] += cost.block_entry_cost(fn, b) * avg_entries[b];
    for (ir::BlockId b : data.components.constant_blocks)
      comp_cycles[ncomp - 1] += cost.block_entry_cost(fn, b) * avg_entries[b];

    double total = 0.0;
    for (double v : comp_cycles) total += v;
    data.mbr_profile.c_avg = c_avg;
    for (std::size_t c = 0; c < ncomp; ++c) {
      if (total > 0.0 && comp_cycles[c] / total >= 0.90) {
        data.mbr_profile.dominant_component = c;
        break;
      }
    }
  }
  }  // component_analysis span

  // --- checkpoint plan: range-analysis-narrowed Modified_Input --------------
  {
    obs::ScopedSpan span("checkpoint_plan", "profile");
    const ir::RangeAnalysis ranges(fn, data.param_bounds);
    data.checkpoint_plan =
        analysis::plan_checkpoint(fn, data.input_sets, ranges);
  }

  // --- the consultant's decision ---------------------------------------------
  obs::ScopedSpan consultant_span("consultant", "profile");
  rating::ConsultantInputs in;
  in.cbr_context_scalars_only = data.cbr_applicable();
  in.num_contexts = data.num_contexts;
  in.invocations = trace.invocations.size();
  in.mbr_model_built = data.components.mbr_applicable;
  in.num_components = data.components.num_components();
  in.rbr_no_side_effects = data.rbr_screen.eligible;
  // Overhead estimation from the profile (orders the method chain by
  // estimated cost; the static CBR < MBR < RBR order is the usual result,
  // but extreme context counts or checkpoint sizes can reorder it).
  in.avg_invocation_cycles = data.avg_invocation_cycles;
  in.checkpoint_cycles =
      static_cast<double>(data.checkpoint_plan.bytes(fn)) /
      sizeof(double) * (machine.load_cost + machine.store_cost);
  in.counter_cycles =
      machine.counter_cost *
      static_cast<double>(data.components.varying.size());
  data.decision = rating::decide_rating_methods(in);

  // Cycles = the detailed pass's instrumented executions (the analyses
  // around it are pure compiler work — wall only); the gauge lets the
  // drift sentinel reconcile the ledger's profile phase on its own.
  obs::gauge("profile.cycles").add(profiled_cycles);
  obs::charge_phase("profile", profiled_cycles,
                    profile_wall.elapsed() * 1e6);
  return data;
}

}  // namespace peak::core
