#pragma once

/// \file profile.hpp
/// The profile run (paper Sections 2.2–3): before tuning, PEAK runs the
/// application once on the training input with full instrumentation to
/// learn what the static analyses cannot know — the number of distinct
/// contexts, whether array-content context variables are run-time
/// constants, the per-invocation basic-block counts that the component
/// analysis merges into the MBR model, the average component counts
/// (C_avg) and the dominant component. The Rating Approach Consultant
/// turns these facts into the per-section method decision.

#include <cstdint>
#include <map>

#include "analysis/component_analysis.hpp"
#include "ir/range_analysis.hpp"
#include "analysis/context_analysis.hpp"
#include "analysis/input_sets.hpp"
#include "analysis/runtime_constants.hpp"
#include "analysis/ts_partitioner.hpp"
#include "rating/consultant.hpp"
#include "rating/mbr.hpp"
#include "sim/machine.hpp"
#include "workloads/workload.hpp"

namespace peak::core {

struct ProfileOptions {
  /// Invocations profiled in full detail (block counts, content hashes).
  std::size_t detailed_invocations = 48;
  /// Invocations scanned for context counting (bounded for huge traces).
  std::size_t context_scan_limit = 4000;
  analysis::ComponentModelOptions components{
      .max_components = 8,
      .affine_tolerance = 1e-9,
      .small_block_fraction = 0.08,
  };
  /// MBR is rejected when the component model leaves more than this
  /// fraction of the profiled time variance unexplained (SSres/SStot).
  /// Irregular codes — whose speed depends on data the counters cannot
  /// see — fail this gate, which is how the integer benchmarks end up on
  /// RBR in Table 1.
  double mbr_profile_var_threshold = 0.005;
};

struct ProfileData {
  // --- static analyses -----------------------------------------------------
  analysis::ContextAnalysisResult context_analysis;
  analysis::InputSetInfo input_sets;
  analysis::RbrScreenResult rbr_screen;
  /// Observed bounds of scalar parameters (seeds the range analysis).
  std::map<ir::VarId, ir::Interval> param_bounds;
  /// RBR checkpoint narrowed by symbolic range analysis (§2.4.2).
  analysis::CheckpointPlan checkpoint_plan;

  // --- dynamic facts from the profile run ----------------------------------
  std::size_t num_contexts = 0;        ///< distinct context keys observed
  std::size_t invocations_per_run = 0; ///< trace length
  bool array_contents_constant = true; ///< run-time-constant check verdict
  analysis::ComponentModel components;
  rating::MbrProfile mbr_profile;
  double avg_invocation_cycles = 0.0;
  double run_total_cycles = 0.0;

  // --- the consultant's verdict --------------------------------------------
  rating::MethodDecision decision;

  /// True CBR applicability after the run-time-constant check.
  [[nodiscard]] bool cbr_applicable() const {
    return context_analysis.cbr_applicable && array_contents_constant;
  }
};

/// Run the profile pass for one workload on the given dataset.
ProfileData profile_workload(const workloads::Workload& workload,
                             const workloads::Trace& trace,
                             const sim::MachineModel& machine,
                             const ProfileOptions& options = {});

}  // namespace peak::core
