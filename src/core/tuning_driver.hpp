#pragma once

/// \file tuning_driver.hpp
/// The Performance Tuning Driver (paper Figure 5, step 5): for one tuning
/// section it iteratively generates experimental versions (optimization
/// configurations proposed by the search engine), rates them against the
/// current best with the selected rating method, and keeps the winner.
/// The driver also does PEAK's cost accounting — simulated time spent,
/// invocations consumed, equivalent whole-program runs — which the
/// tuning-time experiments (Figure 7 c, d) report.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "rating/rating.hpp"
#include "rating/window.hpp"
#include "search/iterative_elimination.hpp"
#include "search/search_algorithm.hpp"
#include "sim/exec_backend.hpp"
#include "workloads/workload.hpp"

namespace peak::core {

struct DriverOptions {
  rating::WindowPolicy window{};  ///< CBR / RBR / AVG windows
  rating::MbrPolicy mbr{};
  search::IterativeEliminationOptions ie{};
  bool improved_rbr = true;
  /// Measurement pairs amortized per RBR checkpoint cycle (§2.4.2's batch
  /// optimization). 1 = one pair per invocation.
  std::size_t rbr_batch_pairs = 1;
  std::uint64_t seed = 1;
  /// Exhaustion fraction beyond which tune_auto() falls back to the next
  /// applicable rating method (paper Section 3, method switching).
  double max_exhausted_fraction = 0.3;
  /// Search algorithm over the flag space; null = Iterative Elimination
  /// with the `ie` options. The pointer is shared so a caller can reuse
  /// one algorithm instance across drivers.
  std::shared_ptr<search::SearchAlgorithm> search_algorithm;
};

struct TuningCost {
  double simulated_time = 0.0;   ///< cycles spent tuning (all overheads in)
  std::size_t invocations = 0;   ///< TS invocations consumed
  double program_runs = 0.0;     ///< invocations / invocations-per-run
  std::size_t configs_evaluated = 0;
};

struct TuningOutcome {
  search::FlagConfig best_config;
  rating::Method method = rating::Method::kWHL;
  TuningCost cost;
  double search_improvement = 1.0;  ///< measured R of best vs start
  double exhausted_fraction = 0.0;  ///< ratings that failed to converge
  /// Structured decision trace: the search algorithm's events plus the
  /// driver's method-selection / abandonment events.
  std::vector<search::SearchEvent> events;

  /// Legacy string rendering of `events` (the old `search_log` field),
  /// byte-compatible with what the driver used to emit.
  [[nodiscard]] std::vector<std::string> render_search_log() const {
    return search::render_search_log(events);
  }
};

class TuningDriver {
public:
  /// `trace` is the tuning dataset (train in the offline scenario).
  TuningDriver(const workloads::Workload& workload,
               const ProfileData& profile, const workloads::Trace& trace,
               const sim::MachineModel& machine,
               const sim::FlagEffectModel& effects, DriverOptions options);

  /// Tune with a fixed rating method (used by the Figure 7 sweeps, which
  /// compare all applicable methods).
  TuningOutcome tune(rating::Method method);

  /// Tune with the consultant's chain, switching methods when ratings do
  /// not converge (PEAK's automatic mode).
  TuningOutcome tune_auto();

private:
  class Evaluator;

  const workloads::Workload& workload_;
  const ProfileData& profile_;
  const workloads::Trace& trace_;
  const sim::MachineModel& machine_;
  const sim::FlagEffectModel& effects_;
  DriverOptions options_;
  ir::Function mbr_instrumented_;  ///< component-counter version
};

/// Noise-free total execution time of a whole trace under one
/// configuration — the ground truth used to report final improvements.
double expected_trace_time(const workloads::Workload& workload,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           const search::FlagConfig& config);

}  // namespace peak::core
