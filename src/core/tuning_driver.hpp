#pragma once

/// \file tuning_driver.hpp
/// The Performance Tuning Driver (paper Figure 5, step 5): for one tuning
/// section it iteratively generates experimental versions (optimization
/// configurations proposed by the search engine), rates them against the
/// current best with the selected rating method, and keeps the winner.
/// The driver also does PEAK's cost accounting — simulated time spent,
/// invocations consumed, equivalent whole-program runs — which the
/// tuning-time experiments (Figure 7 c, d) report.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "fault/guarded_executor.hpp"
#include "rating/rating.hpp"
#include "rating/window.hpp"
#include "search/iterative_elimination.hpp"
#include "search/search_algorithm.hpp"
#include "sim/exec_backend.hpp"
#include "workloads/workload.hpp"

namespace peak::dist {
class Coordinator;
}  // namespace peak::dist

namespace peak::core {

class TuningJournal;
struct JournalSegment;
class RatingCache;
struct RemoteMemberTask;

/// Fault-tolerance knobs. With no injector installed the driver's
/// measurement path is bit-identical to the fault-oblivious one (no
/// guarded wrapper, no validation runs); journaling alone never perturbs
/// a run, so crash-safe resume also works for fault-free tuning.
struct FaultOptions {
  /// Fault model layered onto the execution backend; nullptr = fault-free.
  /// The injector outlives the driver (it is shared across methods and
  /// across a resume so the same seed reproduces the same faults).
  const fault::FaultInjector* injector = nullptr;
  /// Deadline / retry / quarantine policy of the guarded executor.
  fault::GuardPolicy guard{};
  /// Route measurements through the guarded executor. Turning this off
  /// with an injector installed reproduces the paper driver's blind spot
  /// (only the rating windows' non-finite-sample guard remains) — used by
  /// tests and the fault-sweep bench as the "unprotected" arm.
  bool guard_execution = true;
  /// Validate the output digest of any config that rates as an
  /// improvement before the search may adopt it (one extra invocation
  /// per distinct improving config; miscompiles are quarantined).
  bool validate_improvements = true;
  /// Append-only JSONL tuning journal ("" = no journal).
  std::string journal_path;
  /// Replay the journal at `journal_path` first, then continue live from
  /// the last recorded evaluation — the crash-safe resume path.
  bool resume = false;
  /// Fail resume on a corrupt mid-file journal line instead of the
  /// default lenient policy (replay the good prefix, count the discarded
  /// tail in `journal.corrupt_lines`, truncate, and re-measure live).
  bool journal_strict = false;
};

struct DriverOptions {
  rating::WindowPolicy window{};  ///< CBR / RBR / AVG windows
  rating::MbrPolicy mbr{};
  search::IterativeEliminationOptions ie{};
  bool improved_rbr = true;
  /// Measurement pairs amortized per RBR checkpoint cycle (§2.4.2's batch
  /// optimization). 1 = one pair per invocation.
  std::size_t rbr_batch_pairs = 1;
  std::uint64_t seed = 1;
  /// Exhaustion fraction beyond which tune_auto() falls back to the next
  /// applicable rating method (paper Section 3, method switching).
  double max_exhausted_fraction = 0.3;
  /// Search algorithm over the flag space; null = Iterative Elimination
  /// with the `ie` options. The pointer is shared so a caller can reuse
  /// one algorithm instance across drivers.
  std::shared_ptr<search::SearchAlgorithm> search_algorithm;
  /// Fault injection, guarded execution, and crash-safe resume.
  FaultOptions fault{};
  /// Batched evaluation of the search probe loops. 0 (default) keeps the
  /// classic serial path, where every rating consumes the next stretch of
  /// one chained measurement stream — the historical behaviour all
  /// pre-batching baselines were recorded against. N >= 1 switches to
  /// batch semantics: each candidate's measurement stream is reseeded
  /// from the (seed, base, candidate) content, candidates are rated on
  /// per-slot backend clones — fanned out over a thread pool when N > 1 —
  /// and merged in canonical candidate order, so the TuningOutcome,
  /// event stream, and journal are bit-identical for every N >= 1.
  unsigned search_threads = 0;
  /// Persistent content-addressed rating cache shared across sections and
  /// runs (not owned; may be null). Only consulted in batch mode
  /// (search_threads >= 1) and ignored whenever a fault injector is
  /// installed — injector verdicts depend on retry/quarantine state that
  /// is not part of the cache key.
  RatingCache* rating_cache = nullptr;
  /// Out-of-process rating isolation (src/proc/): N >= 1 runs every batch
  /// member in a forked, supervised worker subprocess instead of a pool
  /// thread, so a rating that takes its process down (FaultKind::
  /// kHardCrash, a real SIGSEGV, an rlimit kill) costs one worker, not
  /// the run. Implies batch semantics; members keep the same per-slot
  /// clone + frozen-state + buffered-delta contract, so the TuningOutcome
  /// is bit-identical to `search_threads N` for any worker count — even
  /// across transient worker deaths, whose retries re-run the identical
  /// content-seeded rating. 0 (default) keeps ratings in-process.
  unsigned isolate_workers = 0;
  /// Distributed rating (src/dist/): non-null fans every batch round out
  /// over the coordinator's TCP worker fleet instead of local threads or
  /// forks. Implies batch semantics; members keep the content-seeded
  /// stream + buffered-delta contract and merge in canonical order, so
  /// the TuningOutcome and journal are bit-identical to `search_threads
  /// N` for any fleet size, including across worker deaths (tasks from a
  /// dead worker requeue onto survivors). Mutually exclusive with
  /// `isolate_workers` and with a fault injector — injector verdicts
  /// depend on coordinator-side retry/quarantine state a remote rating
  /// cannot see. Not owned; must outlive the driver.
  dist::Coordinator* coordinator = nullptr;
};

struct TuningCost {
  double simulated_time = 0.0;   ///< cycles spent tuning (all overheads in)
  std::size_t invocations = 0;   ///< TS invocations consumed
  double program_runs = 0.0;     ///< invocations / invocations-per-run
  std::size_t configs_evaluated = 0;

  friend bool operator==(const TuningCost&, const TuningCost&) = default;
};

struct TuningOutcome {
  search::FlagConfig best_config;
  rating::Method method = rating::Method::kWHL;
  TuningCost cost;
  double search_improvement = 1.0;  ///< measured R of best vs start
  double exhausted_fraction = 0.0;  ///< ratings that failed to converge
  /// Structured decision trace: the search algorithm's events plus the
  /// driver's method-selection / abandonment events.
  std::vector<search::SearchEvent> events;

  /// Legacy string rendering of `events` (the old `search_log` field),
  /// byte-compatible with what the driver used to emit.
  [[nodiscard]] std::vector<std::string> render_search_log() const {
    return search::render_search_log(events);
  }

  /// Bit-exact equality — what the crash-safe-resume tests assert between
  /// an uninterrupted run and a journal-resumed one.
  friend bool operator==(const TuningOutcome&,
                         const TuningOutcome&) = default;
};

class TuningDriver {
public:
  /// `trace` is the tuning dataset (train in the offline scenario).
  TuningDriver(const workloads::Workload& workload,
               const ProfileData& profile, const workloads::Trace& trace,
               const sim::MachineModel& machine,
               const sim::FlagEffectModel& effects, DriverOptions options);
  ~TuningDriver();

  /// Tune with a fixed rating method (used by the Figure 7 sweeps, which
  /// compare all applicable methods).
  TuningOutcome tune(rating::Method method);

  /// Tune with the consultant's chain, switching methods when ratings do
  /// not converge (PEAK's automatic mode).
  TuningOutcome tune_auto();

  /// Configurations quarantined so far (across every tune() call of this
  /// driver: the registry is shared between methods, so a config that
  /// miscompiled under CBR is never re-measured under RBR either).
  [[nodiscard]] const fault::Quarantine& quarantine() const {
    return quarantine_;
  }
  /// Mutable access, for preloading entries persisted in a ConfigStore.
  [[nodiscard]] fault::Quarantine& quarantine() { return quarantine_; }

  /// Worker-side entry point of the distributed layer: rate one batch
  /// member shipped by a coordinator and return its serialized delta (the
  /// `proc` member wire format the coordinator merges). The rating runs
  /// through the exact batch-member path local threads use — same
  /// content-seeded stream, same slot-clone reset — seeded entirely from
  /// the task descriptor, so the returned bytes are a pure function of
  /// (driver scenario, task). Requires batch options (search_threads >=
  /// 1) and no fault injector.
  std::string rate_remote_member(const RemoteMemberTask& task);

private:
  class Evaluator;

  /// Open the journal (and, on resume, load its segments) on first use.
  void prepare_journal();

  const workloads::Workload& workload_;
  const ProfileData& profile_;
  const workloads::Trace& trace_;
  const sim::MachineModel& machine_;
  const sim::FlagEffectModel& effects_;
  DriverOptions options_;
  ir::Function mbr_instrumented_;  ///< component-counter version

  fault::Quarantine quarantine_;
  /// Per-method evaluators of a remote rating host, built lazily on the
  /// first task of each method so a session only pays for what it rates.
  std::map<rating::Method, std::unique_ptr<Evaluator>> remote_evals_;
  std::unique_ptr<TuningJournal> journal_;
  /// Loaded on resume; tune() consumes one segment per call.
  std::vector<JournalSegment> replay_segments_;
  std::size_t replay_index_ = 0;
};

/// Noise-free total execution time of a whole trace under one
/// configuration — the ground truth used to report final improvements.
double expected_trace_time(const workloads::Workload& workload,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           const search::FlagConfig& config);

}  // namespace peak::core
