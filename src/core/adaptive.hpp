#pragma once

/// \file adaptive.hpp
/// Online, dynamically adaptive tuning — the paper's Section 6 future
/// work, built on the same rating machinery as the offline driver and on
/// the ADAPT-style version table (Figure 6).
///
/// The tuner is driven one production invocation at a time and runs a
/// two-phase state machine:
///
///  * EXPERIMENT — round-robin through single-flag toggles of the current
///    best configuration; each step executes the invocation as an RBR
///    pair (best vs candidate) and feeds the rater. Converged winners are
///    promoted into the version table. A full pass with no promotion
///    drops to MONITOR.
///  * MONITOR — invocations execute plainly under the best version while
///    per-context baselines track production speed. When a context's
///    recent timings drift above its baseline (the workload changed
///    phase), the tuner re-enters EXPERIMENT.
///
/// Because the rating methods only need timings and contexts, the whole
/// loop imposes no tuning overhead while monitoring — the offline
/// scenario's main advantage — yet recovers it when the workload shifts.

#include <cstdint>
#include <map>
#include <optional>

#include "rating/rbr.hpp"
#include "rating/window.hpp"
#include "runtime/version_table.hpp"
#include "sim/exec_backend.hpp"
#include "workloads/workload.hpp"

namespace peak::core {

struct AdaptiveOptions {
  rating::WindowPolicy window{};
  /// Candidate must beat the best by this factor to be promoted.
  double promote_threshold = 1.012;
  /// Relative production slowdown (vs the context baseline) that triggers
  /// re-tuning.
  double drift_threshold = 0.08;
  /// Samples per context before its baseline is trusted.
  std::size_t baseline_samples = 24;
  /// Consecutive drifted samples required (debounce).
  std::size_t drift_patience = 12;
};

class AdaptiveTuner {
public:
  AdaptiveTuner(const workloads::Workload& workload,
                const sim::MachineModel& machine,
                const sim::FlagEffectModel& effects,
                AdaptiveOptions options = {}, std::uint64_t seed = 1);

  /// Feed one production invocation. Returns the time the application
  /// observed (including any experiment overhead of this invocation).
  double step(const sim::Invocation& inv);

  /// Tell the tuner the application's phase changed scale (the simulator
  /// needs this hint; real deployments see it through the drift check
  /// alone, which this call does not replace).
  void set_workload_scale(double scale) {
    backend_.set_workload_scale(scale);
  }

  enum class Phase { kExperiment, kMonitor };
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] const runtime::VersionTable& versions() const {
    return versions_;
  }
  [[nodiscard]] std::size_t retunes_triggered() const { return retunes_; }
  [[nodiscard]] std::size_t promotions() const { return promotions_; }
  [[nodiscard]] std::size_t experiments_run() const {
    return experiments_;
  }

private:
  void start_experiment_pass();
  double experiment_step(const sim::Invocation& inv);
  double monitor_step(const sim::Invocation& inv);

  struct Baseline {
    rating::WindowedRater rater;
    std::optional<double> mean;
    std::size_t drifted = 0;
  };

  const workloads::Workload& workload_;
  sim::SimExecutionBackend backend_;
  AdaptiveOptions options_;
  runtime::VersionTable versions_;

  Phase phase_ = Phase::kExperiment;
  std::size_t next_flag_ = 0;
  bool pass_had_promotion_ = false;
  std::optional<rating::ReexecutionRater> rater_;
  search::FlagConfig candidate_;

  std::map<std::vector<double>, Baseline> baselines_;
  std::size_t retunes_ = 0;
  std::size_t promotions_ = 0;
  std::size_t experiments_ = 0;
};

}  // namespace peak::core
