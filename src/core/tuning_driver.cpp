#include "core/tuning_driver.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/instrumentation.hpp"
#include "core/journal.hpp"
#include "core/jsonl.hpp"
#include "core/rating_cache.hpp"
#include "core/remote_eval.hpp"
#include "dist/coordinator.hpp"
#include "obs/attribution.hpp"
#include "obs/event_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "proc/supervisor.hpp"
#include "rating/baselines.hpp"
#include "rating/cbr.hpp"
#include "rating/mbr.hpp"
#include "rating/rbr.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/shutdown.hpp"
#include "support/thread_pool.hpp"

namespace peak::core {

namespace {

/// Cached references into the global metrics registry; resolving by name
/// once keeps the per-rating updates down to relaxed atomic ops.
struct DriverMetrics {
  obs::Counter& configs_evaluated =
      obs::counter("search.configs_evaluated");
  obs::Counter& ratings_started = obs::counter("rating.started");
  obs::Counter& ratings_converged = obs::counter("rating.converged");
  obs::Counter& ratings_exhausted = obs::counter("rating.exhausted");
  obs::Counter& invocations = obs::counter("rating.invocations");
  obs::Histogram& window_occupancy = obs::histogram(
      "rating.window_samples", {10, 20, 40, 80, 160, 320, 640});
  obs::Gauge& mbr_residual = obs::gauge("rating.mbr_residual");

  static DriverMetrics& get() {
    static DriverMetrics metrics;
    return metrics;
  }
};

/// Raised when a rating method cannot produce any estimate within its
/// sample budget; tune_auto() responds by switching down the method chain
/// (paper Section 3).
struct RatingNotConverging : std::runtime_error {
  explicit RatingNotConverging(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace

/// Rates configurations with one method over a shared invocation stream.
/// The stream cursor advances monotonically across ratings, modelling the
/// application continuing to run while versions are swapped in and out.
class TuningDriver::Evaluator final : public search::ConfigEvaluator {
public:
  Evaluator(const TuningDriver& driver, rating::Method method,
            const ir::Function& fn, fault::Quarantine& quarantine,
            TuningJournal* journal, const JournalSegment* replay)
      : driver_(driver),
        method_(method),
        fn_(fn),
        backend_seed_(support::hash_combine(
            driver.options_.seed, support::stable_hash(fn.name()))),
        backend_(fn, [&] {
          sim::TsTraits t = driver.workload_.traits();
          t.workload_scale = driver.trace_.workload_scale;
          return t;
        }(), driver.machine_, driver.effects_, backend_seed_),
        quarantine_(quarantine),
        journal_(journal),
        replay_(replay) {
    // Distributed rating is a transport for the batch contract, not the
    // fault layer: injector verdicts depend on coordinator-side retry and
    // quarantine state a remote rating cannot reproduce, and process
    // isolation already has its own fan-out. Refuse the combinations
    // instead of silently measuring something else.
    PEAK_CHECK(driver.options_.coordinator == nullptr ||
                   driver.options_.fault.injector == nullptr,
               "distributed tuning cannot run with a fault injector");
    PEAK_CHECK(driver.options_.coordinator == nullptr ||
                   driver.options_.isolate_workers == 0,
               "distributed tuning excludes isolate_workers");
    // Basic RBR saves the full input set; improved RBR saves the
    // range-analysis-narrowed Modified_Input slices.
    backend_.set_checkpoint_bytes(
        driver.profile_.input_sets.input_bytes(fn),
        driver.profile_.checkpoint_plan.bytes(fn));
    if (driver.options_.fault.injector != nullptr) {
      backend_.set_fault_injector(driver.options_.fault.injector);
      if (driver.options_.fault.guard_execution) {
        guard_.emplace(backend_, quarantine_,
                       driver.options_.fault.guard);
        guard_->set_on_fault([this](const fault::FaultEvent& ev) {
          pending_fail_keys_.insert(ev.config_key);
          if (journal_ != nullptr) journal_->record_fault(ev);
        });
      }
    }
    // The persistent rating cache is sound only for batch-semantics
    // ratings (content-seeded streams) without a fault injector
    // (injector verdicts depend on attempt/quarantine state that is not
    // part of the key).
    if (driver.options_.rating_cache != nullptr && batched() &&
        driver.options_.fault.injector == nullptr) {
      cache_ = driver.options_.rating_cache;
      init_cache_fingerprint();
    }
  }

  double relative_improvement(const search::FlagConfig& base,
                              const search::FlagConfig& cfg) override {
    // A pending SIGINT/SIGTERM surfaces here, between ratings — the last
    // journaled evaluation is complete, so a later --resume run replays
    // up to exactly this point.
    support::check_shutdown();
    // Batch mode funnels *every* rating through the batch machinery (as a
    // singleton batch when a search asks for one config at a time), so
    // stream seeding, caching, and journaling are uniform. rate_batch()
    // does its own replay check.
    if (batched())
      return rate_batch(base, std::vector<search::FlagConfig>{cfg}).front();
    if (replay_ != nullptr && replay_pos_ < replay_->evals.size())
      return replay_eval(base, cfg);
    // Counted at entry so an attempt abandoned mid-rating (see
    // RatingNotConverging) is still accounted, keeping the registry
    // counter equal to cost().configs_evaluated on every path.
    ++evaluations_;
    DriverMetrics::get().configs_evaluated.inc();
    obs::ScopedSpan span("rate", "rating");
    if (span.active())
      span.add(obs::attr("method", rating::to_string(method_)));
    pending_memo_.clear();
    pending_validated_.clear();
    pending_fail_keys_.clear();
    pending_rating_obs_.clear();
    // Deadlines and backoff are priced off the current best version.
    if (guard_) guard_->set_reference(base);
    double r = 0.0;
    try {
      if (method_ == rating::Method::kRBR) {
        r = rbr_ratio(base, cfg);
      } else {
        const double e_base = rate_time(base);
        const double e_cfg = rate_time(cfg);
        PEAK_CHECK(e_cfg > 0.0, "non-positive rating");
        r = e_base / e_cfg;
      }
      maybe_validate(cfg, r);
    } catch (const fault::ConfigFailed&) {
      // The configuration cannot be measured: quarantined, retry budget
      // exhausted, or miscompiled. Report "no improvement" so the search
      // moves on; excluded() keeps it from ever being probed again.
      r = 0.0;
    }
    record_eval(base, cfg, r);
    return r;
  }

  /// Quarantined configurations are hard-excluded: the search emits a
  /// kQuarantined event and skips the candidate instead of probing it.
  [[nodiscard]] bool excluded(const search::FlagConfig& cfg) const override {
    return quarantine_.contains(cfg.key());
  }

  [[nodiscard]] bool batched() const override {
    return driver_.options_.search_threads >= 1 ||
           driver_.options_.isolate_workers >= 1 ||
           driver_.options_.coordinator != nullptr;
  }

  /// Batch-semantics evaluation of one probe round. Every candidate is a
  /// pure function of (seed, base, candidate): its measurement stream is
  /// reseeded from that content and it runs on a per-slot backend clone,
  /// so results do not depend on thread count, scheduling, or position in
  /// the batch. Members are merged on the calling thread in canonical
  /// candidate order, which makes the TuningOutcome, event stream, and
  /// journal bit-identical for every search_threads >= 1.
  std::vector<double> rate_batch(
      const search::FlagConfig& base,
      const std::vector<search::FlagConfig>& candidates) override {
    if (!batched()) return ConfigEvaluator::rate_batch(base, candidates);
    support::check_shutdown();
    std::vector<double> out;
    out.reserve(candidates.size());
    // Replay prefix: recorded evaluations replay one by one, in the same
    // canonical order they were journaled in (which is independent of the
    // thread count that produced them).
    std::size_t start = 0;
    while (start < candidates.size() && replay_ != nullptr &&
           replay_pos_ < replay_->evals.size()) {
      out.push_back(replay_eval(base, candidates[start]));
      ++start;
    }
    if (start == candidates.size()) return out;

    obs::ScopedSpan span("rate_batch", "rating");
    if (span.active()) {
      span.add(obs::attr("method", rating::to_string(method_)));
      span.add(obs::attr("candidates", candidates.size() - start));
    }

    std::vector<MemberState> members;
    members.reserve(candidates.size() - start);
    for (std::size_t i = start; i < candidates.size(); ++i) {
      MemberState m;
      m.base = &base;
      m.cfg = &candidates[i];
      m.seed = member_seed(base, candidates[i], /*prologue=*/false);
      members.push_back(std::move(m));
    }

    // Time-based methods rate the base by memoized EVAL; when the memo
    // does not hold it yet, a prologue member computes it *before* the
    // fan-out so every member sees the frozen memo entry (instead of all
    // of them redundantly re-measuring the base).
    std::optional<MemberState> prologue;
    if (method_ != rating::Method::kRBR &&
        memo_.find(base.key()) == memo_.end()) {
      prologue.emplace();
      prologue->base = &base;
      prologue->cfg = &base;
      prologue->prologue = true;
      prologue->seed = member_seed(base, base, /*prologue=*/true);
    }

    // Cache lookups happen up front on the calling thread; hits are
    // normalized into regular member outputs so the merge loop below does
    // not care where a result came from.
    if (cache_ != nullptr) {
      const auto t0 = std::chrono::steady_clock::now();
      if (prologue) {
        prologue->cache_key = make_cache_key(base, base, /*prologue=*/true);
        load_cached(*prologue);
      }
      for (MemberState& m : members) {
        m.cache_key = make_cache_key(base, *m.cfg, /*prologue=*/false);
        load_cached(m);
      }
      cache_wall_us_ += std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }

    ensure_slots(1);
    if (prologue && !prologue->from_cache) {
      if (driver_.options_.coordinator != nullptr) {
        // The base rating ships to the fleet too, before the candidate
        // round, so every member still sees the frozen memo entry.
        run_members_remote({&*prologue});
      } else if (driver_.options_.isolate_workers >= 1) {
        // The base rating runs isolated too — it is just as capable of
        // taking a process down as any candidate.
        run_members_isolated({&*prologue});
      } else {
        prologue->backend = slots_[0].get();
        run_member(*prologue);
      }
    }
    if (prologue) {
      merge_member(*prologue);
      maybe_store(*prologue);
      if (prologue->error) {
        // The base itself cannot be rated: account the first candidate's
        // evaluation (the serial path counts it at entry before the base
        // rating throws) and let tune() abandon the method.
        ++evaluations_;
        DriverMetrics::get().configs_evaluated.inc();
        std::rethrow_exception(prologue->error);
      }
    }

    // Fan the non-cached members out over the pool, slot-scheduled so the
    // item → backend-clone mapping is a pure function of the batch shape.
    std::vector<std::size_t> to_run;
    for (std::size_t i = 0; i < members.size(); ++i)
      if (!members[i].from_cache) to_run.push_back(i);
    const unsigned threads = driver_.options_.search_threads;
    if (driver_.options_.coordinator != nullptr) {
      std::vector<MemberState*> targets;
      targets.reserve(to_run.size());
      for (std::size_t i : to_run) targets.push_back(&members[i]);
      run_members_remote(targets);
    } else if (driver_.options_.isolate_workers >= 1) {
      std::vector<MemberState*> targets;
      targets.reserve(to_run.size());
      for (std::size_t i : to_run) targets.push_back(&members[i]);
      run_members_isolated(targets);
    } else if (threads <= 1 || to_run.size() <= 1) {
      for (std::size_t i : to_run) {
        members[i].backend = slots_[0].get();
        run_member(members[i]);
      }
    } else {
      const std::size_t slots =
          std::min<std::size_t>(threads, to_run.size());
      ensure_slots(slots);
      if (pool_ == nullptr)
        pool_ = std::make_unique<support::ThreadPool>(threads);
      // Workers adopt the submitting thread's attribution path so their
      // costs land on the same machine/benchmark/section/method node.
      const std::vector<std::string> path = obs::attribution_path();
      pool_->slotted_for(
          to_run.size(), slots, [&](std::size_t j, std::size_t slot) {
            obs::AttributionPathScope scope(path);
            MemberState& m = members[to_run[j]];
            m.backend = slots_[slot].get();
            run_member(m);  // never throws: errors land in m.error
          });
    }

    // Canonical merge, in candidate order. Every member ran to completion
    // before this loop (on every thread count), so the global state both
    // paths produced is identical; a member's error is rethrown only
    // after its own (partial) deltas are applied, exactly like the serial
    // path abandoning mid-rating.
    const MemberState* pro = prologue ? &*prologue : nullptr;
    for (MemberState& m : members) {
      merge_member(m);
      ++evaluations_;
      DriverMetrics::get().configs_evaluated.inc();
      if (m.error) std::rethrow_exception(m.error);
      record_member_eval(m, pro);
      pro = nullptr;  // the prologue rides along on the first record only
      maybe_store(m);
      out.push_back(m.r);
    }
    return out;
  }

  /// Worker-side rating of one coordinator-shipped member (see
  /// TuningDriver::rate_remote_member). The memo is rebuilt from the
  /// task's frozen entries on every call — never accumulated across
  /// tasks, whose arrival order is timing-dependent — so the result is a
  /// pure function of the task descriptor.
  std::string rate_remote(const RemoteMemberTask& task) {
    const search::OptimizationSpace& space = driver_.effects_.space();
    PEAK_CHECK(task.base_key.size() == space.size() &&
                   task.cfg_key.size() == space.size(),
               "remote task: config key does not match the space");
    search::FlagConfig base(space);
    search::FlagConfig cfg(space);
    for (std::size_t i = 0; i < space.size(); ++i) {
      base.set(i, task.base_key[i] == '1');
      cfg.set(i, task.cfg_key[i] == '1');
    }
    memo_.clear();
    for (const auto& [key, eval] : task.memo) memo_.emplace(key, eval);
    MemberState m;
    m.base = &base;
    m.cfg = &cfg;
    m.prologue = task.prologue;
    m.seed = task.seed;
    ensure_slots(1);
    m.backend = slots_[0].get();
    run_member(m);
    return serialize_member(m);
  }

  /// Fold this evaluator's per-phase simulated-cycle attribution into
  /// the global metrics registry and the cost ledger (under the caller's
  /// attribution path — tune() has machine/benchmark/section/method
  /// scopes open). Called once, after the search ends; on a resumed run
  /// the restored breakdown already contains the replayed cycles, so the
  /// ledger of a resumed run matches the uninterrupted one.
  void publish_costs() const {
    const sim::SimExecutionBackend::CycleBreakdown& b =
        backend_.breakdown();
    obs::gauge("sim.cycles_timed").add(b.timed);
    obs::gauge("sim.cycles_precondition").add(b.precondition);
    obs::gauge("sim.cycles_checkpoint").add(b.checkpoint);
    obs::gauge("sim.cycles_faulted").add(b.faulted);
    obs::gauge("sim.cycles_retry").add(b.retry);
    obs::gauge("sim.cycles_whole_program_surcharge")
        .add(whole_program_surcharge_);
    obs::counter("rbr.checkpoint_saves").inc(b.saves);
    obs::counter("rbr.checkpoint_restores").inc(b.restores);
    obs::counter("rbr.checkpoint_bytes").inc(b.checkpoint_bytes);

    obs::charge_phase("timed", b.timed);
    obs::charge_phase("precondition", b.precondition);
    obs::charge_phase("checkpoint", b.checkpoint);
    obs::charge_phase("faulted", b.faulted);
    obs::charge_phase("retry", b.retry);
    obs::charge_phase("whole_program", whole_program_surcharge_);
    // Wall-only phase: the rating cache consumes no simulated cycles
    // (the cycles a hit *saves* re-enter through the cached cost deltas).
    if (cache_wall_us_ > 0.0)
      obs::charge_phase("cache", 0.0, cache_wall_us_);
    // Wall burned by dead worker processes (isolate_workers). Wall-only
    // for the same reason as the cache phase: simulated time must stay
    // bit-identical to the crash-free run.
    if (proc_retry_wall_us_ > 0.0)
      obs::charge_phase("retry", 0.0, proc_retry_wall_us_);
    if (proc_faulted_wall_us_ > 0.0)
      obs::charge_phase("faulted", 0.0, proc_faulted_wall_us_);
    // Wall spent inside this evaluator's rating calls goes to the method
    // node itself (it spans several cycle phases at once); the method's
    // wall total is then rating wall + the search_overhead phase.
    obs::charge_phase("", 0.0,
                      obs::evaluator_wall_us() - evaluator_wall_at_start_);
  }

  [[nodiscard]] TuningCost cost() const {
    TuningCost c;
    c.simulated_time =
        backend_.accumulated_time() + whole_program_surcharge_;
    c.invocations = invocations_;
    c.configs_evaluated = evaluations_;
    c.program_runs = driver_.trace_.invocations.empty()
                         ? 0.0
                         : static_cast<double>(invocations_) /
                               static_cast<double>(
                                   driver_.trace_.invocations.size());
    return c;
  }

  [[nodiscard]] double exhausted_fraction() const {
    return ratings_ == 0 ? 0.0
                         : static_cast<double>(exhausted_) /
                               static_cast<double>(ratings_);
  }

private:
  const sim::Invocation& next_invocation() {
    const auto& invs = driver_.trace_.invocations;
    const sim::Invocation& inv = invs[cursor_];
    cursor_ = (cursor_ + 1) % invs.size();
    ++invocations_;
    DriverMetrics::get().invocations.inc();
    return inv;
  }

  /// Measurement entry points: guarded when fault tolerance is on,
  /// the raw backend otherwise (bit-identical to the fault-oblivious
  /// driver — the guard is not even constructed).
  sim::InvocationResult measure(const search::FlagConfig& cfg,
                                const sim::Invocation& inv) {
    return guard_ ? guard_->invoke(cfg, inv) : backend_.invoke(cfg, inv);
  }
  std::vector<sim::RbrPairResult> measure_rbr(
      const search::FlagConfig& best, const search::FlagConfig& exp,
      const sim::Invocation& inv, const sim::RbrOptions& opts) {
    return guard_ ? guard_->invoke_rbr_batch(best, exp, inv, opts)
                  : backend_.invoke_rbr_batch(best, exp, inv, opts);
  }

  /// Validate the output digest of an improving configuration before the
  /// search may adopt it. Throws fault::ConfigFailed on a miscompile
  /// (which also quarantines the config).
  void maybe_validate(const search::FlagConfig& cfg, double r) {
    if (!guard_ || !driver_.options_.fault.validate_improvements) return;
    if (r <= 1.0) return;
    const std::string key = cfg.key();
    if (validated_.count(key) != 0) return;
    guard_->validate(cfg, next_invocation());
    validated_.insert(key);
    pending_validated_.push_back(key);
  }

  /// Append this evaluation (rating, state deltas, post-state snapshot)
  /// to the journal.
  void record_eval(const search::FlagConfig& base,
                   const search::FlagConfig& cfg, double r) {
    if (journal_ == nullptr) return;
    JournalEval e;
    e.base_key = base.key();
    e.cfg_key = cfg.key();
    e.r = r;
    e.memo_added = std::move(pending_memo_);
    e.validated_added = std::move(pending_validated_);
    for (const std::string& key : pending_fail_keys_) {
      const auto it = quarantine_.entries().find(key);
      if (it == quarantine_.entries().end()) continue;
      JournalEval::FailDelta d;
      d.key = key;
      d.kind = it->second.kind;
      d.failures = it->second.failures;
      d.quarantined = it->second.quarantined;
      e.fails.push_back(std::move(d));
    }
    e.snap.backend = backend_.snapshot_state();
    e.snap.cursor = cursor_;
    e.snap.invocations = invocations_;
    e.snap.evaluations = evaluations_;
    e.snap.ratings = ratings_;
    e.snap.exhausted = exhausted_;
    e.snap.whole_program_surcharge = whole_program_surcharge_;
    e.ratings_observed = std::move(pending_rating_obs_);
    journal_->record_eval(e);
    pending_memo_.clear();
    pending_validated_.clear();
    pending_fail_keys_.clear();
    pending_rating_obs_.clear();
  }

  /// Replay one recorded evaluation: return the recorded rating without
  /// touching the backend, re-apply the state deltas, and restore the
  /// bit-exact post-evaluation snapshot. Once the recorded evaluations
  /// run out the very next call measures live — from exactly the state
  /// the interrupted run was in.
  double replay_eval(const search::FlagConfig& base,
                     const search::FlagConfig& cfg) {
    static obs::Counter& replayed = obs::counter("journal.replayed");
    const JournalEval& e = replay_->evals[replay_pos_++];
    PEAK_CHECK(e.base_key == base.key() && e.cfg_key == cfg.key(),
               "journal does not match this tuning run (stale journal, or "
               "different seed/options)");
    for (const auto& [key, eval] : e.memo_added) memo_.emplace(key, eval);
    for (const std::string& key : e.validated_added) validated_.insert(key);
    for (const JournalEval::FailDelta& d : e.fails) {
      quarantine_.restore_failures(d.key, d.kind, d.failures);
      if (d.quarantined) quarantine_.quarantine(d.key, d.kind);
    }
    backend_.restore_state(e.snap.backend);
    // Metric continuity: a resumed run must report the same rating.* /
    // search.* registry values as the uninterrupted one, so the global
    // counters advance by exactly what this recorded evaluation consumed
    // (the snapshot fields are absolute; the members still hold the
    // previous record's values, making the subtraction a delta).
    DriverMetrics& m = DriverMetrics::get();
    m.invocations.inc(e.snap.invocations - invocations_);
    m.configs_evaluated.inc(e.snap.evaluations - evaluations_);
    if (!e.ratings_observed.empty()) {
      for (const JournalEval::RatingObs& o : e.ratings_observed) {
        m.ratings_started.inc();
        observe_rating(o.converged, o.samples);
      }
      pending_rating_obs_.clear();  // observe_rating() re-collected them
    } else {
      // Journal predates per-rating observations: restore the tallies
      // from the snapshot deltas (the window histogram stays short).
      const std::size_t started = e.snap.ratings - ratings_;
      const std::size_t exhausted = e.snap.exhausted - exhausted_;
      m.ratings_started.inc(started);
      m.ratings_exhausted.inc(exhausted);
      m.ratings_converged.inc(started - exhausted);
    }
    cursor_ = e.snap.cursor;
    invocations_ = e.snap.invocations;
    evaluations_ = e.snap.evaluations;
    ratings_ = e.snap.ratings;
    exhausted_ = e.snap.exhausted;
    whole_program_surcharge_ = e.snap.whole_program_surcharge;
    replayed.inc();
    return e.r;
  }

  /// Per-rating metrics: convergence tally plus window occupancy; also
  /// collected per evaluation for the journal, so replay can restore the
  /// registry exactly.
  void observe_rating(bool converged, std::size_t samples) {
    DriverMetrics& m = DriverMetrics::get();
    (converged ? m.ratings_converged : m.ratings_exhausted).inc();
    m.window_occupancy.observe(static_cast<double>(samples));
    pending_rating_obs_.push_back(
        {converged, static_cast<std::uint64_t>(samples)});
  }

  double rbr_ratio(const search::FlagConfig& base,
                   const search::FlagConfig& cfg) {
    ++ratings_;
    DriverMetrics::get().ratings_started.inc();
    rating::ReexecutionRater rater(driver_.options_.window);
    sim::RbrOptions rbr_opts;
    rbr_opts.improved = driver_.options_.improved_rbr;
    rbr_opts.batch_pairs = driver_.options_.rbr_batch_pairs;
    while (!rater.converged() && !rater.exhausted()) {
      const sim::Invocation& inv = next_invocation();
      for (const sim::RbrPairResult& pair :
           measure_rbr(base, cfg, inv, rbr_opts)) {
        rater.add_pair(pair.time_best, pair.time_exp);
        if (rater.converged() || rater.exhausted()) break;
      }
    }
    if (!rater.converged()) ++exhausted_;
    const rating::Rating r = rater.rating();
    observe_rating(rater.converged(), r.samples);
    // Significance gate: with very noisy sections (EQUAKE's irregular
    // memory) the window may cap out with a standard error comparable to
    // the search's improvement threshold; reporting a statistically
    // insignificant ratio would let noise eliminate useful options (the
    // paper's "if the rating is inaccurate, the tuning system will yield
    // limited performance or even degradation"). Below 3 SEM the verdict
    // is "no measurable difference".
    const double sem =
        r.samples > 0 ? std::sqrt(r.var / static_cast<double>(r.samples))
                      : 0.0;
    if (std::fabs(r.eval - 1.0) < 3.0 * sem) return 1.0;
    return r.eval;
  }

  /// Time-like EVAL of one configuration, memoized by config key.
  double rate_time(const search::FlagConfig& cfg) {
    const std::string key = cfg.key();
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    ++ratings_;
    DriverMetrics::get().ratings_started.inc();

    double eval = 0.0;
    switch (method_) {
      case rating::Method::kCBR: {
        rating::ContextBasedRater rater(driver_.options_.window);
        // With many contexts only a fraction of invocations feed the
        // dominant bucket, so the stream budget scales with the context
        // count (capped) — this is exactly why forcing CBR onto a
        // many-context section (MGRID_CBR) wastes tuning time.
        const std::size_t budget =
            driver_.options_.window.max_samples *
            std::clamp<std::size_t>(driver_.profile_.num_contexts, 1, 50);
        while (!rater.converged() && rater.total_samples() < budget) {
          const sim::Invocation& inv = next_invocation();
          rater.add(inv.context, measure(cfg, inv).time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kMBR: {
        rating::ModelBasedRater rater(
            driver_.profile_.components.num_components(),
            driver_.profile_.mbr_profile, driver_.options_.mbr);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation();
          const sim::InvocationResult r = measure(cfg, inv);
          std::vector<double> counts(r.counters->begin(), r.counters->end());
          counts.push_back(1.0);  // constant component
          rater.add(counts, r.time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        // r.var carries the fit's unexplained-variance ratio — the MBR
        // regression residual the obs layer reports.
        DriverMetrics::get().mbr_residual.set(r.var);
        eval = r.eval;
        break;
      }
      case rating::Method::kAVG: {
        rating::ContextObliviousRater rater(driver_.options_.window);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation();
          rater.add(measure(cfg, inv).time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kWHL: {
        rating::WholeProgramRater rater;
        while (!rater.converged() && !rater.exhausted()) {
          // One full application run per sample. The run also executes
          // everything *around* the tuning section, which WHL must pay
          // for — that surcharge is the core of its cost disadvantage.
          double run_ts_time = 0.0;
          for (std::size_t i = 0; i < driver_.trace_.invocations.size();
               ++i) {
            const double t = measure(cfg, next_invocation()).time;
            rater.add_invocation(t);
            run_ts_time += t;
          }
          rater.end_run();
          const double fraction = driver_.workload_.ts_time_fraction();
          whole_program_surcharge_ +=
              run_ts_time * (1.0 / fraction - 1.0);
        }
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kRBR:
        PEAK_CHECK(false, "RBR is pair-based; use rbr_ratio");
        break;
    }
    if (eval <= 0.0) {
      ++exhausted_;
      throw RatingNotConverging(
          std::string(rating::to_string(method_)) +
          " produced no estimate for " + driver_.workload_.full_name());
    }
    memo_.emplace(key, eval);
    pending_memo_.emplace_back(key, eval);
    return eval;
  }

  // ---- Batched evaluation -----------------------------------------------

  /// One candidate of a batch. Everything its rating *reads* is either
  /// immutable during the fan-out (the shared memo, the trace) or copied
  /// in here at rating start (quarantine, validated set); everything it
  /// *writes* is buffered in the output fields and folded into the
  /// evaluator by merge_member(), on the primary thread, in canonical
  /// candidate order.
  struct MemberState {
    const search::FlagConfig* base = nullptr;
    const search::FlagConfig* cfg = nullptr;
    bool prologue = false;  ///< rates the base EVAL only
    std::uint64_t seed = 0;
    sim::SimExecutionBackend* backend = nullptr;
    std::optional<fault::GuardedExecutor> guard;
    fault::Quarantine quarantine;     ///< copy of the shared registry
    std::set<std::string> validated;  ///< copy of the validated set
    std::size_t cursor = 0;           ///< member-local stream cursor

    // Outputs: the complete state delta of this rating.
    double r = 0.0;
    std::vector<std::pair<std::string, double>> memo_added;
    std::vector<std::string> validated_added;
    std::vector<JournalEval::RatingObs> robs;
    std::set<std::string> fail_keys;
    std::vector<fault::FaultEvent> fault_events;
    std::uint64_t invocations = 0;
    std::uint64_t ratings_started = 0;
    std::uint64_t exhausted = 0;
    double whole_program_surcharge = 0.0;
    std::optional<double> mbr_residual;
    std::exception_ptr error;
    sim::SimExecutionBackend::Snapshot before, after;
    bool from_cache = false;
    sim::SimExecutionBackend::CostDeltas cached_cost;
    std::string cache_key;  ///< "" = cache disabled
  };

  /// Stream seed of one member: a pure function of (run seed, section,
  /// base bits, candidate bits), so a candidate's measurement stream is
  /// independent of batch position, thread count, and everything rated
  /// before it — the property both the N-independence guarantee and the
  /// persistent cache rest on.
  [[nodiscard]] std::uint64_t member_seed(const search::FlagConfig& base,
                                          const search::FlagConfig& cfg,
                                          bool prologue) const {
    std::uint64_t s = support::hash_combine(
        support::hash_combine(backend_seed_,
                              support::stable_hash(base.key())),
        support::stable_hash(cfg.key()));
    // The prologue rates (base, base) with a distinct stream from a
    // hypothetical (base, base) candidate.
    if (prologue) s = support::hash_combine(s, 0x70726f6c6f677565ULL);
    return s;
  }

  void ensure_slots(std::size_t n) {
    while (slots_.size() < n) {
      auto clone = std::make_unique<sim::SimExecutionBackend>(
          fn_, backend_.traits(), driver_.machine_, driver_.effects_,
          backend_seed_);
      clone->set_checkpoint_bytes(
          driver_.profile_.input_sets.input_bytes(fn_),
          driver_.profile_.checkpoint_plan.bytes(fn_));
      if (driver_.options_.fault.injector != nullptr)
        clone->set_fault_injector(driver_.options_.fault.injector);
      slots_.push_back(std::move(clone));
    }
  }

  /// Rate one member on its slot backend. Never throws: an unexpected
  /// exception (e.g. RatingNotConverging) is captured so the merge loop
  /// can rethrow it at the member's canonical position, after applying
  /// the partial deltas — exactly like a serial rating abandoning
  /// mid-flight.
  void run_member(MemberState& m) {
    m.quarantine = quarantine_;
    m.validated = validated_;
    if (driver_.options_.fault.injector != nullptr &&
        driver_.options_.fault.guard_execution) {
      m.guard.emplace(*m.backend, m.quarantine,
                      driver_.options_.fault.guard);
      m.guard->set_on_fault([&m](const fault::FaultEvent& ev) {
        m.fail_keys.insert(ev.config_key);
        m.fault_events.push_back(ev);
      });
      m.guard->set_reference(*m.base);
    }
    m.backend->reset_measurement_stream(m.seed);
    // Zero the clone's cost tallies so this member's deltas are sums that
    // start from 0.0 — `after - before` with a non-zero `before` rounds
    // differently depending on what the slot accumulated earlier, which
    // would make simulated_time depend on the member → slot assignment
    // (i.e. on the thread count). With the reset, the delta is the exact
    // member-local sum for every slot layout.
    m.backend->reset_accumulated_time();
    m.before = m.backend->snapshot_state();
    try {
      try {
        if (m.prologue) {
          rate_time_m(m, *m.base);
        } else if (method_ == rating::Method::kRBR) {
          m.r = rbr_ratio_m(m);
        } else {
          const double e_base = rate_time_m(m, *m.base);
          const double e_cfg = rate_time_m(m, *m.cfg);
          PEAK_CHECK(e_cfg > 0.0, "non-positive rating");
          m.r = e_base / e_cfg;
        }
        if (!m.prologue) maybe_validate_m(m, m.r);
      } catch (const fault::ConfigFailed&) {
        m.r = 0.0;
      }
    } catch (...) {
      m.error = std::current_exception();
    }
    m.after = m.backend->snapshot_state();
  }

  const sim::Invocation& next_invocation_m(MemberState& m) {
    const auto& invs = driver_.trace_.invocations;
    const sim::Invocation& inv = invs[m.cursor];
    m.cursor = (m.cursor + 1) % invs.size();
    ++m.invocations;
    return inv;
  }

  sim::InvocationResult measure_m(MemberState& m,
                                  const search::FlagConfig& cfg,
                                  const sim::Invocation& inv) {
    return m.guard ? m.guard->invoke(cfg, inv)
                   : m.backend->invoke(cfg, inv);
  }

  void maybe_validate_m(MemberState& m, double r) {
    if (!m.guard || !driver_.options_.fault.validate_improvements) return;
    if (r <= 1.0) return;
    const std::string key = m.cfg->key();
    if (m.validated.count(key) != 0) return;
    m.guard->validate(*m.cfg, next_invocation_m(m));
    m.validated.insert(key);
    m.validated_added.push_back(key);
  }

  void observe_rating_m(MemberState& m, bool converged,
                        std::size_t samples) {
    m.robs.push_back({converged, static_cast<std::uint64_t>(samples)});
  }

  /// Member-local mirror of rbr_ratio(): same protocol, same significance
  /// gate, but all tallies land on the member and the registry updates
  /// are deferred to the merge.
  double rbr_ratio_m(MemberState& m) {
    ++m.ratings_started;
    rating::ReexecutionRater rater(driver_.options_.window);
    sim::RbrOptions rbr_opts;
    rbr_opts.improved = driver_.options_.improved_rbr;
    rbr_opts.batch_pairs = driver_.options_.rbr_batch_pairs;
    while (!rater.converged() && !rater.exhausted()) {
      const sim::Invocation& inv = next_invocation_m(m);
      const std::vector<sim::RbrPairResult> pairs =
          m.guard ? m.guard->invoke_rbr_batch(*m.base, *m.cfg, inv,
                                              rbr_opts)
                  : m.backend->invoke_rbr_batch(*m.base, *m.cfg, inv,
                                                rbr_opts);
      for (const sim::RbrPairResult& pair : pairs) {
        rater.add_pair(pair.time_best, pair.time_exp);
        if (rater.converged() || rater.exhausted()) break;
      }
    }
    if (!rater.converged()) ++m.exhausted;
    const rating::Rating r = rater.rating();
    observe_rating_m(m, rater.converged(), r.samples);
    const double sem =
        r.samples > 0 ? std::sqrt(r.var / static_cast<double>(r.samples))
                      : 0.0;
    if (std::fabs(r.eval - 1.0) < 3.0 * sem) return 1.0;
    return r.eval;
  }

  /// Member-local mirror of rate_time(). The shared memo is frozen during
  /// a batch (the prologue published the base EVAL before the fan-out);
  /// a member additionally sees its own additions.
  double rate_time_m(MemberState& m, const search::FlagConfig& cfg) {
    const std::string key = cfg.key();
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    for (const auto& [k, v] : m.memo_added)
      if (k == key) return v;
    ++m.ratings_started;

    double eval = 0.0;
    switch (method_) {
      case rating::Method::kCBR: {
        rating::ContextBasedRater rater(driver_.options_.window);
        const std::size_t budget =
            driver_.options_.window.max_samples *
            std::clamp<std::size_t>(driver_.profile_.num_contexts, 1, 50);
        while (!rater.converged() && rater.total_samples() < budget) {
          const sim::Invocation& inv = next_invocation_m(m);
          rater.add(inv.context, measure_m(m, cfg, inv).time);
        }
        if (!rater.converged()) ++m.exhausted;
        const rating::Rating r = rater.rating();
        observe_rating_m(m, rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kMBR: {
        rating::ModelBasedRater rater(
            driver_.profile_.components.num_components(),
            driver_.profile_.mbr_profile, driver_.options_.mbr);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation_m(m);
          const sim::InvocationResult r = measure_m(m, cfg, inv);
          std::vector<double> counts(r.counters->begin(),
                                     r.counters->end());
          counts.push_back(1.0);  // constant component
          rater.add(counts, r.time);
        }
        if (!rater.converged()) ++m.exhausted;
        const rating::Rating r = rater.rating();
        observe_rating_m(m, rater.converged(), r.samples);
        m.mbr_residual = r.var;
        eval = r.eval;
        break;
      }
      case rating::Method::kAVG: {
        rating::ContextObliviousRater rater(driver_.options_.window);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation_m(m);
          rater.add(measure_m(m, cfg, inv).time);
        }
        if (!rater.converged()) ++m.exhausted;
        const rating::Rating r = rater.rating();
        observe_rating_m(m, rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kWHL: {
        rating::WholeProgramRater rater;
        while (!rater.converged() && !rater.exhausted()) {
          double run_ts_time = 0.0;
          for (std::size_t i = 0; i < driver_.trace_.invocations.size();
               ++i) {
            const double t = measure_m(m, cfg, next_invocation_m(m)).time;
            rater.add_invocation(t);
            run_ts_time += t;
          }
          rater.end_run();
          const double fraction = driver_.workload_.ts_time_fraction();
          m.whole_program_surcharge +=
              run_ts_time * (1.0 / fraction - 1.0);
        }
        const rating::Rating r = rater.rating();
        observe_rating_m(m, rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kRBR:
        PEAK_CHECK(false, "RBR is pair-based; use rbr_ratio_m");
        break;
    }
    if (eval <= 0.0) {
      ++m.exhausted;
      throw RatingNotConverging(
          std::string(rating::to_string(method_)) +
          " produced no estimate for " + driver_.workload_.full_name());
    }
    m.memo_added.emplace_back(key, eval);
    return eval;
  }

  /// Fold one member's buffered deltas into the evaluator, exactly as a
  /// serial rating would have applied them interleaved. Primary thread
  /// only, canonical candidate order. Quarantine counts merge by
  /// restoring the member's observed counts verbatim; two members of one
  /// batch failing on the *same* key keep the higher count rather than
  /// the sum (documented undercount — deterministic, and conservative in
  /// the direction of re-measuring).
  void merge_member(const MemberState& m) {
    for (const fault::FaultEvent& ev : m.fault_events)
      if (journal_ != nullptr) journal_->record_fault(ev);
    for (const std::string& key : m.fail_keys) {  // std::set: sorted
      const auto it = m.quarantine.entries().find(key);
      if (it == m.quarantine.entries().end()) continue;
      if (it->second.failures > quarantine_.failures_of(key))
        quarantine_.restore_failures(key, it->second.kind,
                                     it->second.failures);
      if (it->second.quarantined)
        quarantine_.quarantine(key, it->second.kind);
    }
    for (const auto& [key, eval] : m.memo_added) memo_.emplace(key, eval);
    for (const std::string& key : m.validated_added)
      validated_.insert(key);

    DriverMetrics& dm = DriverMetrics::get();
    dm.invocations.inc(m.invocations);
    dm.ratings_started.inc(m.ratings_started);
    for (const JournalEval::RatingObs& o : m.robs) {
      (o.converged ? dm.ratings_converged : dm.ratings_exhausted).inc();
      dm.window_occupancy.observe(static_cast<double>(o.samples));
    }
    if (m.mbr_residual) dm.mbr_residual.set(*m.mbr_residual);

    invocations_ += m.invocations;
    ratings_ += m.ratings_started;
    exhausted_ += m.exhausted;
    whole_program_surcharge_ += m.whole_program_surcharge;
    // Simulated-cycle costs fold into the primary backend (cost side
    // only: its own unconsumed rng/warmth state stays untouched).
    backend_.absorb_cost_deltas(
        m.from_cache
            ? m.cached_cost
            : sim::SimExecutionBackend::cost_deltas(m.before, m.after));
  }

  /// Journal one batch member. The batch's prologue (base rating) rides
  /// along on the first live record — its memo entry, observations, and
  /// fail deltas concatenate in front of the member's own — so replay
  /// reproduces the evaluator state without a dedicated prologue record.
  void record_member_eval(const MemberState& m, const MemberState* pro) {
    if (journal_ == nullptr) return;
    JournalEval e;
    e.base_key = m.base->key();
    e.cfg_key = m.cfg->key();
    e.r = m.r;
    if (pro != nullptr) e.memo_added = pro->memo_added;
    e.memo_added.insert(e.memo_added.end(), m.memo_added.begin(),
                        m.memo_added.end());
    e.validated_added = m.validated_added;
    std::set<std::string> fails = m.fail_keys;
    if (pro != nullptr)
      fails.insert(pro->fail_keys.begin(), pro->fail_keys.end());
    for (const std::string& key : fails) {
      const auto it = quarantine_.entries().find(key);
      if (it == quarantine_.entries().end()) continue;
      JournalEval::FailDelta d;
      d.key = key;
      d.kind = it->second.kind;
      d.failures = it->second.failures;
      d.quarantined = it->second.quarantined;
      e.fails.push_back(std::move(d));
    }
    if (pro != nullptr) e.ratings_observed = pro->robs;
    e.ratings_observed.insert(e.ratings_observed.end(), m.robs.begin(),
                              m.robs.end());
    e.snap.backend = backend_.snapshot_state();
    e.snap.cursor = cursor_;
    e.snap.invocations = invocations_;
    e.snap.evaluations = evaluations_;
    e.snap.ratings = ratings_;
    e.snap.exhausted = exhausted_;
    e.snap.whole_program_surcharge = whole_program_surcharge_;
    journal_->record_eval(e);
  }

  /// Normalize a cache hit into regular member outputs, so merging and
  /// journaling do not care whether a rating ran live or replayed from
  /// disk.
  void load_cached(MemberState& m) {
    const std::optional<RatingCacheEntry> e = cache_->lookup(m.cache_key);
    if (!e) return;
    m.from_cache = true;
    m.r = e->r;
    m.memo_added = e->memo_added;
    for (const RatingCacheEntry::RatingObs& o : e->rating_obs)
      m.robs.push_back({o.converged, o.samples});
    m.invocations = e->invocations;
    m.ratings_started = e->ratings_started;
    m.exhausted = e->exhausted;
    m.whole_program_surcharge = e->whole_program_surcharge;
    m.cached_cost = e->cost;
    m.mbr_residual = e->mbr_residual;
  }

  void maybe_store(const MemberState& m) {
    if (cache_ == nullptr || m.from_cache || m.error) return;
    const auto t0 = std::chrono::steady_clock::now();
    RatingCacheEntry e;
    e.r = m.r;
    e.memo_added = m.memo_added;
    for (const JournalEval::RatingObs& o : m.robs)
      e.rating_obs.push_back({o.converged, o.samples});
    e.invocations = m.invocations;
    e.ratings_started = m.ratings_started;
    e.exhausted = m.exhausted;
    e.whole_program_surcharge = m.whole_program_surcharge;
    e.cost = sim::SimExecutionBackend::cost_deltas(m.before, m.after);
    e.mbr_residual = m.mbr_residual;
    cache_->store(m.cache_key, e);
    cache_wall_us_ += std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  }

  // ---- Out-of-process isolation (isolate_workers >= 1) ------------------

  /// Run `targets` (canonical batch order) in forked worker subprocesses
  /// under a proc::Supervisor. Task i maps to worker i % W — the same
  /// schedule slotted_for uses — and each task rates its member with the
  /// exact run_member() code the in-process path runs, on the same slot
  /// clone, so the member outputs are bit-identical; only the transport
  /// differs (a JSONL frame instead of shared memory). A worker death
  /// requeues the task onto a fresh fork with a bumped process-attempt
  /// counter; after max_task_attempts the config is treated as a
  /// deterministic crasher (see synthesize_process_failure).
  void run_members_isolated(const std::vector<MemberState*>& targets) {
    if (targets.empty()) return;
    const std::size_t slots = std::min<std::size_t>(
        driver_.options_.isolate_workers, targets.size());
    ensure_slots(slots);
    proc::SupervisorPolicy policy;
    policy.workers = slots;
    // The TaskFn body executes in the forked child: it inherits the
    // evaluator frozen at fork time (members, memo, quarantine, slot
    // clones) by copy-on-write and ships the member's buffered deltas
    // back as one frame. Nothing the child mutates is visible here.
    proc::Supervisor sup(
        [this, &targets, slots](std::size_t task, std::size_t attempt) {
          MemberState& m = *targets[task];
          m.backend = slots_[task % slots].get();
          // Lets a transient hard-crash verdict clear on the retry fork
          // (and a deterministic one keep firing until quarantine).
          m.backend->set_process_attempt(attempt);
          run_member(m);
          return serialize_member(m);
        },
        policy);
    const std::vector<proc::TaskOutcome> outs = sup.run(targets.size());
    PEAK_CHECK(outs.size() == targets.size(), "supervisor outcome arity");
    for (std::size_t i = 0; i < targets.size(); ++i) {
      MemberState& m = *targets[i];
      if (outs[i].ok)
        apply_member_payload(m, outs[i].payload);
      else
        synthesize_process_failure(m, outs[i]);
      // Wall burned on dead attempts is real tuning overhead, but never
      // simulated cycles: charging cycles would perturb simulated_time
      // and break bit-identity with the crash-free run. Retried-then-
      // succeeded attempts land on "retry", given-up ones on "faulted".
      for (const proc::WorkerFailure& f : outs[i].failures)
        (outs[i].ok ? proc_retry_wall_us_ : proc_faulted_wall_us_) +=
            f.burned_wall_us;
    }
  }

  // ---- Distributed rating (options_.coordinator != nullptr) -------------

  /// Run `targets` (canonical batch order) on the coordinator's worker
  /// fleet. Each member becomes one RemoteMemberTask — method, config
  /// bits, content-derived stream seed, and the frozen memo entries the
  /// rating may read (at most the base's and the candidate's) — so the
  /// remote rating is the same pure function of content the local slot
  /// threads compute; only the transport differs. Results come back in
  /// the `proc` member wire format and flow through the exact
  /// apply/synthesize pair the isolated path uses, including the
  /// wall-burned accounting for dead workers.
  void run_members_remote(const std::vector<MemberState*>& targets) {
    if (targets.empty()) return;
    std::vector<RemoteMemberTask> tasks;
    tasks.reserve(targets.size());
    for (const MemberState* mp : targets) {
      RemoteMemberTask t;
      t.method = method_;
      t.base_key = mp->base->key();
      t.cfg_key = mp->cfg->key();
      t.prologue = mp->prologue;
      t.seed = mp->seed;
      const auto base_it = memo_.find(t.base_key);
      if (base_it != memo_.end())
        t.memo.emplace_back(base_it->first, base_it->second);
      if (t.cfg_key != t.base_key) {
        const auto cfg_it = memo_.find(t.cfg_key);
        if (cfg_it != memo_.end())
          t.memo.emplace_back(cfg_it->first, cfg_it->second);
      }
      tasks.push_back(std::move(t));
    }
    const std::vector<proc::TaskOutcome> outs =
        driver_.options_.coordinator->run_round(tasks);
    PEAK_CHECK(outs.size() == targets.size(), "coordinator outcome arity");
    for (std::size_t i = 0; i < targets.size(); ++i) {
      MemberState& m = *targets[i];
      if (outs[i].ok)
        apply_member_payload(m, outs[i].payload);
      else
        synthesize_process_failure(m, outs[i]);
      // Same wall-only accounting as the isolated path: dead dispatches
      // burn real time but never simulated cycles.
      for (const proc::WorkerFailure& f : outs[i].failures)
        (outs[i].ok ? proc_retry_wall_us_ : proc_faulted_wall_us_) +=
            f.burned_wall_us;
    }
  }

  /// Wire format of one rated member: the complete buffered delta of
  /// run_member(), in the journal's JSONL dialect (hex doubles, so the
  /// pipe round trip is exact). Runs in the child.
  [[nodiscard]] std::string serialize_member(const MemberState& m) const {
    using jsonl::hex_double;
    using jsonl::quote;
    std::ostringstream os;
    os << "{\"r\":" << quote(hex_double(m.r));
    if (!m.memo_added.empty()) {
      os << ",\"memo\":[";
      for (std::size_t i = 0; i < m.memo_added.size(); ++i)
        os << (i ? "," : "") << "{\"k\":" << quote(m.memo_added[i].first)
           << ",\"v\":" << quote(hex_double(m.memo_added[i].second)) << "}";
      os << "]";
    }
    if (!m.validated_added.empty()) {
      os << ",\"validated\":[";
      for (std::size_t i = 0; i < m.validated_added.size(); ++i)
        os << (i ? "," : "") << quote(m.validated_added[i]);
      os << "]";
    }
    if (!m.robs.empty()) {
      os << ",\"robs\":[";
      for (std::size_t i = 0; i < m.robs.size(); ++i)
        os << (i ? "," : "") << "{\"c\":"
           << (m.robs[i].converged ? "true" : "false")
           << ",\"s\":" << m.robs[i].samples << "}";
      os << "]";
    }
    if (!m.fail_keys.empty()) {
      os << ",\"failk\":[";
      std::size_t i = 0;
      for (const std::string& key : m.fail_keys)
        os << (i++ ? "," : "") << quote(key);
      os << "],\"fails\":[";
      i = 0;
      for (const std::string& key : m.fail_keys) {
        const auto it = m.quarantine.entries().find(key);
        if (it == m.quarantine.entries().end()) continue;
        os << (i++ ? "," : "") << "{\"k\":" << quote(key)
           << ",\"kind\":" << quote(fault::to_string(it->second.kind))
           << ",\"n\":" << it->second.failures
           << ",\"q\":" << (it->second.quarantined ? "true" : "false")
           << "}";
      }
      os << "]";
    }
    if (!m.fault_events.empty()) {
      os << ",\"events\":[";
      for (std::size_t i = 0; i < m.fault_events.size(); ++i) {
        const fault::FaultEvent& ev = m.fault_events[i];
        os << (i ? "," : "")
           << "{\"kind\":" << quote(fault::to_string(ev.kind))
           << ",\"cfg\":" << quote(ev.config_key)
           << ",\"inv\":" << ev.invocation_id
           << ",\"attempt\":" << ev.attempt
           << ",\"gave_up\":" << (ev.gave_up ? "true" : "false")
           << ",\"q\":" << (ev.quarantined ? "true" : "false") << "}";
      }
      os << "]";
    }
    os << ",\"inv\":" << m.invocations << ",\"rs\":" << m.ratings_started
       << ",\"rx\":" << m.exhausted
       << ",\"whl\":" << quote(hex_double(m.whole_program_surcharge));
    if (m.mbr_residual)
      os << ",\"mbr\":" << quote(hex_double(*m.mbr_residual));
    const sim::SimExecutionBackend::CostDeltas c =
        sim::SimExecutionBackend::cost_deltas(m.before, m.after);
    os << ",\"cost\":{\"acc\":" << quote(hex_double(c.accumulated))
       << ",\"timed\":" << quote(hex_double(c.timed))
       << ",\"pre\":" << quote(hex_double(c.precondition))
       << ",\"ckpt\":" << quote(hex_double(c.checkpoint))
       << ",\"faulted\":" << quote(hex_double(c.faulted))
       << ",\"retry\":" << quote(hex_double(c.retry))
       << ",\"saves\":" << c.saves << ",\"restores\":" << c.restores
       << ",\"ckpt_bytes\":" << c.checkpoint_bytes << "}";
    if (m.error) {
      // Exceptions do not fit through a pipe; a (tag, what) pair does,
      // and the parent rebuilds the matching type so the merge loop's
      // rethrow behaves exactly like the in-process path.
      std::string tag = "std";
      std::string what = "unknown error";
      try {
        std::rethrow_exception(m.error);
      } catch (const RatingNotConverging& e) {
        tag = "rnc";
        what = e.what();
      } catch (const support::CheckError& e) {
        tag = "check";
        what = e.what();
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      os << ",\"err\":{\"tag\":" << quote(tag)
         << ",\"what\":" << quote(what) << "}";
    }
    os << "}";
    return os.str();
  }

  /// Parent-side inverse of serialize_member(): rebuild the member's
  /// output fields so merge_member()/record_member_eval()/maybe_store()
  /// run unchanged on an isolated result. `before` stays default-zeroed
  /// and `after` carries the deltas directly — x - 0.0 == x bitwise, so
  /// cost_deltas(before, after) reproduces the child's exact values.
  void apply_member_payload(MemberState& m, const std::string& payload) {
    const jsonl::JsonValue j = jsonl::JsonParser(payload).parse();
    m.r = j.at("r").as_hex_double();
    if (j.has("memo"))
      for (const jsonl::JsonValue& e : j.at("memo").as_array())
        m.memo_added.emplace_back(e.at("k").as_string(),
                                  e.at("v").as_hex_double());
    if (j.has("validated"))
      for (const jsonl::JsonValue& v : j.at("validated").as_array())
        m.validated_added.push_back(v.as_string());
    if (j.has("robs"))
      for (const jsonl::JsonValue& o : j.at("robs").as_array())
        m.robs.push_back({o.at("c").as_bool(), o.at("s").as_u64()});
    if (j.has("failk")) {
      for (const jsonl::JsonValue& k : j.at("failk").as_array())
        m.fail_keys.insert(k.as_string());
      m.quarantine = quarantine_;
      for (const jsonl::JsonValue& f : j.at("fails").as_array()) {
        const auto kind = fault::parse_fault_kind(f.at("kind").as_string());
        PEAK_CHECK(kind.has_value(), "worker frame: unknown fault kind");
        m.quarantine.restore_failures(f.at("k").as_string(), *kind,
                                      f.at("n").as_u64());
        if (f.at("q").as_bool())
          m.quarantine.quarantine(f.at("k").as_string(), *kind);
      }
    }
    if (j.has("events"))
      for (const jsonl::JsonValue& e : j.at("events").as_array()) {
        fault::FaultEvent ev;
        const auto kind = fault::parse_fault_kind(e.at("kind").as_string());
        PEAK_CHECK(kind.has_value(), "worker frame: unknown fault kind");
        ev.kind = *kind;
        ev.config_key = e.at("cfg").as_string();
        ev.invocation_id = e.at("inv").as_u64();
        ev.attempt = e.at("attempt").as_u64();
        ev.gave_up = e.at("gave_up").as_bool();
        ev.quarantined = e.at("q").as_bool();
        m.fault_events.push_back(std::move(ev));
      }
    m.invocations = j.at("inv").as_u64();
    m.ratings_started = j.at("rs").as_u64();
    m.exhausted = j.at("rx").as_u64();
    m.whole_program_surcharge = j.at("whl").as_hex_double();
    if (j.has("mbr")) m.mbr_residual = j.at("mbr").as_hex_double();
    const jsonl::JsonValue& c = j.at("cost");
    m.before = sim::SimExecutionBackend::Snapshot{};
    m.after = sim::SimExecutionBackend::Snapshot{};
    m.after.accumulated = c.at("acc").as_hex_double();
    m.after.timed = c.at("timed").as_hex_double();
    m.after.precondition = c.at("pre").as_hex_double();
    m.after.checkpoint = c.at("ckpt").as_hex_double();
    m.after.faulted = c.at("faulted").as_hex_double();
    m.after.retry = c.at("retry").as_hex_double();
    m.after.saves = c.at("saves").as_u64();
    m.after.restores = c.at("restores").as_u64();
    m.after.checkpoint_bytes = c.at("ckpt_bytes").as_u64();
    if (j.has("err")) {
      const jsonl::JsonValue& err = j.at("err");
      const std::string tag = err.at("tag").as_string();
      const std::string what = err.at("what").as_string();
      if (tag == "rnc")
        m.error = std::make_exception_ptr(RatingNotConverging(what));
      else if (tag == "check")
        m.error = std::make_exception_ptr(support::CheckError(what));
      else
        m.error = std::make_exception_ptr(std::runtime_error(what));
    }
  }

  /// The member's rating never completed on any process attempt. The
  /// config gets "no improvement" (the serial path's ConfigFailed answer)
  /// and, when every attempt died the same way, a quarantine entry — a
  /// deterministic crasher must never be probed again. Mixed failure
  /// signatures record the failures without quarantining (conservative in
  /// the direction of re-measuring). Nothing here touches the simulated
  /// clock, so the surviving members stay bit-identical.
  void synthesize_process_failure(MemberState& m,
                                  const proc::TaskOutcome& out) {
    m.r = 0.0;
    m.before = sim::SimExecutionBackend::Snapshot{};
    m.after = sim::SimExecutionBackend::Snapshot{};
    const std::string key = m.cfg->key();
    fault::FaultKind kind = fault::FaultKind::kHardCrash;
    if (!out.failures.empty() &&
        out.failures.front().cls == proc::ExitClass::kTimeout)
      kind = fault::FaultKind::kHang;
    const bool deterministic = out.failures_identical();
    m.fail_keys.insert(key);
    m.quarantine = quarantine_;
    m.quarantine.restore_failures(
        key, kind, quarantine_.failures_of(key) + out.failures.size());
    if (deterministic) m.quarantine.quarantine(key, kind);
    fault::FaultEvent ev;
    ev.kind = kind;
    ev.config_key = key;
    ev.attempt = out.attempts == 0 ? 0 : out.attempts - 1;
    ev.gave_up = true;
    ev.quarantined = deterministic;
    m.fault_events.push_back(std::move(ev));
    if (m.prologue)
      // The *base* crashes its process deterministically: no candidate
      // can be rated against it, so the method is unusable here — same
      // answer RatingNotConverging gives for an unmeasurable base.
      m.error = std::make_exception_ptr(RatingNotConverging(
          "base rating crashed its worker process for " +
          driver_.workload_.full_name()));
  }

  /// Everything a batched rating's outcome is a function of, besides the
  /// (base, candidate) bits: machine, section, trace content, run seed,
  /// rating method and its parameters, and the effect model's behaviour.
  /// Mixed into two independent 64-bit chains; each cache key extends
  /// them with the config bits (128-bit keys make accidental collisions
  /// implausible at any realistic cache size).
  void init_cache_fingerprint() {
    std::uint64_t h1 = support::stable_hash("peak.rating_cache.v1");
    std::uint64_t h2 = support::stable_hash("peak.rating_cache.v1.alt");
    const auto mix = [&](std::uint64_t v) {
      h1 = support::hash_combine(h1, v);
      h2 = support::hash_combine(h2, v ^ 0x636f6e74656e7431ULL);
    };
    const auto mix_d = [&](double d) {
      mix(std::bit_cast<std::uint64_t>(d));
    };
    const auto mix_s = [&](std::string_view s) {
      mix(support::stable_hash(s));
    };
    mix_s(driver_.machine_.name);
    mix_s(driver_.workload_.full_name());
    mix(driver_.options_.seed);
    mix_s(rating::to_string(method_));
    const rating::WindowPolicy& w = driver_.options_.window;
    mix(w.min_samples);
    mix(w.max_samples);
    mix_d(w.cv_threshold);
    mix(static_cast<std::uint64_t>(w.outliers.rule));
    mix_d(w.outliers.k);
    mix_d(w.outliers.max_drop_fraction);
    mix(static_cast<std::uint64_t>(w.outliers.max_iterations));
    const rating::MbrPolicy& mb = driver_.options_.mbr;
    mix(mb.min_samples_per_component);
    mix(mb.max_samples);
    mix_d(mb.var_threshold);
    mix_d(mb.cv_threshold);
    mix_d(mb.dominant_share);
    mix(driver_.options_.improved_rbr ? 1 : 0);
    mix(driver_.options_.rbr_batch_pairs);
    mix(driver_.profile_.num_contexts);
    mix(driver_.profile_.input_sets.input_bytes(fn_));
    mix(driver_.profile_.checkpoint_plan.bytes(fn_));
    mix_d(driver_.workload_.ts_time_fraction());
    // Trace content: ids, contexts, cacheability, irregularity.
    mix_d(driver_.trace_.workload_scale);
    mix(driver_.trace_.invocations.size());
    for (const sim::Invocation& inv : driver_.trace_.invocations) {
      mix(inv.id);
      mix(inv.context_determines_time ? 1 : 0);
      mix_d(inv.irregularity);
      mix(inv.context.size());
      for (double c : inv.context) mix_d(c);
    }
    // Effect-model fingerprint: the multipliers of the two canonical
    // configurations pin down the model's seed and curated story (any
    // change to either moves these bit patterns).
    const search::OptimizationSpace& space = driver_.effects_.space();
    mix_d(driver_.effects_.time_multiplier(backend_.traits(),
                                           driver_.machine_,
                                           search::o3_config(space)));
    mix_d(driver_.effects_.time_multiplier(backend_.traits(),
                                           driver_.machine_,
                                           search::baseline_config(space)));
    cache_salt_ = {h1, h2};
  }

  [[nodiscard]] std::string make_cache_key(const search::FlagConfig& base,
                                           const search::FlagConfig& cfg,
                                           bool prologue) const {
    std::uint64_t h1 = cache_salt_.first;
    std::uint64_t h2 = cache_salt_.second;
    const auto mix = [&](std::uint64_t v) {
      h1 = support::hash_combine(h1, v);
      h2 = support::hash_combine(h2, v ^ 0x636f6e74656e7431ULL);
    };
    for (std::uint64_t word : base.bits().words()) mix(word);
    mix(0x2f);  // separator: bits are length-prefixed by space size anyway
    for (std::uint64_t word : cfg.bits().words()) mix(word);
    mix(prologue ? 0x70726f6c6f677565ULL : 0);
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(h1),
                  static_cast<unsigned long long>(h2));
    return std::string(buf);
  }

  const TuningDriver& driver_;
  rating::Method method_;
  const ir::Function& fn_;
  /// Seed of the primary backend; batch-member stream seeds and backend
  /// clones derive from it, so they are content-addressed too.
  std::uint64_t backend_seed_;
  sim::SimExecutionBackend backend_;
  std::map<std::string, double> memo_;
  std::size_t cursor_ = 0;
  std::size_t invocations_ = 0;
  std::size_t evaluations_ = 0;  ///< relative_improvement() calls
  std::size_t ratings_ = 0;
  std::size_t exhausted_ = 0;
  double whole_program_surcharge_ = 0.0;

  fault::Quarantine& quarantine_;
  TuningJournal* journal_;              ///< null = no journaling
  const JournalSegment* replay_;        ///< null = nothing to replay
  std::size_t replay_pos_ = 0;
  std::optional<fault::GuardedExecutor> guard_;
  /// Configs whose output digest already passed validation.
  std::set<std::string> validated_;
  /// Per-evaluation state deltas, harvested into the journal record.
  std::vector<std::pair<std::string, double>> pending_memo_;
  std::vector<std::string> pending_validated_;
  std::set<std::string> pending_fail_keys_;
  std::vector<JournalEval::RatingObs> pending_rating_obs_;
  /// evaluator_wall_us() at construction; publish_costs() charges the
  /// delta as this method's rating wall.
  double evaluator_wall_at_start_ = obs::evaluator_wall_us();

  // Batched evaluation (search_threads >= 1). Per-slot backend clones;
  // slot s rates the batch items i with i % slots == s, so the item →
  // backend mapping is a pure function of the batch shape (and, because
  // every rating resets its clone's measurement stream, the results do
  // not depend on the mapping at all).
  std::vector<std::unique_ptr<sim::SimExecutionBackend>> slots_;
  std::unique_ptr<support::ThreadPool> pool_;
  /// Persistent rating cache; null unless batch mode without an injector.
  RatingCache* cache_ = nullptr;
  /// Run-fingerprint halves every cache key starts from.
  std::pair<std::uint64_t, std::uint64_t> cache_salt_{};
  /// Wall spent on cache lookups/stores, charged as the "cache" phase.
  double cache_wall_us_ = 0.0;
  /// Wall burned by worker-process deaths (isolate_workers): attempts
  /// that were retried successfully vs. given up on. Charged wall-only
  /// into the "retry" / "faulted" ledger phases by publish_costs().
  double proc_retry_wall_us_ = 0.0;
  double proc_faulted_wall_us_ = 0.0;
};

TuningDriver::TuningDriver(const workloads::Workload& workload,
                           const ProfileData& profile,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           DriverOptions options)
    : workload_(workload),
      profile_(profile),
      trace_(trace),
      machine_(machine),
      effects_(effects),
      options_(options),
      mbr_instrumented_(
          profile.components.mbr_applicable
              ? analysis::instrument_components(workload.function(),
                                                profile.components)
              : workload.function()) {
  PEAK_CHECK(!trace_.invocations.empty(), "empty tuning trace");
}

TuningDriver::~TuningDriver() = default;

void TuningDriver::prepare_journal() {
  if (options_.fault.journal_path.empty() || journal_ != nullptr) return;
  if (options_.fault.resume) {
    TuningJournal::LoadStats stats;
    replay_segments_ = TuningJournal::load(options_.fault.journal_path,
                                           options_.fault.journal_strict,
                                           &stats);
    // Lenient load stopped at a corrupt mid-file line: physically drop
    // the damaged tail before appending. Records written after it would
    // otherwise sit behind the damage and be discarded by the next load.
    if (stats.truncated)
      ::truncate(options_.fault.journal_path.c_str(),
                 static_cast<off_t>(stats.good_bytes));
  }
  journal_ = std::make_unique<TuningJournal>(options_.fault.journal_path);
}

std::string TuningDriver::rate_remote_member(const RemoteMemberTask& task) {
  PEAK_CHECK(options_.fault.injector == nullptr,
             "a remote rating host cannot carry a fault injector");
  PEAK_CHECK(options_.search_threads >= 1,
             "remote member rating requires batch semantics");
  auto it = remote_evals_.find(task.method);
  if (it == remote_evals_.end()) {
    const ir::Function& fn = task.method == rating::Method::kMBR
                                 ? mbr_instrumented_
                                 : workload_.function();
    it = remote_evals_
             .emplace(task.method,
                      std::make_unique<Evaluator>(*this, task.method, fn,
                                                  quarantine_,
                                                  /*journal=*/nullptr,
                                                  /*replay=*/nullptr))
             .first;
  }
  return it->second->rate_remote(task);
}

TuningOutcome TuningDriver::tune(rating::Method method) {
  const ir::Function& fn = method == rating::Method::kMBR
                               ? mbr_instrumented_
                               : workload_.function();
  prepare_journal();
  // On resume, each tune() call consumes one recorded segment: its evals
  // replay instead of measuring, and the journal's existing "start" line
  // stands in for the one a fresh segment would write.
  const JournalSegment* replay = nullptr;
  if (replay_index_ < replay_segments_.size()) {
    PEAK_CHECK(
        replay_segments_[replay_index_].method == rating::to_string(method),
        "journal method sequence does not match this run");
    replay = &replay_segments_[replay_index_++];
  } else if (journal_ != nullptr) {
    journal_->start_segment(rating::to_string(method));
  }
  // Attribution path for every cost this tune() charges: the ledger's
  // machine → benchmark → section → method hierarchy. Thread-local, so
  // parallel section tuning attributes each worker's costs correctly.
  obs::AttributionScope machine_scope(machine_.name);
  obs::AttributionScope benchmark_scope(workload_.benchmark());
  obs::AttributionScope section_scope(workload_.ts_name());
  obs::AttributionScope method_scope(rating::to_string(method));

  Evaluator evaluator(*this, method, fn, quarantine_, journal_.get(),
                      replay);

  search::IterativeElimination default_ie(options_.ie);
  search::SearchAlgorithm& algorithm =
      options_.search_algorithm ? *options_.search_algorithm : default_ie;
  const search::FlagConfig start = search::o3_config(effects_.space());

  obs::ScopedSpan span("tune", "driver");
  if (span.active()) {
    span.add(obs::attr("method", rating::to_string(method)));
    span.add(obs::attr("section", workload_.full_name()));
    span.add(obs::attr("search", algorithm.name()));
  }

  search::SearchResult sr;
  try {
    sr = algorithm.run(effects_.space(), evaluator, start);
  } catch (const RatingNotConverging& e) {
    // The method cannot rate anything here: abandon it, report the cost
    // spent so far, and let tune_auto() switch methods.
    evaluator.publish_costs();
    TuningOutcome outcome;
    outcome.best_config = start;
    outcome.method = method;
    outcome.cost = evaluator.cost();
    outcome.exhausted_fraction = 1.0;
    search::SearchEvent abandoned;
    abandoned.kind = search::SearchEvent::Kind::kAbandoned;
    abandoned.flag = rating::to_string(method);
    abandoned.note = e.what();
    search::record_event(outcome.events, std::move(abandoned));
    return outcome;
  }

  evaluator.publish_costs();
  TuningOutcome outcome;
  outcome.best_config = sr.best;
  outcome.method = method;
  // cost.configs_evaluated comes from the evaluator (== the number of
  // relative_improvement calls), which also equals sr.configs_evaluated
  // for every in-tree search algorithm.
  outcome.cost = evaluator.cost();
  outcome.search_improvement = sr.improvement_over_start;
  outcome.exhausted_fraction = evaluator.exhausted_fraction();
  outcome.events = std::move(sr.events);
  return outcome;
}

TuningOutcome TuningDriver::tune_auto() {
  const auto& chain = profile_.decision.chain;
  PEAK_CHECK(!chain.empty(), "no applicable rating method for " +
                                 workload_.full_name());
  TuningCost accumulated;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    TuningOutcome outcome = tune(chain[i]);
    // Fold in the cost of earlier, abandoned attempts.
    outcome.cost.simulated_time += accumulated.simulated_time;
    outcome.cost.invocations += accumulated.invocations;
    outcome.cost.program_runs += accumulated.program_runs;
    outcome.cost.configs_evaluated += accumulated.configs_evaluated;
    const bool last = i + 1 == chain.size();
    if (last ||
        outcome.exhausted_fraction <= options_.max_exhausted_fraction) {
      search::SearchEvent chosen;
      chosen.kind = search::SearchEvent::Kind::kMethodChosen;
      chosen.flag = rating::to_string(chain[i]);
      chosen.round = i;  // render(): i > 0 reads "(after fallback)"
      // Prepended to the trace (the chosen method heads the log), but
      // published live in real order — the stream is chronological.
      obs::publish_run_event(std::string(search::to_string(chosen.kind)),
                             search::to_json(chosen));
      outcome.events.insert(outcome.events.begin(), std::move(chosen));
      obs::Tracer::global().instant(
          "method_chosen", "driver",
          {obs::attr("method", rating::to_string(chain[i])),
           obs::attr("fallbacks", i)});
      return outcome;
    }
    accumulated = outcome.cost;
  }
  PEAK_CHECK(false, "unreachable");
  return {};
}

double expected_trace_time(const workloads::Workload& workload,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           const search::FlagConfig& config) {
  sim::TsTraits traits = workload.traits();
  traits.workload_scale = trace.workload_scale;
  sim::SimExecutionBackend backend(workload.function(), traits, machine,
                                   effects, /*seed=*/7);
  double total = 0.0;
  for (const sim::Invocation& inv : trace.invocations)
    total += backend.expected_time(config, inv);
  return total;
}

}  // namespace peak::core
