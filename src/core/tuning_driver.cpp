#include "core/tuning_driver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analysis/instrumentation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rating/baselines.hpp"
#include "rating/cbr.hpp"
#include "rating/mbr.hpp"
#include "rating/rbr.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::core {

namespace {

/// Cached references into the global metrics registry; resolving by name
/// once keeps the per-rating updates down to relaxed atomic ops.
struct DriverMetrics {
  obs::Counter& configs_evaluated =
      obs::counter("search.configs_evaluated");
  obs::Counter& ratings_started = obs::counter("rating.started");
  obs::Counter& ratings_converged = obs::counter("rating.converged");
  obs::Counter& ratings_exhausted = obs::counter("rating.exhausted");
  obs::Counter& invocations = obs::counter("rating.invocations");
  obs::Histogram& window_occupancy = obs::histogram(
      "rating.window_samples", {10, 20, 40, 80, 160, 320, 640});
  obs::Gauge& mbr_residual = obs::gauge("rating.mbr_residual");

  static DriverMetrics& get() {
    static DriverMetrics metrics;
    return metrics;
  }
};

/// Raised when a rating method cannot produce any estimate within its
/// sample budget; tune_auto() responds by switching down the method chain
/// (paper Section 3).
struct RatingNotConverging : std::runtime_error {
  explicit RatingNotConverging(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace

/// Rates configurations with one method over a shared invocation stream.
/// The stream cursor advances monotonically across ratings, modelling the
/// application continuing to run while versions are swapped in and out.
class TuningDriver::Evaluator final : public search::ConfigEvaluator {
public:
  Evaluator(const TuningDriver& driver, rating::Method method,
            const ir::Function& fn)
      : driver_(driver),
        method_(method),
        backend_(fn, [&] {
          sim::TsTraits t = driver.workload_.traits();
          t.workload_scale = driver.trace_.workload_scale;
          return t;
        }(), driver.machine_, driver.effects_,
        support::hash_combine(driver.options_.seed,
                              support::stable_hash(fn.name()))) {
    // Basic RBR saves the full input set; improved RBR saves the
    // range-analysis-narrowed Modified_Input slices.
    backend_.set_checkpoint_bytes(
        driver.profile_.input_sets.input_bytes(fn),
        driver.profile_.checkpoint_plan.bytes(fn));
  }

  double relative_improvement(const search::FlagConfig& base,
                              const search::FlagConfig& cfg) override {
    // Counted at entry so an attempt abandoned mid-rating (see
    // RatingNotConverging) is still accounted, keeping the registry
    // counter equal to cost().configs_evaluated on every path.
    ++evaluations_;
    DriverMetrics::get().configs_evaluated.inc();
    obs::ScopedSpan span("rate", "rating");
    if (span.active())
      span.add(obs::attr("method", rating::to_string(method_)));
    if (method_ == rating::Method::kRBR) return rbr_ratio(base, cfg);
    const double e_base = rate_time(base);
    const double e_cfg = rate_time(cfg);
    PEAK_CHECK(e_cfg > 0.0, "non-positive rating");
    return e_base / e_cfg;
  }

  /// Fold this evaluator's per-phase simulated-cycle attribution into
  /// the global metrics registry. Called once, after the search ends.
  void publish_sim_metrics() const {
    const sim::SimExecutionBackend::CycleBreakdown& b =
        backend_.breakdown();
    obs::gauge("sim.cycles_timed").add(b.timed);
    obs::gauge("sim.cycles_precondition").add(b.precondition);
    obs::gauge("sim.cycles_checkpoint").add(b.checkpoint);
    obs::gauge("sim.cycles_whole_program_surcharge")
        .add(whole_program_surcharge_);
    obs::counter("rbr.checkpoint_saves").inc(b.saves);
    obs::counter("rbr.checkpoint_restores").inc(b.restores);
    obs::counter("rbr.checkpoint_bytes").inc(b.checkpoint_bytes);
  }

  [[nodiscard]] TuningCost cost() const {
    TuningCost c;
    c.simulated_time =
        backend_.accumulated_time() + whole_program_surcharge_;
    c.invocations = invocations_;
    c.configs_evaluated = evaluations_;
    c.program_runs = driver_.trace_.invocations.empty()
                         ? 0.0
                         : static_cast<double>(invocations_) /
                               static_cast<double>(
                                   driver_.trace_.invocations.size());
    return c;
  }

  [[nodiscard]] double exhausted_fraction() const {
    return ratings_ == 0 ? 0.0
                         : static_cast<double>(exhausted_) /
                               static_cast<double>(ratings_);
  }

private:
  const sim::Invocation& next_invocation() {
    const auto& invs = driver_.trace_.invocations;
    const sim::Invocation& inv = invs[cursor_];
    cursor_ = (cursor_ + 1) % invs.size();
    ++invocations_;
    DriverMetrics::get().invocations.inc();
    return inv;
  }

  /// Per-rating metrics: convergence tally plus window occupancy.
  static void observe_rating(bool converged, std::size_t samples) {
    DriverMetrics& m = DriverMetrics::get();
    (converged ? m.ratings_converged : m.ratings_exhausted).inc();
    m.window_occupancy.observe(static_cast<double>(samples));
  }

  double rbr_ratio(const search::FlagConfig& base,
                   const search::FlagConfig& cfg) {
    ++ratings_;
    DriverMetrics::get().ratings_started.inc();
    rating::ReexecutionRater rater(driver_.options_.window);
    sim::RbrOptions rbr_opts;
    rbr_opts.improved = driver_.options_.improved_rbr;
    rbr_opts.batch_pairs = driver_.options_.rbr_batch_pairs;
    while (!rater.converged() && !rater.exhausted()) {
      const sim::Invocation& inv = next_invocation();
      for (const sim::RbrPairResult& pair :
           backend_.invoke_rbr_batch(base, cfg, inv, rbr_opts)) {
        rater.add_pair(pair.time_best, pair.time_exp);
        if (rater.converged() || rater.exhausted()) break;
      }
    }
    if (!rater.converged()) ++exhausted_;
    const rating::Rating r = rater.rating();
    observe_rating(rater.converged(), r.samples);
    // Significance gate: with very noisy sections (EQUAKE's irregular
    // memory) the window may cap out with a standard error comparable to
    // the search's improvement threshold; reporting a statistically
    // insignificant ratio would let noise eliminate useful options (the
    // paper's "if the rating is inaccurate, the tuning system will yield
    // limited performance or even degradation"). Below 3 SEM the verdict
    // is "no measurable difference".
    const double sem =
        r.samples > 0 ? std::sqrt(r.var / static_cast<double>(r.samples))
                      : 0.0;
    if (std::fabs(r.eval - 1.0) < 3.0 * sem) return 1.0;
    return r.eval;
  }

  /// Time-like EVAL of one configuration, memoized by config key.
  double rate_time(const search::FlagConfig& cfg) {
    const std::string key = cfg.key();
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    ++ratings_;
    DriverMetrics::get().ratings_started.inc();

    double eval = 0.0;
    switch (method_) {
      case rating::Method::kCBR: {
        rating::ContextBasedRater rater(driver_.options_.window);
        // With many contexts only a fraction of invocations feed the
        // dominant bucket, so the stream budget scales with the context
        // count (capped) — this is exactly why forcing CBR onto a
        // many-context section (MGRID_CBR) wastes tuning time.
        const std::size_t budget =
            driver_.options_.window.max_samples *
            std::clamp<std::size_t>(driver_.profile_.num_contexts, 1, 50);
        while (!rater.converged() && rater.total_samples() < budget) {
          const sim::Invocation& inv = next_invocation();
          rater.add(inv.context, backend_.invoke(cfg, inv).time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kMBR: {
        rating::ModelBasedRater rater(
            driver_.profile_.components.num_components(),
            driver_.profile_.mbr_profile, driver_.options_.mbr);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation();
          const sim::InvocationResult r = backend_.invoke(cfg, inv);
          std::vector<double> counts(r.counters->begin(), r.counters->end());
          counts.push_back(1.0);  // constant component
          rater.add(counts, r.time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        // r.var carries the fit's unexplained-variance ratio — the MBR
        // regression residual the obs layer reports.
        DriverMetrics::get().mbr_residual.set(r.var);
        eval = r.eval;
        break;
      }
      case rating::Method::kAVG: {
        rating::ContextObliviousRater rater(driver_.options_.window);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation();
          rater.add(backend_.invoke(cfg, inv).time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kWHL: {
        rating::WholeProgramRater rater;
        while (!rater.converged() &&
               rater.runs() < rating::WholeProgramRater::whl_policy()
                                  .max_samples) {
          // One full application run per sample. The run also executes
          // everything *around* the tuning section, which WHL must pay
          // for — that surcharge is the core of its cost disadvantage.
          double run_ts_time = 0.0;
          for (std::size_t i = 0; i < driver_.trace_.invocations.size();
               ++i) {
            const double t = backend_.invoke(cfg, next_invocation()).time;
            rater.add_invocation(t);
            run_ts_time += t;
          }
          rater.end_run();
          const double fraction = driver_.workload_.ts_time_fraction();
          whole_program_surcharge_ +=
              run_ts_time * (1.0 / fraction - 1.0);
        }
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kRBR:
        PEAK_CHECK(false, "RBR is pair-based; use rbr_ratio");
        break;
    }
    if (eval <= 0.0) {
      ++exhausted_;
      throw RatingNotConverging(
          std::string(rating::to_string(method_)) +
          " produced no estimate for " + driver_.workload_.full_name());
    }
    memo_.emplace(key, eval);
    return eval;
  }

  const TuningDriver& driver_;
  rating::Method method_;
  sim::SimExecutionBackend backend_;
  std::map<std::string, double> memo_;
  std::size_t cursor_ = 0;
  std::size_t invocations_ = 0;
  std::size_t evaluations_ = 0;  ///< relative_improvement() calls
  std::size_t ratings_ = 0;
  std::size_t exhausted_ = 0;
  double whole_program_surcharge_ = 0.0;
};

TuningDriver::TuningDriver(const workloads::Workload& workload,
                           const ProfileData& profile,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           DriverOptions options)
    : workload_(workload),
      profile_(profile),
      trace_(trace),
      machine_(machine),
      effects_(effects),
      options_(options),
      mbr_instrumented_(
          profile.components.mbr_applicable
              ? analysis::instrument_components(workload.function(),
                                                profile.components)
              : workload.function()) {
  PEAK_CHECK(!trace_.invocations.empty(), "empty tuning trace");
}

TuningOutcome TuningDriver::tune(rating::Method method) {
  const ir::Function& fn = method == rating::Method::kMBR
                               ? mbr_instrumented_
                               : workload_.function();
  Evaluator evaluator(*this, method, fn);

  search::IterativeElimination default_ie(options_.ie);
  search::SearchAlgorithm& algorithm =
      options_.search_algorithm ? *options_.search_algorithm : default_ie;
  const search::FlagConfig start = search::o3_config(effects_.space());

  obs::ScopedSpan span("tune", "driver");
  if (span.active()) {
    span.add(obs::attr("method", rating::to_string(method)));
    span.add(obs::attr("section", workload_.full_name()));
    span.add(obs::attr("search", algorithm.name()));
  }

  search::SearchResult sr;
  try {
    sr = algorithm.run(effects_.space(), evaluator, start);
  } catch (const RatingNotConverging& e) {
    // The method cannot rate anything here: abandon it, report the cost
    // spent so far, and let tune_auto() switch methods.
    evaluator.publish_sim_metrics();
    TuningOutcome outcome;
    outcome.best_config = start;
    outcome.method = method;
    outcome.cost = evaluator.cost();
    outcome.exhausted_fraction = 1.0;
    search::SearchEvent abandoned;
    abandoned.kind = search::SearchEvent::Kind::kAbandoned;
    abandoned.flag = rating::to_string(method);
    abandoned.note = e.what();
    outcome.events.push_back(std::move(abandoned));
    return outcome;
  }

  evaluator.publish_sim_metrics();
  TuningOutcome outcome;
  outcome.best_config = sr.best;
  outcome.method = method;
  // cost.configs_evaluated comes from the evaluator (== the number of
  // relative_improvement calls), which also equals sr.configs_evaluated
  // for every in-tree search algorithm.
  outcome.cost = evaluator.cost();
  outcome.search_improvement = sr.improvement_over_start;
  outcome.exhausted_fraction = evaluator.exhausted_fraction();
  outcome.events = std::move(sr.events);
  return outcome;
}

TuningOutcome TuningDriver::tune_auto() {
  const auto& chain = profile_.decision.chain;
  PEAK_CHECK(!chain.empty(), "no applicable rating method for " +
                                 workload_.full_name());
  TuningCost accumulated;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    TuningOutcome outcome = tune(chain[i]);
    // Fold in the cost of earlier, abandoned attempts.
    outcome.cost.simulated_time += accumulated.simulated_time;
    outcome.cost.invocations += accumulated.invocations;
    outcome.cost.program_runs += accumulated.program_runs;
    outcome.cost.configs_evaluated += accumulated.configs_evaluated;
    const bool last = i + 1 == chain.size();
    if (last ||
        outcome.exhausted_fraction <= options_.max_exhausted_fraction) {
      search::SearchEvent chosen;
      chosen.kind = search::SearchEvent::Kind::kMethodChosen;
      chosen.flag = rating::to_string(chain[i]);
      chosen.round = i;  // render(): i > 0 reads "(after fallback)"
      outcome.events.insert(outcome.events.begin(), std::move(chosen));
      obs::Tracer::global().instant(
          "method_chosen", "driver",
          {obs::attr("method", rating::to_string(chain[i])),
           obs::attr("fallbacks", i)});
      return outcome;
    }
    accumulated = outcome.cost;
  }
  PEAK_CHECK(false, "unreachable");
  return {};
}

double expected_trace_time(const workloads::Workload& workload,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           const search::FlagConfig& config) {
  sim::TsTraits traits = workload.traits();
  traits.workload_scale = trace.workload_scale;
  sim::SimExecutionBackend backend(workload.function(), traits, machine,
                                   effects, /*seed=*/7);
  double total = 0.0;
  for (const sim::Invocation& inv : trace.invocations)
    total += backend.expected_time(config, inv);
  return total;
}

}  // namespace peak::core
