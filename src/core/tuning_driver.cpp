#include "core/tuning_driver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "analysis/instrumentation.hpp"
#include "core/journal.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rating/baselines.hpp"
#include "rating/cbr.hpp"
#include "rating/mbr.hpp"
#include "rating/rbr.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::core {

namespace {

/// Cached references into the global metrics registry; resolving by name
/// once keeps the per-rating updates down to relaxed atomic ops.
struct DriverMetrics {
  obs::Counter& configs_evaluated =
      obs::counter("search.configs_evaluated");
  obs::Counter& ratings_started = obs::counter("rating.started");
  obs::Counter& ratings_converged = obs::counter("rating.converged");
  obs::Counter& ratings_exhausted = obs::counter("rating.exhausted");
  obs::Counter& invocations = obs::counter("rating.invocations");
  obs::Histogram& window_occupancy = obs::histogram(
      "rating.window_samples", {10, 20, 40, 80, 160, 320, 640});
  obs::Gauge& mbr_residual = obs::gauge("rating.mbr_residual");

  static DriverMetrics& get() {
    static DriverMetrics metrics;
    return metrics;
  }
};

/// Raised when a rating method cannot produce any estimate within its
/// sample budget; tune_auto() responds by switching down the method chain
/// (paper Section 3).
struct RatingNotConverging : std::runtime_error {
  explicit RatingNotConverging(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace

/// Rates configurations with one method over a shared invocation stream.
/// The stream cursor advances monotonically across ratings, modelling the
/// application continuing to run while versions are swapped in and out.
class TuningDriver::Evaluator final : public search::ConfigEvaluator {
public:
  Evaluator(const TuningDriver& driver, rating::Method method,
            const ir::Function& fn, fault::Quarantine& quarantine,
            TuningJournal* journal, const JournalSegment* replay)
      : driver_(driver),
        method_(method),
        backend_(fn, [&] {
          sim::TsTraits t = driver.workload_.traits();
          t.workload_scale = driver.trace_.workload_scale;
          return t;
        }(), driver.machine_, driver.effects_,
        support::hash_combine(driver.options_.seed,
                              support::stable_hash(fn.name()))),
        quarantine_(quarantine),
        journal_(journal),
        replay_(replay) {
    // Basic RBR saves the full input set; improved RBR saves the
    // range-analysis-narrowed Modified_Input slices.
    backend_.set_checkpoint_bytes(
        driver.profile_.input_sets.input_bytes(fn),
        driver.profile_.checkpoint_plan.bytes(fn));
    if (driver.options_.fault.injector != nullptr) {
      backend_.set_fault_injector(driver.options_.fault.injector);
      if (driver.options_.fault.guard_execution) {
        guard_.emplace(backend_, quarantine_,
                       driver.options_.fault.guard);
        guard_->set_on_fault([this](const fault::FaultEvent& ev) {
          pending_fail_keys_.insert(ev.config_key);
          if (journal_ != nullptr) journal_->record_fault(ev);
        });
      }
    }
  }

  double relative_improvement(const search::FlagConfig& base,
                              const search::FlagConfig& cfg) override {
    if (replay_ != nullptr && replay_pos_ < replay_->evals.size())
      return replay_eval(base, cfg);
    // Counted at entry so an attempt abandoned mid-rating (see
    // RatingNotConverging) is still accounted, keeping the registry
    // counter equal to cost().configs_evaluated on every path.
    ++evaluations_;
    DriverMetrics::get().configs_evaluated.inc();
    obs::ScopedSpan span("rate", "rating");
    if (span.active())
      span.add(obs::attr("method", rating::to_string(method_)));
    pending_memo_.clear();
    pending_validated_.clear();
    pending_fail_keys_.clear();
    pending_rating_obs_.clear();
    // Deadlines and backoff are priced off the current best version.
    if (guard_) guard_->set_reference(base);
    double r = 0.0;
    try {
      if (method_ == rating::Method::kRBR) {
        r = rbr_ratio(base, cfg);
      } else {
        const double e_base = rate_time(base);
        const double e_cfg = rate_time(cfg);
        PEAK_CHECK(e_cfg > 0.0, "non-positive rating");
        r = e_base / e_cfg;
      }
      maybe_validate(cfg, r);
    } catch (const fault::ConfigFailed&) {
      // The configuration cannot be measured: quarantined, retry budget
      // exhausted, or miscompiled. Report "no improvement" so the search
      // moves on; excluded() keeps it from ever being probed again.
      r = 0.0;
    }
    record_eval(base, cfg, r);
    return r;
  }

  /// Quarantined configurations are hard-excluded: the search emits a
  /// kQuarantined event and skips the candidate instead of probing it.
  [[nodiscard]] bool excluded(const search::FlagConfig& cfg) const override {
    return quarantine_.contains(cfg.key());
  }

  /// Fold this evaluator's per-phase simulated-cycle attribution into
  /// the global metrics registry and the cost ledger (under the caller's
  /// attribution path — tune() has machine/benchmark/section/method
  /// scopes open). Called once, after the search ends; on a resumed run
  /// the restored breakdown already contains the replayed cycles, so the
  /// ledger of a resumed run matches the uninterrupted one.
  void publish_costs() const {
    const sim::SimExecutionBackend::CycleBreakdown& b =
        backend_.breakdown();
    obs::gauge("sim.cycles_timed").add(b.timed);
    obs::gauge("sim.cycles_precondition").add(b.precondition);
    obs::gauge("sim.cycles_checkpoint").add(b.checkpoint);
    obs::gauge("sim.cycles_faulted").add(b.faulted);
    obs::gauge("sim.cycles_retry").add(b.retry);
    obs::gauge("sim.cycles_whole_program_surcharge")
        .add(whole_program_surcharge_);
    obs::counter("rbr.checkpoint_saves").inc(b.saves);
    obs::counter("rbr.checkpoint_restores").inc(b.restores);
    obs::counter("rbr.checkpoint_bytes").inc(b.checkpoint_bytes);

    obs::charge_phase("timed", b.timed);
    obs::charge_phase("precondition", b.precondition);
    obs::charge_phase("checkpoint", b.checkpoint);
    obs::charge_phase("faulted", b.faulted);
    obs::charge_phase("retry", b.retry);
    obs::charge_phase("whole_program", whole_program_surcharge_);
    // Wall spent inside this evaluator's rating calls goes to the method
    // node itself (it spans several cycle phases at once); the method's
    // wall total is then rating wall + the search_overhead phase.
    obs::charge_phase("", 0.0,
                      obs::evaluator_wall_us() - evaluator_wall_at_start_);
  }

  [[nodiscard]] TuningCost cost() const {
    TuningCost c;
    c.simulated_time =
        backend_.accumulated_time() + whole_program_surcharge_;
    c.invocations = invocations_;
    c.configs_evaluated = evaluations_;
    c.program_runs = driver_.trace_.invocations.empty()
                         ? 0.0
                         : static_cast<double>(invocations_) /
                               static_cast<double>(
                                   driver_.trace_.invocations.size());
    return c;
  }

  [[nodiscard]] double exhausted_fraction() const {
    return ratings_ == 0 ? 0.0
                         : static_cast<double>(exhausted_) /
                               static_cast<double>(ratings_);
  }

private:
  const sim::Invocation& next_invocation() {
    const auto& invs = driver_.trace_.invocations;
    const sim::Invocation& inv = invs[cursor_];
    cursor_ = (cursor_ + 1) % invs.size();
    ++invocations_;
    DriverMetrics::get().invocations.inc();
    return inv;
  }

  /// Measurement entry points: guarded when fault tolerance is on,
  /// the raw backend otherwise (bit-identical to the fault-oblivious
  /// driver — the guard is not even constructed).
  sim::InvocationResult measure(const search::FlagConfig& cfg,
                                const sim::Invocation& inv) {
    return guard_ ? guard_->invoke(cfg, inv) : backend_.invoke(cfg, inv);
  }
  std::vector<sim::RbrPairResult> measure_rbr(
      const search::FlagConfig& best, const search::FlagConfig& exp,
      const sim::Invocation& inv, const sim::RbrOptions& opts) {
    return guard_ ? guard_->invoke_rbr_batch(best, exp, inv, opts)
                  : backend_.invoke_rbr_batch(best, exp, inv, opts);
  }

  /// Validate the output digest of an improving configuration before the
  /// search may adopt it. Throws fault::ConfigFailed on a miscompile
  /// (which also quarantines the config).
  void maybe_validate(const search::FlagConfig& cfg, double r) {
    if (!guard_ || !driver_.options_.fault.validate_improvements) return;
    if (r <= 1.0) return;
    const std::string key = cfg.key();
    if (validated_.count(key) != 0) return;
    guard_->validate(cfg, next_invocation());
    validated_.insert(key);
    pending_validated_.push_back(key);
  }

  /// Append this evaluation (rating, state deltas, post-state snapshot)
  /// to the journal.
  void record_eval(const search::FlagConfig& base,
                   const search::FlagConfig& cfg, double r) {
    if (journal_ == nullptr) return;
    JournalEval e;
    e.base_key = base.key();
    e.cfg_key = cfg.key();
    e.r = r;
    e.memo_added = std::move(pending_memo_);
    e.validated_added = std::move(pending_validated_);
    for (const std::string& key : pending_fail_keys_) {
      const auto it = quarantine_.entries().find(key);
      if (it == quarantine_.entries().end()) continue;
      JournalEval::FailDelta d;
      d.key = key;
      d.kind = it->second.kind;
      d.failures = it->second.failures;
      d.quarantined = it->second.quarantined;
      e.fails.push_back(std::move(d));
    }
    e.snap.backend = backend_.snapshot_state();
    e.snap.cursor = cursor_;
    e.snap.invocations = invocations_;
    e.snap.evaluations = evaluations_;
    e.snap.ratings = ratings_;
    e.snap.exhausted = exhausted_;
    e.snap.whole_program_surcharge = whole_program_surcharge_;
    e.ratings_observed = std::move(pending_rating_obs_);
    journal_->record_eval(e);
    pending_memo_.clear();
    pending_validated_.clear();
    pending_fail_keys_.clear();
    pending_rating_obs_.clear();
  }

  /// Replay one recorded evaluation: return the recorded rating without
  /// touching the backend, re-apply the state deltas, and restore the
  /// bit-exact post-evaluation snapshot. Once the recorded evaluations
  /// run out the very next call measures live — from exactly the state
  /// the interrupted run was in.
  double replay_eval(const search::FlagConfig& base,
                     const search::FlagConfig& cfg) {
    static obs::Counter& replayed = obs::counter("journal.replayed");
    const JournalEval& e = replay_->evals[replay_pos_++];
    PEAK_CHECK(e.base_key == base.key() && e.cfg_key == cfg.key(),
               "journal does not match this tuning run (stale journal, or "
               "different seed/options)");
    for (const auto& [key, eval] : e.memo_added) memo_.emplace(key, eval);
    for (const std::string& key : e.validated_added) validated_.insert(key);
    for (const JournalEval::FailDelta& d : e.fails) {
      quarantine_.restore_failures(d.key, d.kind, d.failures);
      if (d.quarantined) quarantine_.quarantine(d.key, d.kind);
    }
    backend_.restore_state(e.snap.backend);
    // Metric continuity: a resumed run must report the same rating.* /
    // search.* registry values as the uninterrupted one, so the global
    // counters advance by exactly what this recorded evaluation consumed
    // (the snapshot fields are absolute; the members still hold the
    // previous record's values, making the subtraction a delta).
    DriverMetrics& m = DriverMetrics::get();
    m.invocations.inc(e.snap.invocations - invocations_);
    m.configs_evaluated.inc(e.snap.evaluations - evaluations_);
    if (!e.ratings_observed.empty()) {
      for (const JournalEval::RatingObs& o : e.ratings_observed) {
        m.ratings_started.inc();
        observe_rating(o.converged, o.samples);
      }
      pending_rating_obs_.clear();  // observe_rating() re-collected them
    } else {
      // Journal predates per-rating observations: restore the tallies
      // from the snapshot deltas (the window histogram stays short).
      const std::size_t started = e.snap.ratings - ratings_;
      const std::size_t exhausted = e.snap.exhausted - exhausted_;
      m.ratings_started.inc(started);
      m.ratings_exhausted.inc(exhausted);
      m.ratings_converged.inc(started - exhausted);
    }
    cursor_ = e.snap.cursor;
    invocations_ = e.snap.invocations;
    evaluations_ = e.snap.evaluations;
    ratings_ = e.snap.ratings;
    exhausted_ = e.snap.exhausted;
    whole_program_surcharge_ = e.snap.whole_program_surcharge;
    replayed.inc();
    return e.r;
  }

  /// Per-rating metrics: convergence tally plus window occupancy; also
  /// collected per evaluation for the journal, so replay can restore the
  /// registry exactly.
  void observe_rating(bool converged, std::size_t samples) {
    DriverMetrics& m = DriverMetrics::get();
    (converged ? m.ratings_converged : m.ratings_exhausted).inc();
    m.window_occupancy.observe(static_cast<double>(samples));
    pending_rating_obs_.push_back(
        {converged, static_cast<std::uint64_t>(samples)});
  }

  double rbr_ratio(const search::FlagConfig& base,
                   const search::FlagConfig& cfg) {
    ++ratings_;
    DriverMetrics::get().ratings_started.inc();
    rating::ReexecutionRater rater(driver_.options_.window);
    sim::RbrOptions rbr_opts;
    rbr_opts.improved = driver_.options_.improved_rbr;
    rbr_opts.batch_pairs = driver_.options_.rbr_batch_pairs;
    while (!rater.converged() && !rater.exhausted()) {
      const sim::Invocation& inv = next_invocation();
      for (const sim::RbrPairResult& pair :
           measure_rbr(base, cfg, inv, rbr_opts)) {
        rater.add_pair(pair.time_best, pair.time_exp);
        if (rater.converged() || rater.exhausted()) break;
      }
    }
    if (!rater.converged()) ++exhausted_;
    const rating::Rating r = rater.rating();
    observe_rating(rater.converged(), r.samples);
    // Significance gate: with very noisy sections (EQUAKE's irregular
    // memory) the window may cap out with a standard error comparable to
    // the search's improvement threshold; reporting a statistically
    // insignificant ratio would let noise eliminate useful options (the
    // paper's "if the rating is inaccurate, the tuning system will yield
    // limited performance or even degradation"). Below 3 SEM the verdict
    // is "no measurable difference".
    const double sem =
        r.samples > 0 ? std::sqrt(r.var / static_cast<double>(r.samples))
                      : 0.0;
    if (std::fabs(r.eval - 1.0) < 3.0 * sem) return 1.0;
    return r.eval;
  }

  /// Time-like EVAL of one configuration, memoized by config key.
  double rate_time(const search::FlagConfig& cfg) {
    const std::string key = cfg.key();
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    ++ratings_;
    DriverMetrics::get().ratings_started.inc();

    double eval = 0.0;
    switch (method_) {
      case rating::Method::kCBR: {
        rating::ContextBasedRater rater(driver_.options_.window);
        // With many contexts only a fraction of invocations feed the
        // dominant bucket, so the stream budget scales with the context
        // count (capped) — this is exactly why forcing CBR onto a
        // many-context section (MGRID_CBR) wastes tuning time.
        const std::size_t budget =
            driver_.options_.window.max_samples *
            std::clamp<std::size_t>(driver_.profile_.num_contexts, 1, 50);
        while (!rater.converged() && rater.total_samples() < budget) {
          const sim::Invocation& inv = next_invocation();
          rater.add(inv.context, measure(cfg, inv).time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kMBR: {
        rating::ModelBasedRater rater(
            driver_.profile_.components.num_components(),
            driver_.profile_.mbr_profile, driver_.options_.mbr);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation();
          const sim::InvocationResult r = measure(cfg, inv);
          std::vector<double> counts(r.counters->begin(), r.counters->end());
          counts.push_back(1.0);  // constant component
          rater.add(counts, r.time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        // r.var carries the fit's unexplained-variance ratio — the MBR
        // regression residual the obs layer reports.
        DriverMetrics::get().mbr_residual.set(r.var);
        eval = r.eval;
        break;
      }
      case rating::Method::kAVG: {
        rating::ContextObliviousRater rater(driver_.options_.window);
        while (!rater.converged() && !rater.exhausted()) {
          const sim::Invocation& inv = next_invocation();
          rater.add(measure(cfg, inv).time);
        }
        if (!rater.converged()) ++exhausted_;
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kWHL: {
        rating::WholeProgramRater rater;
        while (!rater.converged() && !rater.exhausted()) {
          // One full application run per sample. The run also executes
          // everything *around* the tuning section, which WHL must pay
          // for — that surcharge is the core of its cost disadvantage.
          double run_ts_time = 0.0;
          for (std::size_t i = 0; i < driver_.trace_.invocations.size();
               ++i) {
            const double t = measure(cfg, next_invocation()).time;
            rater.add_invocation(t);
            run_ts_time += t;
          }
          rater.end_run();
          const double fraction = driver_.workload_.ts_time_fraction();
          whole_program_surcharge_ +=
              run_ts_time * (1.0 / fraction - 1.0);
        }
        const rating::Rating r = rater.rating();
        observe_rating(rater.converged(), r.samples);
        eval = r.eval;
        break;
      }
      case rating::Method::kRBR:
        PEAK_CHECK(false, "RBR is pair-based; use rbr_ratio");
        break;
    }
    if (eval <= 0.0) {
      ++exhausted_;
      throw RatingNotConverging(
          std::string(rating::to_string(method_)) +
          " produced no estimate for " + driver_.workload_.full_name());
    }
    memo_.emplace(key, eval);
    pending_memo_.emplace_back(key, eval);
    return eval;
  }

  const TuningDriver& driver_;
  rating::Method method_;
  sim::SimExecutionBackend backend_;
  std::map<std::string, double> memo_;
  std::size_t cursor_ = 0;
  std::size_t invocations_ = 0;
  std::size_t evaluations_ = 0;  ///< relative_improvement() calls
  std::size_t ratings_ = 0;
  std::size_t exhausted_ = 0;
  double whole_program_surcharge_ = 0.0;

  fault::Quarantine& quarantine_;
  TuningJournal* journal_;              ///< null = no journaling
  const JournalSegment* replay_;        ///< null = nothing to replay
  std::size_t replay_pos_ = 0;
  std::optional<fault::GuardedExecutor> guard_;
  /// Configs whose output digest already passed validation.
  std::set<std::string> validated_;
  /// Per-evaluation state deltas, harvested into the journal record.
  std::vector<std::pair<std::string, double>> pending_memo_;
  std::vector<std::string> pending_validated_;
  std::set<std::string> pending_fail_keys_;
  std::vector<JournalEval::RatingObs> pending_rating_obs_;
  /// evaluator_wall_us() at construction; publish_costs() charges the
  /// delta as this method's rating wall.
  double evaluator_wall_at_start_ = obs::evaluator_wall_us();
};

TuningDriver::TuningDriver(const workloads::Workload& workload,
                           const ProfileData& profile,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           DriverOptions options)
    : workload_(workload),
      profile_(profile),
      trace_(trace),
      machine_(machine),
      effects_(effects),
      options_(options),
      mbr_instrumented_(
          profile.components.mbr_applicable
              ? analysis::instrument_components(workload.function(),
                                                profile.components)
              : workload.function()) {
  PEAK_CHECK(!trace_.invocations.empty(), "empty tuning trace");
}

TuningDriver::~TuningDriver() = default;

void TuningDriver::prepare_journal() {
  if (options_.fault.journal_path.empty() || journal_ != nullptr) return;
  if (options_.fault.resume)
    replay_segments_ = TuningJournal::load(options_.fault.journal_path);
  journal_ = std::make_unique<TuningJournal>(options_.fault.journal_path);
}

TuningOutcome TuningDriver::tune(rating::Method method) {
  const ir::Function& fn = method == rating::Method::kMBR
                               ? mbr_instrumented_
                               : workload_.function();
  prepare_journal();
  // On resume, each tune() call consumes one recorded segment: its evals
  // replay instead of measuring, and the journal's existing "start" line
  // stands in for the one a fresh segment would write.
  const JournalSegment* replay = nullptr;
  if (replay_index_ < replay_segments_.size()) {
    PEAK_CHECK(
        replay_segments_[replay_index_].method == rating::to_string(method),
        "journal method sequence does not match this run");
    replay = &replay_segments_[replay_index_++];
  } else if (journal_ != nullptr) {
    journal_->start_segment(rating::to_string(method));
  }
  // Attribution path for every cost this tune() charges: the ledger's
  // machine → benchmark → section → method hierarchy. Thread-local, so
  // parallel section tuning attributes each worker's costs correctly.
  obs::AttributionScope machine_scope(machine_.name);
  obs::AttributionScope benchmark_scope(workload_.benchmark());
  obs::AttributionScope section_scope(workload_.ts_name());
  obs::AttributionScope method_scope(rating::to_string(method));

  Evaluator evaluator(*this, method, fn, quarantine_, journal_.get(),
                      replay);

  search::IterativeElimination default_ie(options_.ie);
  search::SearchAlgorithm& algorithm =
      options_.search_algorithm ? *options_.search_algorithm : default_ie;
  const search::FlagConfig start = search::o3_config(effects_.space());

  obs::ScopedSpan span("tune", "driver");
  if (span.active()) {
    span.add(obs::attr("method", rating::to_string(method)));
    span.add(obs::attr("section", workload_.full_name()));
    span.add(obs::attr("search", algorithm.name()));
  }

  search::SearchResult sr;
  try {
    sr = algorithm.run(effects_.space(), evaluator, start);
  } catch (const RatingNotConverging& e) {
    // The method cannot rate anything here: abandon it, report the cost
    // spent so far, and let tune_auto() switch methods.
    evaluator.publish_costs();
    TuningOutcome outcome;
    outcome.best_config = start;
    outcome.method = method;
    outcome.cost = evaluator.cost();
    outcome.exhausted_fraction = 1.0;
    search::SearchEvent abandoned;
    abandoned.kind = search::SearchEvent::Kind::kAbandoned;
    abandoned.flag = rating::to_string(method);
    abandoned.note = e.what();
    outcome.events.push_back(std::move(abandoned));
    return outcome;
  }

  evaluator.publish_costs();
  TuningOutcome outcome;
  outcome.best_config = sr.best;
  outcome.method = method;
  // cost.configs_evaluated comes from the evaluator (== the number of
  // relative_improvement calls), which also equals sr.configs_evaluated
  // for every in-tree search algorithm.
  outcome.cost = evaluator.cost();
  outcome.search_improvement = sr.improvement_over_start;
  outcome.exhausted_fraction = evaluator.exhausted_fraction();
  outcome.events = std::move(sr.events);
  return outcome;
}

TuningOutcome TuningDriver::tune_auto() {
  const auto& chain = profile_.decision.chain;
  PEAK_CHECK(!chain.empty(), "no applicable rating method for " +
                                 workload_.full_name());
  TuningCost accumulated;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    TuningOutcome outcome = tune(chain[i]);
    // Fold in the cost of earlier, abandoned attempts.
    outcome.cost.simulated_time += accumulated.simulated_time;
    outcome.cost.invocations += accumulated.invocations;
    outcome.cost.program_runs += accumulated.program_runs;
    outcome.cost.configs_evaluated += accumulated.configs_evaluated;
    const bool last = i + 1 == chain.size();
    if (last ||
        outcome.exhausted_fraction <= options_.max_exhausted_fraction) {
      search::SearchEvent chosen;
      chosen.kind = search::SearchEvent::Kind::kMethodChosen;
      chosen.flag = rating::to_string(chain[i]);
      chosen.round = i;  // render(): i > 0 reads "(after fallback)"
      outcome.events.insert(outcome.events.begin(), std::move(chosen));
      obs::Tracer::global().instant(
          "method_chosen", "driver",
          {obs::attr("method", rating::to_string(chain[i])),
           obs::attr("fallbacks", i)});
      return outcome;
    }
    accumulated = outcome.cost;
  }
  PEAK_CHECK(false, "unreachable");
  return {};
}

double expected_trace_time(const workloads::Workload& workload,
                           const workloads::Trace& trace,
                           const sim::MachineModel& machine,
                           const sim::FlagEffectModel& effects,
                           const search::FlagConfig& config) {
  sim::TsTraits traits = workload.traits();
  traits.workload_scale = trace.workload_scale;
  sim::SimExecutionBackend backend(workload.function(), traits, machine,
                                   effects, /*seed=*/7);
  double total = 0.0;
  for (const sim::Invocation& inv : trace.invocations)
    total += backend.expected_time(config, inv);
  return total;
}

}  // namespace peak::core
