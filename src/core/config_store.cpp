#include "core/config_store.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace peak::core {

namespace {

std::optional<rating::Method> method_from(const std::string& name) {
  for (rating::Method m :
       {rating::Method::kCBR, rating::Method::kMBR, rating::Method::kRBR,
        rating::Method::kAVG, rating::Method::kWHL})
    if (name == rating::to_string(m)) return m;
  return std::nullopt;
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

ConfigStore::ConfigStore(const search::OptimizationSpace& space)
    : space_(space) {}

void ConfigStore::put(const std::string& section,
                      const std::string& machine,
                      const StoredConfig& entry) {
  PEAK_CHECK(entry.config.size() == space_.size(),
             "config does not match the store's optimization space");
  entries_[{section, machine}] = entry;
}

std::optional<StoredConfig> ConfigStore::get(
    const std::string& section, const std::string& machine) const {
  const auto it = entries_.find({section, machine});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string ConfigStore::serialize() const {
  std::ostringstream os;
  for (const auto& [key, entry] : entries_) {
    os << '[' << key.first << " @ " << key.second << "]\n";
    os << "method = " << rating::to_string(entry.method) << '\n';
    os << "improvement = " << entry.improvement_pct << '\n';
    os << "disabled = "
       << entry.config.describe(space_, /*invert=*/true) << '\n';
    for (const QuarantineRecord& q : entry.quarantined)
      os << "quarantine = " << fault::to_string(q.kind) << ' '
         << q.failures << ' ' << q.config_key << '\n';
    os << '\n';
  }
  return os.str();
}

bool ConfigStore::deserialize(const std::string& text) {
  std::map<Key, StoredConfig> parsed;
  std::istringstream is(text);
  std::string line;
  std::optional<Key> current;
  StoredConfig entry;
  entry.config = search::o3_config(space_);

  auto commit = [&]() {
    if (current) parsed[*current] = entry;
    current.reset();
    entry = StoredConfig{};
    entry.config = search::o3_config(space_);
  };

  while (std::getline(is, line)) {
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      commit();
      if (line.back() != ']') return false;
      const std::string inner = line.substr(1, line.size() - 2);
      const auto at = inner.find(" @ ");
      if (at == std::string::npos) return false;
      current = Key{trim(inner.substr(0, at)), trim(inner.substr(at + 3))};
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos || !current) return false;
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "method") {
      const auto m = method_from(value);
      if (!m) return false;
      entry.method = *m;
    } else if (key == "improvement") {
      try {
        entry.improvement_pct = std::stod(value);
      } catch (...) {
        return false;
      }
    } else if (key == "disabled") {
      std::istringstream flags(value);
      std::string flag;
      while (flags >> flag) {
        const auto idx = space_.index_of(flag);
        if (!idx) return false;  // unknown flag: reject the whole file
        entry.config.set(*idx, false);
      }
    } else if (key == "quarantine") {
      std::istringstream fields(value);
      std::string kind_name;
      std::size_t failures = 0;
      QuarantineRecord q;
      if (!(fields >> kind_name >> failures >> q.config_key)) return false;
      const auto kind = fault::parse_fault_kind(kind_name);
      if (!kind || *kind == fault::FaultKind::kNone) return false;
      q.kind = *kind;
      q.failures = failures;
      entry.quarantined.push_back(std::move(q));
    } else {
      return false;
    }
  }
  commit();
  entries_ = std::move(parsed);
  return true;
}

bool ConfigStore::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

bool ConfigStore::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

}  // namespace peak::core
