#pragma once

/// \file parallel.hpp
/// Whole-application tuning: PEAK partitions a program into multiple
/// tuning sections (Section 4.1) and tunes each independently — which
/// makes the sections embarrassingly parallel across a machine's cores.
/// This facade fans the per-section offline pipeline out over the support
/// thread pool and aggregates a whole-program improvement estimate from
/// the sections' time fractions.

#include <string>
#include <vector>

#include "core/peak.hpp"
#include "workloads/workload.hpp"

namespace peak::core {

struct SectionOutcome {
  std::string section;          ///< "SWIM.calc3"
  double time_fraction = 0.0;   ///< share of whole-program time
  MethodRun run;
};

struct ApplicationOutcome {
  std::vector<SectionOutcome> sections;
  /// Whole-program speedup estimate by Amdahl over the tuned sections:
  /// T'/T = Σ_s frac_s / (1 + impr_s) + (1 - Σ_s frac_s).
  [[nodiscard]] double whole_program_improvement_pct() const;
};

/// Tune every section with the consultant-chosen method, `threads` at a
/// time. Each section gets an independent backend and seed, so results
/// are identical to sequential runs (and deterministic).
ApplicationOutcome tune_application(
    const std::vector<const workloads::Workload*>& sections,
    const sim::MachineModel& machine, PeakOptions options = {},
    unsigned threads = 0);

}  // namespace peak::core
