#pragma once

/// \file peak.hpp
/// The PEAK pipeline (paper Figure 5): TS Selector → Rating Approach
/// Consultant → instrumentation → Performance Tuning Driver → improved
/// code version. This facade runs the full offline scenario for one
/// benchmark on one simulated machine: profile on the tuning dataset,
/// tune with one or all rating methods, and evaluate the winning
/// configuration on the production (ref) dataset — producing exactly the
/// quantities plotted in Figure 7.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "sim/flag_effects.hpp"
#include "workloads/workload.hpp"

namespace peak::core {

struct PeakOptions {
  DriverOptions driver{};
  ProfileOptions profile{};
  std::uint64_t seed = 1;
};

/// One (rating method × tuning dataset) experiment for a benchmark.
struct MethodRun {
  rating::Method method = rating::Method::kWHL;
  workloads::DataSet tuned_on = workloads::DataSet::kTrain;
  search::FlagConfig best_config;
  /// Improvement over -O3 measured on the ref dataset, percent.
  double ref_improvement_pct = 0.0;
  TuningCost cost;
  double exhausted_fraction = 0.0;
};

struct BenchmarkResult {
  std::string benchmark;
  std::string ts_name;
  rating::MethodDecision decision;  ///< consultant's chain
  rating::Method chosen = rating::Method::kWHL;  ///< consultant's pick
  std::vector<MethodRun> runs;

  /// Look up one experiment.
  [[nodiscard]] const MethodRun* find(rating::Method m,
                                      workloads::DataSet ds) const;

  /// Tuning time of a run normalised to the WHL run on the same dataset
  /// (Figure 7 c, d). Returns 0 when either run is missing.
  [[nodiscard]] double normalized_tuning_time(rating::Method m,
                                              workloads::DataSet ds) const;
};

class Peak {
public:
  Peak(const sim::MachineModel& machine, PeakOptions options = {});

  /// Full experiment for one benchmark: profile, tune with every
  /// applicable rating method plus AVG and WHL, on both train and ref
  /// tuning datasets; improvements are always measured on ref.
  /// `extra_methods` forces additional methods outside the consultant's
  /// chain — Figure 7 deliberately includes the *wrong* choices
  /// (MGRID_CBR, SWIM_RBR) to show their tuning-time penalty.
  BenchmarkResult run_benchmark(
      const workloads::Workload& workload, bool all_methods = true,
      std::vector<rating::Method> extra_methods = {});

  /// PEAK's production mode: consultant-chosen method, train dataset.
  MethodRun tune_with_consultant(const workloads::Workload& workload);

  [[nodiscard]] const sim::MachineModel& machine() const {
    return machine_;
  }
  [[nodiscard]] const sim::FlagEffectModel& effects() const {
    return effects_;
  }

private:
  MethodRun run_one(const workloads::Workload& workload,
                    const ProfileData& profile,
                    const workloads::Trace& tune_trace,
                    const workloads::Trace& ref_trace,
                    workloads::DataSet tuned_on, rating::Method method,
                    double ref_o3_time);

  /// Stored by value: callers routinely pass temporaries
  /// (`Peak(sim::sparc2())`), and every profile/tune call reads the
  /// machine long after that full expression ends.
  sim::MachineModel machine_;
  PeakOptions options_;
  sim::FlagEffectModel effects_;
};

}  // namespace peak::core
