#include "core/parallel.hpp"

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace peak::core {

double ApplicationOutcome::whole_program_improvement_pct() const {
  double covered = 0.0;
  double tuned_share = 0.0;
  for (const SectionOutcome& s : sections) {
    covered += s.time_fraction;
    tuned_share +=
        s.time_fraction / (1.0 + s.run.ref_improvement_pct / 100.0);
  }
  PEAK_CHECK(covered <= 1.0 + 1e-9, "section fractions exceed 100%");
  const double new_total = tuned_share + (1.0 - covered);
  return (1.0 / new_total - 1.0) * 100.0;
}

ApplicationOutcome tune_application(
    const std::vector<const workloads::Workload*>& sections,
    const sim::MachineModel& machine, PeakOptions options,
    unsigned threads) {
  ApplicationOutcome outcome;
  outcome.sections.resize(sections.size());

  support::ThreadPool pool(threads);
  // Two parallelism layers compose here: sections fan out over this pool,
  // and each section's driver may fan its probe rounds out again
  // (options.driver.search_threads). Since batch-mode results are
  // bit-identical for every thread count >= 1, the inner width is free to
  // shrink: divide it by the concurrent-section count so the two layers
  // multiply out to roughly the machine's cores, not to their product.
  // A shared options.driver.rating_cache is safe across sections — the
  // cache is thread-safe and its keys include the section identity.
  const unsigned concurrent = std::min<unsigned>(
      pool.size(), static_cast<unsigned>(sections.size()));
  pool.parallel_for(0, sections.size(), [&](std::size_t i) {
    const workloads::Workload& w = *sections[i];
    // Touch the lazily built IR up front inside this task: each workload
    // object is owned by exactly one task, so no cross-thread races.
    (void)w.function();
    PeakOptions local = options;
    local.seed = support::hash_combine(options.seed,
                                       support::stable_hash(w.benchmark()));
    if (local.driver.search_threads > 1 && concurrent > 1)
      local.driver.search_threads = std::max(
          1u, local.driver.search_threads / concurrent);
    Peak peak(machine, local);
    SectionOutcome& s = outcome.sections[i];
    s.section = w.full_name();
    s.time_fraction = w.ts_time_fraction();
    s.run = peak.tune_with_consultant(w);
  });
  return outcome;
}

}  // namespace peak::core
