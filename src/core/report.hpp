#pragma once

/// \file report.hpp
/// Result reporting: render BenchmarkResult / ApplicationOutcome data as
/// CSV (for spreadsheets and plotting scripts) or Markdown (for READMEs
/// and issue reports). Downstream users regenerate the paper's figures
/// from the CSV with their own plotting stack.

#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/peak.hpp"

namespace peak::core {

/// CSV with one row per (benchmark, method, tuned-on dataset):
/// benchmark,section,method,tuned_on,ref_improvement_pct,
/// tuning_time,invocations,program_runs,normalized_tuning_time
std::string to_csv(const std::vector<BenchmarkResult>& results);

/// GitHub-flavoured Markdown table of the same rows.
std::string to_markdown(const std::vector<BenchmarkResult>& results);

/// Markdown summary of a whole-application outcome.
std::string to_markdown(const ApplicationOutcome& outcome);

/// Escape a CSV field (quotes, commas, newlines).
std::string csv_escape(const std::string& field);

}  // namespace peak::core
