#include "core/adaptive.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::core {

AdaptiveTuner::AdaptiveTuner(const workloads::Workload& workload,
                             const sim::MachineModel& machine,
                             const sim::FlagEffectModel& effects,
                             AdaptiveOptions options, std::uint64_t seed)
    : workload_(workload),
      backend_(workload.function(), workload.traits(), machine, effects,
               support::hash_combine(seed,
                                     support::stable_hash("adaptive"))),
      options_(options),
      versions_(search::o3_config(effects.space())),
      candidate_(search::o3_config(effects.space())) {
  start_experiment_pass();
}

void AdaptiveTuner::start_experiment_pass() {
  phase_ = Phase::kExperiment;
  next_flag_ = 0;
  pass_had_promotion_ = false;
  rater_.reset();
  baselines_.clear();
}

double AdaptiveTuner::step(const sim::Invocation& inv) {
  return phase_ == Phase::kExperiment ? experiment_step(inv)
                                      : monitor_step(inv);
}

double AdaptiveTuner::experiment_step(const sim::Invocation& inv) {
  const std::size_t nflags = versions_.best().config.size();
  if (!rater_.has_value()) {
    // Install the next candidate: toggle one flag of the current best.
    if (next_flag_ >= nflags) {
      // Pass complete. Another pass if something was promoted (its
      // interactions may unlock more wins); otherwise settle down.
      if (pass_had_promotion_) {
        start_experiment_pass();
      } else {
        phase_ = Phase::kMonitor;
        baselines_.clear();
        return monitor_step(inv);
      }
    }
    const search::FlagConfig best = versions_.best().config;
    candidate_ = best.with(next_flag_, !best.enabled(next_flag_));
    ++next_flag_;
    versions_.install_experimental(candidate_);
    rater_.emplace(options_.window);
  }

  // One RBR pair: the application still makes progress (the best version
  // runs for real); the candidate's run is the experiment overhead.
  const sim::RbrPairResult pair = backend_.invoke_rbr_pair(
      versions_.best().config, candidate_, inv, sim::RbrOptions{true});
  rater_->add_pair(pair.time_best, pair.time_exp);
  ++experiments_;

  if (rater_->converged() || rater_->exhausted()) {
    const rating::Rating r = rater_->rating();
    versions_.rate_experimental(r.eval, r.var);
    if (r.converged && r.eval > options_.promote_threshold) {
      versions_.promote_experimental();
      pass_had_promotion_ = true;
      ++promotions_;
    } else {
      versions_.retire_experimental();
    }
    rater_.reset();
  }
  return pair.time_best + pair.overhead;
}

double AdaptiveTuner::monitor_step(const sim::Invocation& inv) {
  const double time =
      backend_.invoke(versions_.best().config, inv).time;

  Baseline& baseline = baselines_[inv.context];
  if (!baseline.mean.has_value()) {
    baseline.rater.add(time);
    if (baseline.rater.size() >= options_.baseline_samples)
      baseline.mean = baseline.rater.rating().eval;
    return time;
  }

  if (time > *baseline.mean * (1.0 + options_.drift_threshold)) {
    if (++baseline.drifted >= options_.drift_patience) {
      // The workload changed phase: what was best may no longer be.
      ++retunes_;
      start_experiment_pass();
    }
  } else {
    baseline.drifted = 0;
  }
  return time;
}

}  // namespace peak::core
