#pragma once

/// \file config_store.hpp
/// Persistence of tuning results. PEAK's offline scenario ends with "the
/// winning version is inserted into the improved application code"; the
/// config store is the library's equivalent: tuned configurations are
/// saved per (section, machine) in a human-readable text format and can be
/// reloaded by later runs, by the CLI, or by a build system that turns
/// them into real compiler command lines.
///
/// Format (one record per section, blank-line separated):
///
///   [SWIM.calc3 @ sparc2]
///   method = CBR
///   improvement = 5.06
///   disabled = -fgcse-sm -fschedule-insns
///   quarantine = miscompile 1 0000001fffffbfff
///
/// Flags not listed in `disabled` are enabled (the -O3 default).
/// `quarantine` lines (zero or more) record configurations that failed
/// deterministically during tuning — kind, observed failure count, and
/// the config's bitset key — so a later run on the same machine never
/// re-measures a known-broken configuration.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/peak.hpp"
#include "fault/fault.hpp"

namespace peak::core {

/// One quarantined configuration, persisted beside the tuned winner. The
/// config is identified by its FlagConfig::key() — the same key the
/// fault::Quarantine registry uses — so store → registry round trips are
/// exact even for configs that have no human-readable description.
struct QuarantineRecord {
  std::string config_key;
  fault::FaultKind kind = fault::FaultKind::kNone;
  std::size_t failures = 0;

  friend bool operator==(const QuarantineRecord&,
                         const QuarantineRecord&) = default;
};

struct StoredConfig {
  search::FlagConfig config;
  rating::Method method = rating::Method::kWHL;
  double improvement_pct = 0.0;
  /// Configurations quarantined while tuning this section.
  std::vector<QuarantineRecord> quarantined;
};

class ConfigStore {
public:
  explicit ConfigStore(const search::OptimizationSpace& space);

  void put(const std::string& section, const std::string& machine,
           const StoredConfig& entry);

  [[nodiscard]] std::optional<StoredConfig> get(
      const std::string& section, const std::string& machine) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Serialize all records to the text format above.
  [[nodiscard]] std::string serialize() const;

  /// Parse records; returns false (leaving the store untouched) on any
  /// syntax error or unknown flag.
  bool deserialize(const std::string& text);

  /// Convenience file I/O (returns false on I/O or parse failure).
  bool save_file(const std::string& path) const;
  bool load_file(const std::string& path);

private:
  using Key = std::pair<std::string, std::string>;
  const search::OptimizationSpace& space_;
  std::map<Key, StoredConfig> entries_;
};

}  // namespace peak::core
