#include "core/journal.hpp"

#include <sstream>
#include <string_view>

#include "core/jsonl.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace peak::core {

namespace {

// Serialization lives in core/jsonl.{hpp,cpp} (shared with the rating
// cache); this file only knows the journal's record shapes. Doubles
// travel as IEEE-754 bit patterns so the journal round trip is exact;
// decimal formatting would lose ulps and break the bit-identical-resume
// guarantee.
using jsonl::hex_double;
using jsonl::hex_u64;
using jsonl::JsonArray;
using jsonl::JsonParser;
using jsonl::JsonValue;
using jsonl::quote;

sim::SimExecutionBackend::Snapshot parse_backend_snapshot(
    const JsonValue& j) {
  sim::SimExecutionBackend::Snapshot s;
  const JsonArray& rng = j.at("rng").as_array();
  PEAK_CHECK(rng.size() == 4, "journal: rng state arity");
  for (std::size_t i = 0; i < 4; ++i)
    s.rng_state[i] = std::stoull(rng[i].as_string(), nullptr, 16);
  s.warmth = j.at("warmth").as_hex_double();
  s.accumulated = j.at("acc").as_hex_double();
  s.timed = j.at("timed").as_hex_double();
  s.precondition = j.at("pre").as_hex_double();
  s.checkpoint = j.at("ckpt").as_hex_double();
  s.faulted = j.at("faulted").as_hex_double();
  // Absent in journals written before the retry phase existed; those
  // runs folded backoff into "faulted", so zero is the faithful value.
  if (j.has("retry")) s.retry = j.at("retry").as_hex_double();
  s.saves = j.at("saves").as_u64();
  s.restores = j.at("restores").as_u64();
  s.checkpoint_bytes = j.at("ckpt_bytes").as_u64();
  s.swap_toggle = j.at("swap").as_bool();
  return s;
}

JournalEval parse_eval(const JsonValue& j) {
  JournalEval e;
  e.base_key = j.at("base").as_string();
  e.cfg_key = j.at("cfg").as_string();
  e.r = j.at("r").as_hex_double();
  if (j.has("memo"))
    for (const JsonValue& m : j.at("memo").as_array())
      e.memo_added.emplace_back(m.at("k").as_string(),
                                m.at("v").as_hex_double());
  if (j.has("validated"))
    for (const JsonValue& v : j.at("validated").as_array())
      e.validated_added.push_back(v.as_string());
  if (j.has("robs"))
    for (const JsonValue& o : j.at("robs").as_array()) {
      JournalEval::RatingObs obs;
      obs.converged = o.at("c").as_bool();
      obs.samples = o.at("s").as_u64();
      e.ratings_observed.push_back(obs);
    }
  if (j.has("fails"))
    for (const JsonValue& f : j.at("fails").as_array()) {
      JournalEval::FailDelta d;
      d.key = f.at("k").as_string();
      const auto kind = fault::parse_fault_kind(f.at("kind").as_string());
      PEAK_CHECK(kind.has_value(), "journal: unknown fault kind");
      d.kind = *kind;
      d.failures = f.at("n").as_u64();
      d.quarantined = f.at("q").as_bool();
      e.fails.push_back(std::move(d));
    }
  const JsonValue& snap = j.at("snap");
  e.snap.backend = parse_backend_snapshot(snap.at("backend"));
  e.snap.cursor = snap.at("cursor").as_u64();
  e.snap.invocations = snap.at("inv").as_u64();
  e.snap.evaluations = snap.at("evals").as_u64();
  e.snap.ratings = snap.at("ratings").as_u64();
  e.snap.exhausted = snap.at("exhausted").as_u64();
  e.snap.whole_program_surcharge = snap.at("whl").as_hex_double();
  return e;
}

}  // namespace

TuningJournal::TuningJournal(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::app);
  PEAK_CHECK(out_.good(), "cannot open tuning journal " + path_);
}

void TuningJournal::write_line(const std::string& line) {
  out_ << line << '\n';
  // Flush per record: a kill between lines then loses at most the record
  // in flight, which load() skips as a partial trailing line.
  out_.flush();
}

void TuningJournal::start_segment(const std::string& method) {
  write_line("{\"type\":\"start\",\"method\":" + quote(method) + "}");
}

void TuningJournal::record_eval(const JournalEval& e) {
  std::ostringstream os;
  os << "{\"type\":\"eval\",\"base\":" << quote(e.base_key)
     << ",\"cfg\":" << quote(e.cfg_key) << ",\"r\":" << quote(hex_double(e.r));
  if (!e.memo_added.empty()) {
    os << ",\"memo\":[";
    for (std::size_t i = 0; i < e.memo_added.size(); ++i)
      os << (i ? "," : "") << "{\"k\":" << quote(e.memo_added[i].first)
         << ",\"v\":" << quote(hex_double(e.memo_added[i].second)) << "}";
    os << "]";
  }
  if (!e.validated_added.empty()) {
    os << ",\"validated\":[";
    for (std::size_t i = 0; i < e.validated_added.size(); ++i)
      os << (i ? "," : "") << quote(e.validated_added[i]);
    os << "]";
  }
  if (!e.ratings_observed.empty()) {
    os << ",\"robs\":[";
    for (std::size_t i = 0; i < e.ratings_observed.size(); ++i)
      os << (i ? "," : "") << "{\"c\":"
         << (e.ratings_observed[i].converged ? "true" : "false")
         << ",\"s\":" << e.ratings_observed[i].samples << "}";
    os << "]";
  }
  if (!e.fails.empty()) {
    os << ",\"fails\":[";
    for (std::size_t i = 0; i < e.fails.size(); ++i) {
      const JournalEval::FailDelta& d = e.fails[i];
      os << (i ? "," : "") << "{\"k\":" << quote(d.key)
         << ",\"kind\":" << quote(fault::to_string(d.kind))
         << ",\"n\":" << d.failures
         << ",\"q\":" << (d.quarantined ? "true" : "false") << "}";
    }
    os << "]";
  }
  const JournalEval::Snapshot& s = e.snap;
  os << ",\"snap\":{\"backend\":{\"rng\":[";
  for (std::size_t i = 0; i < 4; ++i)
    os << (i ? "," : "") << quote(hex_u64(s.backend.rng_state[i]));
  os << "],\"warmth\":" << quote(hex_double(s.backend.warmth))
     << ",\"acc\":" << quote(hex_double(s.backend.accumulated))
     << ",\"timed\":" << quote(hex_double(s.backend.timed))
     << ",\"pre\":" << quote(hex_double(s.backend.precondition))
     << ",\"ckpt\":" << quote(hex_double(s.backend.checkpoint))
     << ",\"faulted\":" << quote(hex_double(s.backend.faulted))
     << ",\"retry\":" << quote(hex_double(s.backend.retry))
     << ",\"saves\":" << s.backend.saves
     << ",\"restores\":" << s.backend.restores
     << ",\"ckpt_bytes\":" << s.backend.checkpoint_bytes
     << ",\"swap\":" << (s.backend.swap_toggle ? "true" : "false")
     << "},\"cursor\":" << s.cursor << ",\"inv\":" << s.invocations
     << ",\"evals\":" << s.evaluations << ",\"ratings\":" << s.ratings
     << ",\"exhausted\":" << s.exhausted
     << ",\"whl\":" << quote(hex_double(s.whole_program_surcharge)) << "}}";
  write_line(os.str());
}

void TuningJournal::record_fault(const fault::FaultEvent& ev) {
  std::ostringstream os;
  os << "{\"type\":\"fault\",\"kind\":" << quote(fault::to_string(ev.kind))
     << ",\"cfg\":" << quote(ev.config_key) << ",\"inv\":" << ev.invocation_id
     << ",\"attempt\":" << ev.attempt
     << ",\"gave_up\":" << (ev.gave_up ? "true" : "false")
     << ",\"q\":" << (ev.quarantined ? "true" : "false") << "}";
  write_line(os.str());
}

std::vector<JournalSegment> TuningJournal::load(const std::string& path,
                                                bool strict,
                                                LoadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  PEAK_CHECK(in.good(), "cannot read tuning journal " + path);
  std::vector<JournalSegment> segments;
  LoadStats local;
  std::string line;
  std::uint64_t offset = 0;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline() stops at '\n' or EOF; eof() after a successful read means
    // this final line has no terminator — i.e. the record that was being
    // written when the process died.
    const bool complete = !in.eof();
    const std::uint64_t line_end = offset + line.size() + (complete ? 1 : 0);
    if (line.empty()) {
      offset = line_end;
      continue;
    }
    std::string damage;
    try {
      if (line.back() != '}')
        throw support::CheckError("journal: unterminated record");
      const JsonValue record = JsonParser(line).parse();
      const std::string& type = record.at("type").as_string();
      if (type == "start") {
        JournalSegment seg;
        seg.method = record.at("method").as_string();
        segments.push_back(std::move(seg));
      } else if (type == "eval") {
        PEAK_CHECK(!segments.empty(), "journal: eval before any start");
        segments.back().evals.push_back(parse_eval(record));
      }
      // Other record types (fault, …) are informational.
    } catch (const std::exception& e) {
      // std::exception, not just CheckError: a flipped bit inside a hex
      // field surfaces as std::invalid_argument from stoull, and a
      // missing key as whatever jsonl throws — all of it is damage.
      damage = e.what();
    }
    if (damage.empty()) {
      offset = line_end;
      local.good_bytes = offset;
      continue;
    }
    if (!complete) break;  // partial trailing line: tolerated in any mode
    if (strict)
      throw support::CheckError("journal " + path + " line " +
                                std::to_string(line_no) +
                                " is corrupt: " + damage);
    // Lenient: the replayable prefix ends here. Everything from this line
    // on — including later lines that would parse — is discarded, because
    // replay consumes evals in key-checked sequence and cannot skip over
    // a hole. Resume re-measures the lost tail live, which stays
    // bit-identical (the journal only caches what the evaluator would
    // recompute).
    local.truncated = true;
    ++local.corrupt_lines;
    while (std::getline(in, line))
      if (!line.empty()) ++local.corrupt_lines;
    break;
  }
  if (local.corrupt_lines > 0)
    obs::counter("journal.corrupt_lines").inc(local.corrupt_lines);
  if (stats != nullptr) *stats = local;
  return segments;
}

}  // namespace peak::core
