#pragma once

/// \file jsonl.hpp
/// Shared JSONL (de)serialization helpers for PEAK's on-disk records —
/// the tuning journal and the persistent rating cache both speak the same
/// dialect: one JSON object per line, doubles as 16-hex-digit IEEE-754
/// bit patterns (never decimal text, so round trips are bit-exact), and a
/// minimal reader covering what the writers emit (objects, arrays,
/// strings, numbers, booleans). Numbers parse in both flavours: plain
/// unsigned integers keep their exact 64-bit value, while anything with a
/// sign, fraction, or exponent (as served by the telemetry endpoints)
/// parses as a double — as_double() reads either. No external JSON
/// dependency is available in the container, and the remaining generality
/// of JSON (unicode escapes, null) never appears in a record.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace peak::core::jsonl {

/// 16-hex-digit rendering of a 64-bit value (zero padded, lowercase).
[[nodiscard]] std::string hex_u64(std::uint64_t v);

/// IEEE-754 bit pattern of `d` as 16 hex digits — the exact-round-trip
/// double encoding every PEAK record uses.
[[nodiscard]] std::string hex_double(double d);

/// JSON string literal with the escapes the reader understands.
[[nodiscard]] std::string quote(const std::string& s);

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
public:
  enum class Type { kString, kNumber, kBool, kObject, kArray };
  Type type = Type::kString;
  std::string str;
  std::uint64_t num = 0;  ///< exact value of a plain unsigned integer
  bool is_real = false;   ///< number carried a sign/fraction/exponent
  double real = 0.0;      ///< value when is_real
  bool boolean = false;
  std::shared_ptr<JsonObject> object;
  std::shared_ptr<JsonArray> array;

  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  /// Any number as a double (integers convert; reals read directly).
  [[nodiscard]] double as_double() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const JsonArray& as_array() const;
  /// Hex-bit-pattern string back to double.
  [[nodiscard]] double as_hex_double() const;
};

/// Recursive-descent reader for one record line. Throws
/// support::CheckError on malformed input; callers treat that as a
/// damaged (e.g. partially written) line.
class JsonParser {
public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse();

private:
  void skip_ws();
  char peek();
  void expect(char c);
  JsonValue value();
  JsonValue object();
  JsonValue array();
  JsonValue string();
  JsonValue boolean();
  JsonValue number();

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace peak::core::jsonl
