#pragma once

/// \file per_context.hpp
/// Context-specific winners (paper §2.2): "The best versions for
/// different contexts may be different, in which case CBR reports the
/// context-specific winners. ... an adaptive tuning scenario would make
/// use of all versions."
///
/// tune_per_context() runs one search per distinct context (rating each
/// candidate only against invocations of that context) and evaluates two
/// deployment strategies on the ref trace: the offline paper's choice
/// (one version, tuned for the most important context) and the adaptive
/// scenario's per-context dispatch.

#include <map>
#include <vector>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "workloads/workload.hpp"

namespace peak::core {

struct PerContextOutcome {
  /// Winner per training context.
  std::map<std::vector<double>, search::FlagConfig> winners;
  /// The dominant-context winner (the offline scenario's single version).
  search::FlagConfig single_best;
  std::vector<double> dominant_context;
  /// Improvement over -O3 on ref with one version vs with per-context
  /// dispatch (unseen ref contexts fall back to single_best).
  double single_improvement_pct = 0.0;
  double dispatch_improvement_pct = 0.0;
  TuningCost cost;  ///< total across the per-context searches
};

PerContextOutcome tune_per_context(const workloads::Workload& workload,
                                   const sim::MachineModel& machine,
                                   const sim::FlagEffectModel& effects,
                                   DriverOptions options = {},
                                   std::size_t max_contexts = 8);

}  // namespace peak::core
