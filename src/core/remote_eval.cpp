#include "core/remote_eval.hpp"

#include "core/profile.hpp"
#include "search/opt_config.hpp"
#include "sim/machine.hpp"
#include "support/check.hpp"
#include "workloads/workload.hpp"

namespace peak::core {

SessionSpec make_session_spec(const std::string& benchmark,
                              const std::string& machine,
                              const DriverOptions& options) {
  SessionSpec spec;
  spec.benchmark = benchmark;
  spec.machine = machine;
  spec.seed = options.seed;
  spec.window = options.window;
  spec.mbr = options.mbr;
  spec.improved_rbr = options.improved_rbr;
  spec.rbr_batch_pairs = options.rbr_batch_pairs;
  return spec;
}

/// The scenario objects TuningDriver holds by reference, owned here so a
/// worker can keep one host alive across the whole session.
struct RemoteRatingHost::State {
  std::unique_ptr<workloads::Workload> workload;
  workloads::Trace trace;
  sim::MachineModel machine;
  sim::FlagEffectModel effects{search::gcc33_o3_space()};
  ProfileData profile;
  std::unique_ptr<TuningDriver> driver;
};

RemoteRatingHost::RemoteRatingHost(const SessionSpec& spec)
    : spec_(spec), state_(std::make_unique<State>()) {
  state_->workload = workloads::make_workload(spec.benchmark);
  PEAK_CHECK(state_->workload != nullptr,
             "remote session: unknown benchmark '" + spec.benchmark + "'");
  workloads::DataSet ds = workloads::DataSet::kTrain;
  if (spec.dataset == workloads::to_string(workloads::DataSet::kRef))
    ds = workloads::DataSet::kRef;
  else
    PEAK_CHECK(spec.dataset ==
                   workloads::to_string(workloads::DataSet::kTrain),
               "remote session: unknown dataset '" + spec.dataset + "'");
  state_->machine =
      spec.machine == "p4" ? sim::pentium4() : sim::sparc2();
  PEAK_CHECK(spec.machine == "p4" || spec.machine == "sparc2",
             "remote session: unknown machine '" + spec.machine + "'");
  state_->trace = state_->workload->trace(ds, spec.trace_seed);
  state_->profile = profile_workload(*state_->workload, state_->trace,
                                     state_->machine);

  // The worker-side driver rates members only — no journal, no cache, no
  // fault layer (distributed mode refuses injectors before it gets
  // here). search_threads = 1 selects batch member semantics, which
  // rate_remote_member() requires.
  DriverOptions options;
  options.seed = spec.seed;
  options.window = spec.window;
  options.mbr = spec.mbr;
  options.improved_rbr = spec.improved_rbr;
  options.rbr_batch_pairs = spec.rbr_batch_pairs;
  options.search_threads = 1;
  state_->driver = std::make_unique<TuningDriver>(
      *state_->workload, state_->profile, state_->trace, state_->machine,
      state_->effects, options);
}

RemoteRatingHost::~RemoteRatingHost() = default;

std::string RemoteRatingHost::rate(const RemoteMemberTask& task) {
  return state_->driver->rate_remote_member(task);
}

}  // namespace peak::core
