#include "core/report.hpp"

#include <sstream>

namespace peak::core {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

struct Row {
  const BenchmarkResult* benchmark;
  const MethodRun* run;
};

std::vector<Row> flatten(const std::vector<BenchmarkResult>& results) {
  std::vector<Row> rows;
  for (const BenchmarkResult& b : results)
    for (const MethodRun& r : b.runs) rows.push_back({&b, &r});
  return rows;
}

}  // namespace

std::string to_csv(const std::vector<BenchmarkResult>& results) {
  std::ostringstream os;
  os << "benchmark,section,method,tuned_on,ref_improvement_pct,"
        "tuning_time,invocations,program_runs,normalized_tuning_time,"
        "consultant_choice\n";
  for (const Row& row : flatten(results)) {
    const BenchmarkResult& b = *row.benchmark;
    const MethodRun& r = *row.run;
    os << csv_escape(b.benchmark) << ',' << csv_escape(b.ts_name) << ','
       << rating::to_string(r.method) << ','
       << workloads::to_string(r.tuned_on) << ',' << r.ref_improvement_pct
       << ',' << r.cost.simulated_time << ',' << r.cost.invocations << ','
       << r.cost.program_runs << ','
       << b.normalized_tuning_time(r.method, r.tuned_on) << ','
       << (r.method == b.chosen ? "yes" : "no") << '\n';
  }
  return os.str();
}

std::string to_markdown(const std::vector<BenchmarkResult>& results) {
  std::ostringstream os;
  os << "| benchmark | section | method | tuned on | improvement % | "
        "norm. tuning time | PEAK's choice |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (const Row& row : flatten(results)) {
    const BenchmarkResult& b = *row.benchmark;
    const MethodRun& r = *row.run;
    char impr[32], norm[32];
    std::snprintf(impr, sizeof impr, "%.2f", r.ref_improvement_pct);
    std::snprintf(norm, sizeof norm, "%.3f",
                  b.normalized_tuning_time(r.method, r.tuned_on));
    os << "| " << b.benchmark << " | " << b.ts_name << " | "
       << rating::to_string(r.method) << " | "
       << workloads::to_string(r.tuned_on) << " | " << impr << " | "
       << norm << " | " << (r.method == b.chosen ? "✔" : "") << " |\n";
  }
  return os.str();
}

std::string to_markdown(const ApplicationOutcome& outcome) {
  std::ostringstream os;
  os << "| section | time share | method | improvement % |\n";
  os << "|---|---|---|---|\n";
  for (const SectionOutcome& s : outcome.sections) {
    char share[32], impr[32];
    std::snprintf(share, sizeof share, "%.1f%%",
                  100.0 * s.time_fraction);
    std::snprintf(impr, sizeof impr, "%.2f", s.run.ref_improvement_pct);
    os << "| " << s.section << " | " << share << " | "
       << rating::to_string(s.run.method) << " | " << impr << " |\n";
  }
  char whole[32];
  std::snprintf(whole, sizeof whole, "%.2f",
                outcome.whole_program_improvement_pct());
  os << "\nWhole-program improvement: **" << whole << "%**\n";
  return os.str();
}

}  // namespace peak::core
