#include "core/peak.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peak::core {

const MethodRun* BenchmarkResult::find(rating::Method m,
                                       workloads::DataSet ds) const {
  for (const MethodRun& r : runs)
    if (r.method == m && r.tuned_on == ds) return &r;
  return nullptr;
}

double BenchmarkResult::normalized_tuning_time(rating::Method m,
                                               workloads::DataSet ds) const {
  const MethodRun* run = find(m, ds);
  const MethodRun* whl = find(rating::Method::kWHL, ds);
  if (!run || !whl || whl->cost.simulated_time <= 0.0) return 0.0;
  return run->cost.simulated_time / whl->cost.simulated_time;
}

Peak::Peak(const sim::MachineModel& machine, PeakOptions options)
    : machine_(machine),
      options_(options),
      effects_(search::gcc33_o3_space(), options.seed ^ 0x9eac) {}

MethodRun Peak::run_one(const workloads::Workload& workload,
                        const ProfileData& profile,
                        const workloads::Trace& tune_trace,
                        const workloads::Trace& ref_trace,
                        workloads::DataSet tuned_on, rating::Method method,
                        double ref_o3_time) {
  TuningDriver driver(workload, profile, tune_trace, machine_, effects_,
                      options_.driver);
  const TuningOutcome outcome = driver.tune(method);

  MethodRun run;
  run.method = method;
  run.tuned_on = tuned_on;
  run.best_config = outcome.best_config;
  run.cost = outcome.cost;
  run.exhausted_fraction = outcome.exhausted_fraction;

  const double tuned_time = expected_trace_time(
      workload, ref_trace, machine_, effects_, outcome.best_config);
  PEAK_CHECK(tuned_time > 0.0, "degenerate ref evaluation");
  run.ref_improvement_pct = (ref_o3_time / tuned_time - 1.0) * 100.0;
  return run;
}

BenchmarkResult Peak::run_benchmark(const workloads::Workload& workload,
                                    bool all_methods,
                                    std::vector<rating::Method> extra_methods) {
  const std::uint64_t trace_seed =
      support::hash_combine(options_.seed,
                            support::stable_hash(workload.benchmark()));
  const workloads::Trace train =
      workload.trace(workloads::DataSet::kTrain, trace_seed);
  const workloads::Trace ref =
      workload.trace(workloads::DataSet::kRef, trace_seed);

  const ProfileData profile =
      profile_workload(workload, train, machine_, options_.profile);

  BenchmarkResult result;
  result.benchmark = workload.benchmark();
  result.ts_name = workload.ts_name();
  result.decision = profile.decision;
  result.chosen = profile.decision.initial();

  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const double ref_o3_time =
      expected_trace_time(workload, ref, machine_, effects_, o3);

  std::vector<rating::Method> methods;
  if (all_methods) {
    methods = profile.decision.chain;
    methods.push_back(rating::Method::kAVG);
    methods.push_back(rating::Method::kWHL);
  } else {
    methods = {profile.decision.initial()};
  }
  for (rating::Method m : extra_methods)
    if (std::find(methods.begin(), methods.end(), m) == methods.end())
      methods.push_back(m);

  for (rating::Method m : methods) {
    result.runs.push_back(run_one(workload, profile, train, ref,
                                  workloads::DataSet::kTrain, m,
                                  ref_o3_time));
    if (all_methods) {
      // The right bars of Figure 7: tuning with the production (ref)
      // dataset, for comparison with the honest train-tuned result.
      const ProfileData ref_profile =
          profile_workload(workload, ref, machine_, options_.profile);
      result.runs.push_back(run_one(workload, ref_profile, ref, ref,
                                    workloads::DataSet::kRef, m,
                                    ref_o3_time));
    }
  }
  return result;
}

MethodRun Peak::tune_with_consultant(const workloads::Workload& workload) {
  const std::uint64_t trace_seed =
      support::hash_combine(options_.seed,
                            support::stable_hash(workload.benchmark()));
  const workloads::Trace train =
      workload.trace(workloads::DataSet::kTrain, trace_seed);
  const workloads::Trace ref =
      workload.trace(workloads::DataSet::kRef, trace_seed);
  const ProfileData profile =
      profile_workload(workload, train, machine_, options_.profile);

  TuningDriver driver(workload, profile, train, machine_, effects_,
                      options_.driver);
  const TuningOutcome outcome = driver.tune_auto();

  MethodRun run;
  run.method = outcome.method;
  run.tuned_on = workloads::DataSet::kTrain;
  run.best_config = outcome.best_config;
  run.cost = outcome.cost;
  run.exhausted_fraction = outcome.exhausted_fraction;

  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const double ref_o3 =
      expected_trace_time(workload, ref, machine_, effects_, o3);
  const double tuned = expected_trace_time(workload, ref, machine_,
                                           effects_, outcome.best_config);
  run.ref_improvement_pct = (ref_o3 / tuned - 1.0) * 100.0;
  return run;
}

}  // namespace peak::core
