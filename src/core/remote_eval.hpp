#pragma once

/// \file remote_eval.hpp
/// The measurement contract between a distributed-tuning coordinator and
/// a remote `peak worker` agent (`peak::dist`, see docs/INTERNALS.md §13).
///
/// PEAK's batched ratings are pure functions of content: a member's
/// measurement stream is reseeded from (run seed, section, base bits,
/// candidate bits), it runs on a freshly-reset backend clone, and its
/// entire effect on the run is a buffered delta merged in canonical
/// order. That purity is what makes remote execution sound — a worker on
/// another machine only needs (a) the same deterministic scenario
/// (benchmark, machine model, trace recipe, rating policies) and (b) the
/// task's content (method, config bits, stream seed, the frozen memo
/// entries the member may read) to reproduce the member's delta
/// bit-exactly. SessionSpec carries (a) once per connection;
/// RemoteMemberTask carries (b) once per rating.
///
/// Fault injection is coordinator-side state (retry and quarantine
/// verdicts depend on attempt history), so distributed mode refuses to
/// run with an injector installed — the same soundness rule the
/// persistent rating cache follows.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/tuning_driver.hpp"
#include "rating/rating.hpp"

namespace peak::core {

/// Everything a worker needs to rebuild the tuning scenario: names are
/// resolved against the same registries on both sides (workloads,
/// machine models, the GCC 3.3 -O3 space), and the numeric policy fields
/// pin down every knob a rating's outcome depends on.
struct SessionSpec {
  std::string benchmark;        ///< workloads::make_workload() name
  std::string machine;          ///< "sparc2" | "p4"
  std::string dataset = "train";  ///< workloads::DataSet
  std::uint64_t trace_seed = 42;
  std::uint64_t seed = 1;       ///< DriverOptions::seed
  rating::WindowPolicy window{};
  rating::MbrPolicy mbr{};
  bool improved_rbr = true;
  std::size_t rbr_batch_pairs = 1;

  friend bool operator==(const SessionSpec&, const SessionSpec&) = default;
};

/// SessionSpec for this driver configuration — the CLI builds it from the
/// exact DriverOptions it is about to tune with, so the spec cannot drift
/// from the run it describes.
[[nodiscard]] SessionSpec make_session_spec(const std::string& benchmark,
                                            const std::string& machine,
                                            const DriverOptions& options);

/// One slot-tagged rating task: rate `cfg` against `base` with `method`.
/// `memo` carries the frozen memo entries this member is allowed to read
/// (at most the base's and candidate's — all a batched rating ever looks
/// up), so the worker-side rating is a pure function of this struct.
struct RemoteMemberTask {
  rating::Method method = rating::Method::kWHL;
  std::string base_key;  ///< FlagConfig::key() ("0"/"1" per flag)
  std::string cfg_key;
  bool prologue = false;  ///< rates the base EVAL only
  std::uint64_t seed = 0; ///< content-derived member stream seed
  std::vector<std::pair<std::string, double>> memo;

  friend bool operator==(const RemoteMemberTask&,
                         const RemoteMemberTask&) = default;
};

/// Worker-side rating host: owns one reconstructed scenario (workload,
/// trace, profile, machine, effect model, driver) and rates member tasks
/// through the exact batch-member code path the in-process driver uses,
/// returning the serialized member delta (the `proc` wire format) the
/// coordinator merges. Construction does the expensive part (profiling);
/// rate() is then cheap per task. Throws support::CheckError for an
/// unknown benchmark/machine/dataset.
class RemoteRatingHost {
public:
  explicit RemoteRatingHost(const SessionSpec& spec);
  ~RemoteRatingHost();

  RemoteRatingHost(const RemoteRatingHost&) = delete;
  RemoteRatingHost& operator=(const RemoteRatingHost&) = delete;

  /// Serialized member delta for one task (see
  /// TuningDriver::rate_remote_member).
  [[nodiscard]] std::string rate(const RemoteMemberTask& task);

  [[nodiscard]] const SessionSpec& spec() const { return spec_; }

private:
  struct State;
  SessionSpec spec_;
  std::unique_ptr<State> state_;
};

}  // namespace peak::core
