#include "core/per_context.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peak::core {

namespace {

/// Trace restricted to the invocations of one context.
workloads::Trace filter_context(const workloads::Trace& trace,
                                const std::vector<double>& context) {
  workloads::Trace out;
  out.workload_scale = trace.workload_scale;
  for (const sim::Invocation& inv : trace.invocations)
    if (inv.context == context) out.invocations.push_back(inv);
  return out;
}

}  // namespace

PerContextOutcome tune_per_context(const workloads::Workload& workload,
                                   const sim::MachineModel& machine,
                                   const sim::FlagEffectModel& effects,
                                   DriverOptions options,
                                   std::size_t max_contexts) {
  const workloads::Trace train =
      workload.trace(workloads::DataSet::kTrain, options.seed ^ 0x9c7);
  const workloads::Trace ref =
      workload.trace(workloads::DataSet::kRef, options.seed ^ 0x9c7);
  const ProfileData profile =
      profile_workload(workload, train, machine);
  PEAK_CHECK(profile.cbr_applicable(),
             "per-context tuning needs a CBR-applicable section");

  // Distinct contexts with their total expected time (importance).
  std::map<std::vector<double>, double> importance;
  {
    sim::TsTraits traits = workload.traits();
    traits.workload_scale = train.workload_scale;
    sim::SimExecutionBackend probe(workload.function(), traits, machine,
                                   effects, options.seed ^ 0x77);
    const search::FlagConfig o3 = search::o3_config(effects.space());
    for (const sim::Invocation& inv : train.invocations)
      importance[inv.context] += probe.expected_time(o3, inv);
  }
  PEAK_CHECK(importance.size() <= max_contexts,
             "too many contexts for per-context tuning");

  PerContextOutcome outcome;
  double best_importance = -1.0;
  for (const auto& [context, weight] : importance) {
    const workloads::Trace slice = filter_context(train, context);
    TuningDriver driver(workload, profile, slice, machine, effects,
                        options);
    const TuningOutcome tuned = driver.tune(rating::Method::kCBR);
    outcome.winners.emplace(context, tuned.best_config);
    outcome.cost.simulated_time += tuned.cost.simulated_time;
    outcome.cost.invocations += tuned.cost.invocations;
    outcome.cost.configs_evaluated += tuned.cost.configs_evaluated;
    if (weight > best_importance) {
      best_importance = weight;
      outcome.single_best = tuned.best_config;
      outcome.dominant_context = context;
    }
  }

  // Evaluate both deployment strategies on the ref trace.
  sim::TsTraits traits = workload.traits();
  traits.workload_scale = ref.workload_scale;
  sim::SimExecutionBackend eval(workload.function(), traits, machine,
                                effects, options.seed ^ 0x88);
  const search::FlagConfig o3 = search::o3_config(effects.space());
  double t_o3 = 0.0, t_single = 0.0, t_dispatch = 0.0;
  for (const sim::Invocation& inv : ref.invocations) {
    t_o3 += eval.expected_time(o3, inv);
    t_single += eval.expected_time(outcome.single_best, inv);
    const auto it = outcome.winners.find(inv.context);
    t_dispatch += eval.expected_time(
        it != outcome.winners.end() ? it->second : outcome.single_best,
        inv);
  }
  outcome.single_improvement_pct = (t_o3 / t_single - 1.0) * 100.0;
  outcome.dispatch_improvement_pct = (t_o3 / t_dispatch - 1.0) * 100.0;
  return outcome;
}

}  // namespace peak::core
