#pragma once

/// \file rating_cache.hpp
/// Persistent content-addressed rating cache. Batched evaluation makes
/// every candidate rating a pure function of
/// (machine, section, trace, seed, rating method + params, base bits,
/// candidate bits) — the measurement stream is reseeded per rating from
/// exactly those inputs — so the complete outcome of a rating (the R
/// value plus every state delta it caused: memo entries, rating
/// observations, counter advances, simulated-cycle costs) can be keyed by
/// a digest of them and replayed from disk on any later run that asks the
/// same question. The file is append-only JSONL (same dialect as the
/// tuning journal, see core/jsonl.hpp) shared across rounds, sections,
/// and repeated runs; a warm rerun applies cached deltas instead of
/// simulating, which makes it near-instant while still producing a
/// bit-identical TuningOutcome (costs included — tuning cost is part of
/// the cached deltas, not of the wall clock).
///
/// The cache is disabled whenever a fault injector is installed: injector
/// verdicts depend on state that is not part of the key (attempt numbers,
/// quarantine history), so cached ratings would be unsound there.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/exec_backend.hpp"

namespace peak::core {

/// Everything one batched candidate rating did to the evaluator, in
/// position-independent form. Applying an entry at merge time is
/// indistinguishable from having run the rating live.
struct RatingCacheEntry {
  double r = 0.0;
  /// rate_time memo entries added (key → EVAL).
  std::vector<std::pair<std::string, double>> memo_added;
  /// Per-rating observations (converged?, window samples), in order.
  struct RatingObs {
    bool converged = false;
    std::uint64_t samples = 0;
  };
  std::vector<RatingObs> rating_obs;
  std::uint64_t invocations = 0;
  std::uint64_t ratings_started = 0;
  std::uint64_t exhausted = 0;
  double whole_program_surcharge = 0.0;
  /// Simulated-cycle cost of the rating, per phase.
  sim::SimExecutionBackend::CostDeltas cost;
  /// Last MBR regression residual the rating reported (MBR only).
  std::optional<double> mbr_residual;
};

/// Append-only on-disk cache, keyed by 128-bit content digests rendered
/// as 32 hex digits. Opening loads every complete record into memory
/// (damaged lines are skipped and counted in `search.cache.corrupt_lines`
/// — cache entries are position-independent, so unlike the journal a hole
/// costs only that entry); store() appends one line under an exclusive
/// flock(2), so concurrent writers — other processes, or another
/// RatingCache on the same path in this process — interleave whole lines,
/// never bytes. Thread-safe; in the driver all lookups and stores happen
/// on the batch-merge (primary) thread anyway.
class RatingCache {
public:
  /// Opens `path` for appending, creating it if absent, and loads any
  /// existing entries.
  explicit RatingCache(std::string path);
  ~RatingCache();

  RatingCache(const RatingCache&) = delete;
  RatingCache& operator=(const RatingCache&) = delete;

  /// Entry for `key`, if present. Bumps `search.cache.hit` / `.miss`.
  [[nodiscard]] std::optional<RatingCacheEntry> lookup(
      const std::string& key) const;

  /// Insert and append to disk (first writer wins; a duplicate store of
  /// the same key keeps the existing entry). Bumps `search.cache.store`.
  void store(const std::string& key, const RatingCacheEntry& entry);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& path() const { return path_; }

private:
  std::string path_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, RatingCacheEntry> entries_;
  /// POSIX fd (O_WRONLY | O_APPEND): flock() needs a file descriptor and
  /// O_APPEND makes each single write() land atomically at the current
  /// end of file — std::ofstream exposes neither guarantee.
  int fd_ = -1;
};

}  // namespace peak::core
