#pragma once

/// \file check.hpp
/// Lightweight precondition / invariant checking used across the PEAK
/// library. PEAK_CHECK is always on (it guards API misuse and corrupt
/// inputs); PEAK_DCHECK compiles out in release builds and guards
/// internal invariants on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace peak::support {

/// Thrown when a PEAK_CHECK condition fails. Carries the failing
/// expression, file/line, and an optional user message.
class CheckError : public std::logic_error {
public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PEAK_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace peak::support

#define PEAK_CHECK(cond, ...)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::peak::support::check_failed(#cond, __FILE__, __LINE__,             \
                                    ::std::string{__VA_ARGS__});           \
    }                                                                      \
  } while (false)

#ifdef NDEBUG
#define PEAK_DCHECK(cond, ...) \
  do {                         \
  } while (false)
#else
#define PEAK_DCHECK(cond, ...) PEAK_CHECK(cond, __VA_ARGS__)
#endif
