#pragma once

/// \file tcp.hpp
/// Minimal TCP plumbing for the distributed tuning layer (`peak::dist`):
/// a listener that accepts without blocking the caller's event loop, and
/// a blocking connect with a deadline. The sockets are plain POSIX fds so
/// the worker-protocol framing (`proc::FrameReader` / `proc::write_frame`)
/// runs on them unchanged — a socket and a pipe deliver the same torn
/// byte stream, and the framing was built for exactly that.
///
/// Unlike the telemetry server (127.0.0.1 only — an operator loopback
/// surface), a dist listener binds all interfaces by default: the whole
/// point of a worker fleet is that it lives on other machines. Callers
/// that want loopback-only (tests, single-box sweeps) pass
/// `loopback_only = true`.

#include <cstdint>
#include <string>

namespace peak::support {

/// Listening TCP socket. accept_ready() never blocks: the coordinator
/// polls the listener fd alongside its worker fds and accepts only when
/// poll() says a connection is pending.
class TcpListener {
public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind and listen on `port` (0 = ephemeral; port() reports the bound
  /// one). False on failure with a description in *error.
  bool listen(std::uint16_t port, bool loopback_only, std::string* error);

  /// Accept one pending connection, or -1 when none is queued (the
  /// socket is non-blocking). The returned fd is blocking, TCP_NODELAY,
  /// and owned by the caller. `peer` (optional) receives "host:port".
  int accept_ready(std::string* peer = nullptr);

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool listening() const { return fd_ >= 0; }

  void close();

private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Blocking connect to host:port with a deadline. Returns the connected
/// fd (blocking, TCP_NODELAY) or -1 with a description in *error. `host`
/// is a hostname or a dotted address.
int tcp_connect(const std::string& host, std::uint16_t port,
                int timeout_ms, std::string* error);

/// Split "host:port" (the last ':' wins, so bare IPv4 and hostnames work).
/// False when the port is missing or out of range.
bool split_host_port(const std::string& endpoint, std::string* host,
                     std::uint16_t* port);

}  // namespace peak::support
