#pragma once

/// \file http_server.hpp
/// A small dependency-free HTTP/1.1 server (and matching blocking client)
/// over POSIX sockets, written for PEAK's live telemetry endpoints. One
/// acceptor thread hands accepted connections to a bounded worker pool;
/// request parsing is incremental (a scrape arriving in torn reads is
/// reassembled byte by byte), responses are written with Content-Length
/// and `Connection: close` — no keep-alive, no TLS, no chunked encoding.
/// Handlers either return a complete HttpResponse or, for streaming
/// endpoints (Server-Sent Events), write through a StreamWriter until the
/// client disconnects or the server stops.
///
/// The server binds 127.0.0.1 only: telemetry is an operator loopback /
/// SSH-tunnel surface, not an internet-facing one.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace peak::support {

/// One parsed request. Header names are lower-cased; `path` is the
/// request target up to '?', `query` the raw text after it.
struct HttpRequest {
  std::string method;
  std::string target;  ///< raw request target as sent
  std::string path;
  std::string query;
  std::string version;  ///< "HTTP/1.1"
  std::map<std::string, std::string> headers;
  std::string body;

  /// Value of `?name=value` in the query string, or `fallback`.
  [[nodiscard]] std::string query_param(std::string_view name,
                                        std::string_view fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers beyond Content-Type/Content-Length/Connection.
  std::map<std::string, std::string> headers;

  static HttpResponse text(int status, std::string body);
  static HttpResponse json(std::string body);
};

/// Standard reason phrase for the handful of statuses PEAK emits.
[[nodiscard]] std::string_view reason_phrase(int status);

/// Incremental request parser: feed() bytes as they arrive until it
/// reports kDone (request() is valid) or kError (error_status() says
/// which 4xx to answer). Tolerates any fragmentation, including one byte
/// at a time; enforces a total size cap so a hostile peer cannot balloon
/// the buffer.
class HttpParser {
public:
  explicit HttpParser(std::size_t max_bytes = 64 * 1024)
      : max_bytes_(max_bytes) {}

  enum class State { kNeedMore, kDone, kError };

  State feed(std::string_view data);
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const HttpRequest& request() const { return request_; }
  [[nodiscard]] int error_status() const { return error_status_; }
  [[nodiscard]] const std::string& error() const { return error_; }

private:
  State fail(int status, std::string message);
  State try_parse();

  std::size_t max_bytes_;
  std::string buffer_;
  HttpRequest request_;
  State state_ = State::kNeedMore;
  int error_status_ = 400;
  std::string error_;
};

class HttpServer {
public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
    unsigned workers = 4;
    int backlog = 16;
    std::size_t max_request_bytes = 64 * 1024;
  };

  /// Write side of a streaming response. write() returns false once the
  /// client is gone or the server is stopping; wait() sleeps up to
  /// `timeout` but returns early (false) on server shutdown.
  class StreamWriter {
  public:
    virtual ~StreamWriter() = default;
    virtual bool write(std::string_view data) = 0;
    [[nodiscard]] virtual bool alive() const = 0;
    virtual bool wait(std::chrono::milliseconds timeout) = 0;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  using StreamHandler =
      std::function<void(const HttpRequest&, StreamWriter&)>;

  HttpServer();  ///< default Options
  explicit HttpServer(Options options);
  ~HttpServer();  ///< stops if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register a handler for an exact path. GET and HEAD are served (HEAD
  /// gets headers only); other methods answer 405. Must be called before
  /// start().
  void handle(std::string path, Handler handler);
  void handle_stream(std::string path, StreamHandler handler);

  /// Bind + listen + spin up the acceptor and workers. False (with
  /// `error` filled in) when the port cannot be bound.
  bool start(std::string* error = nullptr);

  /// Bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] bool running() const;

  /// Shut down: stop accepting, unblock in-flight streams, join all
  /// threads. Idempotent.
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// --- minimal blocking client (peak monitor, tests) -----------------------

struct HttpClientResult {
  bool ok = false;        ///< transport-level success (any status counts)
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
  std::string error;  ///< transport error when !ok
};

/// One-shot GET http://host:port/path, reading until the server closes.
HttpClientResult http_get(const std::string& host, std::uint16_t port,
                          const std::string& path,
                          std::chrono::milliseconds timeout =
                              std::chrono::milliseconds(5000));

/// Streaming GET: invokes `on_chunk` with each raw chunk as it arrives
/// (after the response headers) until the server closes the connection or
/// the callback returns false. Returns transport success.
bool http_stream(const std::string& host, std::uint16_t port,
                 const std::string& path,
                 const std::function<bool(std::string_view chunk)>& on_chunk,
                 std::string* error = nullptr);

}  // namespace peak::support
