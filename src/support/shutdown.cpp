#include "support/shutdown.hpp"

#include <unistd.h>

#include <atomic>
#include <csignal>

namespace peak::support {

namespace {

std::atomic<int> g_shutdown_signal{0};

extern "C" void shutdown_handler(int sig) {
  int expected = 0;
  if (!g_shutdown_signal.compare_exchange_strong(expected, sig)) {
    // Second signal: the graceful path is taking too long (or is itself
    // stuck) — exit now with the conventional fatal-signal status.
    _exit(128 + sig);
  }
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = shutdown_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESETHAND: the second delivery must be seen
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int shutdown_signal() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void request_shutdown() {
  int expected = 0;
  g_shutdown_signal.compare_exchange_strong(expected, SIGINT);
}

void check_shutdown() {
  const int sig = g_shutdown_signal.load(std::memory_order_relaxed);
  if (sig != 0) throw ShutdownRequested(sig);
}

void reset_shutdown() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

}  // namespace peak::support
