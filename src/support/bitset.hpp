#pragma once

/// \file bitset.hpp
/// Dynamically sized bitset used by the dataflow framework (gen/kill sets)
/// and by the optimization-flag configurations. std::vector<bool> is avoided
/// for its proxy-reference pitfalls; this implementation stores 64-bit words
/// and supports the set-algebra operations dataflow analyses need.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace peak::support {

class DynBitset {
public:
  DynBitset() = default;

  explicit DynBitset(std::size_t nbits, bool value = false)
      : nbits_(nbits), words_((nbits + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  [[nodiscard]] std::size_t size() const { return nbits_; }

  [[nodiscard]] bool test(std::size_t i) const {
    PEAK_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value = true) {
    PEAK_DCHECK(i < nbits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void reset(std::size_t i) { set(i, false); }

  void set_all() {
    for (auto& w : words_) w = ~0ULL;
    trim();
  }

  void reset_all() {
    for (auto& w : words_) w = 0ULL;
  }

  void flip(std::size_t i) {
    PEAK_DCHECK(i < nbits_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  [[nodiscard]] bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  [[nodiscard]] bool none() const { return !any(); }

  /// In-place union; returns true if this changed.
  bool union_with(const DynBitset& other) {
    PEAK_DCHECK(other.nbits_ == nbits_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t next = words_[i] | other.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }

  /// In-place intersection; returns true if this changed.
  bool intersect_with(const DynBitset& other) {
    PEAK_DCHECK(other.nbits_ == nbits_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t next = words_[i] & other.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }

  /// In-place difference (this \ other); returns true if this changed.
  bool subtract(const DynBitset& other) {
    PEAK_DCHECK(other.nbits_ == nbits_);
    bool changed = false;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t next = words_[i] & ~other.words_[i];
      changed |= next != words_[i];
      words_[i] = next;
    }
    return changed;
  }

  friend DynBitset operator|(DynBitset a, const DynBitset& b) {
    a.union_with(b);
    return a;
  }

  friend DynBitset operator&(DynBitset a, const DynBitset& b) {
    a.intersect_with(b);
    return a;
  }

  friend DynBitset operator-(DynBitset a, const DynBitset& b) {
    a.subtract(b);
    return a;
  }

  friend bool operator==(const DynBitset& a, const DynBitset& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

  /// Call fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Raw 64-bit backing words (trailing bits beyond size() are zero).
  /// Cheap structural identity for hashing: equal bitsets of equal size
  /// have equal words.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

  [[nodiscard]] std::vector<std::size_t> to_indices() const {
    std::vector<std::size_t> out;
    out.reserve(count());
    for_each_set([&](std::size_t i) { out.push_back(i); });
    return out;
  }

private:
  void trim() {
    if (nbits_ % 64 != 0 && !words_.empty())
      words_.back() &= (1ULL << (nbits_ % 64)) - 1;
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace peak::support
