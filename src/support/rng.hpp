#pragma once

/// \file rng.hpp
/// Deterministic random number generation. All stochastic behaviour in the
/// simulator (timing noise, perturbation spikes, workload traces) flows
/// through Rng so that experiments are exactly reproducible from a seed.
///
/// The generator is xoshiro256**, seeded via splitmix64 — the standard
/// recipe, fast and high quality, with a tiny state that is cheap to copy
/// when forking independent streams.

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

namespace peak::support {

/// splitmix64 step; used for seeding and for stable string hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable 64-bit hash of a string (FNV-1a). Used to derive per-entity
/// sub-seeds (e.g. per tuning-section flag effects) that do not depend on
/// iteration order or pointer values.
constexpr std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Combine two 64-bit values into one (boost::hash_combine style).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// xoshiro256** deterministic generator.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent stream keyed by a label; the parent is unchanged.
  [[nodiscard]] Rng fork(std::string_view label) const {
    return Rng(hash_combine(state_[0] ^ state_[3], stable_hash(label)));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % range);
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Lognormal with multiplicative sigma (mean of the log = 0).
  double lognormal(double sigma) { return std::exp(sigma * normal()); }

  /// Raw generator state, for bit-exact snapshot/restore of a stream
  /// (crash-safe resume serializes it into the tuning journal).
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s[i];
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace peak::support
