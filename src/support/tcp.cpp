#include "support/tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace peak::support {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + ::strerror(errno);
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void set_blocking(int fd, bool blocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return;
  fcntl(fd, F_SETFL,
        blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK));
}

}  // namespace

TcpListener::~TcpListener() { close(); }

bool TcpListener::listen(std::uint16_t port, bool loopback_only,
                         std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error) *error = errno_text("socket");
    return false;
  }
  int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd_, 16) != 0) {
    if (error) *error = errno_text("bind/listen");
    close();
    return false;
  }
  socklen_t len = sizeof addr;
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  set_blocking(fd_, false);
  return true;
}

int TcpListener::accept_ready(std::string* peer) {
  if (fd_ < 0) return -1;
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  const int fd =
      ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  if (fd < 0) return -1;
  set_blocking(fd, true);
  set_nodelay(fd);
  if (peer) {
    char host[INET_ADDRSTRLEN] = "?";
    inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s:%u", host, ntohs(addr.sin_port));
    *peer = buf;
  }
  return fd;
}

void TcpListener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

int tcp_connect(const std::string& host, std::uint16_t port,
                int timeout_ms, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  const int gai = getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res);
  if (gai != 0 || res == nullptr) {
    if (error)
      *error = "resolve " + host + ": " + gai_strerror(gai);
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    set_blocking(fd, false);
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    if (errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      if (poll(&pfd, 1, timeout_ms) == 1 && (pfd.revents & POLLOUT)) {
        int soerr = 0;
        socklen_t len = sizeof soerr;
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr == 0) break;
        errno = soerr;
      } else {
        errno = ETIMEDOUT;
      }
    }
    ::close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) {
    if (error)
      *error = errno_text(("connect " + host + ":" + port_text).c_str());
    return -1;
  }
  set_blocking(fd, true);
  set_nodelay(fd);
  return fd;
}

bool split_host_port(const std::string& endpoint, std::string* host,
                     std::uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size())
    return false;
  char* end = nullptr;
  const std::string port_text = endpoint.substr(colon + 1);
  const unsigned long p = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || p == 0 || p > 65535)
    return false;
  *host = endpoint.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

}  // namespace peak::support
