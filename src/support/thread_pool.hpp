#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool with a parallel_for helper. PEAK uses it
/// to tune independent tuning sections concurrently and to parallelize
/// consistency sweeps in the benchmark harnesses. The pool is deliberately
/// simple: one mutex-protected deque, condition-variable wakeups, futures
/// for results — predictable behaviour matters more here than peak queue
/// throughput, since tasks are milliseconds long.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace peak::support {

class ThreadPool {
public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task; the returned future propagates exceptions.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      PEAK_CHECK(!stopping_, "submit() on a stopped pool");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end), blocking until all complete.
  /// Exceptions from any iteration are rethrown (the first one observed).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t chunks = std::min<std::size_t>(n, size() * 4);
    const std::size_t per = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> futs;
    futs.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * per;
      const std::size_t hi = std::min(end, lo + per);
      if (lo >= hi) break;
      futs.push_back(submit([lo, hi, &fn] {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }));
    }
    for (auto& f : futs) f.get();
  }

private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace peak::support
