#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool with a parallel_for helper. PEAK uses it
/// to tune independent tuning sections concurrently and to parallelize
/// consistency sweeps in the benchmark harnesses. The pool is deliberately
/// simple: one mutex-protected deque, condition-variable wakeups, futures
/// for results — predictable behaviour matters more here than peak queue
/// throughput, since tasks are milliseconds long.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace peak::support {

class ThreadPool {
public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task; the returned future propagates exceptions.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      PEAK_CHECK(!stopping_, "submit() on a stopped pool");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end), blocking until all complete.
  ///
  /// Iterations are claimed dynamically from an atomic counter rather than
  /// pre-assigned in fixed chunks: iteration costs are routinely skewed
  /// (tuning sections differ wildly in trace length), and static chunking
  /// strands the iterations queued behind one slow index while other
  /// workers sit idle. The calling thread participates in the drain, so
  /// every iteration runs even when called from inside a pool worker.
  ///
  /// Every iteration executes even if one throws; the first exception
  /// observed is rethrown after all iterations complete.
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    std::atomic<std::size_t> next{begin};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto drain = [&next, end, &fn, &first_error, &error_mutex] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    };
    // One helper per worker is enough: each drains until the counter runs
    // out. The &-captures outlive the helpers because we join the futures
    // before returning.
    const std::size_t helpers = std::min<std::size_t>(n, size());
    std::vector<std::future<void>> futs;
    futs.reserve(helpers);
    for (std::size_t c = 0; c < helpers; ++c)
      futs.push_back(submit(drain));
    drain();  // the caller works instead of idling
    for (auto& f : futs) f.get();
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Run fn(i, slot) for i in [0, n) with a *deterministic* schedule:
  /// item i belongs to slot i % slots, and each slot executes its items
  /// in increasing i within a single task. Unlike parallel_for's dynamic
  /// claiming, the item → slot → order mapping is a pure function of
  /// (n, slots), so stateful per-slot resources (e.g. backend clones in
  /// batched evaluation) see an item sequence independent of worker
  /// timing. Exception guarantee is deterministic too: every item runs,
  /// and the exception of the *lowest item index* is rethrown afterwards
  /// (parallel_for rethrows the first exception *observed*, which races).
  template <typename Fn>
  void slotted_for(std::size_t n, std::size_t slots, Fn&& fn) {
    if (n == 0) return;
    slots = std::max<std::size_t>(1, std::min(slots, n));
    std::vector<std::exception_ptr> errors(n);
    auto run_slot = [n, slots, &fn, &errors](std::size_t slot) {
      for (std::size_t i = slot; i < n; i += slots) {
        try {
          fn(i, slot);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    };
    std::vector<std::future<void>> futs;
    futs.reserve(slots - 1);
    for (std::size_t s = 1; s < slots; ++s)
      futs.push_back(submit([&run_slot, s] { run_slot(s); }));
    run_slot(0);  // the caller works instead of idling
    for (auto& f : futs) f.get();
    for (std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
  }

private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace peak::support
