#include "support/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace peak::support {

namespace {

/// send() the whole buffer, riding out EINTR and partial writes.
/// MSG_NOSIGNAL turns a dead peer into an error return instead of
/// SIGPIPE, which would kill the tuning process.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

std::string HttpRequest::query_param(std::string_view name,
                                     std::string_view fallback) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name)
      return std::string(pair.substr(eq + 1));
    if (eq == std::string_view::npos && pair == name) return "";
    pos = amp + 1;
  }
  return std::string(fallback);
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::json(std::string body) {
  HttpResponse r;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// --- HttpParser ----------------------------------------------------------

HttpParser::State HttpParser::fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
  return state_;
}

HttpParser::State HttpParser::feed(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  if (buffer_.size() + data.size() > max_bytes_) {
    // Too large before the header/body split is even known: whichever
    // part is ballooning, the request is rejected.
    const bool in_headers =
        buffer_.find("\r\n\r\n") == std::string::npos;
    return fail(in_headers ? 431 : 413, "request too large");
  }
  buffer_.append(data.data(), data.size());
  return try_parse();
}

HttpParser::State HttpParser::try_parse() {
  const std::size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) return state_;

  // Request line.
  const std::size_t line_end = buffer_.find("\r\n");
  const std::string_view line =
      std::string_view(buffer_).substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp2 + 1 >= line.size())
    return fail(400, "malformed request line");
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(line.substr(sp2 + 1));
  if (request_.method.empty() || request_.target.empty() ||
      request_.version.rfind("HTTP/", 0) != 0)
    return fail(400, "malformed request line");
  const std::size_t q = request_.target.find('?');
  request_.path = request_.target.substr(0, q);
  request_.query =
      q == std::string::npos ? "" : request_.target.substr(q + 1);

  // Header lines.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buffer_.find("\r\n", pos);
    const std::string_view header =
        std::string_view(buffer_).substr(pos, eol - pos);
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return fail(400, "malformed header line");
    request_.headers[lower(std::string(header.substr(0, colon)))] =
        trim(header.substr(colon + 1));
    pos = eol + 2;
  }

  // Optional body, sized by Content-Length (the only framing the
  // telemetry surface accepts).
  std::size_t content_length = 0;
  const auto it = request_.headers.find("content-length");
  if (it != request_.headers.end()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
      return fail(400, "bad content-length");
    content_length = static_cast<std::size_t>(v);
    if (header_end + 4 + content_length > max_bytes_)
      return fail(413, "body too large");
  }
  const std::size_t have = buffer_.size() - header_end - 4;
  if (have < content_length) return state_;  // body still arriving
  request_.body = buffer_.substr(header_end + 4, content_length);
  state_ = State::kDone;
  return state_;
}

// --- HttpServer ----------------------------------------------------------

struct HttpServer::Impl {
  Options options;

  std::map<std::string, Handler> handlers;
  std::map<std::string, StreamHandler> stream_handlers;

  // Atomic because stop() invalidates it concurrently with the
  // acceptor's blocking accept() — the fd shutdown/close is what
  // actually unblocks the acceptor; the atomic keeps the handoff a
  // defined read.
  std::atomic<int> listen_fd{-1};
  std::uint16_t bound_port = 0;
  std::thread acceptor;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable queue_cv;   ///< work available / stopping
  std::condition_variable stream_cv;  ///< wakes StreamWriter::wait
  std::deque<int> pending;            ///< accepted, not yet served
  std::set<int> active;               ///< fds a worker currently owns
  bool stopping = false;
  bool started = false;

  class SocketWriter final : public StreamWriter {
  public:
    SocketWriter(Impl& impl, int fd) : impl_(impl), fd_(fd) {}

    bool write(std::string_view data) override {
      if (!alive_) return false;
      if (!send_all(fd_, data)) alive_ = false;
      return alive_;
    }

    [[nodiscard]] bool alive() const override {
      if (!alive_) return false;
      // A vanished client is invisible to write() until the next write —
      // and an idle SSE stream only writes a keepalive every ~10s, which
      // would park this pool thread on a dead socket for that long. Poll
      // the fd instead: SSE clients send nothing after the request, so a
      // readable socket means EOF and HUP/ERR means the peer is gone —
      // either way the thread goes back to serving live requests.
      struct pollfd p{};
      p.fd = fd_;
      p.events = POLLIN;
      if (::poll(&p, 1, 0) > 0) {
        if ((p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
          alive_ = false;
        } else if ((p.revents & POLLIN) != 0) {
          char c = 0;
          const ssize_t n = ::recv(fd_, &c, 1, MSG_PEEK | MSG_DONTWAIT);
          if (n == 0 || (n < 0 && errno != EAGAIN &&
                         errno != EWOULDBLOCK && errno != EINTR))
            alive_ = false;
        }
      }
      if (!alive_) return false;
      std::lock_guard lock(impl_.mutex);
      return !impl_.stopping;
    }

    bool wait(std::chrono::milliseconds timeout) override {
      std::unique_lock lock(impl_.mutex);
      impl_.stream_cv.wait_for(lock, timeout,
                               [this] { return impl_.stopping; });
      return !impl_.stopping && alive_;
    }

   private:
    Impl& impl_;
    int fd_;
    mutable bool alive_ = true;
  };

  void write_response(int fd, const HttpRequest& request,
                      const HttpResponse& response) {
    std::ostringstream os;
    os << "HTTP/1.1 " << response.status << ' '
       << reason_phrase(response.status) << "\r\n"
       << "Content-Type: " << response.content_type << "\r\n"
       << "Content-Length: " << response.body.size() << "\r\n"
       << "Connection: close\r\n";
    for (const auto& [name, value] : response.headers)
      os << name << ": " << value << "\r\n";
    os << "\r\n";
    // HEAD answers with the same headers (Content-Length included) but
    // no body.
    if (request.method != "HEAD") os << response.body;
    send_all(fd, os.str());
  }

  void serve(int fd) {
    HttpParser parser(options.max_request_bytes);
    char buf[4096];
    while (parser.state() == HttpParser::State::kNeedMore) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer vanished mid-request: nothing to answer
      parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }

    HttpRequest fallback_request;
    fallback_request.method = "GET";
    if (parser.state() == HttpParser::State::kError) {
      write_response(fd, fallback_request,
                     HttpResponse::text(parser.error_status(),
                                        parser.error() + "\n"));
      return;
    }

    const HttpRequest& request = parser.request();
    if (request.method != "GET" && request.method != "HEAD") {
      write_response(fd, request,
                     HttpResponse::text(405, "method not allowed\n"));
      return;
    }
    if (const auto it = stream_handlers.find(request.path);
        it != stream_handlers.end()) {
      if (request.method == "HEAD") {
        write_response(fd, request, HttpResponse::text(200, ""));
        return;
      }
      std::ostringstream os;
      os << "HTTP/1.1 200 OK\r\n"
         << "Content-Type: text/event-stream\r\n"
         << "Cache-Control: no-cache\r\n"
         << "Connection: close\r\n\r\n";
      if (!send_all(fd, os.str())) return;
      SocketWriter writer(*this, fd);
      it->second(request, writer);
      return;
    }
    const auto it = handlers.find(request.path);
    if (it == handlers.end()) {
      write_response(fd, request, HttpResponse::text(404, "not found\n"));
      return;
    }
    HttpResponse response;
    try {
      response = it->second(request);
    } catch (const std::exception& e) {
      response = HttpResponse::text(500, std::string(e.what()) + "\n");
    }
    write_response(fd, request, response);
  }

  void worker_loop() {
    while (true) {
      int fd = -1;
      {
        std::unique_lock lock(mutex);
        queue_cv.wait(lock, [this] { return stopping || !pending.empty(); });
        if (pending.empty()) return;  // stopping with nothing queued
        fd = pending.front();
        pending.pop_front();
        active.insert(fd);
      }
      serve(fd);
      {
        std::lock_guard lock(mutex);
        active.erase(fd);
      }
      ::close(fd);
    }
  }

  void accept_loop() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listen socket closed: shutting down
      }
      std::lock_guard lock(mutex);
      if (stopping) {
        ::close(fd);
        return;
      }
      pending.push_back(fd);
      queue_cv.notify_one();
    }
  }
};

HttpServer::HttpServer() : HttpServer(Options()) {}

HttpServer::HttpServer(Options options) : impl_(new Impl) {
  impl_->options = options;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  impl_->handlers[std::move(path)] = std::move(handler);
}

void HttpServer::handle_stream(std::string path, StreamHandler handler) {
  impl_->stream_handlers[std::move(path)] = std::move(handler);
}

bool HttpServer::start(std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (impl_->listen_fd >= 0) {
      ::close(impl_->listen_fd);
      impl_->listen_fd = -1;
    }
    return false;
  };
  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(impl_->options.port);
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0)
    return fail("bind");
  if (::listen(impl_->listen_fd, impl_->options.backlog) != 0)
    return fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0)
    return fail("getsockname");
  impl_->bound_port = ntohs(addr.sin_port);

  impl_->stopping = false;
  impl_->started = true;
  const unsigned workers = std::max(1u, impl_->options.workers);
  impl_->workers.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  impl_->acceptor = std::thread([this] { impl_->accept_loop(); });
  return true;
}

std::uint16_t HttpServer::port() const { return impl_->bound_port; }

bool HttpServer::running() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->started && !impl_->stopping;
}

void HttpServer::stop() {
  {
    std::lock_guard lock(impl_->mutex);
    if (!impl_->started) return;
    impl_->stopping = true;
    // Unblock workers stuck in recv()/send() on live connections —
    // notably SSE streams, which otherwise outlive the run.
    for (int fd : impl_->active) ::shutdown(fd, SHUT_RDWR);
    for (int fd : impl_->pending) ::close(fd);
    impl_->pending.clear();
  }
  impl_->queue_cv.notify_all();
  impl_->stream_cv.notify_all();
  if (impl_->listen_fd >= 0) {
    // shutdown() unblocks accept() on Linux; close() finishes the job.
    ::shutdown(impl_->listen_fd, SHUT_RDWR);
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  for (std::thread& w : impl_->workers)
    if (w.joinable()) w.join();
  impl_->workers.clear();
  impl_->started = false;
}

// --- client --------------------------------------------------------------

namespace {

int connect_to(const std::string& host, std::uint16_t port,
               std::chrono::milliseconds timeout, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return -1;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "unsupported host '" + host +
                                   "' (numeric IPv4 only, e.g. 127.0.0.1)";
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    errno = saved_errno;
    return fail("connect");
  }
  return fd;
}

bool send_request(int fd, const std::string& host, const std::string& path) {
  std::ostringstream os;
  os << "GET " << path << " HTTP/1.1\r\nHost: " << host
     << "\r\nConnection: close\r\n\r\n";
  return send_all(fd, os.str());
}

/// Read until the header/body split; returns {status, headers, leftover
/// body bytes already read} or nullopt on a malformed response.
struct ResponseHead {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string leftover;
};

bool read_head(int fd, ResponseHead* head, std::string* error) {
  std::string buffer;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (error != nullptr) *error = "connection closed before headers";
      return false;
    }
    buffer.append(buf, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > 256 * 1024) {
      if (error != nullptr) *error = "response headers too large";
      return false;
    }
  }
  const std::size_t line_end = buffer.find("\r\n");
  const std::string line = buffer.substr(0, line_end);
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  head->status = std::atoi(line.c_str() + sp + 1);
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buffer.find("\r\n", pos);
    const std::string header = buffer.substr(pos, eol - pos);
    const std::size_t colon = header.find(':');
    if (colon != std::string::npos)
      head->headers[lower(header.substr(0, colon))] =
          trim(std::string_view(header).substr(colon + 1));
    pos = eol + 2;
  }
  head->leftover = buffer.substr(header_end + 4);
  return true;
}

}  // namespace

HttpClientResult http_get(const std::string& host, std::uint16_t port,
                          const std::string& path,
                          std::chrono::milliseconds timeout) {
  HttpClientResult result;
  const int fd = connect_to(host, port, timeout, &result.error);
  if (fd < 0) return result;
  if (!send_request(fd, host, path)) {
    result.error = "send failed";
    ::close(fd);
    return result;
  }
  ResponseHead head;
  if (!read_head(fd, &head, &result.error)) {
    ::close(fd);
    return result;
  }
  result.status = head.status;
  result.headers = std::move(head.headers);
  result.body = std::move(head.leftover);
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // close = end of body (Connection: close framing)
    result.body.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  result.ok = true;
  return result;
}

bool http_stream(const std::string& host, std::uint16_t port,
                 const std::string& path,
                 const std::function<bool(std::string_view chunk)>& on_chunk,
                 std::string* error) {
  const int fd = connect_to(host, port, std::chrono::milliseconds(5000),
                            error);
  if (fd < 0) return false;
  if (!send_request(fd, host, path)) {
    if (error != nullptr) *error = "send failed";
    ::close(fd);
    return false;
  }
  ResponseHead head;
  if (!read_head(fd, &head, error)) {
    ::close(fd);
    return false;
  }
  if (head.status != 200) {
    if (error != nullptr)
      *error = "server answered status " + std::to_string(head.status);
    ::close(fd);
    return false;
  }
  if (!head.leftover.empty() && !on_chunk(head.leftover)) {
    ::close(fd);
    return true;
  }
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Receive timeout between events: surface an empty chunk so the
      // caller can decide to keep waiting or bail.
      if (!on_chunk(std::string_view())) break;
      continue;
    }
    if (n <= 0) break;
    if (!on_chunk(std::string_view(buf, static_cast<std::size_t>(n))))
      break;
  }
  ::close(fd);
  return true;
}

}  // namespace peak::support
