#pragma once

/// \file shutdown.hpp
/// Cooperative shutdown for `peak tune`: a SIGINT/SIGTERM handler flips a
/// process-wide flag that long-running loops poll at safe boundaries (the
/// evaluator checks it at batch entry, the worker supervisor between
/// dispatches). The first signal requests a graceful stop — the caller
/// unwinds via ShutdownRequested, flushing the journal and rating cache
/// (both are flushed per record anyway), stopping the telemetry server,
/// and reaping worker subprocesses on the way out. A second signal
/// force-exits immediately with the conventional 128+SIGINT status, for
/// when the graceful path itself is wedged.
///
/// The handler is async-signal-safe: it only stores to lock-free atomics
/// (and calls _exit on the second signal). Everything else happens on the
/// thread that polls the flag.

#include <stdexcept>

namespace peak::support {

/// Thrown by check_shutdown() once a shutdown signal arrived. Derives
/// from std::runtime_error so generic catch sites report it sensibly, but
/// callers that want the graceful-exit path catch it by name.
class ShutdownRequested : public std::runtime_error {
public:
  explicit ShutdownRequested(int signal)
      : std::runtime_error("shutdown requested by signal"),
        signal_(signal) {}
  [[nodiscard]] int signal() const { return signal_; }

private:
  int signal_ = 0;
};

/// Install the SIGINT/SIGTERM handlers (idempotent). First signal sets
/// the flag; second _exit(128 + signal)s.
void install_shutdown_handlers();

/// True once a shutdown signal arrived (or request_shutdown() was
/// called).
[[nodiscard]] bool shutdown_requested();

/// The signal number that triggered the request (0 if none, SIGINT for a
/// programmatic request_shutdown()).
[[nodiscard]] int shutdown_signal();

/// Programmatic trigger, equivalent to receiving SIGINT once (tests, and
/// embedders without signal handlers).
void request_shutdown();

/// Throws ShutdownRequested if a shutdown was requested. Poll this at
/// points where unwinding is safe (no half-merged batch state).
void check_shutdown();

/// Clear the flag (tests; also used when a run exits gracefully and a
/// caller wants to start another).
void reset_shutdown();

}  // namespace peak::support
