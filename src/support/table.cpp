#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace peak::support {

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::num(double v, int precision) {
  return cell(Table::fmt(v, precision));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::mean_sd(double mean, double sd, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << '(' << sd
     << ')';
  return os.str();
}

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (rows_.empty()) return;

  std::size_t ncols = 0;
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> widths(ncols, 0);
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& r) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
         << " |";
    }
    os << '\n';
  };

  emit_row(rows_.front());
  os << '|';
  for (std::size_t c = 0; c < ncols; ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (std::size_t i = 1; i < rows_.size(); ++i) emit_row(rows_[i]);
}

}  // namespace peak::support
