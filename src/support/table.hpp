#pragma once

/// \file table.hpp
/// ASCII table formatting for the benchmark harnesses that regenerate the
/// paper's tables and figures. Cells are strings; columns auto-size; a
/// header separator row is emitted after the first row when requested.

#include <iosfwd>
#include <string>
#include <vector>

namespace peak::support {

class Table {
public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Append a row; the first row added is treated as the header.
  Table& row(std::vector<std::string> cells);

  /// Convenience: start a row builder.
  class RowBuilder {
  public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& cell(std::string s) {
      cells_.push_back(std::move(s));
      return *this;
    }
    RowBuilder& num(double v, int precision = 2);
    ~RowBuilder() { table_.row(std::move(cells_)); }

  private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  RowBuilder add_row() { return RowBuilder(*this); }

  /// Render with padding and a separator after the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Format a double with fixed precision (helper shared by harnesses).
  static std::string fmt(double v, int precision = 2);

  /// Format in the paper's "mean(stddev)" style (values pre-scaled).
  static std::string mean_sd(double mean, double sd, int precision = 2);

private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace peak::support
