#include "rating/rbr.hpp"

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace peak::rating {

ReexecutionRater::ReexecutionRater(WindowPolicy policy) : rater_(policy) {}

void ReexecutionRater::add_pair(double time_base, double time_exp) {
  static obs::Counter& pairs = obs::counter("rbr.pairs");
  PEAK_CHECK(time_base > 0.0 && time_exp > 0.0,
             "non-positive execution time");
  pairs.inc();
  rater_.add(time_base / time_exp);
}

}  // namespace peak::rating
