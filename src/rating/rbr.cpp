#include "rating/rbr.hpp"

#include "support/check.hpp"

namespace peak::rating {

ReexecutionRater::ReexecutionRater(WindowPolicy policy) : rater_(policy) {}

void ReexecutionRater::add_pair(double time_base, double time_exp) {
  PEAK_CHECK(time_base > 0.0 && time_exp > 0.0,
             "non-positive execution time");
  rater_.add(time_base / time_exp);
}

}  // namespace peak::rating
