#pragma once

/// \file cbr.hpp
/// Context-based rating (paper Section 2.2). Invocations are bucketed by
/// their context — the values of the context variables identified by the
/// Figure 1 analysis — and only same-context timings are averaged. Each
/// context is one unique workload; a version's rating under a context is
/// the mean execution time over a window of that context's invocations.
/// The winner may differ per context; the offline scenario uses the most
/// important context (the one carrying the most execution time), while an
/// adaptive scenario would keep all per-context winners.

#include <cstddef>
#include <map>
#include <vector>

#include "rating/window.hpp"

namespace peak::rating {

using ContextKey = std::vector<double>;

class ContextBasedRater {
public:
  explicit ContextBasedRater(WindowPolicy policy = {});

  /// Record one invocation: its context and measured time.
  void add(const ContextKey& context, double time);

  [[nodiscard]] std::size_t num_contexts() const { return buckets_.size(); }

  /// Total invocations recorded (all contexts).
  [[nodiscard]] std::size_t total_samples() const { return total_; }

  /// The most important context: the one with the largest accumulated
  /// execution time (ties broken by sample count).
  [[nodiscard]] const ContextKey& dominant_context() const;

  /// Rating of the version under the dominant context.
  [[nodiscard]] Rating rating() const;

  /// Rating under one specific context.
  [[nodiscard]] Rating rating_for(const ContextKey& context) const;

  /// All per-context ratings (for adaptive tuning / reports).
  [[nodiscard]] std::map<ContextKey, Rating> all_ratings() const;

  [[nodiscard]] bool converged() const { return rating().converged; }
  /// Exhausted: the dominant bucket hit the sample cap without converging
  /// — the consultant's cue to switch to MBR/RBR.
  [[nodiscard]] bool exhausted() const;

  void reset();

private:
  struct Bucket {
    WindowedRater rater;
    double total_time = 0.0;
  };

  WindowPolicy policy_;
  std::map<ContextKey, Bucket> buckets_;
  std::size_t total_ = 0;
};

}  // namespace peak::rating
