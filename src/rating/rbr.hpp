#pragma once

/// \file rbr.hpp
/// Re-execution-based rating (paper Section 2.4). Each invocation runs
/// both the base (current best) and the experimental version under the
/// same restored context; the per-invocation relative improvement is
/// R_{exp/base} = T_base / T_exp (Eq. 5, > 1 means the experimental
/// version is faster). EVAL and VAR are the mean and variance of R over
/// the window. The rater consumes timing pairs; the re-execution protocol
/// itself (save/precondition/restore/swap) lives in the execution backend.

#include "rating/window.hpp"

namespace peak::rating {

class ReexecutionRater {
public:
  explicit ReexecutionRater(WindowPolicy policy = {});

  /// Record one invocation's timed pair.
  void add_pair(double time_base, double time_exp);

  /// EVAL = mean relative improvement; VAR = its variance. EVAL > 1 ⇒
  /// experimental version wins.
  [[nodiscard]] Rating rating() const { return rater_.rating(); }

  [[nodiscard]] std::size_t size() const { return rater_.size(); }
  [[nodiscard]] bool converged() const { return rater_.converged(); }
  [[nodiscard]] bool exhausted() const { return rater_.exhausted(); }
  void reset() { rater_.reset(); }

private:
  WindowedRater rater_;
};

}  // namespace peak::rating
