#pragma once

/// \file baselines.hpp
/// The two reference raters of Section 5.2:
///
/// * WHL — whole-program rating: one sample is one complete application
///   run's time. The state-of-the-art baseline PEAK is compared against;
///   accurate, but every trial costs a full run, hence the extreme tuning
///   times of Figure 7(c)(d).
///
/// * AVG — context-oblivious average: the naive attempt to avoid WHL's
///   cost by averaging invocation timings regardless of context. Not
///   generally consistent — when the context mix shifts between two
///   versions' measurement windows, the comparison is unfair.

#include "rating/window.hpp"

namespace peak::rating {

/// AVG: a plain windowed mean over all invocations, context ignored.
class ContextObliviousRater {
public:
  explicit ContextObliviousRater(WindowPolicy policy = {})
      : rater_(policy) {}

  void add(double time) { rater_.add(time); }
  [[nodiscard]] Rating rating() const { return rater_.rating(); }
  [[nodiscard]] std::size_t size() const { return rater_.size(); }
  [[nodiscard]] bool converged() const { return rater_.converged(); }
  [[nodiscard]] bool exhausted() const { return rater_.exhausted(); }
  void reset() { rater_.reset(); }

private:
  WindowedRater rater_;
};

/// WHL: each sample is the summed TS time of one whole application run.
class WholeProgramRater {
public:
  explicit WholeProgramRater(WindowPolicy policy = whl_policy())
      : rater_(policy) {}

  /// Accumulate invocation time into the current run.
  void add_invocation(double time) { run_total_ += time; }

  /// The application run finished; commit it as one sample.
  void end_run() {
    rater_.add(run_total_);
    run_total_ = 0.0;
  }

  [[nodiscard]] Rating rating() const { return rater_.rating(); }
  [[nodiscard]] std::size_t runs() const { return rater_.size(); }
  [[nodiscard]] bool converged() const { return rater_.converged(); }
  /// True once the window's sample budget is spent. Counts dropped
  /// non-finite run totals too (see WindowedRater::add), so a stream of
  /// garbage timings exhausts the rater instead of looping forever.
  [[nodiscard]] bool exhausted() const { return rater_.exhausted(); }

  /// Whole-run samples are few and already heavily averaged; a small
  /// window with a looser convergence bound matches how such systems are
  /// run in practice (a handful of repetitions per configuration).
  static WindowPolicy whl_policy() {
    WindowPolicy p;
    p.min_samples = 2;
    p.max_samples = 5;
    p.cv_threshold = 0.02;
    return p;
  }

  void reset() {
    rater_.reset();
    run_total_ = 0.0;
  }

private:
  WindowedRater rater_;
  double run_total_ = 0.0;
};

}  // namespace peak::rating
