#pragma once

/// \file window.hpp
/// Windowed sample aggregation (paper Section 3): ratings are computed
/// over a window of TS invocations; measurement outliers are eliminated;
/// and because VAR shrinks as the window grows, the engine keeps
/// collecting until VAR falls below a threshold (convergence) or the
/// sample budget is exhausted (the consultant then switches to the next
/// applicable rating method).

#include <cstddef>
#include <vector>

#include "rating/rating.hpp"
#include "stats/outlier.hpp"

namespace peak::rating {

struct WindowPolicy {
  std::size_t min_samples = 10;   ///< smallest window worth evaluating
  std::size_t max_samples = 640;  ///< give up (switch methods) beyond this
  /// Convergence: coefficient of variation of the *mean* estimate,
  /// stddev/(sqrt(n)·mean), must fall below this.
  double cv_threshold = 0.005;
  /// MAD-based detection by default: at the small window sizes PEAK works
  /// with (w = 10), a perturbation spike inflates the mean and sigma it
  /// hides behind (masking); the median absolute deviation does not care.
  stats::OutlierPolicy outliers{stats::OutlierRule::kMad, 6.0, 0.25, 4};

  friend bool operator==(const WindowPolicy&,
                         const WindowPolicy&) = default;
};

class WindowedRater {
public:
  explicit WindowedRater(WindowPolicy policy = {});

  /// Insert one sample. Non-finite samples are rejected (dropped and
  /// counted, both here and on the `rating.nonfinite_dropped` obs
  /// counter); they still count toward exhaustion so a stream of garbage
  /// measurements exhausts the window instead of spinning forever.
  void add(double sample);

  /// Current (EVAL, VAR) over the outlier-filtered window. EVAL = mean,
  /// VAR = sample variance (paper Section 3, cases 1 and 3). Cached until
  /// the next add(): the driver asks for the rating (directly and via
  /// converged()) after every sample, and recomputing the MAD filter over
  /// the whole window each time dominated tuning time.
  [[nodiscard]] Rating rating() const;

  [[nodiscard]] bool converged() const { return rating().converged; }
  [[nodiscard]] bool exhausted() const {
    return samples_.size() + nonfinite_dropped_ >= policy_.max_samples;
  }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] std::size_t outliers_dropped() const;
  [[nodiscard]] std::size_t nonfinite_dropped() const {
    return nonfinite_dropped_;
  }
  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }
  void reset() {
    samples_.clear();
    sorted_.clear();
    nonfinite_dropped_ = 0;
    cache_valid_ = false;
  }

private:
  void recompute() const;

  WindowPolicy policy_;
  std::vector<double> samples_;
  std::size_t nonfinite_dropped_ = 0;
  /// Ascending mirror of samples_, maintained incrementally so the MAD
  /// outlier filter needs no per-rating copy or selection.
  std::vector<double> sorted_;
  mutable std::vector<double> kept_scratch_;
  mutable Rating cached_;
  mutable std::size_t cached_dropped_ = 0;
  mutable bool cache_valid_ = false;
};

}  // namespace peak::rating
