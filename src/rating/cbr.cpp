#include "rating/cbr.hpp"

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace peak::rating {

ContextBasedRater::ContextBasedRater(WindowPolicy policy)
    : policy_(policy) {}

void ContextBasedRater::add(const ContextKey& context, double time) {
  static obs::Counter& fills = obs::counter("cbr.bucket_fills");
  static obs::Counter& buckets_created = obs::counter("cbr.buckets");
  auto it = buckets_.find(context);
  if (it == buckets_.end()) {
    it = buckets_.emplace(context, Bucket{WindowedRater(policy_), 0.0})
             .first;
    buckets_created.inc();
  }
  fills.inc();
  it->second.rater.add(time);
  it->second.total_time += time;
  ++total_;
}

const ContextKey& ContextBasedRater::dominant_context() const {
  PEAK_CHECK(!buckets_.empty(), "no contexts recorded");
  const ContextKey* best = nullptr;
  double best_time = -1.0;
  for (const auto& [key, bucket] : buckets_) {
    if (bucket.total_time > best_time) {
      best_time = bucket.total_time;
      best = &key;
    }
  }
  return *best;
}

Rating ContextBasedRater::rating() const {
  if (buckets_.empty()) return Rating{};
  return buckets_.at(dominant_context()).rater.rating();
}

Rating ContextBasedRater::rating_for(const ContextKey& context) const {
  auto it = buckets_.find(context);
  if (it == buckets_.end()) return Rating{};
  return it->second.rater.rating();
}

std::map<ContextKey, Rating> ContextBasedRater::all_ratings() const {
  std::map<ContextKey, Rating> out;
  for (const auto& [key, bucket] : buckets_)
    out.emplace(key, bucket.rater.rating());
  return out;
}

bool ContextBasedRater::exhausted() const {
  if (buckets_.empty()) return false;
  return buckets_.at(dominant_context()).rater.exhausted();
}

void ContextBasedRater::reset() {
  buckets_.clear();
  total_ = 0;
}

}  // namespace peak::rating
