#pragma once

/// \file mbr.hpp
/// Model-based rating (paper Section 2.3). The execution time of a tuning
/// section is modelled as T_TS = Σ T_i · C_i over the components derived
/// by the component analysis (the last component is the constant one,
/// C_n = 1). During tuning the rater collects the invocation-time vector
/// Y and the component-count matrix C, then solves the linear regression
/// Y = T·C for the component-time vector T of the version under test.
///
/// EVAL is either the dominant component's T_i (when the profile shows one
/// component carrying ≥ `dominant_share` of the time) or the estimate
/// T_avg = Σ T_i · C_avg_i (Eq. 4). VAR is the ratio of the residual sum
/// of squares to the total sum of squares of the TS execution times.

#include <cstddef>
#include <optional>
#include <vector>

#include "rating/rating.hpp"
#include "stats/regression.hpp"

namespace peak::rating {

struct MbrPolicy {
  std::size_t min_samples_per_component = 8;  ///< regression needs slack
  std::size_t max_samples = 640;
  double var_threshold = 0.02;  ///< VAR = SSres/SStot reporting bound
  /// Convergence: relative standard error of EVAL (the fitted functional
  /// of T) must drop below this. Unlike VAR, this always shrinks with the
  /// window, so sections whose count variation is small (e.g. a single
  /// context, where MBR degenerates to CBR/AVG) still converge.
  double cv_threshold = 0.005;
  /// A component is "dominant" when the profile attributes at least this
  /// share of execution time to it.
  double dominant_share = 0.90;

  friend bool operator==(const MbrPolicy&, const MbrPolicy&) = default;
};

/// Profile-derived constants for one tuning section (from the training
/// run): average component counts and, when one exists, the dominant
/// component's index.
struct MbrProfile {
  std::vector<double> c_avg;  ///< average counts, constant column included
  std::optional<std::size_t> dominant_component;
};

class ModelBasedRater {
public:
  ModelBasedRater(std::size_t num_components, MbrProfile profile,
                  MbrPolicy policy = {});

  /// Record one invocation: its component-count row (length
  /// num_components, constant column last = 1) and measured time.
  void add(const std::vector<double>& counts, double time);

  [[nodiscard]] Rating rating() const;

  /// The fitted component-time vector T (empty before enough samples).
  [[nodiscard]] std::vector<double> component_times() const;

  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool converged() const { return rating().converged; }
  [[nodiscard]] bool exhausted() const {
    return times_.size() >= policy_.max_samples;
  }
  void reset();

private:
  [[nodiscard]] stats::RegressionResult fit() const;

  std::size_t num_components_;
  MbrProfile profile_;
  MbrPolicy policy_;
  std::vector<std::vector<double>> counts_;
  std::vector<double> times_;
};

}  // namespace peak::rating
