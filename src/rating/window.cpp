#include "rating/window.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "stats/descriptive.hpp"

namespace peak::rating {

const char* to_string(Method m) {
  switch (m) {
    case Method::kCBR: return "CBR";
    case Method::kMBR: return "MBR";
    case Method::kRBR: return "RBR";
    case Method::kAVG: return "AVG";
    case Method::kWHL: return "WHL";
  }
  return "?";
}

WindowedRater::WindowedRater(WindowPolicy policy)
    : policy_(policy) {}

void WindowedRater::add(double sample) {
  static obs::Counter& samples_added = obs::counter("window.samples");
  samples_added.inc();
  samples_.push_back(sample);
}

std::size_t WindowedRater::outliers_dropped() const {
  return stats::filter_outliers(samples_, policy_.outliers).dropped;
}

Rating WindowedRater::rating() const {
  Rating r;
  r.samples = samples_.size();
  if (samples_.empty()) return r;

  const stats::OutlierResult filtered =
      stats::filter_outliers(samples_, policy_.outliers);
  r.eval = stats::mean(filtered.kept);
  r.var = stats::variance(filtered.kept);

  if (filtered.kept.size() >= policy_.min_samples && r.eval != 0.0) {
    const double sem = std::sqrt(
        r.var / static_cast<double>(filtered.kept.size()));
    r.converged = sem / std::fabs(r.eval) < policy_.cv_threshold;
  }
  return r;
}

}  // namespace peak::rating
