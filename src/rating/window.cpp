#include "rating/window.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "stats/descriptive.hpp"
#include "support/check.hpp"

namespace peak::rating {

const char* to_string(Method m) {
  switch (m) {
    case Method::kCBR: return "CBR";
    case Method::kMBR: return "MBR";
    case Method::kRBR: return "RBR";
    case Method::kAVG: return "AVG";
    case Method::kWHL: return "WHL";
  }
  return "?";
}

WindowedRater::WindowedRater(WindowPolicy policy)
    : policy_(policy) {}

void WindowedRater::add(double sample) {
  // A non-finite sample (glitched timer, faulted run) must never enter
  // the window: one NaN makes mean/variance NaN forever, and an Inf
  // defeats the MAD filter's median arithmetic. Drop it — the stream
  // simply yields the next invocation — and count the drop so fault
  // sweeps can assert contamination stayed out of the ratings.
  if (!std::isfinite(sample)) {
    static obs::Counter& nonfinite_dropped =
        obs::counter("rating.nonfinite_dropped");
    nonfinite_dropped.inc();
    ++nonfinite_dropped_;
    return;
  }
  static obs::Counter& samples_added = obs::counter("window.samples");
  samples_added.inc();
  samples_.push_back(sample);
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), sample),
                 sample);
  cache_valid_ = false;
}

std::size_t WindowedRater::outliers_dropped() const {
  if (!cache_valid_) recompute();
  return cached_dropped_;
}

/// Rebuild the cached rating. For the default MAD policy the filter is
/// replicated here against the sorted mirror — same kept set and dropped
/// count as stats::filter_outliers (covered by RatingMatchesFilterOutliers
/// in tests/test_rating_window.cpp), without the three median selections
/// and two temporary vectors per call. Other rules fall back to the
/// generic filter.
void WindowedRater::recompute() const {
  Rating r;
  r.samples = samples_.size();
  cached_dropped_ = 0;
  if (samples_.empty()) {
    cached_ = r;
    cache_valid_ = true;
    return;
  }

  kept_scratch_.clear();
  const stats::OutlierPolicy& policy = policy_.outliers;
  if (policy.rule == stats::OutlierRule::kMad) {
    PEAK_CHECK(policy.k > 0.0, "outlier threshold must be positive");
    const double med = stats::median_sorted(sorted_);
    const double spread =
        samples_.size() < 3 ? 0.0 : stats::mad_sorted(sorted_);
    if (spread == 0.0) {
      kept_scratch_ = samples_;
    } else {
      const auto max_drop = static_cast<std::size_t>(
          policy.max_drop_fraction * static_cast<double>(samples_.size()));
      // Mirror of stats::mad_mask: drop in index order until the quota is
      // hit, then keep everything from the first over-quota outlier on.
      bool quota_hit = false;
      for (const double x : samples_) {
        if (!quota_hit && std::fabs(x - med) > policy.k * spread) {
          if (cached_dropped_ >= max_drop)
            quota_hit = true;
          else {
            ++cached_dropped_;
            continue;
          }
        }
        kept_scratch_.push_back(x);
      }
    }
  } else {
    const stats::OutlierResult filtered =
        stats::filter_outliers(samples_, policy);
    kept_scratch_ = filtered.kept;
    cached_dropped_ = filtered.dropped;
  }

  r.eval = stats::mean(kept_scratch_);
  r.var = stats::variance(kept_scratch_);
  if (kept_scratch_.size() >= policy_.min_samples && r.eval != 0.0) {
    const double sem = std::sqrt(
        r.var / static_cast<double>(kept_scratch_.size()));
    r.converged = sem / std::fabs(r.eval) < policy_.cv_threshold;
  }
  cached_ = r;
  cache_valid_ = true;
}

Rating WindowedRater::rating() const {
  if (!cache_valid_) recompute();
  return cached_;
}

}  // namespace peak::rating
