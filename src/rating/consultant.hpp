#pragma once

/// \file consultant.hpp
/// The Rating Approach Consultant (paper Sections 3 and 4.2). From the
/// static analyses and a profile run it decides which rating methods apply
/// to a tuning section and orders them by overhead: CBR < MBR < RBR. The
/// tuning system starts with the cheapest applicable method and switches
/// down the chain when a method fails to converge within its sample
/// budget.

#include <cstddef>
#include <string>
#include <vector>

#include "rating/rating.hpp"

namespace peak::rating {

/// Facts the consultant consumes (static analysis + profile run).
struct ConsultantInputs {
  // CBR prerequisites.
  bool cbr_context_scalars_only = false;  ///< Figure 1 analysis verdict
  std::size_t num_contexts = 0;           ///< from the profile run
  std::size_t invocations = 0;            ///< TS invocations per program run
  // MBR prerequisites.
  bool mbr_model_built = false;  ///< component analysis succeeded
  std::size_t num_components = 0;
  // RBR prerequisites.
  bool rbr_no_side_effects = true;  ///< side-effect screen verdict

  // Policy knobs.
  std::size_t max_contexts = 32;  ///< beyond this CBR wastes invocations
  std::size_t min_invocations_per_context = 10;  ///< "10s of times"
  std::size_t max_components = 8;

  // --- overhead estimation (optional; from the profile run) ---------------
  /// Average cycles of one TS invocation. 0 disables cost-based ordering
  /// (the static CBR < MBR < RBR order is used instead).
  double avg_invocation_cycles = 0.0;
  /// Cycles to save or restore the RBR checkpoint once.
  double checkpoint_cycles = 0.0;
  /// Per-invocation cost of the MBR counters.
  double counter_cycles = 0.0;
  /// Window size assumed when estimating a single version's rating cost.
  std::size_t window = 40;
  std::size_t mbr_samples_per_component = 8;
};

/// Estimated tuning cost (simulated cycles) of rating ONE experimental
/// version with each method, from profile facts:
///  * CBR measures `window` invocations of the dominant context, but the
///    stream delivers all contexts — the horizon scales with the count;
///  * MBR needs enough samples for the regression plus counter overhead;
///  * RBR pays, per measurement pair, the precondition run, the second
///    version, and two checkpoint restores plus one save.
struct OverheadEstimate {
  Method method = Method::kWHL;
  double cycles_per_rating = 0.0;
};

std::vector<OverheadEstimate> estimate_overheads(const ConsultantInputs& in);

struct MethodDecision {
  /// Applicable methods, cheapest first — the fallback chain.
  std::vector<Method> chain;
  std::string rationale;

  [[nodiscard]] Method initial() const {
    return chain.empty() ? Method::kWHL : chain.front();
  }
  [[nodiscard]] bool applicable(Method m) const;
};

/// Decide the method chain for one tuning section.
MethodDecision decide_rating_methods(const ConsultantInputs& in);

}  // namespace peak::rating
