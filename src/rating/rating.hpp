#pragma once

/// \file rating.hpp
/// Common vocabulary of the rating subsystem. A *rating* is the (EVAL,
/// VAR) pair of Section 3: EVAL estimates the speed of one code version,
/// VAR its measurement uncertainty over the current window. EVAL's
/// units differ per method — CBR/MBR/AVG/WHL produce a time (lower is
/// better), RBR produces a relative improvement ratio over the base
/// version (higher is better) — score_time() normalizes to a time-like
/// scalar so the tuning driver can compare uniformly.

#include <cstddef>
#include <string>

namespace peak::rating {

enum class Method { kCBR, kMBR, kRBR, kAVG, kWHL };

const char* to_string(Method m);

struct Rating {
  double eval = 0.0;
  double var = 0.0;
  std::size_t samples = 0;
  bool converged = false;

  /// Time-like score: lower = faster version.
  [[nodiscard]] double score_time(Method m) const {
    return m == Method::kRBR ? (eval > 0.0 ? 1.0 / eval : 1e300) : eval;
  }
};

}  // namespace peak::rating
