#include "rating/mbr.hpp"

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace peak::rating {

ModelBasedRater::ModelBasedRater(std::size_t num_components,
                                 MbrProfile profile, MbrPolicy policy)
    : num_components_(num_components),
      profile_(std::move(profile)),
      policy_(policy) {
  PEAK_CHECK(num_components_ >= 1, "model needs at least one component");
  PEAK_CHECK(profile_.c_avg.empty() ||
                 profile_.c_avg.size() == num_components_,
             "C_avg arity must match the component count");
  if (profile_.dominant_component)
    PEAK_CHECK(*profile_.dominant_component < num_components_,
               "dominant component out of range");
}

void ModelBasedRater::add(const std::vector<double>& counts, double time) {
  static obs::Counter& samples = obs::counter("mbr.samples");
  PEAK_CHECK(counts.size() == num_components_,
             "count row arity mismatch");
  samples.inc();
  counts_.push_back(counts);
  times_.push_back(time);
}

stats::RegressionResult ModelBasedRater::fit() const {
  static obs::Counter& fits = obs::counter("mbr.fits");
  fits.inc();
  stats::Matrix design(times_.size(), num_components_);
  for (std::size_t r = 0; r < counts_.size(); ++r)
    for (std::size_t c = 0; c < num_components_; ++c)
      design(r, c) = counts_[r][c];
  return stats::least_squares_nonneg(design, times_);
}

std::vector<double> ModelBasedRater::component_times() const {
  if (times_.size() < num_components_ + 1) return {};
  return fit().coefficients;
}

Rating ModelBasedRater::rating() const {
  Rating r;
  r.samples = times_.size();
  const std::size_t needed =
      policy_.min_samples_per_component * num_components_;
  if (times_.size() < std::max<std::size_t>(needed, num_components_ + 1))
    return r;

  const stats::RegressionResult fit_result = fit();
  if (!fit_result.ok) return r;

  // EVAL is a linear functional cᵀT of the fitted component times.
  std::vector<double> weights(num_components_, 0.0);
  if (profile_.dominant_component) {
    weights[*profile_.dominant_component] = 1.0;
  } else if (!profile_.c_avg.empty()) {
    weights = profile_.c_avg;  // T_avg = Σ T_i · C_avg_i (Eq. 4)
  } else {
    // No profile at all: mean observed count row.
    for (const auto& row : counts_)
      for (std::size_t i = 0; i < num_components_; ++i)
        weights[i] += row[i] / static_cast<double>(counts_.size());
  }
  double eval = 0.0;
  for (std::size_t i = 0; i < num_components_; ++i)
    eval += fit_result.coefficients[i] * weights[i];
  r.eval = eval;
  r.var = fit_result.var_ratio();

  // Convergence by the standard error of EVAL.
  stats::Matrix design(times_.size(), num_components_);
  for (std::size_t row = 0; row < counts_.size(); ++row)
    for (std::size_t c = 0; c < num_components_; ++c)
      design(row, c) = counts_[row][c];
  const double se =
      stats::functional_std_error(design, fit_result, weights);
  r.converged =
      se >= 0.0 && eval > 0.0 && se / eval < policy_.cv_threshold;
  return r;
}

void ModelBasedRater::reset() {
  counts_.clear();
  times_.clear();
}

}  // namespace peak::rating
