#include "rating/consultant.hpp"

#include <algorithm>
#include <sstream>

namespace peak::rating {

bool MethodDecision::applicable(Method m) const {
  return std::find(chain.begin(), chain.end(), m) != chain.end();
}

MethodDecision decide_rating_methods(const ConsultantInputs& in) {
  MethodDecision decision;
  std::ostringstream why;

  // --- CBR: scalar contexts only, few contexts, enough repetitions -------
  bool cbr = in.cbr_context_scalars_only;
  if (!cbr) {
    why << "CBR out (non-scalar context variables); ";
  } else if (in.num_contexts == 0) {
    cbr = false;
    why << "CBR out (no contexts profiled); ";
  } else if (in.num_contexts > in.max_contexts) {
    cbr = false;
    why << "CBR out (" << in.num_contexts << " contexts, max "
        << in.max_contexts << "); ";
  } else if (in.invocations <
             in.num_contexts * in.min_invocations_per_context) {
    cbr = false;
    why << "CBR out (too few invocations per context); ";
  } else {
    why << "CBR in (" << in.num_contexts << " scalar contexts); ";
  }

  // --- MBR: component model small enough ---------------------------------
  bool mbr = in.mbr_model_built;
  if (!mbr) {
    why << "MBR out (no component model); ";
  } else if (in.num_components > in.max_components) {
    mbr = false;
    why << "MBR out (" << in.num_components << " components, max "
        << in.max_components << "); ";
  } else {
    why << "MBR in (" << in.num_components << " components); ";
  }

  // --- RBR: no irreversible side effects ---------------------------------
  const bool rbr = in.rbr_no_side_effects;
  why << (rbr ? "RBR in" : "RBR out (side-effecting calls)");

  if (cbr) decision.chain.push_back(Method::kCBR);
  if (mbr) decision.chain.push_back(Method::kMBR);
  if (rbr) decision.chain.push_back(Method::kRBR);

  // With profile timings available, demote a method when a later one is
  // *decisively* cheaper ("the applicable rating approach with the least
  // overhead estimated from the profile"). The static CBR < MBR < RBR
  // order also encodes accuracy (CBR exact, MBR modelled, RBR overheady),
  // so small cost differences never override it.
  if (in.avg_invocation_cycles > 0.0 && decision.chain.size() > 1) {
    constexpr double kDominance = 4.0;
    const std::vector<OverheadEstimate> costs = estimate_overheads(in);
    auto cost_of = [&](Method m) {
      for (const OverheadEstimate& e : costs)
        if (e.method == m) return e.cycles_per_rating;
      return 1e300;
    };
    bool reordered = false;
    for (std::size_t pass = 0; pass + 1 < decision.chain.size(); ++pass) {
      for (std::size_t i = 0; i + 1 < decision.chain.size(); ++i) {
        if (cost_of(decision.chain[i + 1]) * kDominance <
            cost_of(decision.chain[i])) {
          std::swap(decision.chain[i], decision.chain[i + 1]);
          reordered = true;
        }
      }
    }
    if (reordered) why << "; reordered by estimated overhead";
  }
  decision.rationale = why.str();
  return decision;
}

std::vector<OverheadEstimate> estimate_overheads(const ConsultantInputs& in) {
  std::vector<OverheadEstimate> out;
  const double inv = in.avg_invocation_cycles;
  const auto w = static_cast<double>(in.window);

  // CBR: w samples of the dominant context; the invocation stream also
  // carries the other contexts, so the measurement horizon stretches by
  // the context count. The invocations would run anyway (the experimental
  // version executes in production), so only the horizon counts.
  out.push_back({Method::kCBR,
                 w * static_cast<double>(std::max<std::size_t>(
                         in.num_contexts, 1)) *
                     inv});

  // MBR: enough rows for the regression — never fewer than a full window
  // (the coefficient standard error needs the same statistics a windowed
  // mean does) — each paying counter overhead on top of the production
  // run.
  const double mbr_samples = std::max(
      static_cast<double>(in.mbr_samples_per_component) *
          static_cast<double>(std::max<std::size_t>(in.num_components, 1)),
      w);
  out.push_back({Method::kMBR, mbr_samples * (inv + in.counter_cycles)});

  // RBR: per pair — precondition + both timed runs + one save and two
  // restores; w pairs per rating.
  out.push_back(
      {Method::kRBR, w * (3.0 * inv + 3.0 * in.checkpoint_cycles)});
  return out;
}

}  // namespace peak::rating
