/// \file equake.cpp
/// EQUAKE.smvp — sparse matrix-vector product over the earthquake mesh in
/// CSR-like form. The inner loop bound comes from the row-pointer array:
/// control flow reads array contents, which would rule CBR out — except
/// that the mesh structure never changes between invocations, so the
/// run-time-constant check prunes those array-content context variables
/// and CBR applies with a single context (Table 1: smvp → CBR, one
/// context). The irregular memory behaviour makes it the noisiest FP
/// section (σ·100 = 2.7 at w=10).

#include "workloads/equake.hpp"

#include <memory>

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxNodes = 512;
constexpr std::size_t kMaxNnz = kMaxNodes * 8;
}

std::string EquakeSmvp::benchmark() const { return "EQUAKE"; }
std::string EquakeSmvp::ts_name() const { return "smvp"; }
rating::Method EquakeSmvp::paper_method() const {
  return rating::Method::kCBR;
}
std::uint64_t EquakeSmvp::paper_invocations() const { return 2709; }

ir::Function EquakeSmvp::build() const {
  ir::FunctionBuilder b("smvp");
  const auto nodes = b.param_scalar("nodes");
  const auto aindex = b.param_array("Aindex", kMaxNodes + 1);
  const auto acol = b.param_array("Acol", kMaxNnz);
  const auto aval = b.param_array("Aval", kMaxNnz, true);
  const auto v = b.param_array("v", kMaxNodes, true);
  const auto w = b.param_array("w", kMaxNodes, true);

  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  const auto sum = b.scalar("sum", true);
  const auto col = b.scalar("col");

  b.for_loop(i, b.c(0.0), b.v(nodes), [&] {
    b.assign(sum, b.c(0.0));
    // for (j = Aindex[i]; j < Aindex[i+1]; ++j)
    b.assign(j, b.at(aindex, b.v(i)));
    b.while_loop(b.lt(b.v(j), b.at(aindex, b.add(b.v(i), b.c(1.0)))), [&] {
      b.assign(col, b.at(acol, b.v(j)));
      b.assign(sum, b.add(b.v(sum),
                          b.mul(b.at(aval, b.v(j)), b.at(v, b.v(col)))));
      // Symmetric update of the transposed entry.
      b.store(w, b.v(col),
              b.add(b.at(w, b.v(col)),
                    b.mul(b.at(aval, b.v(j)), b.at(v, b.v(i)))));
      b.assign(j, b.add(b.v(j), b.c(1.0)));
    });
    b.store(w, b.v(i), b.add(b.at(w, b.v(i)), b.v(sum)));
  });
  return b.build();
}

void EquakeSmvp::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 10.5;  // sparse, irregular memory: paper's noisiest FP TS
  t.memory_intensity = 0.55;
  t.loop_regularity = 0.5;
}

double EquakeSmvp::ts_time_fraction() const {
  return 0.6;  // smvp dominates the quake time stepping
}

Trace EquakeSmvp::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const std::size_t nodes = ref ? 400 : 200;
  const std::size_t invocations = ref ? 3855 : 2709;

  // The mesh structure is built once per run — this is what makes the
  // Aindex/Acol context variables run-time constants.
  const auto struct_seed =
      support::hash_combine(seed, support::stable_hash("equake-mesh"));
  auto aindex = std::make_shared<std::vector<double>>();
  auto acol = std::make_shared<std::vector<double>>();
  {
    support::Rng rng(struct_seed);
    aindex->reserve(nodes + 1);
    aindex->push_back(0.0);
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto row = rng.uniform_int(2, 7);
      for (std::int64_t e = 0; e < row; ++e)
        acol->push_back(static_cast<double>(
            rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1)));
      aindex->push_back(aindex->back() + static_cast<double>(row));
    }
  }

  const ir::Function& fn = function();
  for (std::size_t k = 0; k < invocations; ++k) {
    sim::Invocation inv;
    inv.id = k + 1;
    inv.context = {static_cast<double>(nodes)};
    inv.context_determines_time = true;
    const auto vec_seed = support::hash_combine(struct_seed, k + 1);
    inv.bind = [&fn, nodes, aindex, acol, vec_seed](ir::Memory& mem) {
      mem.scalar(*fn.find_var("nodes")) = static_cast<double>(nodes);
      auto& ai = mem.array(*fn.find_var("Aindex"));
      std::copy(aindex->begin(), aindex->end(), ai.begin());
      auto& ac = mem.array(*fn.find_var("Acol"));
      std::copy(acol->begin(), acol->end(), ac.begin());
      support::Rng rng(vec_seed);
      for (double& x : mem.array(*fn.find_var("Aval")))
        x = rng.uniform(0.1, 2.0);
      for (double& x : mem.array(*fn.find_var("v")))
        x = rng.uniform(-1.0, 1.0);
      for (double& x : mem.array(*fn.find_var("w"))) x = 0.0;
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
