/// \file swim.cpp
/// SWIM.calc3 — the time-smoothing update of the shallow-water model.
/// Perfectly regular double loop over the grid; control flow depends only
/// on the grid dimensions (n, m), which are fixed for a run: exactly one
/// context, the cleanest CBR case in Table 1 (σ·100 = 0.33 at w=10).

#include "workloads/swim.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxGrid = 64 * 64;
}

std::string SwimCalc3::benchmark() const { return "SWIM"; }
std::string SwimCalc3::ts_name() const { return "calc3"; }
rating::Method SwimCalc3::paper_method() const {
  return rating::Method::kCBR;
}
std::uint64_t SwimCalc3::paper_invocations() const { return 198; }

ir::Function SwimCalc3::build() const {
  ir::FunctionBuilder b("calc3");
  const auto n = b.param_scalar("n");
  const auto m = b.param_scalar("m");
  const auto alpha = b.param_scalar("alpha", true);
  const auto u = b.param_array("u", kMaxGrid, true);
  const auto uold = b.param_array("uold", kMaxGrid, true);
  const auto unew = b.param_array("unew", kMaxGrid, true);
  const auto v = b.param_array("v", kMaxGrid, true);
  const auto vold = b.param_array("vold", kMaxGrid, true);
  const auto vnew = b.param_array("vnew", kMaxGrid, true);
  const auto p = b.param_array("p", kMaxGrid, true);
  const auto pold = b.param_array("pold", kMaxGrid, true);
  const auto pnew = b.param_array("pnew", kMaxGrid, true);

  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  const auto idx = b.scalar("idx");

  // UOLD = U + ALPHA*(UNEW - 2*U + UOLD); U = UNEW  (same for V, P).
  auto smooth = [&](ir::VarId cur, ir::VarId old, ir::VarId next) {
    const auto c = b.at(cur, b.v(idx));
    const auto o = b.at(old, b.v(idx));
    const auto nw = b.at(next, b.v(idx));
    b.store(old, b.v(idx),
            b.add(c, b.mul(b.v(alpha),
                           b.add(b.sub(nw, b.mul(b.c(2.0), c)), o))));
    b.store(cur, b.v(idx), nw);
  };

  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.for_loop(j, b.c(0.0), b.v(m), [&] {
      b.assign(idx, b.add(b.mul(b.v(i), b.v(m)), b.v(j)));
      smooth(u, uold, unew);
      smooth(v, vold, vnew);
      smooth(p, pold, pnew);
    });
  });
  return b.build();
}

void SwimCalc3::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 1.2;  // large regular FP section: quiet timings
  t.reg_pressure = 14.0;
}

double SwimCalc3::ts_time_fraction() const {
  return 0.3;  // calc3 dominates ~30% of SWIM runtime
}

Trace SwimCalc3::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const double n = ref ? 64 : 32;
  const double m = ref ? 64 : 32;
  const std::size_t invocations = ref ? 400 : 198;

  const ir::Function& fn = function();
  auto data_seed = support::hash_combine(seed, support::stable_hash("swim"));
  for (std::size_t k = 0; k < invocations; ++k) {
    sim::Invocation inv;
    inv.id = k + 1;
    inv.context = {n, m};
    inv.context_determines_time = true;
    inv.bind = [&fn, n, m, data_seed](ir::Memory& mem) {
      mem.scalar(*fn.find_var("n")) = n;
      mem.scalar(*fn.find_var("m")) = m;
      mem.scalar(*fn.find_var("alpha")) = 0.001;
      support::Rng rng(data_seed);
      for (const char* name :
           {"u", "uold", "unew", "v", "vold", "vnew", "p", "pold", "pnew"})
        for (double& x : mem.array(*fn.find_var(name)))
          x = rng.uniform(-1.0, 1.0);
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
