#pragma once

/// \file native.hpp
/// Native C++ reference implementations of selected tuning-section
/// kernels. They serve two purposes: (1) the test suite cross-validates
/// the IR models and the interpreter against them — the same inputs must
/// produce the same outputs; (2) examples can tune them with *real*
/// wall-clock timings, demonstrating that the rating layer is independent
/// of the simulator.

#include <cstddef>
#include <vector>

namespace peak::workloads::native {

/// SWIM.calc3: time smoothing over three fields.
/// For each of (u, v, p): old = cur + alpha*(new - 2*cur + old); cur = new.
void calc3(std::size_t n, std::size_t m, double alpha,
           std::vector<double>& u, std::vector<double>& uold,
           const std::vector<double>& unew, std::vector<double>& v,
           std::vector<double>& vold, const std::vector<double>& vnew,
           std::vector<double>& p, std::vector<double>& pold,
           const std::vector<double>& pnew);

/// EQUAKE.smvp: CSR-ish sparse matrix-vector product with the symmetric
/// transpose update, exactly as the IR model performs it.
void smvp(std::size_t nodes, const std::vector<double>& aindex,
          const std::vector<double>& acol, const std::vector<double>& aval,
          const std::vector<double>& v, std::vector<double>& w);

/// ART.match: F1 activation, F2 activation, winner-take-all (the winner's
/// activation is reset to 0). Returns the winner index.
std::size_t art_match(std::size_t numf1s, std::size_t numf2s,
                      const std::vector<double>& input,
                      const std::vector<double>& bus,
                      std::vector<double>& f1, std::vector<double>& y);

/// BZIP2.fullGtU: compare the suffixes starting at i1 and i2 (wrapping at
/// nblock); returns 1.0 when the first is greater, 0.0 otherwise —
/// matching the IR model's `result` output.
double full_gt_u(std::size_t i1, std::size_t i2, std::size_t nblock,
                 const std::vector<double>& block);

/// MGRID.resid: interior 7-point stencil r = v - A·u on an n³ grid, plus
/// the every-other-sweep normalization pass.
void resid(std::size_t n, std::size_t sweep, const std::vector<double>& u,
           const std::vector<double>& v, std::vector<double>& r);

/// GZIP.longest_match: follow the hash chain, fast-reject on the byte at
/// best_len, full compare with early exit. Returns the best match length.
double longest_match(std::size_t cur_match, std::size_t strstart,
                     std::size_t chain_length, std::size_t max_len,
                     const std::vector<double>& window,
                     const std::vector<double>& prev);

/// CRAFTY.Attacked: slide along the 8 rays from `square`, stop at the
/// first occupied cell; attacked when it holds an enemy slider.
double attacked(std::size_t square, double side,
                const std::vector<double>& board,
                const std::vector<double>& dir_step,
                const std::vector<double>& ray_len);

/// MCF.primal_bea_mpp: scan arcs, collect negative-reduced-cost
/// candidates into the basket. Returns the basket size.
double primal_bea_mpp(std::size_t num_arcs,
                      const std::vector<double>& cost,
                      const std::vector<double>& tail,
                      const std::vector<double>& head,
                      const std::vector<double>& ident,
                      const std::vector<double>& potential,
                      std::vector<double>& basket);

/// TWOLF.new_dbox_a: per-terminal bounding-box half-perimeter sum.
double new_dbox_a(std::size_t num_terms,
                  const std::vector<double>& pins_per_net,
                  const std::vector<double>& xs,
                  const std::vector<double>& ys);

/// VORTEX.ChkGetChunk: walk the chunk chain validating status and type.
/// Returns 1.0 (OK) or 0.0.
double chk_get_chunk(std::size_t handle, double expected_type,
                     const std::vector<double>& chunks);

/// MESA.sample_1d_linear: wrap/clamp the two texel indices, lerp into the
/// four RGBA channels (plus the degenerate-weight shortcut channels).
void sample_1d_linear(double s, double size, double wrap,
                      const std::vector<double>& image,
                      std::vector<double>& rgba);

/// APPLU.blts: forward block-lower-triangular sweep updating v in place.
void blts(std::size_t nx, std::size_t ny, std::size_t nz, double omega,
          std::vector<double>& v, const std::vector<double>& ldz,
          const std::vector<double>& ldy, const std::vector<double>& ldx);

/// APSI.radb4: radix-4 butterfly cc -> ch with twiddle scaling.
void radb4(std::size_t ido, std::size_t l1, const std::vector<double>& cc,
           std::vector<double>& ch, const std::vector<double>& wa);

/// WUPWISE.zgemm: complex matmul over interleaved re/im arrays.
void zgemm(std::size_t m, std::size_t n, std::size_t k,
           const std::vector<double>& a, const std::vector<double>& b,
           std::vector<double>& c);

}  // namespace peak::workloads::native
