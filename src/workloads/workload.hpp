#pragma once

/// \file workload.hpp
/// Workloads: open re-implementations of the SPEC CPU 2000 tuning sections
/// of the paper's Table 1. SPEC sources are proprietary, so each workload
/// provides (a) an IR model with the same control structure, operation mix
/// and context behaviour as the original kernel, and (b) a trace generator
/// producing the per-invocation contexts and memory contents of a train or
/// ref dataset (invocation counts are scaled down from the paper's
/// millions; the documented originals are kept for reporting).
///
/// The paper's method assignments (Table 1, column 3) are *not* hard-coded
/// anywhere in the pipeline: they fall out of running the Figure 1 context
/// analysis, the run-time-constant check and the component analysis on
/// these IR models — the tests assert that the derived assignment matches
/// `paper_method()` for every workload.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "rating/rating.hpp"
#include "sim/exec_backend.hpp"
#include "sim/flag_effects.hpp"

namespace peak::workloads {

enum class DataSet { kTrain, kRef };

const char* to_string(DataSet ds);

struct Trace {
  std::vector<sim::Invocation> invocations;
  /// Dataset size knob consumed by the flag-effect model (train < ref).
  double workload_scale = 1.0;
};

class Workload {
public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string benchmark() const = 0;  ///< "SWIM"
  [[nodiscard]] virtual std::string ts_name() const = 0;    ///< "calc3"

  /// IR model of the tuning section (built once, owned by the workload).
  [[nodiscard]] virtual const ir::Function& function() const = 0;

  /// Behavioural traits consumed by the flag-effect model.
  [[nodiscard]] virtual sim::TsTraits traits() const = 0;

  /// Generate the invocation sequence of one application run.
  [[nodiscard]] virtual Trace trace(DataSet ds,
                                    std::uint64_t seed) const = 0;

  /// The rating approach the paper's Table 1 reports for this section.
  [[nodiscard]] virtual rating::Method paper_method() const = 0;

  /// Invocation count from Table 1 (documentation; traces are scaled).
  [[nodiscard]] virtual std::uint64_t paper_invocations() const = 0;

  /// Share of whole-program execution time spent in this tuning section
  /// (from the SPEC execution profiles used by the TS Selector). A
  /// whole-program trial — the WHL baseline — pays 1/fraction times the
  /// section's cost; invocation-level rating methods do not.
  [[nodiscard]] virtual double ts_time_fraction() const { return 0.5; }

  [[nodiscard]] std::string full_name() const {
    return benchmark() + "." + ts_name();
  }
};

/// Shared implementation: lazy function construction + derived traits.
class WorkloadBase : public Workload {
public:
  [[nodiscard]] const ir::Function& function() const final;

  [[nodiscard]] sim::TsTraits traits() const override;

protected:
  /// Build the IR model (called once).
  [[nodiscard]] virtual ir::Function build() const = 0;

  /// Hook for workload-specific trait overrides (noise scale, pressure).
  virtual void adjust_traits(sim::TsTraits& t) const { (void)t; }

private:
  mutable std::unique_ptr<ir::Function> fn_;
};

/// All 14 Table-1 workloads, table order (integer codes first).
std::vector<std::unique_ptr<Workload>> all_workloads();

/// Lookup by benchmark name ("SWIM", case-sensitive). Null if unknown.
std::unique_ptr<Workload> make_workload(std::string_view benchmark);

/// The four benchmarks of the performance experiments (Figure 7).
std::vector<std::string> figure7_benchmarks();

}  // namespace peak::workloads
