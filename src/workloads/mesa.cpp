/// \file mesa.cpp
/// MESA.sample_1d_linear — the software rasterizer's 1-D linear texture
/// sampler: map the texture coordinate to texel space, wrap or clamp the
/// two neighbouring indices (branches), and interpolate. The texture
/// image is a run-time constant, but the coordinate s is a continuous
/// scalar context taking essentially unique values per invocation — too
/// many contexts for CBR, so the consultant selects RBR (Table 1:
/// sample_1d_linear → RBR, 193M invocations — the paper's most-invoked,
/// smallest section).

#include "workloads/integer_kernels.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kTexSize = 256;
}

std::string MesaSample1d::benchmark() const { return "MESA"; }
std::string MesaSample1d::ts_name() const { return "sample_1d_linear"; }
rating::Method MesaSample1d::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t MesaSample1d::paper_invocations() const {
  return 193'000'000;
}

ir::Function MesaSample1d::build() const {
  ir::FunctionBuilder b("sample_1d_linear");
  const auto s = b.param_scalar("s", true);
  const auto size = b.param_scalar("size");
  const auto wrap = b.param_scalar("wrap");  // 1 = repeat, 0 = clamp
  const auto image = b.param_array("image", kTexSize, true);
  const auto rgba = b.param_array("rgba", 4, true);

  const auto u = b.scalar("u", true);
  const auto i0 = b.scalar("i0");
  const auto i1 = b.scalar("i1");
  const auto frac = b.scalar("frac", true);

  b.assign(u, b.sub(b.mul(b.v(s), b.v(size)), b.c(0.5)));
  b.assign(i0, b.floor(b.v(u)));
  b.assign(frac, b.sub(b.v(u), b.v(i0)));
  b.assign(i1, b.add(b.v(i0), b.c(1.0)));

  b.if_else(
      b.eq(b.v(wrap), b.c(1.0)),
      [&] {  // GL_REPEAT
        b.assign(i0, b.mod(b.add(b.v(i0), b.v(size)), b.v(size)));
        b.assign(i1, b.mod(b.add(b.v(i1), b.v(size)), b.v(size)));
      },
      [&] {  // GL_CLAMP_TO_EDGE
        b.if_then(b.lt(b.v(i0), b.c(0.0)), [&] { b.assign(i0, b.c(0.0)); });
        b.if_then(b.ge(b.v(i1), b.v(size)),
                  [&] { b.assign(i1, b.sub(b.v(size), b.c(1.0))); });
        b.if_then(b.lt(b.v(i1), b.c(0.0)), [&] { b.assign(i1, b.c(0.0)); });
        b.if_then(b.ge(b.v(i0), b.v(size)),
                  [&] { b.assign(i0, b.sub(b.v(size), b.c(1.0))); });
      });

  // Lerp the two texels into all four output channels (RGBA), as the
  // original sampler does — the section stays tiny but not so tiny that
  // timer granularity dominates its measurements.
  const auto ch = b.scalar("ch");
  b.for_loop(ch, b.c(0.0), b.c(4.0), [&] {
    b.store(rgba, b.v(ch),
            b.add(b.mul(b.sub(b.c(1.0), b.v(frac)), b.at(image, b.v(i0))),
                  b.mul(b.v(frac), b.at(image, b.v(i1)))));
  });

  // Degenerate-weight shortcuts (as in the original sampler's fast paths):
  // yet more independent data-dependent branches — together they push the
  // component model past the MBR limit, so the consultant lands on RBR.
  b.if_then(b.lt(b.v(frac), b.c(0.02)),
            [&] { b.store(rgba, b.c(1.0), b.at(image, b.v(i0))); });
  b.if_then(b.gt(b.v(frac), b.c(0.98)),
            [&] { b.store(rgba, b.c(2.0), b.at(image, b.v(i1))); });
  return b.build();
}

void MesaSample1d::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 4.6;  // σ·100 = 1.3 at w=10
  t.reg_pressure = 6.0;
  t.loop_regularity = 0.3;
}

Trace MesaSample1d::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const std::size_t invocations = ref ? 5600 : 4000;
  const double size = ref ? 256 : 128;

  const ir::Function& fn = function();
  const ir::VarId v_s = *fn.find_var("s");
  const ir::VarId v_size = *fn.find_var("size");
  const ir::VarId v_wrap = *fn.find_var("wrap");
  const ir::VarId v_image = *fn.find_var("image");

  // The texture is bound once per scene: a run-time constant.
  const auto tex_seed =
      support::hash_combine(seed, support::stable_hash("mesa-texture"));

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("mesa"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    support::Rng pick(inv_seed);
    const double coord = pick.uniform(-0.25, 1.25);  // exercises clamping
    const double wrap = pick.bernoulli(0.5) ? 1.0 : 0.0;
    inv.context = {coord, size, wrap};
    inv.context_determines_time = false;  // unique coords: no cache value
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.1);
    inv.bind = [v_s, v_size, v_wrap, v_image, coord, size, wrap,
                tex_seed](ir::Memory& mem) {
      mem.scalar(v_s) = coord;
      mem.scalar(v_size) = size;
      mem.scalar(v_wrap) = wrap;
      support::Rng rng(tex_seed);
      for (double& texel : mem.array(v_image))
        texel = rng.uniform(0.0, 1.0);
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
