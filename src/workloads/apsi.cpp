/// \file apsi.cpp
/// APSI.radb4 — the radix-4 inverse FFT butterfly from FFTPACK. Invoked
/// with three (ido, l1) shapes during each transform, giving exactly the
/// three contexts of Table 1. The contexts differ strongly in work per
/// invocation, so their rating errors differ too (the paper reports
/// σ·100 of 2.2 / 0.7 / 0.5 at w=10): the smallest context is dominated
/// by additive timer noise.

#include "workloads/apsi.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxCc = 4096;
}

std::string ApsiRadb4::benchmark() const { return "APSI"; }
std::string ApsiRadb4::ts_name() const { return "radb4"; }
rating::Method ApsiRadb4::paper_method() const {
  return rating::Method::kCBR;
}
std::uint64_t ApsiRadb4::paper_invocations() const { return 1'370'000; }

ir::Function ApsiRadb4::build() const {
  ir::FunctionBuilder b("radb4");
  const auto ido = b.param_scalar("ido");
  const auto l1 = b.param_scalar("l1");
  const auto cc = b.param_array("cc", kMaxCc, true);
  const auto ch = b.param_array("ch", kMaxCc, true);
  const auto wa = b.param_array("wa", 512, true);

  const auto k = b.scalar("k");
  const auto i = b.scalar("i");
  const auto base = b.scalar("base");
  const auto t1 = b.scalar("t1", true);
  const auto t2 = b.scalar("t2", true);
  const auto t3 = b.scalar("t3", true);
  const auto t4 = b.scalar("t4", true);

  const auto four_ido = b.mul(b.c(4.0), b.v(ido));

  b.for_loop(k, b.c(0.0), b.v(l1), [&] {
    b.assign(base, b.mul(b.v(k), four_ido));
    b.for_loop(i, b.c(0.0), b.v(ido), [&] {
      const auto p0 = b.add(b.v(base), b.v(i));
      const auto p1 = b.add(p0, b.v(ido));
      const auto p2 = b.add(p1, b.v(ido));
      const auto p3 = b.add(p2, b.v(ido));
      // Radix-4 butterfly with twiddle scaling.
      b.assign(t1, b.add(b.at(cc, p0), b.at(cc, p2)));
      b.assign(t2, b.sub(b.at(cc, p0), b.at(cc, p2)));
      b.assign(t3, b.add(b.at(cc, p1), b.at(cc, p3)));
      b.assign(t4, b.sub(b.at(cc, p1), b.at(cc, p3)));
      b.store(ch, p0, b.add(b.v(t1), b.v(t3)));
      b.store(ch, p1,
              b.mul(b.at(wa, b.v(i)), b.sub(b.v(t2), b.v(t4))));
      b.store(ch, p2,
              b.mul(b.at(wa, b.v(i)), b.sub(b.v(t1), b.v(t3))));
      b.store(ch, p3,
              b.mul(b.at(wa, b.v(i)), b.add(b.v(t2), b.v(t4))));
    });
  });
  return b.build();
}

void ApsiRadb4::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 2.0;
  t.reg_pressure = 14.0;
}

Trace ApsiRadb4::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  // Three call shapes per transform: (ido, l1), smallest first — matching
  // the three Table 1 context rows (and their noise ordering).
  const std::vector<std::pair<double, double>> shapes = {
      {1, 6}, {4, 32}, {16, 32}};
  const std::size_t invocations = ref ? 4200 : 3000;

  const ir::Function& fn = function();
  const auto data_seed =
      support::hash_combine(seed, support::stable_hash("apsi"));
  for (std::size_t it = 0; it < invocations; ++it) {
    const auto [ido, l1] = shapes[it % shapes.size()];
    sim::Invocation inv;
    inv.id = it + 1;
    inv.context = {ido, l1};
    inv.context_determines_time = true;
    inv.bind = [&fn, ido, l1, data_seed](ir::Memory& mem) {
      mem.scalar(*fn.find_var("ido")) = ido;
      mem.scalar(*fn.find_var("l1")) = l1;
      support::Rng rng(data_seed);
      for (const char* name : {"cc", "ch", "wa"})
        for (double& x : mem.array(*fn.find_var(name)))
          x = rng.uniform(-1.0, 1.0);
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
