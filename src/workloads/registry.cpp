/// \file registry.cpp
/// Workload registry: Table 1 order (integer codes, then floating point).

#include <cctype>

#include "workloads/applu.hpp"
#include "workloads/apsi.hpp"
#include "workloads/art.hpp"
#include "workloads/equake.hpp"
#include "workloads/integer_kernels.hpp"
#include "workloads/mgrid.hpp"
#include "workloads/swim.hpp"
#include "workloads/workload.hpp"
#include "workloads/wupwise.hpp"

namespace peak::workloads {

std::vector<std::unique_ptr<Workload>> all_workloads() {
  std::vector<std::unique_ptr<Workload>> out;
  // Integer benchmarks (upper half of Table 1).
  out.push_back(std::make_unique<Bzip2FullGtU>());
  out.push_back(std::make_unique<CraftyAttacked>());
  out.push_back(std::make_unique<GzipLongestMatch>());
  out.push_back(std::make_unique<McfPrimalBea>());
  out.push_back(std::make_unique<TwolfNewDboxA>());
  out.push_back(std::make_unique<VortexChkGetChunk>());
  // Floating-point benchmarks (lower half).
  out.push_back(std::make_unique<AppluBlts>());
  out.push_back(std::make_unique<ApsiRadb4>());
  out.push_back(std::make_unique<ArtMatch>());
  out.push_back(std::make_unique<MgridResid>());
  out.push_back(std::make_unique<EquakeSmvp>());
  out.push_back(std::make_unique<MesaSample1d>());
  out.push_back(std::make_unique<SwimCalc3>());
  out.push_back(std::make_unique<WupwiseZgemm>());
  return out;
}

std::unique_ptr<Workload> make_workload(std::string_view benchmark) {
  // Case-insensitive: registry names are the paper's uppercase spellings,
  // but the CLI accepts `--benchmark mgrid`.
  const auto matches = [&](std::string_view name) {
    if (name.size() != benchmark.size()) return false;
    for (std::size_t i = 0; i < name.size(); ++i)
      if (std::toupper(static_cast<unsigned char>(name[i])) !=
          std::toupper(static_cast<unsigned char>(benchmark[i])))
        return false;
    return true;
  };
  for (auto& w : all_workloads())
    if (matches(w->benchmark())) return std::move(w);
  return nullptr;
}

std::vector<std::string> figure7_benchmarks() {
  return {"SWIM", "MGRID", "EQUAKE", "ART"};
}

}  // namespace peak::workloads
