#pragma once

/// \file equake.hpp
/// EQUAKE.smvp workload (see equake.cpp).

#include "workloads/workload.hpp"

namespace peak::workloads {

class EquakeSmvp final : public WorkloadBase {
public:
  [[nodiscard]] std::string benchmark() const override;
  [[nodiscard]] std::string ts_name() const override;
  [[nodiscard]] rating::Method paper_method() const override;
  [[nodiscard]] std::uint64_t paper_invocations() const override;
  [[nodiscard]] Trace trace(DataSet ds, std::uint64_t seed) const override;
  [[nodiscard]] double ts_time_fraction() const override;

protected:
  [[nodiscard]] ir::Function build() const override;
  void adjust_traits(sim::TsTraits& t) const override;
};

}  // namespace peak::workloads
