/// \file gzip.cpp
/// GZIP.longest_match — the deflate match finder: follow the hash chain
/// through prev[], comparing window bytes against the current lookahead
/// with early exits on mismatch and a best-length fast-reject. Both the
/// window and the chain mutate as the stream advances, so the
/// array-content context variables are not run-time constants: RBR
/// (Table 1: longest_match → RBR, 82.6M invocations).

#include "workloads/integer_kernels.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kWindow = 2048;
constexpr std::size_t kChain = 1024;
}

std::string GzipLongestMatch::benchmark() const { return "GZIP"; }
std::string GzipLongestMatch::ts_name() const { return "longest_match"; }
rating::Method GzipLongestMatch::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t GzipLongestMatch::paper_invocations() const {
  return 82'600'000;
}

ir::Function GzipLongestMatch::build() const {
  ir::FunctionBuilder b("longest_match");
  const auto cur_match = b.param_scalar("cur_match");
  const auto strstart = b.param_scalar("strstart");
  const auto chain_length = b.param_scalar("chain_length");
  const auto max_len = b.param_scalar("max_len");
  const auto window = b.param_array("window", kWindow);
  const auto prev = b.param_array("prev", kChain);
  const auto best_len = b.param_scalar("best_len");

  const auto match = b.scalar("match");
  const auto len = b.scalar("len");
  const auto chain = b.scalar("chain");

  b.assign(best_len, b.c(2.0));
  b.assign(match, b.v(cur_match));
  b.assign(chain, b.v(chain_length));

  b.while_loop(b.land(b.gt(b.v(chain), b.c(0.0)),
                      b.gt(b.v(match), b.c(0.0))),
               [&] {
    // Fast reject: candidate must beat best_len at its last byte.
    b.if_then(
        b.eq(b.at(window, b.mod(b.add(b.v(match), b.v(best_len)),
                                b.c(static_cast<double>(kWindow)))),
             b.at(window, b.mod(b.add(b.v(strstart), b.v(best_len)),
                                b.c(static_cast<double>(kWindow))))),
        [&] {
          // Full comparison with early exit on mismatch.
          b.assign(len, b.c(0.0));
          b.while_loop(
              b.land(b.lt(b.v(len), b.v(max_len)),
                     b.eq(b.at(window,
                               b.mod(b.add(b.v(match), b.v(len)),
                                     b.c(static_cast<double>(kWindow)))),
                          b.at(window,
                               b.mod(b.add(b.v(strstart), b.v(len)),
                                     b.c(static_cast<double>(
                                         kWindow)))))),
              [&] { b.assign(len, b.add(b.v(len), b.c(1.0))); });
          b.if_then(b.gt(b.v(len), b.v(best_len)),
                    [&] { b.assign(best_len, b.v(len)); });
        });
    b.assign(match, b.at(prev, b.mod(b.v(match),
                                     b.c(static_cast<double>(kChain)))));
    b.assign(chain, b.sub(b.v(chain), b.c(1.0)));
  });
  return b.build();
}

void GzipLongestMatch::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 9.5;  // σ·100 = 2.7 at w=10
  t.reg_pressure = 8.0;
  t.loop_regularity = 0.15;
}

Trace GzipLongestMatch::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const std::size_t invocations = ref ? 4200 : 3000;
  const double chain_len = ref ? 32 : 16;

  const ir::Function& fn = function();
  const ir::VarId v_cur = *fn.find_var("cur_match");
  const ir::VarId v_str = *fn.find_var("strstart");
  const ir::VarId v_chain = *fn.find_var("chain_length");
  const ir::VarId v_maxlen = *fn.find_var("max_len");
  const ir::VarId v_window = *fn.find_var("window");
  const ir::VarId v_prev = *fn.find_var("prev");

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("gzip"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    support::Rng pick(inv_seed);
    const double cur = static_cast<double>(pick.uniform_int(1, kChain - 1));
    const double start =
        static_cast<double>(pick.uniform_int(0, kWindow - 1));
    inv.context = {cur, start, chain_len};
    inv.context_determines_time = false;
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.12);
    inv.bind = [v_cur, v_str, v_chain, v_maxlen, v_window, v_prev, cur,
                start, chain_len, inv_seed](ir::Memory& mem) {
      mem.scalar(v_cur) = cur;
      mem.scalar(v_str) = start;
      mem.scalar(v_chain) = chain_len;
      mem.scalar(v_maxlen) = 64.0;
      support::Rng rng(inv_seed ^ 0x91f);
      // Text-like window: small alphabet with repetition.
      auto& window = mem.array(v_window);
      for (double& c : window)
        c = static_cast<double>(rng.uniform_int(0, 7));
      auto& prev = mem.array(v_prev);
      for (std::size_t i = 0; i < kChain; ++i)
        prev[i] = static_cast<double>(
            rng.bernoulli(0.2) ? 0 : rng.uniform_int(0, kChain - 1));
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
