/// \file mgrid.cpp
/// MGRID.resid — the residual computation of the multigrid solver:
/// r = v - A·u, a 27-point-style stencil swept over the grid of the
/// current multigrid level. The section is invoked across many levels and
/// smoothing sweeps, so its context (grid size n, sweep counter) takes
/// dozens of distinct values: statically CBR-applicable, but the profile
/// shows too many contexts and the consultant picks MBR — reproducing both
/// Table 1 (resid → MBR) and the Figure 7(c) finding that forcing
/// MGRID_CBR inflates tuning time.

#include "workloads/mgrid.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxN = 22;
constexpr std::size_t kMaxGrid = kMaxN * kMaxN * kMaxN;
}

std::string MgridResid::benchmark() const { return "MGRID"; }
std::string MgridResid::ts_name() const { return "resid"; }
rating::Method MgridResid::paper_method() const {
  return rating::Method::kMBR;
}
std::uint64_t MgridResid::paper_invocations() const { return 2410; }

ir::Function MgridResid::build() const {
  ir::FunctionBuilder b("resid");
  const auto n = b.param_scalar("n");
  const auto sweep = b.param_scalar("sweep");
  const auto u = b.param_array("u", kMaxGrid, true);
  const auto v = b.param_array("v", kMaxGrid, true);
  const auto r = b.param_array("r", kMaxGrid, true);

  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  const auto k = b.scalar("k");
  const auto idx = b.scalar("idx");
  const auto acc = b.scalar("acc", true);

  const auto n2 = b.mul(b.v(n), b.v(n));

  // Interior stencil: r[i,j,k] = v[i,j,k] - c0*u[i,j,k]
  //                              - c1*(6 axis neighbours).
  b.for_loop(i, b.c(1.0), b.sub(b.v(n), b.c(1.0)), [&] {
    b.for_loop(j, b.c(1.0), b.sub(b.v(n), b.c(1.0)), [&] {
      b.for_loop(k, b.c(1.0), b.sub(b.v(n), b.c(1.0)), [&] {
        b.assign(idx, b.add(b.add(b.mul(b.v(i), n2),
                                  b.mul(b.v(j), b.v(n))),
                            b.v(k)));
        b.assign(acc, b.mul(b.c(-1.5), b.at(u, b.v(idx))));
        b.assign(acc,
                 b.add(b.v(acc),
                       b.mul(b.c(0.25),
                             b.add(b.at(u, b.add(b.v(idx), b.c(1.0))),
                                   b.at(u, b.sub(b.v(idx), b.c(1.0)))))));
        b.assign(acc,
                 b.add(b.v(acc),
                       b.mul(b.c(0.25),
                             b.add(b.at(u, b.add(b.v(idx), b.v(n))),
                                   b.at(u, b.sub(b.v(idx), b.v(n)))))));
        b.assign(acc,
                 b.add(b.v(acc),
                       b.mul(b.c(0.25),
                             b.add(b.at(u, b.add(b.v(idx), n2)),
                                   b.at(u, b.sub(b.v(idx), n2))))));
        b.store(r, b.v(idx), b.sub(b.at(v, b.v(idx)), b.v(acc)));
      });
    });
  });

  // Every other sweep applies an extra boundary-normalization pass over
  // the full grid — a second varying component for the MBR model.
  b.if_then(b.eq(b.mod(b.v(sweep), b.c(2.0)), b.c(0.0)), [&] {
    b.for_loop(idx, b.c(0.0), b.mul(n2, b.v(n)), [&] {
      b.store(r, b.v(idx), b.mul(b.at(r, b.v(idx)), b.c(0.9999)));
    });
  });
  return b.build();
}

void MgridResid::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 2.0;
  t.reg_pressure = 12.0;
  t.loop_regularity = 0.95;
}

double MgridResid::ts_time_fraction() const {
  return 0.55;  // resid is the dominant multigrid kernel
}

Trace MgridResid::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  // Multigrid levels: the ref dataset adds a finer level.
  const std::vector<double> levels =
      ref ? std::vector<double>{6, 10, 14, 20}
          : std::vector<double>{6, 10, 14};
  const std::size_t invocations = ref ? 3000 : 2410;

  const ir::Function& fn = function();
  const auto data_seed =
      support::hash_combine(seed, support::stable_hash("mgrid"));
  for (std::size_t it = 0; it < invocations; ++it) {
    const double n = levels[it % levels.size()];
    // Sweep counter cycles 0..59: with the level it forms the context, so
    // the profile sees |levels|·60 distinct contexts — too many for CBR.
    const double sweep = static_cast<double>(it % 60);
    sim::Invocation inv;
    inv.id = it + 1;
    inv.context = {n, sweep};
    inv.context_determines_time = true;
    inv.bind = [&fn, n, sweep, data_seed](ir::Memory& mem) {
      mem.scalar(*fn.find_var("n")) = n;
      mem.scalar(*fn.find_var("sweep")) = sweep;
      support::Rng rng(data_seed);
      for (const char* name : {"u", "v", "r"})
        for (double& x : mem.array(*fn.find_var(name)))
          x = rng.uniform(-1.0, 1.0);
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
