/// \file applu.cpp
/// APPLU.blts — block-lower-triangular solve of the SSOR solver: a forward
/// sweep over the (nx, ny, nz) grid where each point is updated from its
/// already-solved lower neighbours. Control flow depends only on the grid
/// dimensions: CBR with a single context (Table 1: blts → CBR, 250
/// invocations).

#include "workloads/applu.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxDim = 16;
constexpr std::size_t kMaxGrid = kMaxDim * kMaxDim * kMaxDim;
}

std::string AppluBlts::benchmark() const { return "APPLU"; }
std::string AppluBlts::ts_name() const { return "blts"; }
rating::Method AppluBlts::paper_method() const {
  return rating::Method::kCBR;
}
std::uint64_t AppluBlts::paper_invocations() const { return 250; }

ir::Function AppluBlts::build() const {
  ir::FunctionBuilder b("blts");
  const auto nx = b.param_scalar("nx");
  const auto ny = b.param_scalar("ny");
  const auto nz = b.param_scalar("nz");
  const auto omega = b.param_scalar("omega", true);
  const auto vgrid = b.param_array("v", kMaxGrid, true);
  const auto ldz = b.param_array("ldz", kMaxGrid, true);
  const auto ldy = b.param_array("ldy", kMaxGrid, true);
  const auto ldx = b.param_array("ldx", kMaxGrid, true);

  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  const auto k = b.scalar("k");
  const auto idx = b.scalar("idx");
  const auto tmp = b.scalar("tmp", true);

  const auto nyz = b.mul(b.v(ny), b.v(nz));

  b.for_loop(i, b.c(1.0), b.v(nx), [&] {
    b.for_loop(j, b.c(1.0), b.v(ny), [&] {
      b.for_loop(k, b.c(1.0), b.v(nz), [&] {
        b.assign(idx, b.add(b.add(b.mul(b.v(i), nyz),
                                  b.mul(b.v(j), b.v(nz))),
                            b.v(k)));
        // v[i,j,k] -= omega * (ldz*v[k-1] + ldy*v[j-1] + ldx*v[i-1])
        b.assign(tmp,
                 b.mul(b.at(ldz, b.v(idx)),
                       b.at(vgrid, b.sub(b.v(idx), b.c(1.0)))));
        b.assign(tmp,
                 b.add(b.v(tmp),
                       b.mul(b.at(ldy, b.v(idx)),
                             b.at(vgrid, b.sub(b.v(idx), b.v(nz))))));
        b.assign(tmp,
                 b.add(b.v(tmp),
                       b.mul(b.at(ldx, b.v(idx)),
                             b.at(vgrid, b.sub(b.v(idx), nyz)))));
        b.store(vgrid, b.v(idx),
                b.sub(b.at(vgrid, b.v(idx)),
                      b.mul(b.v(omega), b.v(tmp))));
      });
    });
  });
  return b.build();
}

void AppluBlts::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 2.6;
  t.reg_pressure = 16.0;
  t.loop_regularity = 0.95;
}

Trace AppluBlts::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const double dim = ref ? 14 : 10;
  const std::size_t invocations = ref ? 350 : 250;

  const ir::Function& fn = function();
  const auto data_seed =
      support::hash_combine(seed, support::stable_hash("applu"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    inv.context = {dim, dim, dim};
    inv.context_determines_time = true;
    inv.bind = [&fn, dim, data_seed](ir::Memory& mem) {
      mem.scalar(*fn.find_var("nx")) = dim;
      mem.scalar(*fn.find_var("ny")) = dim;
      mem.scalar(*fn.find_var("nz")) = dim;
      mem.scalar(*fn.find_var("omega")) = 1.2;
      support::Rng rng(data_seed);
      for (const char* name : {"v", "ldz", "ldy", "ldx"})
        for (double& x : mem.array(*fn.find_var(name)))
          x = rng.uniform(-0.5, 0.5);
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
