/// \file vortex.cpp
/// VORTEX.ChkGetChunk — the object-store chunk validator: walk the chunk
/// descriptor table, check status/type/owner fields with early returns on
/// the first inconsistency. The descriptor table mutates as objects are
/// created and deleted, so control flow depends on changing memory: RBR
/// (Table 1: ChkGetChunk → RBR, 80.4M invocations — the noisiest integer
/// section, σ·100 = 3.0 at w=10, because each invocation is tiny).

#include "workloads/integer_kernels.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kChunks = 256;
constexpr std::size_t kFields = 4;  // status, type, owner, link
}

std::string VortexChkGetChunk::benchmark() const { return "VORTEX"; }
std::string VortexChkGetChunk::ts_name() const { return "ChkGetChunk"; }
rating::Method VortexChkGetChunk::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t VortexChkGetChunk::paper_invocations() const {
  return 80'400'000;
}

ir::Function VortexChkGetChunk::build() const {
  ir::FunctionBuilder b("ChkGetChunk");
  const auto handle = b.param_scalar("handle");
  const auto expected_type = b.param_scalar("expected_type");
  const auto chunks = b.param_array("chunks", kChunks * kFields);
  const auto status = b.param_scalar("status");

  const auto cur = b.scalar("cur");
  const auto hops = b.scalar("hops");
  const auto f = b.scalar("f");

  b.assign(status, b.c(1.0));  // OK until proven otherwise
  b.assign(cur, b.v(handle));
  // Follow the chunk chain (bounded), validating each descriptor.
  b.for_loop(hops, b.c(0.0), b.c(16.0), [&] {
    b.assign(f, b.mul(b.v(cur), b.c(static_cast<double>(kFields))));
    // Status must be "allocated".
    b.if_then(b.ne(b.at(chunks, b.v(f)), b.c(1.0)), [&] {
      b.assign(status, b.c(0.0));
    });
    b.break_if(b.eq(b.v(status), b.c(0.0)));
    // Type must match the requested one.
    b.if_then(b.ne(b.at(chunks, b.add(b.v(f), b.c(1.0))),
                   b.v(expected_type)),
              [&] { b.assign(status, b.c(0.0)); });
    b.break_if(b.eq(b.v(status), b.c(0.0)));
    // End of chain?
    b.assign(cur, b.at(chunks, b.add(b.v(f), b.c(3.0))));
    b.break_if(b.eq(b.v(cur), b.c(0.0)));
  });
  return b.build();
}

void VortexChkGetChunk::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 10.5;  // tiniest integer TS: σ·100 = 3.0 at w=10
  t.reg_pressure = 6.0;
  t.loop_regularity = 0.1;
}

Trace VortexChkGetChunk::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const std::size_t invocations = ref ? 4200 : 3000;

  const ir::Function& fn = function();
  const ir::VarId v_handle = *fn.find_var("handle");
  const ir::VarId v_type = *fn.find_var("expected_type");
  const ir::VarId v_chunks = *fn.find_var("chunks");

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("vortex"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    support::Rng pick(inv_seed);
    const double handle =
        static_cast<double>(pick.uniform_int(1, kChunks - 1));
    const double type = pick.bernoulli(0.85)
                            ? 1.0
                            : static_cast<double>(pick.uniform_int(2, 4));
    inv.context = {handle, type};
    inv.context_determines_time = false;
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.12);
    inv.bind = [v_handle, v_type, v_chunks, handle, type,
                inv_seed](ir::Memory& mem) {
      mem.scalar(v_handle) = handle;
      mem.scalar(v_type) = type;
      support::Rng rng(inv_seed ^ 0x40e7);
      auto& chunks = mem.array(v_chunks);
      for (std::size_t c = 0; c < kChunks; ++c) {
        chunks[c * kFields + 0] = rng.bernoulli(0.92) ? 1.0 : 0.0;
        // Most chunks in a store hold the common object type, so chain
        // walks usually validate several hops before a mismatch.
        chunks[c * kFields + 1] = static_cast<double>(
            rng.bernoulli(0.85) ? 1 : rng.uniform_int(2, 4));
        chunks[c * kFields + 2] =
            static_cast<double>(rng.uniform_int(0, 15));
        chunks[c * kFields + 3] = static_cast<double>(
            rng.bernoulli(0.25) ? 0 : rng.uniform_int(1, kChunks - 1));
      }
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
