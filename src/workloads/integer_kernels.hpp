#pragma once

/// \file integer_kernels.hpp
/// The six SPECint tuning sections of Table 1 plus MESA's tiny texture
/// sampler. All exhibit data-dependent control flow (or an unbounded
/// context space), so the analysis pipeline assigns them RBR — exactly the
/// paper's Table 1 column 3 for these rows. One class per section;
/// implementations in the per-benchmark .cpp files.

#include "workloads/workload.hpp"

namespace peak::workloads {

#define PEAK_DECLARE_WORKLOAD(ClassName)                                   \
  class ClassName final : public WorkloadBase {                            \
  public:                                                                  \
    [[nodiscard]] std::string benchmark() const override;                  \
    [[nodiscard]] std::string ts_name() const override;                    \
    [[nodiscard]] rating::Method paper_method() const override;            \
    [[nodiscard]] std::uint64_t paper_invocations() const override;        \
    [[nodiscard]] Trace trace(DataSet ds, std::uint64_t seed)              \
        const override;                                                    \
                                                                           \
  protected:                                                               \
    [[nodiscard]] ir::Function build() const override;                     \
    void adjust_traits(sim::TsTraits& t) const override;                   \
  }

PEAK_DECLARE_WORKLOAD(Bzip2FullGtU);      ///< BZIP2.fullGtU
PEAK_DECLARE_WORKLOAD(CraftyAttacked);    ///< CRAFTY.Attacked
PEAK_DECLARE_WORKLOAD(GzipLongestMatch);  ///< GZIP.longest_match
PEAK_DECLARE_WORKLOAD(McfPrimalBea);      ///< MCF.primal_bea_mpp
PEAK_DECLARE_WORKLOAD(TwolfNewDboxA);     ///< TWOLF.new_dbox_a
PEAK_DECLARE_WORKLOAD(VortexChkGetChunk); ///< VORTEX.ChkGetChunk
PEAK_DECLARE_WORKLOAD(MesaSample1d);      ///< MESA.sample_1d_linear

#undef PEAK_DECLARE_WORKLOAD

}  // namespace peak::workloads
