/// \file art.cpp
/// ART.match — one recognition pass of the Adaptive Resonance Theory
/// neural network: compute F1-layer activations from the input image and
/// bottom-up weights, then run the winner-take-all search over the F2
/// layer. The winner search branches on activations *computed within the
/// section*, so the Figure 1 analysis rejects CBR (non-scalar context) and
/// PEAK rates it with RBR — matching Table 1 (match → RBR, 250
/// invocations) and Section 5.2, where ART carries the paper's headline
/// result: disabling strict aliasing on the Pentium 4 removes massive
/// spill traffic and yields the 178% improvement.

#include "workloads/art.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kF1 = 200;
constexpr std::size_t kF2 = 40;
}

std::string ArtMatch::benchmark() const { return "ART"; }
std::string ArtMatch::ts_name() const { return "match"; }
rating::Method ArtMatch::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t ArtMatch::paper_invocations() const { return 250; }

ir::Function ArtMatch::build() const {
  ir::FunctionBuilder b("match");
  const auto numf1s = b.param_scalar("numf1s");
  const auto numf2s = b.param_scalar("numf2s");
  const auto input = b.param_array("input", kF1, true);
  const auto bus = b.param_array("bus", kF1 * kF2, true);  // weights
  const auto f1 = b.param_array("f1", kF1, true);
  const auto y = b.param_array("y", kF2, true);

  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  const auto sum = b.scalar("sum", true);
  const auto winner = b.scalar("winner");
  const auto best = b.scalar("best", true);

  // F1 activation: leaky integration of the input.
  b.for_loop(i, b.c(0.0), b.v(numf1s), [&] {
    b.store(f1, b.v(i),
            b.div(b.at(input, b.v(i)),
                  b.add(b.c(1.0), b.abs(b.at(input, b.v(i))))));
  });

  // F2 activations: y_j = Σ_i bus[j*numf1s + i] * f1[i].
  b.for_loop(j, b.c(0.0), b.v(numf2s), [&] {
    b.assign(sum, b.c(0.0));
    b.for_loop(i, b.c(0.0), b.v(numf1s), [&] {
      b.assign(sum,
               b.add(b.v(sum),
                     b.mul(b.at(bus,
                                b.add(b.mul(b.v(j), b.v(numf1s)), b.v(i))),
                           b.at(f1, b.v(i)))));
    });
    b.store(y, b.v(j), b.v(sum));
  });

  // Winner-take-all: branches on the freshly computed y values — the
  // data-dependent control flow that rules out CBR.
  b.assign(winner, b.c(0.0));
  b.assign(best, b.at(y, b.c(0.0)));
  b.for_loop(j, b.c(1.0), b.v(numf2s), [&] {
    b.if_then(b.gt(b.at(y, b.v(j)), b.v(best)), [&] {
      b.assign(best, b.at(y, b.v(j)));
      b.assign(winner, b.v(j));
    });
  });
  b.store(y, b.v(winner), b.c(0.0));  // reset the winner for resonance
  return b.build();
}

void ArtMatch::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 0.8;  // large section, very quiet (σ·100 = 0.28 at w=10)
  // The hand-unrolled activation loops keep many partial sums live — this
  // is the register pressure that strict aliasing turns into spills.
  t.reg_pressure = 22.0;
  t.memory_intensity = 0.45;
}

double ArtMatch::ts_time_fraction() const {
  return 0.5;  // match is half of the recognition loop
}

Trace ArtMatch::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const double f1s = ref ? 120 : 60;
  const double f2s = ref ? 24 : 16;
  const std::size_t invocations = ref ? 350 : 250;

  const ir::Function& fn = function();
  const ir::VarId v_numf1s = *fn.find_var("numf1s");
  const ir::VarId v_numf2s = *fn.find_var("numf2s");
  const ir::VarId v_input = *fn.find_var("input");
  const ir::VarId v_bus = *fn.find_var("bus");

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("art"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    inv.context = {f1s, f2s};
    // The winner search depends on the input image: data-dependent timing.
    inv.context_determines_time = false;
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.05);
    inv.bind = [&fn, f1s, f2s, v_numf1s, v_numf2s, v_input, v_bus,
                inv_seed](ir::Memory& mem) {
      mem.scalar(v_numf1s) = f1s;
      mem.scalar(v_numf2s) = f2s;
      support::Rng rng(inv_seed);
      for (double& x : mem.array(v_input)) x = rng.uniform(0.0, 1.0);
      support::Rng wrng(inv_seed ^ 0xabcdef);  // weights drift slowly
      for (double& x : mem.array(v_bus)) x = wrng.uniform(0.0, 0.5);
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
