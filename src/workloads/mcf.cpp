/// \file mcf.cpp
/// MCF.primal_bea_mpp — the network-simplex pricing loop: scan the arc
/// list, compute reduced costs from the node potentials, and collect the
/// most negative candidates into the basket. The potentials and flow
/// status change every simplex iteration, so control flow depends on
/// mutating array contents: RBR (Table 1: primal_bea_mpp → RBR, 105K
/// invocations — the least-noisy integer section, σ·100 = 0.92 at w=10,
/// because each invocation scans many arcs).

#include "workloads/integer_kernels.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxArcs = 1024;
constexpr std::size_t kMaxNodes = 256;
constexpr std::size_t kBasket = 64;
}

std::string McfPrimalBea::benchmark() const { return "MCF"; }
std::string McfPrimalBea::ts_name() const { return "primal_bea_mpp"; }
rating::Method McfPrimalBea::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t McfPrimalBea::paper_invocations() const { return 105'000; }

ir::Function McfPrimalBea::build() const {
  ir::FunctionBuilder b("primal_bea_mpp");
  const auto num_arcs = b.param_scalar("num_arcs");
  const auto cost = b.param_array("cost", kMaxArcs);
  const auto tail = b.param_array("tail", kMaxArcs);
  const auto head = b.param_array("head", kMaxArcs);
  const auto ident = b.param_array("ident", kMaxArcs);  // arc status
  const auto potential = b.param_array("potential", kMaxNodes);
  const auto basket = b.param_array("basket", kBasket);
  const auto basket_size = b.param_scalar("basket_size");

  const auto i = b.scalar("i");
  const auto red_cost = b.scalar("red_cost");

  b.assign(basket_size, b.c(0.0));
  b.for_loop(i, b.c(0.0), b.v(num_arcs), [&] {
    // Only arcs at their bounds are price candidates.
    b.continue_if(b.eq(b.at(ident, b.v(i)), b.c(0.0)));
    b.assign(red_cost,
             b.sub(b.add(b.at(cost, b.v(i)),
                         b.at(potential, b.at(head, b.v(i)))),
                   b.at(potential, b.at(tail, b.v(i)))));
    b.if_then(b.land(b.lt(b.v(red_cost), b.c(0.0)),
                     b.lt(b.v(basket_size),
                          b.c(static_cast<double>(kBasket)))),
              [&] {
                b.store(basket, b.v(basket_size), b.v(i));
                b.assign(basket_size, b.add(b.v(basket_size), b.c(1.0)));
              });
  });
  return b.build();
}

void McfPrimalBea::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 3.2;  // σ·100 = 0.92 at w=10: long scans average noise
  t.memory_intensity = 0.6;
  t.reg_pressure = 7.0;
  t.loop_regularity = 0.4;
}

Trace McfPrimalBea::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const double arcs = ref ? 800 : 400;
  const double nodes = ref ? 200 : 100;
  const std::size_t invocations = ref ? 2800 : 2000;

  const ir::Function& fn = function();
  const ir::VarId v_narcs = *fn.find_var("num_arcs");
  const ir::VarId v_cost = *fn.find_var("cost");
  const ir::VarId v_tail = *fn.find_var("tail");
  const ir::VarId v_head = *fn.find_var("head");
  const ir::VarId v_ident = *fn.find_var("ident");
  const ir::VarId v_pot = *fn.find_var("potential");

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("mcf"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    inv.context = {arcs};
    inv.context_determines_time = false;  // depends on status/potentials
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.1);
    inv.bind = [v_narcs, v_cost, v_tail, v_head, v_ident, v_pot, arcs,
                nodes, inv_seed](ir::Memory& mem) {
      mem.scalar(v_narcs) = arcs;
      support::Rng rng(inv_seed ^ 0x3cf);
      auto& cost = mem.array(v_cost);
      auto& tail = mem.array(v_tail);
      auto& head = mem.array(v_head);
      auto& ident = mem.array(v_ident);
      auto& pot = mem.array(v_pot);
      for (std::size_t a = 0; a < static_cast<std::size_t>(arcs); ++a) {
        cost[a] = static_cast<double>(rng.uniform_int(-50, 200));
        tail[a] = static_cast<double>(
            rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
        head[a] = static_cast<double>(
            rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
        ident[a] = rng.bernoulli(0.6) ? 1.0 : 0.0;
      }
      for (std::size_t nd = 0; nd < static_cast<std::size_t>(nodes); ++nd)
        pot[nd] = static_cast<double>(rng.uniform_int(-100, 100));
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
