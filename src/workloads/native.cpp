#include "workloads/native.hpp"

#include <cmath>

#include "support/check.hpp"

namespace peak::workloads::native {

void calc3(std::size_t n, std::size_t m, double alpha,
           std::vector<double>& u, std::vector<double>& uold,
           const std::vector<double>& unew, std::vector<double>& v,
           std::vector<double>& vold, const std::vector<double>& vnew,
           std::vector<double>& p, std::vector<double>& pold,
           const std::vector<double>& pnew) {
  PEAK_CHECK(u.size() >= n * m, "calc3 grid too small");
  auto smooth = [&](std::vector<double>& cur, std::vector<double>& old,
                    const std::vector<double>& next, std::size_t idx) {
    old[idx] = cur[idx] + alpha * (next[idx] - 2.0 * cur[idx] + old[idx]);
    cur[idx] = next[idx];
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t idx = i * m + j;
      smooth(u, uold, unew, idx);
      smooth(v, vold, vnew, idx);
      smooth(p, pold, pnew, idx);
    }
  }
}

void smvp(std::size_t nodes, const std::vector<double>& aindex,
          const std::vector<double>& acol, const std::vector<double>& aval,
          const std::vector<double>& v, std::vector<double>& w) {
  for (std::size_t i = 0; i < nodes; ++i) {
    double sum = 0.0;
    for (auto j = static_cast<std::size_t>(aindex[i]);
         j < static_cast<std::size_t>(aindex[i + 1]); ++j) {
      const auto col = static_cast<std::size_t>(acol[j]);
      sum += aval[j] * v[col];
      w[col] += aval[j] * v[i];
    }
    w[i] += sum;
  }
}

std::size_t art_match(std::size_t numf1s, std::size_t numf2s,
                      const std::vector<double>& input,
                      const std::vector<double>& bus,
                      std::vector<double>& f1, std::vector<double>& y) {
  for (std::size_t i = 0; i < numf1s; ++i)
    f1[i] = input[i] / (1.0 + std::fabs(input[i]));
  for (std::size_t j = 0; j < numf2s; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < numf1s; ++i)
      sum += bus[j * numf1s + i] * f1[i];
    y[j] = sum;
  }
  std::size_t winner = 0;
  double best = y[0];
  for (std::size_t j = 1; j < numf2s; ++j) {
    if (y[j] > best) {
      best = y[j];
      winner = j;
    }
  }
  y[winner] = 0.0;
  return winner;
}

double full_gt_u(std::size_t i1, std::size_t i2, std::size_t nblock,
                 const std::vector<double>& block) {
  double result = 0.0;
  std::size_t p1 = i1;
  std::size_t p2 = i2;
  for (std::size_t k = 0; k < nblock; ++k) {
    const double c1 = block[p1 % nblock];
    const double c2 = block[p2 % nblock];
    if (c1 != c2) {
      result = c1 > c2 ? 1.0 : 0.0;
      break;
    }
    ++p1;
    ++p2;
  }
  return result;
}

void resid(std::size_t n, std::size_t sweep, const std::vector<double>& u,
           const std::vector<double>& v, std::vector<double>& r) {
  const std::size_t n2 = n * n;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    for (std::size_t j = 1; j + 1 < n; ++j) {
      for (std::size_t k = 1; k + 1 < n; ++k) {
        const std::size_t idx = i * n2 + j * n + k;
        double acc = -1.5 * u[idx];
        acc += 0.25 * (u[idx + 1] + u[idx - 1]);
        acc += 0.25 * (u[idx + n] + u[idx - n]);
        acc += 0.25 * (u[idx + n2] + u[idx - n2]);
        r[idx] = v[idx] - acc;
      }
    }
  }
  if (sweep % 2 == 0)
    for (std::size_t idx = 0; idx < n2 * n; ++idx) r[idx] *= 0.9999;
}

double longest_match(std::size_t cur_match, std::size_t strstart,
                     std::size_t chain_length, std::size_t max_len,
                     const std::vector<double>& window,
                     const std::vector<double>& prev) {
  const std::size_t wsize = window.size();
  const std::size_t csize = prev.size();
  double best_len = 2.0;
  std::size_t match = cur_match;
  std::size_t chain = chain_length;
  while (chain > 0 && match > 0) {
    const auto bl = static_cast<std::size_t>(best_len);
    if (window[(match + bl) % wsize] == window[(strstart + bl) % wsize]) {
      std::size_t len = 0;
      while (len < max_len && window[(match + len) % wsize] ==
                                  window[(strstart + len) % wsize])
        ++len;
      if (static_cast<double>(len) > best_len)
        best_len = static_cast<double>(len);
    }
    match = static_cast<std::size_t>(prev[match % csize]);
    --chain;
  }
  return best_len;
}

double attacked(std::size_t square, double side,
                const std::vector<double>& board,
                const std::vector<double>& dir_step,
                const std::vector<double>& ray_len) {
  constexpr std::size_t kSquares = 64;
  constexpr std::size_t kDirs = 8;
  double result = 0.0;
  for (std::size_t d = 0; d < kDirs; ++d) {
    double pos = static_cast<double>(square);
    const auto len =
        static_cast<std::size_t>(ray_len[square * kDirs + d]);
    for (std::size_t s = 0; s < len; ++s) {
      pos += dir_step[d];
      const double piece =
          board[static_cast<std::size_t>(
              static_cast<std::int64_t>(pos + kSquares) %
              static_cast<std::int64_t>(kSquares))];
      if (piece == 0.0) continue;
      if (piece * side > 0.0 && std::fabs(piece) >= 3.0) result = 1.0;
      break;  // first blocker ends the ray
    }
  }
  return result;
}

double primal_bea_mpp(std::size_t num_arcs,
                      const std::vector<double>& cost,
                      const std::vector<double>& tail,
                      const std::vector<double>& head,
                      const std::vector<double>& ident,
                      const std::vector<double>& potential,
                      std::vector<double>& basket) {
  double basket_size = 0.0;
  for (std::size_t i = 0; i < num_arcs; ++i) {
    if (ident[i] == 0.0) continue;
    const double red_cost =
        cost[i] + potential[static_cast<std::size_t>(head[i])] -
        potential[static_cast<std::size_t>(tail[i])];
    if (red_cost < 0.0 &&
        basket_size < static_cast<double>(basket.size())) {
      basket[static_cast<std::size_t>(basket_size)] =
          static_cast<double>(i);
      basket_size += 1.0;
    }
  }
  return basket_size;
}

double new_dbox_a(std::size_t num_terms,
                  const std::vector<double>& pins_per_net,
                  const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  double cost = 0.0;
  for (std::size_t t = 0; t < num_terms; ++t) {
    const std::size_t base = t * 16;
    const auto npins = static_cast<std::size_t>(pins_per_net[t]);
    double xmin = xs[base], xmax = xs[base];
    double ymin = ys[base], ymax = ys[base];
    for (std::size_t p = 1; p < npins; ++p) {
      const double x = xs[base + p];
      const double y = ys[base + p];
      if (x < xmin) xmin = x;
      if (x > xmax) xmax = x;
      if (y < ymin) ymin = y;
      if (y > ymax) ymax = y;
    }
    cost += (xmax - xmin) + (ymax - ymin);
  }
  return cost;
}

double chk_get_chunk(std::size_t handle, double expected_type,
                     const std::vector<double>& chunks) {
  constexpr std::size_t kFields = 4;
  double status = 1.0;
  std::size_t cur = handle;
  for (int hops = 0; hops < 16; ++hops) {
    const std::size_t f = cur * kFields;
    if (chunks[f] != 1.0) {
      status = 0.0;
      break;
    }
    if (chunks[f + 1] != expected_type) {
      status = 0.0;
      break;
    }
    cur = static_cast<std::size_t>(chunks[f + 3]);
    if (cur == 0) break;
  }
  return status;
}

void sample_1d_linear(double s, double size, double wrap,
                      const std::vector<double>& image,
                      std::vector<double>& rgba) {
  const double u = s * size - 0.5;
  double i0 = std::floor(u);
  const double frac = u - i0;
  double i1 = i0 + 1.0;
  if (wrap == 1.0) {
    i0 = static_cast<double>(
        static_cast<std::int64_t>(i0 + size) %
        static_cast<std::int64_t>(size));
    i1 = static_cast<double>(
        static_cast<std::int64_t>(i1 + size) %
        static_cast<std::int64_t>(size));
  } else {
    if (i0 < 0.0) i0 = 0.0;
    if (i1 >= size) i1 = size - 1.0;
    if (i1 < 0.0) i1 = 0.0;
    if (i0 >= size) i0 = size - 1.0;
  }
  const auto t0 = static_cast<std::size_t>(i0);
  const auto t1 = static_cast<std::size_t>(i1);
  for (std::size_t ch = 0; ch < 4; ++ch)
    rgba[ch] = (1.0 - frac) * image[t0] + frac * image[t1];
  if (frac < 0.02) rgba[1] = image[t0];
  if (frac > 0.98) rgba[2] = image[t1];
}

void blts(std::size_t nx, std::size_t ny, std::size_t nz, double omega,
          std::vector<double>& v, const std::vector<double>& ldz,
          const std::vector<double>& ldy, const std::vector<double>& ldx) {
  const std::size_t nyz = ny * nz;
  for (std::size_t i = 1; i < nx; ++i) {
    for (std::size_t j = 1; j < ny; ++j) {
      for (std::size_t k = 1; k < nz; ++k) {
        const std::size_t idx = i * nyz + j * nz + k;
        const double tmp = ldz[idx] * v[idx - 1] +
                           ldy[idx] * v[idx - nz] +
                           ldx[idx] * v[idx - nyz];
        v[idx] -= omega * tmp;
      }
    }
  }
}

void radb4(std::size_t ido, std::size_t l1, const std::vector<double>& cc,
           std::vector<double>& ch, const std::vector<double>& wa) {
  for (std::size_t k = 0; k < l1; ++k) {
    const std::size_t base = k * 4 * ido;
    for (std::size_t i = 0; i < ido; ++i) {
      const std::size_t p0 = base + i;
      const std::size_t p1 = p0 + ido;
      const std::size_t p2 = p1 + ido;
      const std::size_t p3 = p2 + ido;
      const double t1 = cc[p0] + cc[p2];
      const double t2 = cc[p0] - cc[p2];
      const double t3 = cc[p1] + cc[p3];
      const double t4 = cc[p1] - cc[p3];
      ch[p0] = t1 + t3;
      ch[p1] = wa[i] * (t2 - t4);
      ch[p2] = wa[i] * (t1 - t3);
      ch[p3] = wa[i] * (t2 + t4);
    }
  }
}

void zgemm(std::size_t m, std::size_t n, std::size_t k,
           const std::vector<double>& a, const std::vector<double>& b,
           std::vector<double>& c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sr = 0.0, si = 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        const std::size_t pa = 2 * (i * k + l);
        const std::size_t pb = 2 * (l * n + j);
        const double ar = a[pa], ai = a[pa + 1];
        const double br = b[pb], bi = b[pb + 1];
        sr += ar * br - ai * bi;
        si += ar * bi + ai * br;
      }
      const std::size_t pc = 2 * (i * n + j);
      c[pc] = sr;
      c[pc + 1] = si;
    }
  }
}

}  // namespace peak::workloads::native
