/// \file crafty.cpp
/// CRAFTY.Attacked — "is this square attacked by this side?": walk the
/// rays from the square through precomputed direction tables, stopping at
/// the first occupied board square and testing the occupying piece. The
/// direction tables are run-time constants, but the board changes every
/// move, so the board-content context variable fails the run-time-constant
/// check and RBR is chosen (Table 1: Attacked → RBR, 12.3M invocations).

#include "workloads/integer_kernels.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kSquares = 64;
constexpr std::size_t kDirs = 8;
}

std::string CraftyAttacked::benchmark() const { return "CRAFTY"; }
std::string CraftyAttacked::ts_name() const { return "Attacked"; }
rating::Method CraftyAttacked::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t CraftyAttacked::paper_invocations() const {
  return 12'300'000;
}

ir::Function CraftyAttacked::build() const {
  ir::FunctionBuilder b("Attacked");
  const auto square = b.param_scalar("square");
  const auto side = b.param_scalar("side");
  const auto board = b.param_array("board", kSquares);
  // Per-direction step offsets and maximum ray lengths from the square —
  // precomputed, never written by the section (run-time constants).
  const auto dir_step = b.param_array("dir_step", kDirs);
  const auto ray_len = b.param_array("ray_len", kSquares * kDirs);
  const auto attacked = b.param_scalar("attacked");

  const auto d = b.scalar("d");
  const auto s = b.scalar("s");
  const auto pos = b.scalar("pos");
  const auto piece = b.scalar("piece");
  const auto len = b.scalar("len");

  b.assign(attacked, b.c(0.0));
  b.for_loop(d, b.c(0.0), b.c(static_cast<double>(kDirs)), [&] {
    b.assign(pos, b.v(square));
    b.assign(len,
             b.at(ray_len, b.add(b.mul(b.v(square),
                                       b.c(static_cast<double>(kDirs))),
                                 b.v(d))));
    b.for_loop(s, b.c(0.0), b.v(len), [&] {
      b.assign(pos, b.add(b.v(pos), b.at(dir_step, b.v(d))));
      b.assign(piece, b.at(board, b.mod(b.add(b.v(pos),
                                              b.c(static_cast<double>(
                                                  kSquares))),
                                        b.c(static_cast<double>(
                                            kSquares)))));
      // Empty square: keep sliding.
      b.continue_if(b.eq(b.v(piece), b.c(0.0)));
      // Occupied: attacked if an enemy slider of matching kind.
      b.if_then(b.land(b.gt(b.mul(b.v(piece), b.v(side)), b.c(0.0)),
                       b.ge(b.abs(b.v(piece)), b.c(3.0))),
                [&] { b.assign(attacked, b.c(1.0)); });
      b.break_if(b.c(1.0));  // first blocker ends the ray
    });
  });
  return b.build();
}

void CraftyAttacked::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 8.0;  // σ·100 = 2.3 at w=10
  t.reg_pressure = 9.0;
  t.loop_regularity = 0.15;
}

Trace CraftyAttacked::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const std::size_t invocations = ref ? 4200 : 3000;

  const ir::Function& fn = function();
  const ir::VarId v_square = *fn.find_var("square");
  const ir::VarId v_side = *fn.find_var("side");
  const ir::VarId v_board = *fn.find_var("board");
  const ir::VarId v_dir = *fn.find_var("dir_step");
  const ir::VarId v_ray = *fn.find_var("ray_len");

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("crafty"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    support::Rng pick(inv_seed);
    const double sq = static_cast<double>(pick.uniform_int(0, 63));
    const double side = pick.bernoulli(0.5) ? 1.0 : -1.0;
    inv.context = {sq, side};
    inv.context_determines_time = false;  // depends on the position
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.12);
    inv.bind = [v_square, v_side, v_board, v_dir, v_ray, sq, side,
                inv_seed](ir::Memory& mem) {
      mem.scalar(v_square) = sq;
      mem.scalar(v_side) = side;
      // Constant tables.
      static constexpr double kSteps[kDirs] = {1, -1, 8, -8, 9, -9, 7, -7};
      auto& dirs = mem.array(v_dir);
      for (std::size_t i = 0; i < kDirs; ++i) dirs[i] = kSteps[i];
      auto& rays = mem.array(v_ray);
      for (std::size_t s = 0; s < kSquares; ++s)
        for (std::size_t d = 0; d < kDirs; ++d)
          rays[s * kDirs + d] = static_cast<double>((s + d) % 7 + 1);
      // The board changes per move (mid-game density ~25%).
      support::Rng rng(inv_seed ^ 0xb0a2d);
      auto& board = mem.array(v_board);
      for (double& cell : board)
        cell = rng.bernoulli(0.25)
                   ? static_cast<double>(rng.uniform_int(1, 6)) *
                         (rng.bernoulli(0.5) ? 1.0 : -1.0)
                   : 0.0;
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
