/// \file bzip2.cpp
/// BZIP2.fullGtU — the suffix comparison at the heart of the block-sorting
/// compressor: compare the block starting at i1 against the block starting
/// at i2, byte by byte with an early exit on the first difference. Control
/// flow branches on block contents, and the block is permuted by the
/// surrounding sort between invocations, so the array-content context
/// variable is not a run-time constant: CBR is rejected and RBR is used
/// (Table 1: fullGtU → RBR, 24.2M invocations).

#include "workloads/integer_kernels.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kBlock = 1024;
}

std::string Bzip2FullGtU::benchmark() const { return "BZIP2"; }
std::string Bzip2FullGtU::ts_name() const { return "fullGtU"; }
rating::Method Bzip2FullGtU::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t Bzip2FullGtU::paper_invocations() const {
  return 24'200'000;
}

ir::Function Bzip2FullGtU::build() const {
  ir::FunctionBuilder b("fullGtU");
  const auto i1 = b.param_scalar("i1");
  const auto i2 = b.param_scalar("i2");
  const auto nblock = b.param_scalar("nblock");
  const auto block = b.param_array("block", kBlock);
  const auto result = b.param_scalar("result");

  const auto k = b.scalar("k");
  const auto c1 = b.scalar("c1");
  const auto c2 = b.scalar("c2");
  const auto p1 = b.scalar("p1");
  const auto p2 = b.scalar("p2");

  b.assign(result, b.c(0.0));
  b.assign(p1, b.v(i1));
  b.assign(p2, b.v(i2));
  b.for_loop(k, b.c(0.0), b.v(nblock), [&] {
    b.assign(c1, b.at(block, b.mod(b.v(p1), b.v(nblock))));
    b.assign(c2, b.at(block, b.mod(b.v(p2), b.v(nblock))));
    b.if_then(b.ne(b.v(c1), b.v(c2)), [&] {
      b.assign(result, b.gt(b.v(c1), b.v(c2)));
    });
    b.break_if(b.ne(b.v(c1), b.v(c2)));
    b.assign(p1, b.add(b.v(p1), b.c(1.0)));
    b.assign(p2, b.add(b.v(p2), b.c(1.0)));
  });
  return b.build();
}

void Bzip2FullGtU::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 9.0;  // tiny TS: σ·100 = 2.6 at w=10 in Table 1
  t.reg_pressure = 7.0;
  t.loop_regularity = 0.2;
}

Trace Bzip2FullGtU::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const double nblock = ref ? 600 : 300;
  const std::size_t invocations = ref ? 4200 : 3000;

  const ir::Function& fn = function();
  const ir::VarId v_i1 = *fn.find_var("i1");
  const ir::VarId v_i2 = *fn.find_var("i2");
  const ir::VarId v_nblock = *fn.find_var("nblock");
  const ir::VarId v_block = *fn.find_var("block");

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("bzip2"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    support::Rng pick(inv_seed);
    const double a1 = static_cast<double>(
        pick.uniform_int(0, static_cast<std::int64_t>(nblock) - 1));
    const double a2 = static_cast<double>(
        pick.uniform_int(0, static_cast<std::int64_t>(nblock) - 1));
    inv.context = {a1, a2, nblock};
    inv.context_determines_time = false;  // depends on block contents
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.12);
    inv.bind = [v_i1, v_i2, v_nblock, v_block, a1, a2, nblock,
                inv_seed](ir::Memory& mem) {
      mem.scalar(v_i1) = a1;
      mem.scalar(v_i2) = a2;
      mem.scalar(v_nblock) = nblock;
      // Low-entropy data (long runs of the dominant symbol) gives
      // realistic data-dependent comparison lengths; the surrounding sort
      // permutes the block between invocations.
      support::Rng rng(inv_seed ^ 0x5a5a);
      auto& block = mem.array(v_block);
      for (std::size_t i = 0; i < static_cast<std::size_t>(nblock); ++i)
        block[i] = rng.bernoulli(0.04)
                       ? static_cast<double>(rng.uniform_int(1, 255))
                       : 0.0;
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
