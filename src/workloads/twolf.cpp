/// \file twolf.cpp
/// TWOLF.new_dbox_a — incremental wire-length evaluation of the placement
/// annealer: for each terminal of the moved cell, recompute the bounding
/// box of its net by scanning the net's pins with min/max conditionals.
/// Pin coordinates change with every accepted move, so control flow
/// depends on mutating data: RBR (Table 1: new_dbox_a → RBR, 3.19M
/// invocations).

#include "workloads/integer_kernels.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxTerms = 24;
constexpr std::size_t kMaxPins = kMaxTerms * 16;
}

std::string TwolfNewDboxA::benchmark() const { return "TWOLF"; }
std::string TwolfNewDboxA::ts_name() const { return "new_dbox_a"; }
rating::Method TwolfNewDboxA::paper_method() const {
  return rating::Method::kRBR;
}
std::uint64_t TwolfNewDboxA::paper_invocations() const {
  return 3'190'000;
}

ir::Function TwolfNewDboxA::build() const {
  ir::FunctionBuilder b("new_dbox_a");
  const auto num_terms = b.param_scalar("num_terms");
  const auto pins_per_net = b.param_array("pins_per_net", kMaxTerms);
  const auto xs = b.param_array("xs", kMaxPins);
  const auto ys = b.param_array("ys", kMaxPins);
  const auto cost = b.param_scalar("cost");

  const auto t = b.scalar("t");
  const auto p = b.scalar("p");
  const auto base = b.scalar("base");
  const auto npins = b.scalar("npins");
  const auto xmin = b.scalar("xmin");
  const auto xmax = b.scalar("xmax");
  const auto ymin = b.scalar("ymin");
  const auto ymax = b.scalar("ymax");

  b.assign(cost, b.c(0.0));
  b.for_loop(t, b.c(0.0), b.v(num_terms), [&] {
    b.assign(base, b.mul(b.v(t), b.c(16.0)));
    b.assign(npins, b.at(pins_per_net, b.v(t)));
    b.assign(xmin, b.at(xs, b.v(base)));
    b.assign(xmax, b.at(xs, b.v(base)));
    b.assign(ymin, b.at(ys, b.v(base)));
    b.assign(ymax, b.at(ys, b.v(base)));
    b.for_loop(p, b.c(1.0), b.v(npins), [&] {
      const auto x = b.at(xs, b.add(b.v(base), b.v(p)));
      const auto y = b.at(ys, b.add(b.v(base), b.v(p)));
      b.if_then(b.lt(x, b.v(xmin)), [&] { b.assign(xmin, x); });
      b.if_then(b.gt(x, b.v(xmax)), [&] { b.assign(xmax, x); });
      b.if_then(b.lt(y, b.v(ymin)), [&] { b.assign(ymin, y); });
      b.if_then(b.gt(y, b.v(ymax)), [&] { b.assign(ymax, y); });
    });
    b.assign(cost, b.add(b.v(cost),
                         b.add(b.sub(b.v(xmax), b.v(xmin)),
                               b.sub(b.v(ymax), b.v(ymin)))));
  });
  return b.build();
}

void TwolfNewDboxA::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 6.8;  // σ·100 = 1.9 at w=10
  t.reg_pressure = 10.0;
  t.loop_regularity = 0.3;
}

Trace TwolfNewDboxA::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  const std::size_t invocations = ref ? 3500 : 2500;
  const double terms = ref ? 16 : 10;

  const ir::Function& fn = function();
  const ir::VarId v_terms = *fn.find_var("num_terms");
  const ir::VarId v_ppn = *fn.find_var("pins_per_net");
  const ir::VarId v_xs = *fn.find_var("xs");
  const ir::VarId v_ys = *fn.find_var("ys");

  const auto base_seed =
      support::hash_combine(seed, support::stable_hash("twolf"));
  for (std::size_t it = 0; it < invocations; ++it) {
    sim::Invocation inv;
    inv.id = it + 1;
    inv.context = {terms};
    inv.context_determines_time = false;  // pin counts & coords mutate
    const auto inv_seed = support::hash_combine(base_seed, it + 1);
    // Data-dependent speed of this invocation (cache/branch behaviour
    // of this particular input): shared by re-executions, unexplained
    // by counters.
    inv.irregularity = support::Rng(inv_seed ^ 0x177).lognormal(0.1);
    inv.bind = [v_terms, v_ppn, v_xs, v_ys, terms,
                inv_seed](ir::Memory& mem) {
      mem.scalar(v_terms) = terms;
      support::Rng rng(inv_seed ^ 0x701f);
      auto& ppn = mem.array(v_ppn);
      for (double& n : ppn)
        n = static_cast<double>(rng.uniform_int(2, 15));
      auto& xs = mem.array(v_xs);
      auto& ys = mem.array(v_ys);
      for (std::size_t i = 0; i < kMaxPins; ++i) {
        xs[i] = static_cast<double>(rng.uniform_int(0, 4095));
        ys[i] = static_cast<double>(rng.uniform_int(0, 4095));
      }
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
