/// \file wupwise.cpp
/// WUPWISE.zgemm — complex matrix-matrix multiply (BLAS zgemm) on the
/// small SU(3)-like matrices of the lattice-QCD code. Called with two
/// distinct (m, n, k) shapes during the Wilson-fermion update, giving the
/// two contexts of Table 1 (zgemm → CBR, contexts 1 and 2). Complex
/// arithmetic is modelled with interleaved re/im array layout.

#include "workloads/wupwise.hpp"

#include <array>

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace peak::workloads {

namespace {
constexpr std::size_t kMaxElems = 2 * 24 * 24;  // re/im interleaved
}

std::string WupwiseZgemm::benchmark() const { return "WUPWISE"; }
std::string WupwiseZgemm::ts_name() const { return "zgemm"; }
rating::Method WupwiseZgemm::paper_method() const {
  return rating::Method::kCBR;
}
std::uint64_t WupwiseZgemm::paper_invocations() const { return 22'500'000; }

ir::Function WupwiseZgemm::build() const {
  ir::FunctionBuilder b("zgemm");
  const auto m = b.param_scalar("m");
  const auto n = b.param_scalar("n");
  const auto kk = b.param_scalar("k");
  const auto a = b.param_array("a", kMaxElems, true);
  const auto bb = b.param_array("b", kMaxElems, true);
  const auto c = b.param_array("c", kMaxElems, true);

  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  const auto l = b.scalar("l");
  const auto sr = b.scalar("sr", true);
  const auto si = b.scalar("si", true);
  const auto pa = b.scalar("pa");
  const auto pb = b.scalar("pb");

  // c[i,j] = Σ_l a[i,l] * b[l,j] over complex values.
  b.for_loop(i, b.c(0.0), b.v(m), [&] {
    b.for_loop(j, b.c(0.0), b.v(n), [&] {
      b.assign(sr, b.c(0.0));
      b.assign(si, b.c(0.0));
      b.for_loop(l, b.c(0.0), b.v(kk), [&] {
        // a index: 2*(i*k + l); b index: 2*(l*n + j).
        b.assign(pa, b.mul(b.c(2.0),
                           b.add(b.mul(b.v(i), b.v(kk)), b.v(l))));
        b.assign(pb, b.mul(b.c(2.0),
                           b.add(b.mul(b.v(l), b.v(n)), b.v(j))));
        const auto ar = b.at(a, b.v(pa));
        const auto ai = b.at(a, b.add(b.v(pa), b.c(1.0)));
        const auto br = b.at(bb, b.v(pb));
        const auto bi = b.at(bb, b.add(b.v(pb), b.c(1.0)));
        b.assign(sr, b.add(b.v(sr),
                           b.sub(b.mul(ar, br), b.mul(ai, bi))));
        b.assign(si, b.add(b.v(si),
                           b.add(b.mul(ar, bi), b.mul(ai, br))));
      });
      const auto pc =
          b.mul(b.c(2.0), b.add(b.mul(b.v(i), b.v(n)), b.v(j)));
      b.store(c, pc, b.v(sr));
      b.store(c, b.add(pc, b.c(1.0)), b.v(si));
    });
  });
  return b.build();
}

void WupwiseZgemm::adjust_traits(sim::TsTraits& t) const {
  t.noise_scale = 4.5;  // Table 1: σ·100 ≈ 1.3–1.5 at w=10
  t.reg_pressure = 12.0;
  t.loop_regularity = 0.95;
}

Trace WupwiseZgemm::trace(DataSet ds, std::uint64_t seed) const {
  Trace trace;
  const bool ref = ds == DataSet::kRef;
  trace.workload_scale = ref ? 1.0 : 0.3;
  // Two call shapes (the Table 1 contexts): a tall-skinny product and a
  // compact square one.
  const std::vector<std::array<double, 3>> shapes = {{12, 12, 12},
                                                     {4, 24, 12}};
  const std::size_t invocations = ref ? 4200 : 3000;

  const ir::Function& fn = function();
  const auto data_seed =
      support::hash_combine(seed, support::stable_hash("wupwise"));
  for (std::size_t it = 0; it < invocations; ++it) {
    const auto& s = shapes[it % shapes.size()];
    sim::Invocation inv;
    inv.id = it + 1;
    inv.context = {s[0], s[1], s[2]};
    inv.context_determines_time = true;
    inv.bind = [&fn, s, data_seed](ir::Memory& mem) {
      mem.scalar(*fn.find_var("m")) = s[0];
      mem.scalar(*fn.find_var("n")) = s[1];
      mem.scalar(*fn.find_var("k")) = s[2];
      support::Rng rng(data_seed);
      for (const char* name : {"a", "b", "c"})
        for (double& x : mem.array(*fn.find_var(name)))
          x = rng.uniform(-1.0, 1.0);
    };
    trace.invocations.push_back(std::move(inv));
  }
  return trace;
}

}  // namespace peak::workloads
