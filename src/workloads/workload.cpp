#include "workloads/workload.hpp"

namespace peak::workloads {

const char* to_string(DataSet ds) {
  return ds == DataSet::kTrain ? "train" : "ref";
}

const ir::Function& WorkloadBase::function() const {
  if (!fn_) fn_ = std::make_unique<ir::Function>(build());
  return *fn_;
}

sim::TsTraits WorkloadBase::traits() const {
  sim::TsTraits t = sim::derive_traits(function(), benchmark());
  adjust_traits(t);
  return t;
}

}  // namespace peak::workloads
