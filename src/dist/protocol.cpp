#include "dist/protocol.hpp"

#include <sstream>

#include "support/check.hpp"

namespace peak::dist {

namespace jsonl = core::jsonl;

namespace {

rating::Method method_from(const std::string& name) {
  for (rating::Method m :
       {rating::Method::kCBR, rating::Method::kMBR, rating::Method::kRBR,
        rating::Method::kAVG, rating::Method::kWHL})
    if (name == rating::to_string(m)) return m;
  PEAK_CHECK(false, "dist: unknown rating method '" + name + "'");
  return rating::Method::kWHL;
}

const char* rule_name(stats::OutlierRule rule) {
  switch (rule) {
    case stats::OutlierRule::kNone: return "none";
    case stats::OutlierRule::kSigma: return "sigma";
    case stats::OutlierRule::kMad: return "mad";
  }
  return "none";
}

stats::OutlierRule rule_from(const std::string& name) {
  if (name == "none") return stats::OutlierRule::kNone;
  if (name == "sigma") return stats::OutlierRule::kSigma;
  if (name == "mad") return stats::OutlierRule::kMad;
  PEAK_CHECK(false, "dist: unknown outlier rule '" + name + "'");
  return stats::OutlierRule::kNone;
}

std::string config_key_checked(const jsonl::JsonValue& record,
                               const char* field) {
  const std::string& key = record.at(field).as_string();
  for (char c : key)
    PEAK_CHECK(c == '0' || c == '1',
               "dist: config key is not a 0/1 bit string");
  return key;
}

}  // namespace

std::string hello_frame(const std::string& name) {
  std::ostringstream out;
  out << "{\"op\":\"hello\",\"version\":" << kDistProtocolVersion
      << ",\"name\":" << jsonl::quote(name) << "}";
  return out.str();
}

std::string serialize_session_spec(const core::SessionSpec& spec) {
  std::ostringstream out;
  out << "{\"bench\":" << jsonl::quote(spec.benchmark)
      << ",\"machine\":" << jsonl::quote(spec.machine)
      << ",\"dataset\":" << jsonl::quote(spec.dataset)
      << ",\"trace_seed\":" << spec.trace_seed << ",\"seed\":" << spec.seed
      << ",\"win\":{\"min\":" << spec.window.min_samples
      << ",\"max\":" << spec.window.max_samples << ",\"cv\":\""
      << jsonl::hex_double(spec.window.cv_threshold) << "\",\"orule\":\""
      << rule_name(spec.window.outliers.rule) << "\",\"ok\":\""
      << jsonl::hex_double(spec.window.outliers.k) << "\",\"odrop\":\""
      << jsonl::hex_double(spec.window.outliers.max_drop_fraction)
      << "\",\"oiter\":" << spec.window.outliers.max_iterations
      << "},\"mbr\":{\"minc\":" << spec.mbr.min_samples_per_component
      << ",\"max\":" << spec.mbr.max_samples << ",\"var\":\""
      << jsonl::hex_double(spec.mbr.var_threshold) << "\",\"cv\":\""
      << jsonl::hex_double(spec.mbr.cv_threshold) << "\",\"dom\":\""
      << jsonl::hex_double(spec.mbr.dominant_share)
      << "\"},\"irbr\":" << (spec.improved_rbr ? "true" : "false")
      << ",\"rbp\":" << spec.rbr_batch_pairs << "}";
  return out.str();
}

std::string session_frame(const core::SessionSpec& spec) {
  std::ostringstream out;
  out << "{\"op\":\"session\",\"version\":" << kDistProtocolVersion
      << ",\"spec\":" << serialize_session_spec(spec) << "}";
  return out.str();
}

std::string refuse_frame(const std::string& reason) {
  return "{\"op\":\"refuse\",\"reason\":" + jsonl::quote(reason) + "}";
}

std::string ready_frame() { return "{\"op\":\"ready\"}"; }

std::string task_frame(std::uint64_t id, unsigned attempt,
                       const core::RemoteMemberTask& task) {
  std::ostringstream out;
  out << "{\"op\":\"task\",\"id\":" << id << ",\"attempt\":" << attempt
      << ",\"m\":" << jsonl::quote(rating::to_string(task.method))
      << ",\"base\":" << jsonl::quote(task.base_key)
      << ",\"cfg\":" << jsonl::quote(task.cfg_key)
      << ",\"pro\":" << (task.prologue ? "true" : "false")
      << ",\"seed\":" << task.seed << ",\"memo\":[";
  bool first = true;
  for (const auto& [key, value] : task.memo) {
    if (!first) out << ",";
    first = false;
    out << "{\"k\":" << jsonl::quote(key) << ",\"v\":\""
        << jsonl::hex_double(value) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string result_frame(std::uint64_t id, const std::string& payload) {
  return "{\"op\":\"result\",\"id\":" + std::to_string(id) +
         ",\"payload\":" + jsonl::quote(payload) + "}";
}

std::string error_frame(std::uint64_t id, const std::string& what) {
  return "{\"op\":\"err\",\"id\":" + std::to_string(id) +
         ",\"what\":" + jsonl::quote(what) + "}";
}

std::string heartbeat_frame(std::uint64_t seq) {
  return "{\"op\":\"hb\",\"seq\":" + std::to_string(seq) + "}";
}

std::string bye_frame() { return "{\"op\":\"bye\"}"; }

jsonl::JsonValue parse_frame(const std::string& payload) {
  return jsonl::JsonParser(payload).parse();
}

std::string frame_op(const jsonl::JsonValue& record) {
  if (!record.has("op")) return "";
  return record.at("op").as_string();
}

core::SessionSpec parse_session_spec(const jsonl::JsonValue& spec) {
  core::SessionSpec out;
  out.benchmark = spec.at("bench").as_string();
  out.machine = spec.at("machine").as_string();
  out.dataset = spec.at("dataset").as_string();
  out.trace_seed = spec.at("trace_seed").as_u64();
  out.seed = spec.at("seed").as_u64();
  const auto& win = spec.at("win");
  out.window.min_samples =
      static_cast<std::size_t>(win.at("min").as_u64());
  out.window.max_samples =
      static_cast<std::size_t>(win.at("max").as_u64());
  out.window.cv_threshold = win.at("cv").as_hex_double();
  out.window.outliers.rule = rule_from(win.at("orule").as_string());
  out.window.outliers.k = win.at("ok").as_hex_double();
  out.window.outliers.max_drop_fraction = win.at("odrop").as_hex_double();
  out.window.outliers.max_iterations =
      static_cast<int>(win.at("oiter").as_u64());
  const auto& mbr = spec.at("mbr");
  out.mbr.min_samples_per_component =
      static_cast<std::size_t>(mbr.at("minc").as_u64());
  out.mbr.max_samples = static_cast<std::size_t>(mbr.at("max").as_u64());
  out.mbr.var_threshold = mbr.at("var").as_hex_double();
  out.mbr.cv_threshold = mbr.at("cv").as_hex_double();
  out.mbr.dominant_share = mbr.at("dom").as_hex_double();
  out.improved_rbr = spec.at("irbr").as_bool();
  out.rbr_batch_pairs =
      static_cast<std::size_t>(spec.at("rbp").as_u64());
  return out;
}

TaskFrame parse_task_frame(const jsonl::JsonValue& record) {
  TaskFrame out;
  out.id = record.at("id").as_u64();
  out.attempt = static_cast<unsigned>(record.at("attempt").as_u64());
  out.task.method = method_from(record.at("m").as_string());
  out.task.base_key = config_key_checked(record, "base");
  out.task.cfg_key = config_key_checked(record, "cfg");
  out.task.prologue = record.at("pro").as_bool();
  out.task.seed = record.at("seed").as_u64();
  for (const auto& entry : record.at("memo").as_array())
    out.task.memo.emplace_back(entry.at("k").as_string(),
                               entry.at("v").as_hex_double());
  return out;
}

}  // namespace peak::dist
