#include "dist/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>

#include "dist/protocol.hpp"
#include "obs/metrics.hpp"
#include "proc/worker_table.hpp"
#include "support/check.hpp"

namespace peak::dist {

namespace {

using Clock = std::chrono::steady_clock;

/// A worker vanishing mid-write must surface as a write error, not kill
/// the coordinator with SIGPIPE.
void ignore_sigpipe_once() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

struct DistMetrics {
  obs::Counter& connected = obs::counter("dist.workers.connected");
  obs::Counter& lost = obs::counter("dist.workers.lost");
  obs::Counter& respawned = obs::counter("dist.workers.respawned");
  obs::Counter& dispatched = obs::counter("dist.tasks.dispatched");
  obs::Counter& requeued = obs::counter("dist.tasks.requeued");
  obs::Counter& failed = obs::counter("dist.tasks.failed");
  obs::Counter& heartbeat_gaps = obs::counter("dist.heartbeat.gaps");

  static DistMetrics& get() {
    static DistMetrics metrics;
    return metrics;
  }
};

}  // namespace

/// One connected agent. `queue` holds this round's undispatched task
/// indices; `current` is the single in-flight dispatch (one outstanding
/// task per worker keeps requeue loss bounded to one rating).
struct Coordinator::Worker {
  int fd = -1;
  std::size_t slot = 0;
  std::string label;  ///< agent name, or peer "host:port"
  proc::FrameReader reader;
  enum class State { kHello, kSession, kReady, kBusy } state = State::kHello;
  std::deque<std::size_t> queue;
  std::size_t current = 0;
  Clock::time_point dispatched_at{};
  Clock::time_point last_seen{};
  std::uint64_t tasks_done = 0;
};

Coordinator::Coordinator(core::SessionSpec spec, DistPolicy policy)
    : spec_(std::move(spec)), policy_(policy) {
  ignore_sigpipe_once();
}

Coordinator::~Coordinator() { shutdown(); }

bool Coordinator::listen(std::uint16_t port, bool loopback_only,
                         std::string* error) {
  return listener_.listen(port, loopback_only, error);
}

bool Coordinator::dial(const std::vector<std::string>& endpoints,
                       std::string* error) {
  for (const std::string& endpoint : endpoints) {
    std::string host;
    std::uint16_t port = 0;
    if (!support::split_host_port(endpoint, &host, &port)) {
      if (error) *error = "bad worker endpoint '" + endpoint + "'";
      return false;
    }
    const int fd = support::tcp_connect(
        host, port, static_cast<int>(policy_.connect_timeout.count()),
        error);
    if (fd < 0) return false;
    add_connection(fd, endpoint);
  }
  return true;
}

void Coordinator::add_connection(int fd, const std::string& peer) {
  auto w = std::make_unique<Worker>();
  w->fd = fd;
  w->slot = next_slot_++;
  w->label = peer;
  w->last_seen = Clock::now();
  workers_.push_back(std::move(w));
}

void Coordinator::accept_pending() {
  if (!listener_.listening()) return;
  std::string peer;
  int fd = -1;
  while ((fd = listener_.accept_ready(&peer)) >= 0)
    add_connection(fd, peer);
}

std::size_t Coordinator::fleet_size() const {
  std::size_t n = 0;
  for (const auto& w : workers_)
    if (w->state == Worker::State::kReady ||
        w->state == Worker::State::kBusy)
      ++n;
  return n;
}

std::vector<Coordinator::Worker*> Coordinator::ready_fleet() {
  std::vector<Worker*> fleet;
  for (const auto& w : workers_)
    if (w->state == Worker::State::kReady ||
        w->state == Worker::State::kBusy)
      fleet.push_back(w.get());
  // workers_ is join-ordered already; keep it explicit.
  std::sort(fleet.begin(), fleet.end(),
            [](const Worker* a, const Worker* b) { return a->slot < b->slot; });
  return fleet;
}

bool Coordinator::wait_for_fleet(std::string* error) {
  const Clock::time_point deadline = Clock::now() + policy_.connect_timeout;
  while (fleet_size() < policy_.min_workers) {
    if (Clock::now() >= deadline) {
      if (error)
        *error = "fleet formation timed out: " +
                 std::to_string(fleet_size()) + "/" +
                 std::to_string(policy_.min_workers) + " workers ready";
      return false;
    }
    pump(50);
  }
  fleet_formed_ = true;
  return true;
}

void Coordinator::handle_frame(Worker& w, const std::string& payload) {
  w.last_seen = Clock::now();
  const core::jsonl::JsonValue record = parse_frame(payload);
  const std::string op = frame_op(record);
  if (op == "hello") {
    const std::uint64_t version = record.at("version").as_u64();
    if (version != kDistProtocolVersion) {
      proc::write_frame(w.fd, refuse_frame(
          "protocol version " + std::to_string(version) +
          " != " + std::to_string(kDistProtocolVersion)));
      fail_worker(w.slot, proc::ExitClass::kNonzero, "version");
      return;
    }
    const std::string name = record.at("name").as_string();
    if (!name.empty()) w.label = name;
    if (!proc::write_frame(w.fd, session_frame(spec_))) {
      fail_worker(w.slot, proc::ExitClass::kSignal, "disconnect");
      return;
    }
    w.state = Worker::State::kSession;
  } else if (op == "ready") {
    w.state = Worker::State::kReady;
    ++stats_.workers_connected;
    DistMetrics::get().connected.inc();
    if (fleet_formed_) {
      ++stats_.workers_respawned;
      DistMetrics::get().respawned.inc();
    }
    if (policy_.update_worker_table) {
      proc::WorkerTable::global().spawned(w.slot, /*pid=*/0,
                                          /*respawn=*/false);
      proc::WorkerTable::global().set_label(w.slot, w.label);
      proc::WorkerTable::global().idle(w.slot);
    }
  } else if (op == "hb") {
    // last_seen already refreshed above.
  } else if (op == "result") {
    const std::uint64_t id = record.at("id").as_u64();
    PEAK_CHECK(round_tasks_ != nullptr && id < round_tasks_->size(),
               "dist: result frame outside a round");
    if (!done_[id]) {
      proc::TaskOutcome& out = (*outcomes_)[id];
      out.ok = true;
      out.payload = record.at("payload").as_string();
      out.attempts = out.failures.size() + 1;
      done_[id] = 1;
      --undecided_;
    }
    w.state = Worker::State::kReady;
    ++w.tasks_done;
    if (policy_.update_worker_table)
      proc::WorkerTable::global().idle(w.slot);
  } else if (op == "err") {
    // The rating host threw (a malformed task, an unknown scenario): the
    // worker is alive and stays in the fleet; the task burns an attempt.
    record_task_failure(w, proc::ExitClass::kNonzero, "task_error");
    w.state = Worker::State::kReady;
    if (policy_.update_worker_table)
      proc::WorkerTable::global().idle(w.slot);
  } else {
    fail_worker(w.slot, proc::ExitClass::kNonzero, "protocol");
  }
}

void Coordinator::record_task_failure(Worker& w, proc::ExitClass cls,
                                      const std::string& signature) {
  if (w.state != Worker::State::kBusy) return;
  PEAK_CHECK(round_tasks_ != nullptr && w.current < round_tasks_->size(),
             "dist: task failure outside a round");
  const std::size_t task = w.current;
  if (done_[task]) return;
  proc::TaskOutcome& out = (*outcomes_)[task];
  proc::WorkerFailure f;
  f.cls = cls;
  f.slot = w.slot;
  f.task = task;
  f.attempt = out.failures.size();
  f.burned_wall_us = std::chrono::duration<double, std::micro>(
                         Clock::now() - w.dispatched_at)
                         .count();
  f.signature = signature;
  out.failures.push_back(std::move(f));
  out.attempts = out.failures.size();
  if (out.failures.size() >= policy_.max_task_attempts) {
    out.ok = false;
    done_[task] = 1;
    --undecided_;
    ++stats_.tasks_failed;
    DistMetrics::get().failed.inc();
  } else {
    requeue_.push_back(task);
    ++stats_.tasks_requeued;
    DistMetrics::get().requeued.inc();
  }
}

void Coordinator::fail_worker(std::size_t slot, proc::ExitClass cls,
                              const std::string& signature) {
  const auto it = std::find_if(
      workers_.begin(), workers_.end(),
      [slot](const auto& w) { return w->slot == slot; });
  if (it == workers_.end()) return;
  Worker& w = **it;
  const bool was_fleet = w.state == Worker::State::kReady ||
                         w.state == Worker::State::kBusy;
  record_task_failure(w, cls, signature);
  // Undispatched work reassigns without burning attempts — the tasks
  // never ran here.
  for (std::size_t task : w.queue) {
    if (done_[task]) continue;
    requeue_.push_back(task);
    ++stats_.tasks_requeued;
    DistMetrics::get().requeued.inc();
  }
  w.queue.clear();
  if (was_fleet) {
    ++stats_.workers_lost;
    DistMetrics::get().lost.inc();
    if (signature == "heartbeat") {
      ++stats_.heartbeat_gaps;
      DistMetrics::get().heartbeat_gaps.inc();
    }
    if (policy_.update_worker_table)
      proc::WorkerTable::global().died(w.slot, signature);
  }
  ::close(w.fd);
  workers_.erase(it);
}

void Coordinator::dispatch_idle() {
  if (round_tasks_ == nullptr) return;
  for (const auto& wp : workers_) {
    Worker& w = *wp;
    if (w.state != Worker::State::kReady) continue;
    // Feed from the worker's own queue, then the requeue pool, then
    // steal from the longest sibling queue — an idle worker never waits
    // while undispatched work exists anywhere.
    std::size_t task = 0;
    bool have = false;
    while (!w.queue.empty()) {
      task = w.queue.front();
      w.queue.pop_front();
      if (!done_[task]) {
        have = true;
        break;
      }
    }
    while (!have && !requeue_.empty()) {
      task = requeue_.front();
      requeue_.pop_front();
      if (!done_[task]) have = true;
    }
    if (!have) {
      Worker* longest = nullptr;
      for (const auto& other : workers_)
        if (other.get() != &w && !other->queue.empty() &&
            (longest == nullptr ||
             other->queue.size() > longest->queue.size()))
          longest = other.get();
      while (longest != nullptr && !longest->queue.empty()) {
        task = longest->queue.back();
        longest->queue.pop_back();
        if (!done_[task]) {
          have = true;
          break;
        }
      }
    }
    if (!have) continue;
    const proc::TaskOutcome& out = (*outcomes_)[task];
    const unsigned attempt = static_cast<unsigned>(out.failures.size());
    if (!proc::write_frame(
            w.fd, task_frame(task, attempt, (*round_tasks_)[task]))) {
      requeue_.push_front(task);
      fail_worker(w.slot, proc::ExitClass::kSignal, "disconnect");
      // workers_ mutated: restart the scan on the next pump pass.
      return;
    }
    w.state = Worker::State::kBusy;
    w.current = task;
    w.dispatched_at = Clock::now();
    ++stats_.tasks_dispatched;
    DistMetrics::get().dispatched.inc();
    if (policy_.update_worker_table)
      proc::WorkerTable::global().running(w.slot, task);
  }
}

void Coordinator::check_deadlines() {
  const Clock::time_point now = Clock::now();
  // Collect first: fail_worker mutates workers_.
  std::vector<std::pair<std::size_t, const char*>> dead;
  for (const auto& w : workers_) {
    // Handshaking workers are silent while they rebuild and profile the
    // scenario, so they get the (longer) connect deadline; agents start
    // heartbeating right after hello, so this rarely matters in practice.
    const bool handshaking = w->state == Worker::State::kHello ||
                             w->state == Worker::State::kSession;
    const auto quiet_limit =
        handshaking ? std::max(policy_.connect_timeout,
                               policy_.heartbeat_timeout)
                    : policy_.heartbeat_timeout;
    if (w->state == Worker::State::kBusy &&
        now - w->dispatched_at > policy_.stall_timeout)
      dead.emplace_back(w->slot, "timeout");
    else if (now - w->last_seen > quiet_limit)
      dead.emplace_back(w->slot, "heartbeat");
  }
  for (const auto& [slot, signature] : dead)
    fail_worker(slot, proc::ExitClass::kTimeout, signature);
}

void Coordinator::pump(int wait_ms) {
  accept_pending();
  std::vector<pollfd> fds;
  std::vector<std::size_t> slots;
  if (listener_.listening())
    fds.push_back({listener_.fd(), POLLIN, 0});
  for (const auto& w : workers_) {
    fds.push_back({w->fd, POLLIN, 0});
    slots.push_back(w->slot);
  }
  if (fds.empty()) return;
  const int n = ::poll(fds.data(), fds.size(), wait_ms);
  check_deadlines();
  if (n <= 0) return;
  const std::size_t base = listener_.listening() ? 1 : 0;
  if (base == 1 && (fds[0].revents & POLLIN) != 0) accept_pending();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if ((fds[base + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
      continue;
    const auto it = std::find_if(
        workers_.begin(), workers_.end(),
        [slot = slots[i]](const auto& w) { return w->slot == slot; });
    if (it == workers_.end()) continue;  // already failed this pass
    Worker& w = **it;
    char buf[65536];
    const ssize_t got = ::read(w.fd, buf, sizeof buf);
    if (got <= 0) {
      fail_worker(w.slot, proc::ExitClass::kSignal, "disconnect");
      continue;
    }
    w.reader.feed(buf, static_cast<std::size_t>(got));
    bool dead = false;
    while (const auto payload = w.reader.next()) {
      handle_frame(w, *payload);
      // handle_frame may have dropped the worker; re-check.
      if (std::find_if(workers_.begin(), workers_.end(),
                       [slot = slots[i]](const auto& x) {
                         return x->slot == slot;
                       }) == workers_.end()) {
        dead = true;
        break;
      }
    }
    if (!dead && w.reader.corrupted())
      fail_worker(w.slot, proc::ExitClass::kNonzero, "corrupt");
  }
}

std::vector<proc::TaskOutcome> Coordinator::run_round(
    const std::vector<core::RemoteMemberTask>& tasks) {
  std::vector<proc::TaskOutcome> outcomes(tasks.size());
  if (tasks.empty()) return outcomes;
  round_tasks_ = &tasks;
  outcomes_ = &outcomes;
  done_.assign(tasks.size(), 0);
  undecided_ = tasks.size();
  requeue_.clear();

  // slotted_for schedule over the fleet at round start: task i → ready
  // worker i mod W, in join order. Between rounds the coordinator was
  // not draining sockets, so buffered heartbeats must not read as gaps:
  // every clock starts fresh here.
  std::vector<Worker*> fleet = ready_fleet();
  for (const auto& w : workers_) w->last_seen = Clock::now();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (fleet.empty())
      requeue_.push_back(i);  // no fleet yet: the first joiner drains it
    else
      fleet[i % fleet.size()]->queue.push_back(i);
  }

  Clock::time_point fleet_lost_at{};
  while (undecided_ > 0) {
    if (fleet_size() == 0) {
      // The whole fleet is gone. Give a replacement connect_timeout to
      // join (the listener stays in the poll set) before giving up.
      if (fleet_lost_at == Clock::time_point{})
        fleet_lost_at = Clock::now();
      PEAK_CHECK(Clock::now() - fleet_lost_at < policy_.connect_timeout,
                 "dist: all workers lost and none rejoined; " +
                     std::to_string(undecided_) + " tasks undone");
    } else {
      fleet_lost_at = Clock::time_point{};
    }
    dispatch_idle();
    pump(50);
  }
  round_tasks_ = nullptr;
  outcomes_ = nullptr;
  // Leftover queue entries (tasks that completed elsewhere first) must
  // not leak into the next round.
  for (const auto& w : workers_) w->queue.clear();
  return outcomes;
}

void Coordinator::shutdown() {
  for (const auto& w : workers_) {
    proc::write_frame(w->fd, bye_frame());
    ::close(w->fd);
    if (policy_.update_worker_table &&
        (w->state == Worker::State::kReady ||
         w->state == Worker::State::kBusy))
      proc::WorkerTable::global().finished(w->slot, w->tasks_done);
  }
  workers_.clear();
  listener_.close();
}

}  // namespace peak::dist
