#pragma once

/// \file worker_agent.hpp
/// Worker side of distributed tuning (`peak::dist`): the long-lived agent
/// behind `peak worker`. One agent serves one coordinator session at a
/// time — handshake, rebuild the tuning scenario from the SessionSpec,
/// then a task loop that rates shipped batch members through the exact
/// in-process batch-member code path and streams the serialized deltas
/// back. A heartbeat thread keeps the coordinator's liveness clock fed
/// (writes share a mutex with result frames, the ChildWriter idiom from
/// `proc`), and every rating is a pure function of the task descriptor,
/// so a worker can die, rejoin, or be replaced without perturbing the
/// run's bit-identical outcome.

#include <cstdint>
#include <string>

namespace peak::dist {

struct WorkerOptions {
  /// Connect mode: dial the coordinator at host:port, serve the session,
  /// exit when it ends (`peak worker --connect host:port`).
  std::string connect_host;
  std::uint16_t connect_port = 0;
  /// Listen mode: accept coordinators on this port, one session at a
  /// time, until shut down (`peak worker --listen PORT`). Active when
  /// `listen` is true.
  bool listen = false;
  std::uint16_t listen_port = 0;
  bool loopback_only = false;
  /// Heartbeat cadence; must comfortably beat the coordinator's
  /// heartbeat_timeout.
  int heartbeat_interval_ms = 100;
  /// Advertised in the hello frame and shown in the coordinator's fleet
  /// table ("" = the agent's peer address as seen by the coordinator).
  std::string name;
  /// Test/bench hook: after this many completed tasks the agent drops
  /// the connection abruptly — no bye, mid-session — to exercise the
  /// coordinator's requeue path. 0 = unlimited.
  std::uint64_t max_tasks = 0;
  /// Timeout for the connect-mode dial.
  int connect_timeout_ms = 10'000;
};

class WorkerAgent {
public:
  explicit WorkerAgent(WorkerOptions options) : options_(std::move(options)) {}

  /// Serve one coordinator session on an established connection. Owns
  /// and closes `fd`. Returns 0 on a graceful end (bye frame, peer EOF,
  /// or the max_tasks hook tripping), non-zero on refusal or a protocol/
  /// scenario error (a diagnostic goes to stderr).
  int serve(int fd);

  /// Full lifecycle for the CLI: connect mode dials and serves once;
  /// listen mode accepts and serves sessions until a shutdown signal.
  int run();

private:
  WorkerOptions options_;
};

}  // namespace peak::dist
