#include "dist/worker_agent.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "core/remote_eval.hpp"
#include "dist/protocol.hpp"
#include "proc/protocol.hpp"
#include "support/check.hpp"
#include "support/shutdown.hpp"
#include "support/tcp.hpp"

namespace peak::dist {

namespace {

void ignore_sigpipe_once() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

/// Frame writes from the agent's main loop and its heartbeat thread
/// interleave on one socket; the mutex keeps frames atomic (the same
/// reason proc's ChildWriter exists).
class SharedWriter {
public:
  explicit SharedWriter(int fd) : fd_(fd) {}

  bool write(const std::string& payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    return proc::write_frame(fd_, payload);
  }

private:
  int fd_;
  std::mutex mutex_;
};

/// Heartbeat thread: one hb frame per interval, from hello until the
/// session ends. Started before the (potentially long) scenario rebuild
/// so the coordinator never mistakes profiling for death.
class Heartbeat {
public:
  Heartbeat(SharedWriter& writer, int interval_ms)
      : writer_(writer), interval_ms_(interval_ms), thread_([this] {
          std::uint64_t seq = 0;
          std::unique_lock<std::mutex> lock(mutex_);
          while (!stop_) {
            cv_.wait_for(lock,
                         std::chrono::milliseconds(interval_ms_),
                         [this] { return stop_; });
            if (stop_) break;
            if (!writer_.write(heartbeat_frame(seq++))) break;
          }
        }) {}

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

private:
  SharedWriter& writer_;
  int interval_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int WorkerAgent::serve(int fd) {
  ignore_sigpipe_once();
  SharedWriter writer(fd);
  int status = 0;
  {
    Heartbeat heartbeat(writer, options_.heartbeat_interval_ms);
    if (!writer.write(hello_frame(options_.name))) {
      ::close(fd);
      return 1;
    }
    proc::FrameReader reader;
    std::unique_ptr<core::RemoteRatingHost> host;
    std::uint64_t tasks_done = 0;
    bool abrupt = false;
    bool done = false;
    while (!done) {
      char buf[65536];
      const ssize_t got = ::read(fd, buf, sizeof buf);
      if (got <= 0) break;  // coordinator gone: a clean end for an agent
      reader.feed(buf, static_cast<std::size_t>(got));
      std::optional<std::string> payload;
      while (!done && (payload = reader.next())) {
        core::jsonl::JsonValue record;
        std::string op;
        try {
          record = parse_frame(*payload);
          op = frame_op(record);
        } catch (const support::CheckError& e) {
          std::fprintf(stderr, "peak worker: bad frame: %s\n", e.what());
          status = 1;
          done = true;
          break;
        }
        if (op == "session") {
          try {
            const std::uint64_t version = record.at("version").as_u64();
            PEAK_CHECK(version == kDistProtocolVersion,
                       "coordinator protocol version " +
                           std::to_string(version) + " != " +
                           std::to_string(kDistProtocolVersion));
            host = std::make_unique<core::RemoteRatingHost>(
                parse_session_spec(record.at("spec")));
          } catch (const support::CheckError& e) {
            std::fprintf(stderr, "peak worker: cannot serve session: %s\n",
                         e.what());
            status = 1;
            done = true;
            break;
          }
          if (!writer.write(ready_frame())) {
            status = 1;
            done = true;
          }
        } else if (op == "task") {
          if (host == nullptr) {
            std::fprintf(stderr, "peak worker: task before session\n");
            status = 1;
            done = true;
            break;
          }
          std::uint64_t id = 0;
          std::string result;
          std::string error;
          try {
            id = record.at("id").as_u64();
            const TaskFrame task = parse_task_frame(record);
            result = host->rate(task.task);
          } catch (const std::exception& e) {
            error = e.what();
          }
          const bool sent =
              error.empty() ? writer.write(result_frame(id, result))
                            : writer.write(error_frame(id, error));
          if (!sent) {
            status = 1;
            done = true;
            break;
          }
          ++tasks_done;
          if (options_.max_tasks != 0 &&
              tasks_done >= options_.max_tasks) {
            // Test hook: die like a crashed worker — drop the socket
            // mid-session with no goodbye.
            abrupt = true;
            done = true;
          }
        } else if (op == "refuse") {
          std::fprintf(stderr, "peak worker: refused: %s\n",
                       record.at("reason").as_string().c_str());
          status = 1;
          done = true;
        } else if (op == "bye") {
          done = true;
        } else {
          std::fprintf(stderr, "peak worker: unexpected frame '%s'\n",
                       op.c_str());
          status = 1;
          done = true;
        }
      }
      if (reader.corrupted()) {
        std::fprintf(stderr, "peak worker: corrupt stream\n");
        status = 1;
        break;
      }
    }
    (void)abrupt;  // an abrupt end is still exit 0: the hook did its job
  }
  ::close(fd);
  return status;
}

int WorkerAgent::run() {
  ignore_sigpipe_once();
  if (!options_.listen) {
    std::string error;
    const int fd =
        support::tcp_connect(options_.connect_host, options_.connect_port,
                             options_.connect_timeout_ms, &error);
    if (fd < 0) {
      std::fprintf(stderr, "peak worker: %s\n", error.c_str());
      return 1;
    }
    return serve(fd);
  }
  support::TcpListener listener;
  std::string error;
  if (!listener.listen(options_.listen_port, options_.loopback_only,
                       &error)) {
    std::fprintf(stderr, "peak worker: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "peak worker: listening on port %u\n",
               listener.port());
  while (!support::shutdown_requested()) {
    pollfd pfd{listener.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 200) <= 0) continue;
    const int fd = listener.accept_ready();
    if (fd < 0) continue;
    const int status = serve(fd);
    if (status != 0)
      std::fprintf(stderr, "peak worker: session ended with status %d\n",
                   status);
  }
  return 0;
}

}  // namespace peak::dist
