#pragma once

/// \file protocol.hpp
/// Wire protocol of the distributed tuning layer (`peak::dist`). Frames
/// reuse the `proc` framing verbatim — eight lowercase hex digits of
/// payload length, then a single-line JSONL record — because a TCP socket
/// and a pipe deliver the same torn byte stream and `proc::FrameReader`
/// was built for exactly that. Doubles travel as 16-hex IEEE-754 bit
/// patterns (core/jsonl), so a session spec and a memo entry round-trip
/// bit-exactly; that is a precondition of the coordinator's bit-identity
/// guarantee, not a nicety.
///
/// Conversation (docs/INTERNALS.md §13):
///
///   worker → coord   {"op":"hello","version":1,"name":…}
///   coord  → worker  {"op":"session","version":1,"spec":{…}}
///                    or {"op":"refuse","reason":…} then close
///   worker → coord   {"op":"ready"}           (scenario rebuilt, profiled)
///   coord  → worker  {"op":"task","id":N,"attempt":A,…}
///   worker → coord   {"op":"result","id":N,"payload":…}
///                    {"op":"err","id":N,"what":…}   (rating host threw)
///                    {"op":"hb","seq":N}            (liveness, 100ms-ish)
///   coord  → worker  {"op":"bye"}             (graceful fleet shutdown)
///
/// The version field is checked on both sides of the handshake; a
/// mismatch gets an explicit refuse frame (so the operator sees *why*
/// the worker exited) instead of a protocol error downstream.

#include <cstdint>
#include <string>

#include "core/jsonl.hpp"
#include "core/remote_eval.hpp"

namespace peak::dist {

/// Bump on any frame-shape or SessionSpec change. Handshakes between
/// different versions are refused, never guessed at.
constexpr std::uint64_t kDistProtocolVersion = 1;

// ---- frame builders (payloads; wrap with proc::write_frame) ----------

[[nodiscard]] std::string hello_frame(const std::string& name);
[[nodiscard]] std::string session_frame(const core::SessionSpec& spec);
[[nodiscard]] std::string refuse_frame(const std::string& reason);
[[nodiscard]] std::string ready_frame();
[[nodiscard]] std::string task_frame(std::uint64_t id, unsigned attempt,
                                     const core::RemoteMemberTask& task);
[[nodiscard]] std::string result_frame(std::uint64_t id,
                                       const std::string& payload);
[[nodiscard]] std::string error_frame(std::uint64_t id,
                                      const std::string& what);
[[nodiscard]] std::string heartbeat_frame(std::uint64_t seq);
[[nodiscard]] std::string bye_frame();

// ---- frame decoding ---------------------------------------------------

/// Parse one frame payload and return its record; throws
/// support::CheckError on malformed JSON (the peer is broken).
[[nodiscard]] core::jsonl::JsonValue parse_frame(const std::string& payload);

/// The record's "op" field ("" when absent).
[[nodiscard]] std::string frame_op(const core::jsonl::JsonValue& record);

/// Decoded {"op":"task"} frame.
struct TaskFrame {
  std::uint64_t id = 0;
  unsigned attempt = 0;
  core::RemoteMemberTask task;
};

/// Throws support::CheckError on a malformed record (missing field, bad
/// method name, bad config key alphabet).
[[nodiscard]] core::SessionSpec parse_session_spec(
    const core::jsonl::JsonValue& spec);
[[nodiscard]] TaskFrame parse_task_frame(
    const core::jsonl::JsonValue& record);

/// SessionSpec body only (the value of the session frame's "spec" key) —
/// exposed so tests can round-trip specs without a socket.
[[nodiscard]] std::string serialize_session_spec(
    const core::SessionSpec& spec);

}  // namespace peak::dist
