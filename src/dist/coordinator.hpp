#pragma once

/// \file coordinator.hpp
/// Coordinator side of distributed tuning (`peak::dist`). The tuning
/// driver hands it one batch round at a time (run_round); it fans the
/// slot-tagged member tasks out over a fleet of TCP worker agents, keeps
/// the fleet honest with Supervisor-style liveness (heartbeats, a
/// per-dispatch watchdog), requeues tasks from dead or disconnected
/// workers onto survivors, and returns one proc::TaskOutcome per task in
/// canonical task order — the same contract proc::Supervisor::run()
/// gives the isolated path, so the driver merges both transports with
/// identical code and the TuningOutcome stays bit-identical to
/// `--search-threads N` for any fleet size and any death schedule.
///
/// Single-threaded and poll-driven: every public call runs the event
/// loop inline on the caller's thread (the driver is blocked on the
/// round anyway), so there is no locking and no background thread to
/// wind down. New workers may join mid-round — the listener fd sits in
/// the poll set — and immediately steal queued work.

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/remote_eval.hpp"
#include "proc/protocol.hpp"
#include "proc/supervisor.hpp"
#include "support/tcp.hpp"

namespace peak::dist {

/// Fleet-management knobs. The defaults suit loopback tests and LAN
/// fleets; WAN fleets mostly want a larger heartbeat_timeout.
struct DistPolicy {
  /// A worker silent for longer than this (no frame of any kind; agents
  /// heartbeat every ~100ms) is declared dead.
  std::chrono::milliseconds heartbeat_timeout{2'000};
  /// Per-dispatch deadline: a worker holding one task longer than this
  /// is stalled, its connection is dropped, and the task requeues.
  std::chrono::milliseconds stall_timeout{30'000};
  /// Attempts per task before it is reported permanently failed (the
  /// driver then quarantines deterministic crashers).
  std::size_t max_task_attempts = 3;
  /// wait_for_fleet() returns once this many workers finished the
  /// handshake; run_round() also needs at least one live worker.
  std::size_t min_workers = 1;
  /// Deadline for wait_for_fleet(), for dialing a worker endpoint, and
  /// for a mid-round wait when the whole fleet died.
  std::chrono::milliseconds connect_timeout{10'000};
  /// Publish fleet rows to proc::WorkerTable::global() (the /workers
  /// endpoint and --progress); off for throwaway coordinators in tests.
  bool update_worker_table = true;
};

/// Mirrored into the obs registry (dist.* metrics) as events happen.
struct CoordinatorStats {
  std::uint64_t workers_connected = 0;  ///< completed handshakes, total
  std::uint64_t workers_lost = 0;
  /// Handshakes completed after the fleet first formed — replacements
  /// and late joiners.
  std::uint64_t workers_respawned = 0;
  std::uint64_t tasks_dispatched = 0;
  /// Tasks moved off a dead worker (its in-flight dispatch and its
  /// undispatched queue) back onto survivors.
  std::uint64_t tasks_requeued = 0;
  std::uint64_t tasks_failed = 0;  ///< permanent, after max attempts
  std::uint64_t heartbeat_gaps = 0;
};

class Coordinator {
public:
  /// `spec` is sent to every worker during the handshake; it must
  /// describe the exact scenario the owning driver tunes.
  explicit Coordinator(core::SessionSpec spec, DistPolicy policy = {});
  ~Coordinator();  ///< shutdown() if the caller has not already

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Accept workers on `port` (0 = ephemeral, see port()). Loopback-only
  /// when `loopback_only`; fleets on other machines need all interfaces.
  bool listen(std::uint16_t port, bool loopback_only, std::string* error);

  /// Dial "host:port" worker endpoints (agents in --listen mode). Each
  /// connection still runs the normal handshake. False when any endpoint
  /// is unreachable or malformed.
  bool dial(const std::vector<std::string>& endpoints, std::string* error);

  /// Run the event loop until `min_workers` workers are ready or
  /// connect_timeout passes (false, with a description in *error).
  bool wait_for_fleet(std::string* error);

  /// Execute one batch round; returns one outcome per task, in task
  /// order. Tasks map to the fleet with the slotted_for schedule (task i
  /// → ready worker i mod W, in join order); idle workers then steal
  /// requeued and queued work, so the schedule adapts to stragglers and
  /// deaths without affecting results (members are order-independent by
  /// construction). Throws support::CheckError when the fleet dies
  /// entirely and no replacement joins within connect_timeout.
  std::vector<proc::TaskOutcome> run_round(
      const std::vector<core::RemoteMemberTask>& tasks);

  /// Graceful fleet shutdown: send every worker a bye frame, close all
  /// connections and the listener. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t fleet_size() const;
  [[nodiscard]] const CoordinatorStats& stats() const { return stats_; }
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] const core::SessionSpec& spec() const { return spec_; }

private:
  struct Worker;

  void accept_pending();
  void add_connection(int fd, const std::string& peer);
  /// One poll()+drain pass over listener and workers; `wait_ms` bounds
  /// the block so watchdog checks stay timely.
  void pump(int wait_ms);
  void handle_frame(Worker& w, const std::string& payload);
  void dispatch_idle();
  void check_deadlines();
  /// Declare a worker dead: record a failure for its in-flight task (if
  /// any), requeue its queued tasks, drop the connection.
  void fail_worker(std::size_t index, proc::ExitClass cls,
                   const std::string& signature);
  void record_task_failure(Worker& w, proc::ExitClass cls,
                           const std::string& signature);
  [[nodiscard]] std::vector<Worker*> ready_fleet();

  core::SessionSpec spec_;
  DistPolicy policy_;
  CoordinatorStats stats_;
  support::TcpListener listener_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::size_t next_slot_ = 0;  ///< join-order slot ids, never reused
  bool fleet_formed_ = false;  ///< flips at first wait_for_fleet success

  // Round state (valid inside run_round only).
  const std::vector<core::RemoteMemberTask>* round_tasks_ = nullptr;
  std::vector<proc::TaskOutcome>* outcomes_ = nullptr;
  std::vector<char> done_;
  std::size_t undecided_ = 0;
  std::deque<std::size_t> requeue_;
};

}  // namespace peak::dist
