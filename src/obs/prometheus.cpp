#include "obs/prometheus.hpp"

#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

namespace peak::obs {

namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

/// Prometheus floats: plain shortest-round-trip decimal is fine; the
/// exposition format accepts anything strtod does.
std::string number(double v) {
  std::ostringstream os;
  os.precision(17);
  os << finite_or_zero(v);
  return os.str();
}

struct LedgerRow {
  std::string path;
  double total_cycles;
  double self_cycles;
};

void flatten_ledger(const Ledger::Node& node, const std::string& prefix,
                    std::vector<LedgerRow>& rows) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  rows.push_back({path, node.total_cycles, node.self_cycles});
  for (const Ledger::Node& child : node.children)
    flatten_ledger(child, path, rows);
}

}  // namespace

std::string prometheus_name(std::string_view registry_name,
                            std::string_view suffix) {
  std::string out = "peak_";
  out.reserve(out.size() + registry_name.size() + suffix.size());
  for (char c : registry_name) out += valid_name_char(c) ? c : '_';
  out.append(suffix);
  return out;
}

std::string prometheus_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void write_prometheus(const MetricsRegistry::Snapshot& metrics,
                      const Ledger::Node& costs, std::ostream& os) {
  for (const auto& [name, value] : metrics.counters) {
    const std::string pname = prometheus_name(name, "_total");
    os << "# TYPE " << pname << " counter\n"
       << pname << ' ' << value << '\n';
  }
  for (const auto& [name, value] : metrics.gauges) {
    const std::string pname = prometheus_name(name);
    os << "# TYPE " << pname << " gauge\n"
       << pname << ' ' << number(value) << '\n';
  }
  for (const auto& [name, h] : metrics.histograms) {
    const std::string pname = prometheus_name(name);
    os << "# TYPE " << pname << " histogram\n";
    // Registry buckets are disjoint; Prometheus buckets are cumulative.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      os << pname << "_bucket{le=\"" << number(h.bounds[i]) << "\"} "
         << cumulative << '\n';
    }
    os << pname << "_bucket{le=\"+Inf\"} " << h.count << '\n'
       << pname << "_sum " << number(h.sum) << '\n'
       << pname << "_count " << h.count << '\n';
  }
  // All samples of one metric family must form a single group, so the
  // tree is flattened first and each family emitted in full.
  std::vector<LedgerRow> rows;
  flatten_ledger(costs, "", rows);
  os << "# TYPE peak_cost_cycles gauge\n";
  for (const LedgerRow& row : rows)
    os << "peak_cost_cycles{path=\"" << prometheus_label_escape(row.path)
       << "\"} " << number(row.total_cycles) << '\n';
  os << "# TYPE peak_cost_self_cycles gauge\n";
  for (const LedgerRow& row : rows)
    os << "peak_cost_self_cycles{path=\""
       << prometheus_label_escape(row.path) << "\"} "
       << number(row.self_cycles) << '\n';
}

std::string prometheus_text(const MetricsRegistry::Snapshot& metrics,
                            const Ledger::Node& costs) {
  std::ostringstream os;
  write_prometheus(metrics, costs, os);
  return os.str();
}

}  // namespace peak::obs
