#include "obs/event_ring.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace peak::obs {

EventRing::EventRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

EventRing& EventRing::global() {
  static EventRing ring;
  return ring;
}

std::uint64_t EventRing::publish(std::string kind, std::string data) {
  std::uint64_t seq;
  {
    std::lock_guard lock(mutex_);
    seq = next_seq_++;
    entries_.push_back(
        {seq, Tracer::global().now_us(), std::move(kind), std::move(data)});
    if (entries_.size() > capacity_) entries_.pop_front();
  }
  cv_.notify_all();
  return seq;
}

EventRing::Fetch EventRing::fetch(std::uint64_t from,
                                  std::size_t max) const {
  Fetch out;
  std::lock_guard lock(mutex_);
  if (from == 0) from = 1;
  out.next_seq = from;
  if (entries_.empty()) {
    out.next_seq = std::max(from, next_seq_);
    return out;
  }
  const std::uint64_t oldest = entries_.front().seq;
  if (from < oldest) {
    out.dropped = oldest - from;
    from = oldest;
  }
  // seq is dense (every publish advances it by one), so the first
  // wanted entry sits at a computable offset.
  const std::size_t offset = static_cast<std::size_t>(from - oldest);
  for (std::size_t i = offset;
       i < entries_.size() && out.entries.size() < max; ++i)
    out.entries.push_back(entries_[i]);
  out.next_seq = out.entries.empty()
                     ? std::max(from, next_seq_)
                     : out.entries.back().seq + 1;
  return out;
}

std::uint64_t EventRing::head_seq() const {
  std::lock_guard lock(mutex_);
  return next_seq_ - 1;
}

bool EventRing::wait(std::uint64_t from,
                     std::chrono::milliseconds timeout) const {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, timeout, [&] { return next_seq_ > from; });
  return next_seq_ > from;
}

void EventRing::wake_all() const { cv_.notify_all(); }

void EventRing::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
  next_seq_ = 1;
}

std::uint64_t publish_run_event(std::string kind, std::string data) {
  return EventRing::global().publish(std::move(kind), std::move(data));
}

}  // namespace peak::obs
