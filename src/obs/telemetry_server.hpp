#pragma once

/// \file telemetry_server.hpp
/// Live telemetry over HTTP for an in-flight tuning run (`peak::obs`).
/// `peak tune --telemetry-port N` starts one TelemetryServer next to the
/// driver; operators (or `peak monitor`) then read:
///
///   GET /metrics      Prometheus text exposition of the metrics registry
///                     and the cost ledger (see prometheus.hpp)
///   GET /snapshot     one JSON document: run phase, uptime, the
///                     ProgressModel, the full metrics snapshot, and the
///                     cost-attribution ledger tree
///   GET /events       Server-Sent Events tail of the run-event ring;
///                     slow consumers get a `gap` event naming how many
///                     events they lost, never back-pressure
///   GET /healthz      {"status":"ok","run_phase":...,"uptime_us":...}
///   GET /quarantine   quarantine table (when the CLI wires a provider)
///   GET /cache/stats  rating-cache statistics (ditto)
///   GET /workers      per-worker subprocess states (ditto; the
///                     --isolate-workers fleet)
///
/// Every handler only *reads*, each under the owning structure's snapshot
/// discipline (registry mutex, ledger mutex, ring mutex), so serving a
/// scrape can delay a metric update by a mutex hold but can never change
/// what the tuner computes: a run scraped at full tilt produces the
/// bit-identical TuningOutcome of an unobserved run (ctest asserts this).
///
/// The quarantine / cache providers are injected as callables so obs
/// stays independent of the fault and core layers.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"

namespace peak::obs {

/// Build the /snapshot document from point-in-time copies (pure — tests
/// and the server share it).
std::string telemetry_snapshot_json(
    const MetricsRegistry::Snapshot& metrics, const Ledger::Node& costs,
    const std::string& run_phase, std::uint64_t uptime_us,
    std::uint64_t events_head_seq);

/// The /healthz document (pure).
std::string telemetry_healthz_json(const std::string& run_phase,
                                   std::uint64_t uptime_us);

/// A /snapshot document parsed back — what `peak monitor` renders.
struct RemoteSnapshot {
  std::string run_phase;
  std::uint64_t uptime_us = 0;
  std::uint64_t events_head_seq = 0;
  ProgressModel progress;
};

/// Parse a /snapshot document (throws support::CheckError on malformed
/// input). Round trip: parse(telemetry_snapshot_json(...)).progress ==
/// build_progress_model(...).
RemoteSnapshot parse_snapshot_json(const std::string& json);

/// Parse one ProgressModel JSON object (the "progress" member of
/// /snapshot, or a --progress-json document).
ProgressModel progress_model_from_json(const std::string& json);

class TelemetryServer {
public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    /// When non-empty, the bound port is written here as one decimal
    /// line on start() and the file is removed on stop() — the
    /// rendezvous `peak monitor <file>` reads.
    std::string port_file;
    unsigned workers = 4;
    /// Optional endpoint providers (null → that endpoint answers 404).
    std::function<std::string()> quarantine_json;
    std::function<std::string()> cache_stats_json;
    /// Per-worker subprocess rows (`--isolate-workers`); the CLI wires
    /// proc::WorkerTable::global().json here.
    std::function<std::string()> workers_json;
  };

  explicit TelemetryServer(Options options);
  ~TelemetryServer();  ///< stops if still running

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind + serve. False (with `error` filled in) when the port cannot
  /// be bound or the port file cannot be written.
  bool start(std::string* error = nullptr);

  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] bool running() const;

  /// Unblock streams, join the server threads, remove the port file.
  /// Idempotent.
  void stop();

  /// Coarse run phase shown by /healthz and /snapshot ("starting",
  /// "tuning", "reporting", "done" — free-form, set by the CLI).
  void set_run_phase(std::string phase);
  [[nodiscard]] std::string run_phase() const;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace peak::obs
