#pragma once

/// \file attribution.hpp
/// Thread-local attribution context for the cost ledger. Components of
/// the pipeline push their identity (machine, benchmark, tuning section,
/// rating method) onto a per-thread path stack with AttributionScope;
/// charge points then call charge_phase() and the cost lands on
/// `<current path>/<phase>` in Ledger::global() without any component
/// having to know what is above it.
///
/// Also home of the search-overhead split: rate_config() brackets every
/// evaluator call with an EvaluatorWallGate, and SearchOverheadScope
/// charges (its own elapsed wall − evaluator wall inside it) as the
/// `search_overhead` phase — the cycles the search algorithm itself
/// spends choosing candidates, as opposed to measuring them.

#include <string>
#include <string_view>
#include <vector>

namespace peak::obs {

/// RAII component of the calling thread's attribution path.
class AttributionScope {
public:
  explicit AttributionScope(std::string component);
  ~AttributionScope();

  AttributionScope(const AttributionScope&) = delete;
  AttributionScope& operator=(const AttributionScope&) = delete;
};

/// The calling thread's current attribution path, outermost scope first.
[[nodiscard]] std::vector<std::string> attribution_path();

/// RAII adoption of a complete attribution path on the calling thread —
/// how pool workers of a batched evaluation charge costs to the
/// submitting thread's ledger node (machine → benchmark → section →
/// method) instead of to an empty worker-thread path. Restores the
/// thread's previous path on destruction.
class AttributionPathScope {
public:
  explicit AttributionPathScope(std::vector<std::string> path);
  ~AttributionPathScope();

  AttributionPathScope(const AttributionPathScope&) = delete;
  AttributionPathScope& operator=(const AttributionPathScope&) = delete;

private:
  std::vector<std::string> saved_;
};

/// Charge Ledger::global() at `<current path>/<phase>`; an empty phase
/// charges the current path's node itself.
void charge_phase(std::string_view phase, double cycles,
                  double wall_us = 0.0);

/// Wall microseconds this thread has spent inside evaluator calls since
/// thread start — the quantity SearchOverheadScope subtracts.
[[nodiscard]] double evaluator_wall_us();

/// RAII bracket around one evaluator call; accumulates its elapsed wall
/// time into evaluator_wall_us().
class EvaluatorWallGate {
public:
  EvaluatorWallGate();
  ~EvaluatorWallGate();

  EvaluatorWallGate(const EvaluatorWallGate&) = delete;
  EvaluatorWallGate& operator=(const EvaluatorWallGate&) = delete;

private:
  double start_us_;
  bool outermost_;  ///< nested gates only count the outermost interval
};

/// RAII bracket around a search algorithm's run(): on destruction charges
/// max(0, elapsed − evaluator wall inside) to phase "search_overhead"
/// (wall only; the search itself burns no simulated cycles).
class SearchOverheadScope {
public:
  SearchOverheadScope();
  ~SearchOverheadScope();

  SearchOverheadScope(const SearchOverheadScope&) = delete;
  SearchOverheadScope& operator=(const SearchOverheadScope&) = delete;

private:
  double start_us_;
  double evaluator_us_at_start_;
};

}  // namespace peak::obs
