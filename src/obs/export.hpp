#pragma once

/// \file export.hpp
/// Sinks and serializers for `peak::obs`: a JSONL event stream, a Chrome
/// `trace_event` JSON file loadable in chrome://tracing or Perfetto, an
/// in-memory sink for tests, plus metrics serialization (JSON and a
/// plain-text `support::Table` summary).

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"

namespace peak::obs {

/// Discards everything; equivalent to having no sink installed, but lets
/// callers keep a non-null sink pipeline (e.g. a disabled --trace path).
class NullSink final : public Sink {
public:
  void on_event(const TraceEvent&) override {}
};

/// Collects events in memory. The Tracer serializes on_event() calls,
/// so reads are safe once tracing is disabled or flushed.
class VectorSink final : public Sink {
public:
  void on_event(const TraceEvent& event) override {
    events_.push_back(event);
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

private:
  std::vector<TraceEvent> events_;
};

/// Streams one JSON object per line as events complete:
///   {"name":...,"cat":...,"ph":"X","ts":...,"dur":...,"tid":...,
///    "depth":...,"args":{...}}
class JsonlSink final : public Sink {
public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;
  void on_event(const TraceEvent& event) override;
  void flush() override;
  [[nodiscard]] bool ok() const;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Buffers events and writes a complete Chrome trace_event JSON document
/// ({"traceEvents":[...]}) on flush / destruction.
class ChromeTraceSink final : public Sink {
public:
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;
  void on_event(const TraceEvent& event) override;
  void flush() override;
  [[nodiscard]] bool ok() const;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Build a file sink from a path: ".jsonl" → JsonlSink, anything else →
/// ChromeTraceSink. Returns null if the file cannot be opened.
std::shared_ptr<Sink> make_file_sink(const std::string& path);

/// JSON-escape a string (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Render a double as a JSON number, clamping NaN/Inf to 0 (strict JSON
/// parsers reject the literals) — the shared policy of every obs export.
std::string json_number(double v);

/// Serialize one event as a single-line JSON object (no trailing \n).
std::string to_json(const TraceEvent& event);

/// Serialize a metrics snapshot:
///   {"counters":{...},"gauges":{...},"histograms":{name:
///    {"bounds":[...],"counts":[...],"count":N,"sum":S}}}
void write_metrics_json(const MetricsRegistry::Snapshot& snapshot,
                        std::ostream& os);

/// Write the snapshot to a file; returns false on I/O failure.
bool write_metrics_json_file(const MetricsRegistry::Snapshot& snapshot,
                             const std::string& path);

/// Human-readable summary of every non-zero instrument.
support::Table metrics_table(const MetricsRegistry::Snapshot& snapshot);

}  // namespace peak::obs
