#pragma once

/// \file trace.hpp
/// Structured tracing for PEAK (`peak::obs`). The library is instrumented
/// with spans (named, nested, attributed durations) at its hot seams —
/// profile passes, rating attempts, search probes — and with instant
/// events for one-off facts. Events flow to a Sink; with no sink
/// installed the instrumentation costs one relaxed atomic load per span,
/// so tier-1 timing is unaffected.
///
/// Spans nest per thread: a thread-local depth counter is recorded on
/// each event, and Chrome's trace viewer reconstructs the same nesting
/// from the (tid, ts, dur) containment when a trace is exported.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace peak::obs {

/// One key=value attribute attached to a span or event. Values are
/// pre-rendered strings so sinks never need type dispatch.
struct Attr {
  std::string key;
  std::string value;
};

Attr attr(std::string key, std::string value);
Attr attr(std::string key, const char* value);
Attr attr(std::string key, double value);
Attr attr(std::string key, unsigned long long value);
Attr attr(std::string key, unsigned long value);
Attr attr(std::string key, unsigned value);
Attr attr(std::string key, int value);

enum class EventPhase {
  kComplete,  ///< a span: [ts_us, ts_us + dur_us)
  kInstant,   ///< a point event
};

struct TraceEvent {
  std::string name;
  std::string category;
  EventPhase phase = EventPhase::kInstant;
  std::uint64_t ts_us = 0;   ///< start, µs since the tracer's epoch
  std::uint64_t dur_us = 0;  ///< complete events only
  std::uint32_t tid = 0;     ///< small sequential per-thread id
  std::uint32_t depth = 0;   ///< span nesting depth on this thread
  std::vector<Attr> args;
};

/// Receives completed events. The Tracer serializes on_event() calls
/// under its own mutex, so implementations need no locking of their own.
class Sink {
public:
  virtual ~Sink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Process-wide tracer. Disabled (null sink) by default; install a sink
/// from export.hpp to start recording.
class Tracer {
public:
  static Tracer& global();

  /// Install a sink (null disables tracing). Flushes any previous sink.
  void set_sink(std::shared_ptr<Sink> sink);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Forward one finished event to the sink (no-op when disabled).
  void emit(TraceEvent event);

  /// Record a point event (no-op when disabled).
  void instant(std::string_view name, std::string_view category,
               std::vector<Attr> args = {});

  void flush();

  /// Microseconds since this tracer's construction.
  [[nodiscard]] std::uint64_t now_us() const;

  /// Small sequential id of the calling thread (stable per thread).
  static std::uint32_t thread_id();

private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::mutex mutex_;
  std::shared_ptr<Sink> sink_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span. Construction samples the clock only when tracing is
/// enabled; destruction emits a kComplete event. Attributes whose
/// computation is itself costly should be added behind `if (active())`.
class ScopedSpan {
public:
  ScopedSpan(std::string_view name, std::string_view category,
             std::vector<Attr> args = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  [[nodiscard]] bool active() const { return active_; }

  /// Attach an attribute after construction (no-op when inactive).
  void add(Attr a);

private:
  bool active_ = false;
  TraceEvent event_;
};

}  // namespace peak::obs
