#include "obs/metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peak::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  PEAK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram bounds must ascend");
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i)
    buckets_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  // upper_bound gives the first bound strictly greater than v; an
  // observation exactly on a bound belongs to that bound's bucket.
  const std::size_t bucket =
      (i > 0 && bounds_[i - 1] == v) ? i - 1 : i;
  buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_)
    out.push_back(b->load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_)
    snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_)
    snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.counts = h->counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

Counter& counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}
Gauge& gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}
Histogram& histogram(std::string_view name, std::vector<double> bounds) {
  return MetricsRegistry::global().histogram(name, std::move(bounds));
}

}  // namespace peak::obs
