#include "obs/metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peak::obs {

std::string sanitize_metric_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  PEAK_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
             "histogram bounds must ascend");
  buckets_.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i)
    buckets_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
}

void Histogram::observe(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) -
      bounds_.begin());
  // upper_bound gives the first bound strictly greater than v; an
  // observation exactly on a bound belongs to that bound's bucket.
  const std::size_t bucket =
      (i > 0 && bounds_[i - 1] == v) ? i - 1 : i;
  // Shared: observers stay concurrent with each other (the adds below
  // are atomic); only snapshot()/reset() exclude them, so a snapshot
  // never splits one observation across bucket, count, and sum.
  std::shared_lock lock(snapshot_lock_);
  buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  std::unique_lock lock(snapshot_lock_);
  HistogramSnapshot hs;
  hs.bounds = bounds_;
  hs.counts.reserve(buckets_.size());
  for (const auto& b : buckets_)
    hs.counts.push_back(b->load(std::memory_order_relaxed));
  hs.count = count_.load(std::memory_order_relaxed);
  hs.sum = sum_.load(std::memory_order_relaxed);
  return hs;
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_)
    out.push_back(b->load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() {
  std::unique_lock lock(snapshot_lock_);
  for (auto& b : buckets_) b->store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The overflow bucket has no upper edge; clamp to the last bound
    // (the estimate cannot exceed what the buckets resolve).
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double hi = bounds[i];
    const double lo = i > 0 ? bounds[i - 1] : std::min(0.0, bounds[0]);
    const double fraction =
        (rank - before) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::string clean = sanitize_metric_name(name);
  std::lock_guard lock(mutex_);
  auto it = counters_.find(clean);
  if (it == counters_.end())
    it = counters_.emplace(clean, std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::string clean = sanitize_metric_name(name);
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(clean);
  if (it == gauges_.end())
    it = gauges_.emplace(clean, std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  const std::string clean = sanitize_metric_name(name);
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(clean);
  if (it == histograms_.end())
    it = histograms_
             .emplace(clean, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_)
    snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_)
    snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_)
    snap.histograms.emplace(name, h->snapshot());
  return snap;
}

Counter& counter(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}
Gauge& gauge(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}
Histogram& histogram(std::string_view name, std::vector<double> bounds) {
  return MetricsRegistry::global().histogram(name, std::move(bounds));
}

}  // namespace peak::obs
