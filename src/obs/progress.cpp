#include "obs/progress.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

namespace peak::obs {

namespace {

std::uint64_t counter_or_zero(const MetricsRegistry::Snapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// "1.23e+09" is unreadable in a dashboard; render cycles with a metric
/// suffix instead (4.2G, 831M, 12.5k).
std::string human_cycles(double cycles) {
  static constexpr struct {
    double scale;
    char suffix;
  } kUnits[] = {{1e12, 'T'}, {1e9, 'G'}, {1e6, 'M'}, {1e3, 'k'}};
  std::ostringstream os;
  for (const auto& u : kUnits) {
    if (cycles >= u.scale) {
      os << std::fixed << std::setprecision(cycles >= 10 * u.scale ? 0 : 1)
         << cycles / u.scale << u.suffix;
      return os.str();
    }
  }
  os << std::fixed << std::setprecision(0) << cycles;
  return os.str();
}

std::string percent(double part, double whole) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << (whole > 0.0 ? 100.0 * part / whole : 0.0) << '%';
  return os.str();
}

}  // namespace

std::string render_progress_frame(const MetricsRegistry::Snapshot& metrics,
                                  const Ledger::Node& costs) {
  std::ostringstream os;

  const std::uint64_t configs =
      counter_or_zero(metrics, "search.configs_evaluated");
  const std::uint64_t started = counter_or_zero(metrics, "rating.started");
  const std::uint64_t converged =
      counter_or_zero(metrics, "rating.converged");
  const std::uint64_t invocations =
      counter_or_zero(metrics, "rating.invocations");

  os << "peak: " << configs << " configs | " << started << " ratings";
  if (started > 0)
    os << " (" << percent(static_cast<double>(converged),
                          static_cast<double>(started))
       << " converged)";
  os << " | " << invocations << " invocations | "
     << human_cycles(costs.total_cycles) << " cycles\n";

  // Phase split, summed over the whole tree. Phases are the leaves the
  // charge points use, so a depth-first sum per known phase name covers
  // every path without assuming tree depth.
  static constexpr const char* kPhases[] = {
      "profile", "timed",   "precondition",    "checkpoint", "whole_program",
      "retry",   "faulted", "search_overhead",
  };
  os << "  phases:";
  bool any_phase = false;
  for (const char* phase : kPhases) {
    const double cycles = phase_total_cycles(costs, phase);
    if (cycles <= 0.0) continue;
    any_phase = true;
    os << ' ' << phase << ' '
       << percent(cycles, costs.total_cycles > 0.0 ? costs.total_cycles
                                                   : cycles);
  }
  if (!any_phase) os << " (no cycles charged yet)";
  os << '\n';

  // Hottest tuning sections: machine/benchmark/section rows sorted by
  // simulated cost, most expensive first.
  struct Row {
    std::string label;
    double cycles;
  };
  std::vector<Row> rows;
  for (const Ledger::Node& machine : costs.children)
    for (const Ledger::Node& bench : machine.children)
      for (const Ledger::Node& section : bench.children)
        rows.push_back({machine.name + "/" + bench.name + "/" + section.name,
                        section.total_cycles});
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.cycles > b.cycles; });
  constexpr std::size_t kMaxRows = 6;
  const std::size_t shown = std::min(rows.size(), kMaxRows);
  for (std::size_t i = 0; i < shown; ++i)
    os << "  " << std::left << std::setw(32) << rows[i].label << ' '
       << std::right << std::setw(8) << human_cycles(rows[i].cycles)
       << "  (" << percent(rows[i].cycles, costs.total_cycles) << ")\n";
  if (rows.size() > shown)
    os << "  … " << rows.size() - shown << " more sections\n";

  return os.str();
}

struct ProgressView::Impl {
  Options options;
  std::thread ticker;
  std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  std::size_t last_lines = 0;  ///< lines drawn by the previous frame

  std::ostream& out() { return options.out ? *options.out : std::cerr; }

  void draw() {
    const std::string frame = render_progress_frame(
        MetricsRegistry::global().snapshot(), Ledger::global().snapshot());
    std::ostream& os = out();
    if (options.ansi && last_lines > 0) {
      // Cursor to the start of the previous frame, then erase below.
      os << "\x1b[" << last_lines << "F\x1b[0J";
    }
    os << frame << std::flush;
    last_lines = static_cast<std::size_t>(
        std::count(frame.begin(), frame.end(), '\n'));
  }

  void loop() {
    std::unique_lock lock(mutex);
    while (running) {
      cv.wait_for(lock, options.interval, [this] { return !running; });
      if (!running) break;
      lock.unlock();
      draw();
      lock.lock();
    }
  }
};

ProgressView::ProgressView() : ProgressView(Options{}) {}

ProgressView::ProgressView(Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

ProgressView::~ProgressView() { stop(); }

void ProgressView::start() {
  std::unique_lock lock(impl_->mutex);
  if (impl_->running) return;
  impl_->running = true;
  impl_->ticker = std::thread([this] { impl_->loop(); });
}

void ProgressView::stop() {
  {
    std::unique_lock lock(impl_->mutex);
    if (!impl_->running && !impl_->ticker.joinable()) return;
    impl_->running = false;
  }
  impl_->cv.notify_all();
  if (impl_->ticker.joinable()) impl_->ticker.join();
  impl_->draw();  // final frame with end-of-run numbers
}

}  // namespace peak::obs
