#include "obs/progress.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"

namespace peak::obs {

namespace {

std::uint64_t counter_or_zero(const MetricsRegistry::Snapshot& snap,
                              const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

/// "1.23e+09" is unreadable in a dashboard; render cycles with a metric
/// suffix instead (4.2G, 831M, 12.5k).
std::string human_cycles(double cycles) {
  static constexpr struct {
    double scale;
    char suffix;
  } kUnits[] = {{1e12, 'T'}, {1e9, 'G'}, {1e6, 'M'}, {1e3, 'k'}};
  std::ostringstream os;
  for (const auto& u : kUnits) {
    if (cycles >= u.scale) {
      os << std::fixed << std::setprecision(cycles >= 10 * u.scale ? 0 : 1)
         << cycles / u.scale << u.suffix;
      return os.str();
    }
  }
  os << std::fixed << std::setprecision(0) << cycles;
  return os.str();
}

std::string percent(double part, double whole) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << (whole > 0.0 ? 100.0 * part / whole : 0.0) << '%';
  return os.str();
}

}  // namespace

ProgressModel build_progress_model(const MetricsRegistry::Snapshot& metrics,
                                   const Ledger::Node& costs) {
  ProgressModel model;
  model.configs_evaluated =
      counter_or_zero(metrics, "search.configs_evaluated");
  model.ratings_started = counter_or_zero(metrics, "rating.started");
  model.ratings_converged = counter_or_zero(metrics, "rating.converged");
  model.invocations = counter_or_zero(metrics, "rating.invocations");
  model.total_cycles = costs.total_cycles;

  // Phase split, summed over the whole tree. Phases are the leaves the
  // charge points use, so a depth-first sum per known phase name covers
  // every path without assuming tree depth.
  static constexpr const char* kPhases[] = {
      "profile", "timed",   "precondition",    "checkpoint", "whole_program",
      "retry",   "faulted", "search_overhead", "cache",
  };
  for (const char* phase : kPhases) {
    const double cycles = phase_total_cycles(costs, phase);
    if (cycles <= 0.0) continue;
    model.phases.push_back({phase, cycles});
  }

  // Tuning sections: machine/benchmark/section rows sorted by simulated
  // cost, most expensive first.
  for (const Ledger::Node& machine : costs.children)
    for (const Ledger::Node& bench : machine.children)
      for (const Ledger::Node& section : bench.children)
        model.sections.push_back(
            {machine.name + "/" + bench.name + "/" + section.name,
             section.total_cycles});
  std::sort(model.sections.begin(), model.sections.end(),
            [](const ProgressModel::Section& a,
               const ProgressModel::Section& b) {
              return a.cycles > b.cycles;
            });

  model.workers.spawned = counter_or_zero(metrics, "proc.workers.spawned");
  model.workers.respawned =
      counter_or_zero(metrics, "proc.workers.respawned");
  model.workers.killed = counter_or_zero(metrics, "proc.kills.term") +
                         counter_or_zero(metrics, "proc.kills.kill");
  model.workers.heartbeat_gaps =
      counter_or_zero(metrics, "proc.heartbeat.gaps");

  model.dist.workers_connected =
      counter_or_zero(metrics, "dist.workers.connected");
  model.dist.workers_lost = counter_or_zero(metrics, "dist.workers.lost");
  model.dist.workers_respawned =
      counter_or_zero(metrics, "dist.workers.respawned");
  model.dist.tasks_dispatched =
      counter_or_zero(metrics, "dist.tasks.dispatched");
  model.dist.tasks_requeued =
      counter_or_zero(metrics, "dist.tasks.requeued");
  model.dist.tasks_failed = counter_or_zero(metrics, "dist.tasks.failed");
  model.dist.heartbeat_gaps =
      counter_or_zero(metrics, "dist.heartbeat.gaps");
  return model;
}

std::string render_progress_frame(const ProgressModel& model) {
  std::ostringstream os;

  os << "peak: " << model.configs_evaluated << " configs | "
     << model.ratings_started << " ratings";
  if (model.ratings_started > 0)
    os << " ("
       << percent(static_cast<double>(model.ratings_converged),
                  static_cast<double>(model.ratings_started))
       << " converged)";
  os << " | " << model.invocations << " invocations | "
     << human_cycles(model.total_cycles) << " cycles\n";

  os << "  phases:";
  for (const ProgressModel::Phase& phase : model.phases)
    os << ' ' << phase.name << ' '
       << percent(phase.cycles, model.total_cycles > 0.0
                                    ? model.total_cycles
                                    : phase.cycles);
  if (model.phases.empty()) os << " (no cycles charged yet)";
  os << '\n';

  if (model.workers.spawned > 0)
    os << "  workers: " << model.workers.spawned << " spawned, "
       << model.workers.respawned << " respawned, " << model.workers.killed
       << " killed, " << model.workers.heartbeat_gaps
       << " heartbeat gaps\n";

  if (model.dist.workers_connected > 0)
    os << "  fleet: " << model.dist.workers_connected << " connected, "
       << model.dist.workers_lost << " lost, "
       << model.dist.workers_respawned << " respawned | "
       << model.dist.tasks_dispatched << " dispatched, "
       << model.dist.tasks_requeued << " requeued, "
       << model.dist.tasks_failed << " failed\n";

  constexpr std::size_t kMaxRows = 6;
  const std::size_t shown = std::min(model.sections.size(), kMaxRows);
  for (std::size_t i = 0; i < shown; ++i)
    os << "  " << std::left << std::setw(32) << model.sections[i].label
       << ' ' << std::right << std::setw(8)
       << human_cycles(model.sections[i].cycles) << "  ("
       << percent(model.sections[i].cycles, model.total_cycles) << ")\n";
  if (model.sections.size() > shown)
    os << "  … " << model.sections.size() - shown << " more sections\n";

  return os.str();
}

std::string render_progress_frame(const MetricsRegistry::Snapshot& metrics,
                                  const Ledger::Node& costs) {
  return render_progress_frame(build_progress_model(metrics, costs));
}

void write_progress_json(const ProgressModel& model, std::ostream& os) {
  os << "{\"configs_evaluated\":" << model.configs_evaluated
     << ",\"ratings_started\":" << model.ratings_started
     << ",\"ratings_converged\":" << model.ratings_converged
     << ",\"invocations\":" << model.invocations
     << ",\"total_cycles\":" << json_number(model.total_cycles)
     << ",\"phases\":[";
  for (std::size_t i = 0; i < model.phases.size(); ++i)
    os << (i ? "," : "") << "{\"name\":\""
       << json_escape(model.phases[i].name)
       << "\",\"cycles\":" << json_number(model.phases[i].cycles) << "}";
  os << "],\"sections\":[";
  for (std::size_t i = 0; i < model.sections.size(); ++i)
    os << (i ? "," : "") << "{\"label\":\""
       << json_escape(model.sections[i].label)
       << "\",\"cycles\":" << json_number(model.sections[i].cycles) << "}";
  os << "]";
  // Emitted only when workers ever forked, so pre-isolation documents
  // stay byte-identical (and the parse side tolerates absence).
  if (model.workers.spawned > 0)
    os << ",\"workers\":{\"spawned\":" << model.workers.spawned
       << ",\"respawned\":" << model.workers.respawned
       << ",\"killed\":" << model.workers.killed
       << ",\"heartbeat_gaps\":" << model.workers.heartbeat_gaps << "}";
  // Same contract for the distributed fleet: absent unless one formed.
  if (model.dist.workers_connected > 0)
    os << ",\"dist\":{\"workers_connected\":"
       << model.dist.workers_connected
       << ",\"workers_lost\":" << model.dist.workers_lost
       << ",\"workers_respawned\":" << model.dist.workers_respawned
       << ",\"tasks_dispatched\":" << model.dist.tasks_dispatched
       << ",\"tasks_requeued\":" << model.dist.tasks_requeued
       << ",\"tasks_failed\":" << model.dist.tasks_failed
       << ",\"heartbeat_gaps\":" << model.dist.heartbeat_gaps << "}";
  os << "}";
}

std::string progress_json(const ProgressModel& model) {
  std::ostringstream os;
  write_progress_json(model, os);
  return os.str();
}

bool write_progress_json_atomic(const ProgressModel& model,
                                const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    write_progress_json(model, out);
    out << '\n';
    if (!out.good()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// --- ProgressView --------------------------------------------------------

struct ProgressView::Impl {
  Options options;
  std::thread ticker;
  std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  std::size_t last_lines = 0;  ///< lines drawn by the previous frame

  std::ostream& out() { return options.out ? *options.out : std::cerr; }

  void draw() {
    const std::string frame = render_progress_frame(
        MetricsRegistry::global().snapshot(), Ledger::global().snapshot());
    std::ostream& os = out();
    if (options.ansi && last_lines > 0) {
      // Cursor to the start of the previous frame, then erase below.
      os << "\x1b[" << last_lines << "F\x1b[0J";
    }
    os << frame << std::flush;
    last_lines = static_cast<std::size_t>(
        std::count(frame.begin(), frame.end(), '\n'));
  }

  void loop() {
    std::unique_lock lock(mutex);
    while (running) {
      cv.wait_for(lock, options.interval, [this] { return !running; });
      if (!running) break;
      lock.unlock();
      draw();
      lock.lock();
    }
  }
};

ProgressView::ProgressView() : ProgressView(Options{}) {}

ProgressView::ProgressView(Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
}

ProgressView::~ProgressView() { stop(); }

void ProgressView::start() {
  std::unique_lock lock(impl_->mutex);
  if (impl_->running) return;
  impl_->running = true;
  impl_->ticker = std::thread([this] { impl_->loop(); });
}

void ProgressView::stop() {
  {
    std::unique_lock lock(impl_->mutex);
    if (!impl_->running && !impl_->ticker.joinable()) return;
    impl_->running = false;
  }
  impl_->cv.notify_all();
  if (impl_->ticker.joinable()) impl_->ticker.join();
  impl_->draw();  // final frame with end-of-run numbers
}

// --- ProgressJsonWriter --------------------------------------------------

struct ProgressJsonWriter::Impl {
  Options options;
  std::thread ticker;
  std::mutex mutex;
  std::condition_variable cv;
  bool running = false;
  bool ever_started = false;

  void write_once() {
    write_progress_json_atomic(
        build_progress_model(MetricsRegistry::global().snapshot(),
                             Ledger::global().snapshot()),
        options.path);
  }

  void loop() {
    std::unique_lock lock(mutex);
    while (running) {
      cv.wait_for(lock, options.interval, [this] { return !running; });
      if (!running) break;
      lock.unlock();
      write_once();
      lock.lock();
    }
  }
};

ProgressJsonWriter::ProgressJsonWriter(Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
}

ProgressJsonWriter::~ProgressJsonWriter() { stop(); }

void ProgressJsonWriter::start() {
  std::unique_lock lock(impl_->mutex);
  if (impl_->running || impl_->options.path.empty()) return;
  impl_->running = true;
  impl_->ever_started = true;
  impl_->ticker = std::thread([this] { impl_->loop(); });
}

void ProgressJsonWriter::stop() {
  {
    std::unique_lock lock(impl_->mutex);
    if (!impl_->running && !impl_->ticker.joinable()) return;
    impl_->running = false;
  }
  impl_->cv.notify_all();
  if (impl_->ticker.joinable()) impl_->ticker.join();
  impl_->write_once();  // final end-of-run document
}

}  // namespace peak::obs
