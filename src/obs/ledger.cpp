#include "obs/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/export.hpp"

namespace peak::obs {

struct Ledger::TreeNode {
  double self_cycles = 0.0;
  double self_wall_us = 0.0;
  double total_cycles = 0.0;
  double total_wall_us = 0.0;
  std::map<std::string, TreeNode, std::less<>> children;
};

Ledger::Ledger() : root_(std::make_unique<TreeNode>()) {}
Ledger::~Ledger() = default;

Ledger& Ledger::global() {
  static Ledger ledger;
  return ledger;
}

void Ledger::charge(const std::vector<std::string>& path, double cycles,
                    double wall_us) {
  std::lock_guard lock(mutex_);
  TreeNode* node = root_.get();
  node->total_cycles += cycles;
  node->total_wall_us += wall_us;
  for (const std::string& component : path) {
    node = &node->children[component];
    node->total_cycles += cycles;
    node->total_wall_us += wall_us;
  }
  node->self_cycles += cycles;
  node->self_wall_us += wall_us;
  ++charges_;
}

Ledger::Node Ledger::snapshot() const {
  std::lock_guard lock(mutex_);
  const auto copy = [](const auto& self, const std::string& name,
                       const TreeNode& node) -> Node {
    Node out;
    out.name = name;
    out.self_cycles = node.self_cycles;
    out.self_wall_us = node.self_wall_us;
    out.total_cycles = node.total_cycles;
    out.total_wall_us = node.total_wall_us;
    out.children.reserve(node.children.size());
    for (const auto& [child_name, child] : node.children)
      out.children.push_back(self(self, child_name, child));
    return out;
  };
  return copy(copy, "all", *root_);
}

std::uint64_t Ledger::charges() const {
  std::lock_guard lock(mutex_);
  return charges_;
}

void Ledger::reset() {
  std::lock_guard lock(mutex_);
  *root_ = TreeNode{};
  charges_ = 0;
}

const Ledger::Node* Ledger::Node::child(std::string_view name) const {
  for (const Node& c : children)
    if (c.name == name) return &c;
  return nullptr;
}

namespace {

/// Path components double as folded-stack frames, whose grammar reserves
/// ';' (frame separator) and ' ' (value separator).
std::string fold_component(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), ';', '_');
  std::replace(out.begin(), out.end(), ' ', '_');
  return out;
}

void write_folded_rec(const Ledger::Node& node, std::string& prefix,
                      std::ostream& os) {
  const std::size_t mark = prefix.size();
  if (!prefix.empty()) prefix += ';';
  prefix += fold_component(node.name);
  if (node.self_cycles >= 0.5)
    os << prefix << ' '
       << static_cast<long long>(std::llround(node.self_cycles)) << '\n';
  for (const Ledger::Node& child : node.children)
    write_folded_rec(child, prefix, os);
  prefix.resize(mark);
}

double finite_or_zero(double v) { return std::isfinite(v) ? v : 0.0; }

void write_json_rec(const Ledger::Node& node, std::ostream& os) {
  std::ostringstream num;
  num.precision(17);
  num << "{\"name\":\"" << json_escape(node.name)
      << "\",\"cycles_self\":" << finite_or_zero(node.self_cycles)
      << ",\"cycles_total\":" << finite_or_zero(node.total_cycles)
      << ",\"wall_us_self\":" << finite_or_zero(node.self_wall_us)
      << ",\"wall_us_total\":" << finite_or_zero(node.total_wall_us)
      << ",\"children\":[";
  os << num.str();
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i) os << ',';
    write_json_rec(node.children[i], os);
  }
  os << "]}";
}

void conservation_rec(const Ledger::Node& node, double& worst) {
  double child_cycles = 0.0, child_wall = 0.0;
  for (const Ledger::Node& c : node.children) {
    child_cycles += c.total_cycles;
    child_wall += c.total_wall_us;
    conservation_rec(c, worst);
  }
  const double cycles_err =
      std::fabs(node.total_cycles - node.self_cycles - child_cycles) /
      std::max(std::fabs(node.total_cycles), 1.0);
  const double wall_err =
      std::fabs(node.total_wall_us - node.self_wall_us - child_wall) /
      std::max(std::fabs(node.total_wall_us), 1.0);
  worst = std::max({worst, cycles_err, wall_err});
}

}  // namespace

void write_folded(const Ledger::Node& root, std::ostream& os) {
  std::string prefix;
  write_folded_rec(root, prefix, os);
}

bool write_folded_file(const Ledger::Node& root, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_folded(root, out);
  return out.good();
}

void write_ledger_json(const Ledger::Node& root, std::ostream& os) {
  write_json_rec(root, os);
}

double conservation_error(const Ledger::Node& root) {
  double worst = 0.0;
  conservation_rec(root, worst);
  return worst;
}

double phase_total_cycles(const Ledger::Node& root,
                          std::string_view phase) {
  double total = root.name == phase ? root.self_cycles : 0.0;
  for (const Ledger::Node& c : root.children)
    total += phase_total_cycles(c, phase);
  return total;
}

}  // namespace peak::obs
