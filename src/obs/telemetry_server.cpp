#include "obs/telemetry_server.hpp"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

// core/jsonl is a leaf record parser (no obs dependencies), pulled in
// only so `peak monitor` and the tests can read telemetry documents back.
#include "core/jsonl.hpp"
#include "obs/event_ring.hpp"
#include "obs/export.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "support/http_server.hpp"

namespace peak::obs {

namespace {

/// How long /events sleeps between ring polls, and how many idle polls
/// pass between SSE keepalive comments (20 × 500ms = 10s).
constexpr std::chrono::milliseconds kEventPoll{500};
constexpr int kKeepaliveEveryIdlePolls = 20;

Histogram& scrape_histogram() {
  static Histogram& h = histogram(
      "telemetry.scrape_us",
      {100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 25000.0,
       50000.0, 100000.0});
  return h;
}

ProgressModel progress_model_from_value(const core::jsonl::JsonValue& v) {
  ProgressModel m;
  m.configs_evaluated = v.at("configs_evaluated").as_u64();
  m.ratings_started = v.at("ratings_started").as_u64();
  m.ratings_converged = v.at("ratings_converged").as_u64();
  m.invocations = v.at("invocations").as_u64();
  m.total_cycles = v.at("total_cycles").as_double();
  for (const auto& p : v.at("phases").as_array())
    m.phases.push_back(
        {p.at("name").as_string(), p.at("cycles").as_double()});
  for (const auto& s : v.at("sections").as_array())
    m.sections.push_back(
        {s.at("label").as_string(), s.at("cycles").as_double()});
  // Absent unless the run forked isolated workers (and in every document
  // written before worker isolation existed).
  if (v.has("workers")) {
    const core::jsonl::JsonValue& w = v.at("workers");
    m.workers.spawned = w.at("spawned").as_u64();
    m.workers.respawned = w.at("respawned").as_u64();
    m.workers.killed = w.at("killed").as_u64();
    m.workers.heartbeat_gaps = w.at("heartbeat_gaps").as_u64();
  }
  // Absent unless the run formed a distributed fleet.
  if (v.has("dist")) {
    const core::jsonl::JsonValue& d = v.at("dist");
    m.dist.workers_connected = d.at("workers_connected").as_u64();
    m.dist.workers_lost = d.at("workers_lost").as_u64();
    m.dist.workers_respawned = d.at("workers_respawned").as_u64();
    m.dist.tasks_dispatched = d.at("tasks_dispatched").as_u64();
    m.dist.tasks_requeued = d.at("tasks_requeued").as_u64();
    m.dist.tasks_failed = d.at("tasks_failed").as_u64();
    m.dist.heartbeat_gaps = d.at("heartbeat_gaps").as_u64();
  }
  return m;
}

}  // namespace

std::string telemetry_snapshot_json(
    const MetricsRegistry::Snapshot& metrics, const Ledger::Node& costs,
    const std::string& run_phase, std::uint64_t uptime_us,
    std::uint64_t events_head_seq) {
  std::ostringstream os;
  os << "{\"run_phase\":\"" << json_escape(run_phase)
     << "\",\"uptime_us\":" << uptime_us
     << ",\"events_head_seq\":" << events_head_seq << ",\"progress\":"
     << progress_json(build_progress_model(metrics, costs))
     << ",\"metrics\":";
  write_metrics_json(metrics, os);
  os << ",\"cost_attribution\":";
  write_ledger_json(costs, os);
  os << "}";
  return os.str();
}

std::string telemetry_healthz_json(const std::string& run_phase,
                                   std::uint64_t uptime_us) {
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"run_phase\":\"" << json_escape(run_phase)
     << "\",\"uptime_us\":" << uptime_us << "}";
  return os.str();
}

RemoteSnapshot parse_snapshot_json(const std::string& json) {
  core::jsonl::JsonParser parser(json);
  const core::jsonl::JsonValue v = parser.parse();
  RemoteSnapshot out;
  out.run_phase = v.at("run_phase").as_string();
  out.uptime_us = v.at("uptime_us").as_u64();
  out.events_head_seq = v.at("events_head_seq").as_u64();
  out.progress = progress_model_from_value(v.at("progress"));
  return out;
}

ProgressModel progress_model_from_json(const std::string& json) {
  core::jsonl::JsonParser parser(json);
  return progress_model_from_value(parser.parse());
}

// --- TelemetryServer -----------------------------------------------------

struct TelemetryServer::Impl {
  Options options;
  std::unique_ptr<support::HttpServer> server;
  std::uint64_t start_us = 0;
  bool port_file_written = false;

  mutable std::mutex phase_mutex;
  std::string phase = "starting";

  std::uint64_t uptime_us() const {
    return Tracer::global().now_us() - start_us;
  }

  std::string current_phase() const {
    std::lock_guard lock(phase_mutex);
    return phase;
  }

  /// Run a handler with request/error accounting and scrape-latency
  /// observation around it.
  support::HttpResponse timed(
      const std::function<support::HttpResponse()>& fn) {
    const std::uint64_t t0 = Tracer::global().now_us();
    support::HttpResponse response = fn();
    counter("telemetry.requests").inc();
    if (response.status >= 400) counter("telemetry.errors").inc();
    scrape_histogram().observe(
        static_cast<double>(Tracer::global().now_us() - t0));
    return response;
  }

  void serve_events(const support::HttpRequest& req,
                    support::HttpServer::StreamWriter& writer) {
    counter("telemetry.requests").inc();
    counter("telemetry.sse_streams").inc();
    EventRing& ring = EventRing::global();
    std::uint64_t from = 0;
    const std::string from_param = req.query_param("from");
    if (from_param.empty()) {
      from = ring.head_seq() + 1;  // only events from now on
    } else {
      try {
        from = std::stoull(from_param);
      } catch (...) {
        from = 1;  // malformed → replay everything retained
      }
      if (from == 0) from = 1;
    }
    if (!writer.write(": peak telemetry event stream\n\n")) return;
    int idle_polls = 0;
    while (writer.alive()) {
      const EventRing::Fetch fetch = ring.fetch(from, 64);
      if (fetch.dropped > 0) {
        counter("telemetry.sse_dropped").inc(fetch.dropped);
        if (!writer.write("event: gap\ndata: {\"dropped\":" +
                          std::to_string(fetch.dropped) + "}\n\n"))
          return;
      }
      for (const EventRing::Entry& entry : fetch.entries) {
        std::string frame = "id: " + std::to_string(entry.seq) +
                            "\nevent: " + entry.kind +
                            "\ndata: " + entry.data + "\n\n";
        if (!writer.write(frame)) return;
      }
      from = fetch.next_seq;
      if (!fetch.entries.empty()) {
        idle_polls = 0;
        continue;
      }
      if (!ring.wait(from, kEventPoll) &&
          ++idle_polls >= kKeepaliveEveryIdlePolls) {
        idle_polls = 0;
        if (!writer.write(": keepalive\n\n")) return;
      }
    }
  }

  void register_handlers() {
    using support::HttpRequest;
    using support::HttpResponse;

    server->handle("/metrics", [this](const HttpRequest&) {
      return timed([] {
        HttpResponse r;
        r.body = prometheus_text(MetricsRegistry::global().snapshot(),
                                 Ledger::global().snapshot());
        r.content_type = "text/plain; version=0.0.4; charset=utf-8";
        return r;
      });
    });

    server->handle("/snapshot", [this](const HttpRequest&) {
      return timed([this] {
        return HttpResponse::json(telemetry_snapshot_json(
            MetricsRegistry::global().snapshot(),
            Ledger::global().snapshot(), current_phase(), uptime_us(),
            EventRing::global().head_seq()));
      });
    });

    server->handle("/healthz", [this](const HttpRequest&) {
      return timed([this] {
        return HttpResponse::json(
            telemetry_healthz_json(current_phase(), uptime_us()));
      });
    });

    server->handle("/quarantine", [this](const HttpRequest&) {
      return timed([this] {
        if (!options.quarantine_json)
          return HttpResponse::text(404, "quarantine not wired\n");
        return HttpResponse::json(options.quarantine_json());
      });
    });

    server->handle("/cache/stats", [this](const HttpRequest&) {
      return timed([this] {
        if (!options.cache_stats_json)
          return HttpResponse::text(404, "cache stats not wired\n");
        return HttpResponse::json(options.cache_stats_json());
      });
    });

    server->handle("/workers", [this](const HttpRequest&) {
      return timed([this] {
        if (!options.workers_json)
          return HttpResponse::text(404, "worker table not wired\n");
        return HttpResponse::json(options.workers_json());
      });
    });

    server->handle_stream(
        "/events",
        [this](const HttpRequest& req,
               support::HttpServer::StreamWriter& writer) {
          serve_events(req, writer);
        });
  }
};

TelemetryServer::TelemetryServer(Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start(std::string* error) {
  if (impl_->server && impl_->server->running()) return true;
  support::HttpServer::Options http;
  http.port = impl_->options.port;
  http.workers = impl_->options.workers;
  impl_->server = std::make_unique<support::HttpServer>(http);
  impl_->register_handlers();
  if (!impl_->server->start(error)) {
    impl_->server.reset();
    return false;
  }
  impl_->start_us = Tracer::global().now_us();
  if (!impl_->options.port_file.empty()) {
    std::ofstream out(impl_->options.port_file, std::ios::trunc);
    out << impl_->server->port() << '\n';
    if (!out.good()) {
      if (error)
        *error = "cannot write port file " + impl_->options.port_file;
      impl_->server->stop();
      impl_->server.reset();
      return false;
    }
    impl_->port_file_written = true;
  }
  return true;
}

std::uint16_t TelemetryServer::port() const {
  return impl_->server ? impl_->server->port() : 0;
}

bool TelemetryServer::running() const {
  return impl_->server && impl_->server->running();
}

void TelemetryServer::stop() {
  if (!impl_->server) return;
  EventRing::global().wake_all();
  impl_->server->stop();
  impl_->server.reset();
  if (impl_->port_file_written) {
    std::remove(impl_->options.port_file.c_str());
    impl_->port_file_written = false;
  }
}

void TelemetryServer::set_run_phase(std::string phase) {
  std::lock_guard lock(impl_->phase_mutex);
  impl_->phase = std::move(phase);
}

std::string TelemetryServer::run_phase() const {
  return impl_->current_phase();
}

}  // namespace peak::obs
