#pragma once

/// \file progress.hpp
/// `peak top`: a live progress view over the metrics registry and the
/// cost ledger. A background thread samples both on an interval timer and
/// redraws a small dashboard — configs evaluated, rating convergence, the
/// cost split across ledger phases, and the most expensive tuning
/// sections so far. Sampling only reads (registry snapshot + ledger
/// snapshot under their mutexes), so the view never perturbs
/// measurements.
///
/// The pipeline is split into pure stages so every consumer shares one
/// derivation: build_progress_model() reduces the two snapshots to a
/// ProgressModel, which render_progress_frame() turns into the TTY frame,
/// write_progress_json() into the `/snapshot` + `--progress-json`
/// document, and the `peak monitor` client rebuilds from that JSON to
/// render the identical frame remotely.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"

namespace peak::obs {

/// Everything one dashboard frame shows, already aggregated. A pure
/// function of (metrics snapshot, ledger snapshot); serializable, so a
/// remote monitor renders exactly what a local `--progress` view would.
struct ProgressModel {
  std::uint64_t configs_evaluated = 0;
  std::uint64_t ratings_started = 0;
  std::uint64_t ratings_converged = 0;
  std::uint64_t invocations = 0;
  double total_cycles = 0.0;

  struct Phase {
    std::string name;
    double cycles = 0.0;
    friend bool operator==(const Phase&, const Phase&) = default;
  };
  /// Known ledger phases with non-zero cycles, in canonical phase order.
  std::vector<Phase> phases;

  struct Section {
    std::string label;  ///< machine/benchmark/section
    double cycles = 0.0;
    friend bool operator==(const Section&, const Section&) = default;
  };
  /// Every tuning section, most expensive first.
  std::vector<Section> sections;

  /// Out-of-process worker fleet (`--isolate-workers`), from the proc.*
  /// counters. All zero when the run never forked a worker — the JSON
  /// document then omits the member entirely, keeping pre-isolation
  /// consumers byte-compatible.
  struct Workers {
    std::uint64_t spawned = 0;
    std::uint64_t respawned = 0;
    std::uint64_t killed = 0;  ///< watchdog SIGTERM + SIGKILL escalations
    std::uint64_t heartbeat_gaps = 0;
    friend bool operator==(const Workers&, const Workers&) = default;
  };
  Workers workers;

  /// Distributed worker fleet (`--distribute` / `--workers`), from the
  /// dist.* counters. Same omit-when-empty contract as `workers`: all
  /// zero when the run never formed a fleet, and the JSON member is
  /// absent then.
  struct Dist {
    std::uint64_t workers_connected = 0;
    std::uint64_t workers_lost = 0;
    std::uint64_t workers_respawned = 0;
    std::uint64_t tasks_dispatched = 0;
    std::uint64_t tasks_requeued = 0;
    std::uint64_t tasks_failed = 0;
    std::uint64_t heartbeat_gaps = 0;
    friend bool operator==(const Dist&, const Dist&) = default;
  };
  Dist dist;

  friend bool operator==(const ProgressModel&,
                         const ProgressModel&) = default;
};

/// Reduce the two snapshots to the model (pure).
ProgressModel build_progress_model(const MetricsRegistry::Snapshot& metrics,
                                   const Ledger::Node& costs);

/// One frame of the dashboard (multi-line, trailing newline; pure).
std::string render_progress_frame(const ProgressModel& model);

/// Convenience overload: build + render.
std::string render_progress_frame(const MetricsRegistry::Snapshot& metrics,
                                  const Ledger::Node& costs);

/// The model as one JSON object (what /snapshot's "progress" member and
/// --progress-json carry).
void write_progress_json(const ProgressModel& model, std::ostream& os);
std::string progress_json(const ProgressModel& model);

/// Atomically replace `path` with the model's JSON (write to a sibling
/// temp file, then rename), so a reader never sees a torn document.
/// False on I/O failure.
bool write_progress_json_atomic(const ProgressModel& model,
                                const std::string& path);

class ProgressView {
public:
  struct Options {
    std::chrono::milliseconds interval{500};
    /// Destination stream; nullptr = std::cerr. Must outlive the view.
    std::ostream* out = nullptr;
    /// Redraw in place with ANSI cursor movement; off = append frames.
    bool ansi = true;
  };

  ProgressView();  ///< default Options
  explicit ProgressView(Options options);
  ~ProgressView();  ///< stops the ticker if still running

  ProgressView(const ProgressView&) = delete;
  ProgressView& operator=(const ProgressView&) = delete;

  void start();
  /// Stop the ticker and draw one final frame (so the numbers shown are
  /// the end-of-run ones, not the last tick's). Idempotent.
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// File-based monitoring without opening a port: a ticker thread
/// periodically rewrites one JSON file (atomically) with the current
/// ProgressModel — the same document the telemetry server serves.
class ProgressJsonWriter {
public:
  struct Options {
    std::string path;
    std::chrono::milliseconds interval{500};
  };

  explicit ProgressJsonWriter(Options options);
  ~ProgressJsonWriter();  ///< stops (and writes a final snapshot)

  ProgressJsonWriter(const ProgressJsonWriter&) = delete;
  ProgressJsonWriter& operator=(const ProgressJsonWriter&) = delete;

  void start();
  /// Stop the ticker and write one final end-of-run document. Idempotent.
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace peak::obs
