#pragma once

/// \file progress.hpp
/// `peak top`: a live terminal progress view over the metrics registry
/// and the cost ledger. A background thread samples both on an interval
/// timer and redraws a small dashboard — configs evaluated, rating
/// convergence, the cost split across ledger phases, and the most
/// expensive tuning sections so far. Sampling only reads (registry
/// snapshot + ledger snapshot under their mutexes), so the view never
/// perturbs measurements.
///
/// Rendering is a pure function of the two snapshots
/// (render_progress_frame), so tests cover the formatting without
/// timers or threads.

#include <chrono>
#include <iosfwd>
#include <string>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"

namespace peak::obs {

/// One frame of the dashboard (multi-line, trailing newline).
std::string render_progress_frame(const MetricsRegistry::Snapshot& metrics,
                                  const Ledger::Node& costs);

class ProgressView {
public:
  struct Options {
    std::chrono::milliseconds interval{500};
    /// Destination stream; nullptr = std::cerr. Must outlive the view.
    std::ostream* out = nullptr;
    /// Redraw in place with ANSI cursor movement; off = append frames.
    bool ansi = true;
  };

  ProgressView();  ///< default Options
  explicit ProgressView(Options options);
  ~ProgressView();  ///< stops the ticker if still running

  ProgressView(const ProgressView&) = delete;
  ProgressView& operator=(const ProgressView&) = delete;

  void start();
  /// Stop the ticker and draw one final frame (so the numbers shown are
  /// the end-of-run ones, not the last tick's). Idempotent.
  void stop();

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace peak::obs
