#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace peak::obs {

std::string json_number(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

namespace {

void append_args(std::ostream& os, const std::vector<Attr>& args) {
  os << "{";
  bool first = true;
  for (const Attr& a : args) {
    if (!first) os << ",";
    first = false;
    os << '"' << json_escape(a.key) << "\":\"" << json_escape(a.value)
       << '"';
  }
  os << "}";
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const TraceEvent& event) {
  std::ostringstream os;
  os << "{\"name\":\"" << json_escape(event.name) << "\",\"cat\":\""
     << json_escape(event.category) << "\",\"ph\":\""
     << (event.phase == EventPhase::kComplete ? 'X' : 'i')
     << "\",\"pid\":1,\"tid\":" << event.tid << ",\"ts\":" << event.ts_us;
  if (event.phase == EventPhase::kComplete)
    os << ",\"dur\":" << event.dur_us;
  else
    os << ",\"s\":\"t\"";  // instant scope: thread
  os << ",\"args\":";
  // Nesting depth rides along as an ordinary arg so both sink formats
  // carry it without a schema extension.
  std::vector<Attr> args = event.args;
  args.push_back(attr("depth", static_cast<std::uint64_t>(event.depth)));
  append_args(os, args);
  os << "}";
  return os.str();
}

// --- JsonlSink -----------------------------------------------------------

struct JsonlSink::Impl {
  std::ofstream out;
};

JsonlSink::JsonlSink(const std::string& path) : impl_(new Impl) {
  impl_->out.open(path);
}

JsonlSink::~JsonlSink() = default;

void JsonlSink::on_event(const TraceEvent& event) {
  impl_->out << to_json(event) << '\n';
}

void JsonlSink::flush() { impl_->out.flush(); }

bool JsonlSink::ok() const { return impl_->out.good(); }

// --- ChromeTraceSink -----------------------------------------------------

struct ChromeTraceSink::Impl {
  std::string path;
  std::vector<TraceEvent> events;
  bool written = false;
  bool ok = true;
};

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : impl_(new Impl) {
  impl_->path = path;
}

ChromeTraceSink::~ChromeTraceSink() { flush(); }

void ChromeTraceSink::on_event(const TraceEvent& event) {
  impl_->events.push_back(event);
  impl_->written = false;
}

void ChromeTraceSink::flush() {
  if (impl_->written) return;
  std::ofstream out(impl_->path);
  if (!out) {
    impl_->ok = false;
    return;
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < impl_->events.size(); ++i) {
    out << to_json(impl_->events[i]);
    if (i + 1 < impl_->events.size()) out << ',';
    out << '\n';
  }
  out << "]}\n";
  impl_->ok = out.good();
  impl_->written = true;
}

bool ChromeTraceSink::ok() const { return impl_->ok; }

std::shared_ptr<Sink> make_file_sink(const std::string& path) {
  if (path.size() >= 6 &&
      path.compare(path.size() - 6, 6, ".jsonl") == 0) {
    auto sink = std::make_shared<JsonlSink>(path);
    return sink->ok() ? sink : nullptr;
  }
  // Chrome sink opens the file lazily at flush; probe writability now so
  // the caller can report a bad path up front.
  {
    std::ofstream probe(path);
    if (!probe) return nullptr;
  }
  return std::make_shared<ChromeTraceSink>(path);
}

// --- metrics -------------------------------------------------------------

void write_metrics_json(const MetricsRegistry::Snapshot& snapshot,
                        std::ostream& os) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << json_number(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"bounds\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i)
      os << (i ? "," : "") << json_number(h.bounds[i]);
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i)
      os << (i ? "," : "") << h.counts[i];
    os << "], \"count\": " << h.count
       << ", \"sum\": " << json_number(h.sum);
    if (h.count > 0)
      os << ", \"p50\": " << json_number(h.percentile(50.0))
         << ", \"p90\": " << json_number(h.percentile(90.0))
         << ", \"p99\": " << json_number(h.percentile(99.0));
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

bool write_metrics_json_file(const MetricsRegistry::Snapshot& snapshot,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(snapshot, out);
  return out.good();
}

support::Table metrics_table(const MetricsRegistry::Snapshot& snapshot) {
  support::Table table("metrics");
  table.row({"metric", "kind", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0) continue;
    table.row({name, "counter", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value == 0.0) continue;
    table.row({name, "gauge", support::Table::fmt(value, 2)});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    std::string cells;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) cells += ' ';
      cells += std::to_string(h.counts[i]);
    }
    table.row({name, "histogram",
               "n=" + std::to_string(h.count) +
                   " mean=" + support::Table::fmt(
                                  h.count ? h.sum / static_cast<double>(
                                                        h.count)
                                          : 0.0,
                                  2) +
                   " buckets=[" + cells + "]"});
  }
  return table;
}

}  // namespace peak::obs
