#pragma once

/// \file event_ring.hpp
/// Bounded in-memory ring of structured run events (`peak::obs`) — the
/// buffer behind the telemetry server's `/events` Server-Sent-Events
/// stream. Producers (the search algorithms, the tuning driver, the CLI)
/// publish never-blocking: when the ring is full the oldest entries are
/// overwritten. Consumers poll by sequence number; a consumer that fell
/// behind the ring's tail learns exactly how many events it lost
/// (`Fetch::dropped`) so the SSE stream can emit a gap marker instead of
/// silently skipping — slow scrapers never back-pressure the search.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <condition_variable>
#include <deque>
#include <string>
#include <vector>

namespace peak::obs {

class EventRing {
public:
  struct Entry {
    std::uint64_t seq = 0;    ///< 1-based, monotonically increasing
    std::uint64_t ts_us = 0;  ///< Tracer::now_us() timebase
    std::string kind;         ///< event type ("remove", "tune_start", …)
    std::string data;         ///< pre-rendered JSON object payload
  };

  explicit EventRing(std::size_t capacity = 1024);

  /// Process-wide ring every publisher feeds and /events drains.
  static EventRing& global();

  /// Append one event; never blocks, evicting the oldest entry when
  /// full. Returns the assigned sequence number.
  std::uint64_t publish(std::string kind, std::string data);

  struct Fetch {
    std::vector<Entry> entries;
    std::uint64_t next_seq = 1;   ///< pass back as `from` next time
    std::uint64_t dropped = 0;    ///< events evicted before `from`
  };

  /// Entries with seq >= `from`, up to `max` of them. When `from` has
  /// already been evicted, `dropped` counts the lost events and the
  /// fetch resumes from the oldest retained entry.
  [[nodiscard]] Fetch fetch(std::uint64_t from, std::size_t max) const;

  /// Sequence number of the newest published event (0 = none yet).
  [[nodiscard]] std::uint64_t head_seq() const;

  /// Block until an event with seq >= `from` exists, the timeout lapses,
  /// or wake_all() is called; true when there is something to fetch.
  bool wait(std::uint64_t from, std::chrono::milliseconds timeout) const;

  /// Wake every wait()er (server shutdown).
  void wake_all() const;

  /// Drop all entries and restart sequencing (tests, fresh runs).
  void clear();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::deque<Entry> entries_;
  std::uint64_t next_seq_ = 1;
};

/// Publish to the global ring with the tracer's timebase.
std::uint64_t publish_run_event(std::string kind, std::string data);

}  // namespace peak::obs
