#include "obs/trace.hpp"

#include <sstream>
#include <utility>

namespace peak::obs {

namespace {

/// Render doubles the way the search log always has: default ostream
/// formatting (6 significant digits), so traces and rendered logs agree.
std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::atomic<std::uint32_t> next_thread_id{0};

thread_local std::uint32_t this_thread_id = 0xffffffffu;
thread_local std::uint32_t span_depth = 0;

}  // namespace

Attr attr(std::string key, std::string value) {
  return Attr{std::move(key), std::move(value)};
}
Attr attr(std::string key, const char* value) {
  return Attr{std::move(key), std::string(value)};
}
Attr attr(std::string key, double value) {
  return Attr{std::move(key), format_double(value)};
}
Attr attr(std::string key, unsigned long long value) {
  return Attr{std::move(key), std::to_string(value)};
}
Attr attr(std::string key, unsigned long value) {
  return Attr{std::move(key), std::to_string(value)};
}
Attr attr(std::string key, unsigned value) {
  return Attr{std::move(key), std::to_string(value)};
}
Attr attr(std::string key, int value) {
  return Attr{std::move(key), std::to_string(value)};
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_sink(std::shared_ptr<Sink> sink) {
  std::shared_ptr<Sink> previous;
  {
    std::lock_guard lock(mutex_);
    previous = std::move(sink_);
    sink_ = std::move(sink);
    enabled_.store(sink_ != nullptr, std::memory_order_relaxed);
  }
  if (previous) previous->flush();
}

void Tracer::emit(TraceEvent event) {
  std::lock_guard lock(mutex_);
  if (sink_) sink_->on_event(event);
}

void Tracer::instant(std::string_view name, std::string_view category,
                     std::vector<Attr> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = EventPhase::kInstant;
  event.ts_us = now_us();
  event.tid = thread_id();
  event.depth = span_depth;
  event.args = std::move(args);
  emit(std::move(event));
}

void Tracer::flush() {
  std::lock_guard lock(mutex_);
  if (sink_) sink_->flush();
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t Tracer::thread_id() {
  if (this_thread_id == 0xffffffffu)
    this_thread_id = next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return this_thread_id;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       std::vector<Attr> args) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  event_.name = std::string(name);
  event_.category = std::string(category);
  event_.phase = EventPhase::kComplete;
  event_.ts_us = tracer.now_us();
  event_.tid = Tracer::thread_id();
  event_.depth = span_depth++;
  event_.args = std::move(args);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --span_depth;
  Tracer& tracer = Tracer::global();
  const std::uint64_t end = tracer.now_us();
  event_.dur_us = end > event_.ts_us ? end - event_.ts_us : 0;
  tracer.emit(std::move(event_));
}

void ScopedSpan::add(Attr a) {
  if (active_) event_.args.push_back(std::move(a));
}

}  // namespace peak::obs
