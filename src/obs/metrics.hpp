#pragma once

/// \file metrics.hpp
/// Named counters, gauges, and fixed-bucket histograms (`peak::obs`).
/// Instruments are registered lazily by name in a process-wide registry
/// and never deallocated, so call sites can cache a reference once
/// (`static obs::Counter& c = obs::counter("...")`) and afterwards pay
/// only a relaxed atomic add per update — cheap enough for per-invocation
/// hot paths. `reset()` zeroes values but keeps the instruments alive, so
/// cached references stay valid across runs.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace peak::obs {

/// Canonical registry form of a metric name: every character outside
/// `[a-zA-Z0-9_.]` becomes '_' (and an empty name becomes "_"). Applied
/// at registration, so a hostile or typo'd name (spaces, quotes,
/// newlines) can never corrupt a JSON export or a Prometheus scrape —
/// look-ups with the unsanitized spelling still find the instrument
/// because they pass through the same mapping.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Monotonic counter (ratings started, configs evaluated, restores…).
class Counter {
public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Double-valued gauge with set and accumulate semantics (simulated
/// cycles per phase, last regression residual…).
class Gauge {
public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + v,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram, internally consistent:
/// sum(counts) == count even when taken during concurrent observe()s.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Percentile estimate by linear interpolation within the bucket that
  /// crosses rank p/100·count (Prometheus histogram_quantile style).
  /// The first bucket interpolates from min(0, bounds[0]); ranks landing
  /// in the overflow bucket clamp to bounds.back(). p in [0, 100];
  /// returns 0 when the histogram is empty.
  [[nodiscard]] double percentile(double p) const;
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are set on first
/// registration and immutable afterwards.
class Histogram {
public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const {
    return bounds_;
  }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  /// Unsynchronized relaxed reads — may tear against concurrent
  /// observe()s (likewise count() and sum()); use snapshot() when the
  /// three must be mutually consistent.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Consistent view: excludes observe()s in flight, so bucket counts,
  /// count, and sum always agree with each other.
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// observe() holds this shared (writers stay concurrent — the updates
  /// themselves are atomic); snapshot() and reset() hold it exclusive so
  /// no observation is mid-flight while they read or zero the parts.
  mutable std::shared_mutex snapshot_lock_;
};

class MetricsRegistry {
public:
  static MetricsRegistry& global();

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime (process lifetime for global()).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is used only when the histogram does not exist yet.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Zero every instrument, keeping registrations (cached references
  /// remain valid).
  void reset();

  /// Point-in-time copy for export. Counters and gauges are read with
  /// relaxed loads; histograms through Histogram::snapshot(), so each is
  /// internally consistent.
  using HistogramSnapshot = obs::HistogramSnapshot;
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const;

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

/// Conveniences over the global registry.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> bounds);

}  // namespace peak::obs
