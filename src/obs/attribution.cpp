#include "obs/attribution.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/ledger.hpp"

namespace peak::obs {

namespace {

thread_local std::vector<std::string> t_path;
thread_local double t_evaluator_wall_us = 0.0;
thread_local bool t_in_evaluator = false;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AttributionScope::AttributionScope(std::string component) {
  t_path.push_back(std::move(component));
}

AttributionScope::~AttributionScope() { t_path.pop_back(); }

std::vector<std::string> attribution_path() { return t_path; }

AttributionPathScope::AttributionPathScope(std::vector<std::string> path)
    : saved_(std::exchange(t_path, std::move(path))) {}

AttributionPathScope::~AttributionPathScope() {
  t_path = std::move(saved_);
}

void charge_phase(std::string_view phase, double cycles, double wall_us) {
  std::vector<std::string> path = t_path;
  if (!phase.empty()) path.emplace_back(phase);
  Ledger::global().charge(path, cycles, wall_us);
}

double evaluator_wall_us() { return t_evaluator_wall_us; }

EvaluatorWallGate::EvaluatorWallGate()
    : start_us_(now_us()), outermost_(!t_in_evaluator) {
  t_in_evaluator = true;
}

EvaluatorWallGate::~EvaluatorWallGate() {
  if (!outermost_) return;
  t_in_evaluator = false;
  t_evaluator_wall_us += now_us() - start_us_;
}

SearchOverheadScope::SearchOverheadScope()
    : start_us_(now_us()), evaluator_us_at_start_(t_evaluator_wall_us) {}

SearchOverheadScope::~SearchOverheadScope() {
  const double elapsed = now_us() - start_us_;
  const double inside_evaluator =
      t_evaluator_wall_us - evaluator_us_at_start_;
  charge_phase("search_overhead", 0.0,
               std::max(0.0, elapsed - inside_evaluator));
}

}  // namespace peak::obs
