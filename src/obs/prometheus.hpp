#pragma once

/// \file prometheus.hpp
/// Prometheus text exposition (version 0.0.4) for the PEAK metrics
/// registry and cost ledger. Registry names use dots as separators
/// (`search.configs_evaluated`); the exposition maps every instrument to
/// `peak_` + the name with non-`[a-zA-Z0-9_]` characters replaced by `_`,
/// plus the conventional suffixes: counters end in `_total`, histograms
/// expand into cumulative `_bucket{le="..."}` series closed by
/// `le="+Inf"`, `_sum`, and `_count`. Ledger nodes export as
/// `peak_cost_cycles{path="all;sparc2;SWIM;..."}` (subtree totals) and
/// `peak_cost_self_cycles{...}` (the node's own share). Non-finite values
/// are clamped to 0, the same policy as the JSON exports.

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"

namespace peak::obs {

/// `peak_<sanitized name><suffix>`: '.' and every other character outside
/// `[a-zA-Z0-9_]` become '_', so any name the registry accepts (see
/// sanitize_metric_name) yields a valid Prometheus metric name.
std::string prometheus_name(std::string_view registry_name,
                            std::string_view suffix = "");

/// Escape a label value: backslash, double quote, and newline.
std::string prometheus_label_escape(std::string_view value);

/// Full scrape document: every counter, gauge, and histogram in
/// `metrics`, then the ledger tree flattened into labelled cost series.
void write_prometheus(const MetricsRegistry::Snapshot& metrics,
                      const Ledger::Node& costs, std::ostream& os);

/// write_prometheus into a string (the /metrics handler body).
std::string prometheus_text(const MetricsRegistry::Snapshot& metrics,
                            const Ledger::Node& costs);

}  // namespace peak::obs
