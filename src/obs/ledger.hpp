#pragma once

/// \file ledger.hpp
/// Hierarchical cost-accounting ledger (`peak::obs`). A tree of named
/// nodes — by convention machine → benchmark → tuning section → rating
/// method → phase — each accumulating two cost axes: simulated cycles
/// (from sim::SimExecutionBackend) and wall microseconds. charge() adds
/// the amount to the *self* cost of the addressed node and to the *total*
/// of every node on the path, so the conservation invariant
///
///     total(node) == self(node) + Σ total(children)
///
/// holds structurally (within floating-point accumulation error; the
/// ctest tolerance is 0.1%). The ledger is the source of the three
/// attribution artifacts: folded-stack flamegraph lines, the
/// `cost_attribution` section of BENCH_headline.json, and the `--progress`
/// live view.
///
/// Charges are coarse-grained (one per tuning run per phase, one per
/// profile pass), so a single mutex is plenty; nothing here sits on the
/// per-invocation hot path.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace peak::obs {

class Ledger {
public:
  /// Copyable point-in-time view of one ledger node and its subtree.
  /// Children are ordered by name (deterministic export).
  struct Node {
    std::string name;
    double self_cycles = 0.0;
    double self_wall_us = 0.0;
    double total_cycles = 0.0;
    double total_wall_us = 0.0;
    std::vector<Node> children;

    /// Child by name, or nullptr.
    [[nodiscard]] const Node* child(std::string_view name) const;
  };

  Ledger();
  ~Ledger();

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Process-wide ledger every charge point in the library feeds.
  static Ledger& global();

  /// Add `cycles` and `wall_us` to the node addressed by `path` (created
  /// on demand), its self cost, and the totals of every ancestor. An
  /// empty path charges the root directly (rarely useful outside tests).
  void charge(const std::vector<std::string>& path, double cycles,
              double wall_us = 0.0);

  /// Snapshot of the whole tree; the root's name is "all".
  [[nodiscard]] Node snapshot() const;

  /// Number of charge() calls since construction / reset.
  [[nodiscard]] std::uint64_t charges() const;

  /// Drop every node and zero the totals (tests, fresh runs).
  void reset();

private:
  struct TreeNode;
  mutable std::mutex mutex_;
  std::unique_ptr<TreeNode> root_;
  std::uint64_t charges_ = 0;
};

/// Folded-stack flamegraph lines, one per node with non-zero self cycles:
///   all;sparc2;SWIM;calc1;RBR;timed 12345678
/// Values are cycles rounded to integers (flamegraph.pl and speedscope
/// both take the last space-separated token as the count). Path components
/// have ';' and ' ' replaced with '_'.
void write_folded(const Ledger::Node& root, std::ostream& os);

/// write_folded to a file; false on I/O failure.
bool write_folded_file(const Ledger::Node& root, const std::string& path);

/// JSON tree — the `cost_attribution` artifact:
///   {"name":"all","cycles_self":0,"cycles_total":C,
///    "wall_us_self":0,"wall_us_total":W,"children":[...]}
/// Non-finite values are clamped to 0 (same policy as the metrics export).
void write_ledger_json(const Ledger::Node& root, std::ostream& os);

/// Largest relative conservation violation over the subtree, separately
/// for cycles and wall:  max |total − self − Σ children.total| / max(total, 1).
/// ~0 for any tree built through charge(); the ctest asserts ≤ 1e-3.
double conservation_error(const Ledger::Node& root);

/// Sum of `self` cycles over every node whose name equals `phase`
/// (phases are leaves, but the scan is tree-wide so tests can aggregate
/// any label). Used to reconcile the ledger against the sim.cycles_*
/// gauges.
double phase_total_cycles(const Ledger::Node& root, std::string_view phase);

}  // namespace peak::obs
