#pragma once

/// \file guarded_executor.hpp
/// Guarded execution of experimental versions: wraps the simulated
/// backend with a watchdog deadline (derived from the best-known
/// version's expected time), a bounded retry budget for transient faults
/// (with backoff accounted into the tuning cost), output validation
/// against the reference digest, and quarantine of configurations that
/// fail deterministically. The tuning driver's evaluator routes every
/// measurement through this wrapper when fault tolerance is enabled;
/// without an injector the wrapper adds validation only and leaves the
/// measured times bit-identical.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/quarantine.hpp"
#include "search/opt_config.hpp"
#include "sim/exec_backend.hpp"

namespace peak::fault {

struct GuardPolicy {
  /// Watchdog deadline, as a multiple of the reference (best-known)
  /// version's expected time for the invocation. A correct version that
  /// is 20x slower than the best would be a terrible config anyway, so
  /// cutting it off loses nothing.
  double deadline_factor = 20.0;
  /// Retries per invocation after a transient fault (crash, glitch,
  /// checkpoint corruption). Deterministic faults are never retried.
  std::size_t max_retries = 2;
  /// Failures after which a configuration is quarantined.
  std::size_t quarantine_after = 2;
  /// Backoff wait charged per retry, as a fraction of the reference
  /// version's expected time for the invocation (the tuner pauses before
  /// re-measuring, hoping the perturbation passes).
  double backoff_fraction = 0.25;
};

/// One observed fault, reported through the on_fault callback so the
/// driver can journal it and bump the obs counters.
struct FaultEvent {
  FaultKind kind = FaultKind::kNone;
  std::string config_key;
  std::uint64_t invocation_id = 0;
  std::size_t attempt = 0;
  bool gave_up = false;      ///< retry budget exhausted (or not retryable)
  bool quarantined = false;  ///< this failure crossed the threshold
};

class GuardedExecutor {
public:
  GuardedExecutor(sim::SimExecutionBackend& backend, Quarantine& quarantine,
                  GuardPolicy policy = {});

  /// The current best-known configuration; deadlines and backoff waits
  /// are priced off its expected time.
  void set_reference(const search::FlagConfig& reference) {
    reference_ = reference;
    has_reference_ = true;
  }

  /// Guarded production-like invocation. Throws ConfigFailed when the
  /// config is quarantined or its retry budget is exhausted.
  sim::InvocationResult invoke(const search::FlagConfig& cfg,
                               const sim::Invocation& inv);

  /// Guarded RBR measurement batch (faults attributed to `exp`).
  std::vector<sim::RbrPairResult> invoke_rbr_batch(
      const search::FlagConfig& best, const search::FlagConfig& exp,
      const sim::Invocation& inv, const sim::RbrOptions& opts);

  /// Validate one invocation of `cfg` against the reference output
  /// digest; quarantines and throws ConfigFailed on a miscompile.
  void validate(const search::FlagConfig& cfg, const sim::Invocation& inv);

  /// Observer for journal/metrics; called once per observed fault.
  void set_on_fault(std::function<void(const FaultEvent&)> cb) {
    on_fault_ = std::move(cb);
  }

  [[nodiscard]] const GuardPolicy& policy() const { return policy_; }
  [[nodiscard]] Quarantine& quarantine() { return quarantine_; }

private:
  /// Shared retry loop: runs `body` under an armed deadline for up to
  /// 1 + max_retries attempts. Records failures, charges backoff, and
  /// converts exhaustion into ConfigFailed.
  template <typename Body>
  auto guarded(const search::FlagConfig& cfg, const sim::Invocation& inv,
               Body&& body);

  void note_failure(FaultKind kind, const search::FlagConfig& cfg,
                    const sim::Invocation& inv, std::size_t attempt,
                    bool gave_up);
  [[noreturn]] void fail_config(FaultKind kind,
                                const search::FlagConfig& cfg);

  sim::SimExecutionBackend& backend_;
  Quarantine& quarantine_;
  GuardPolicy policy_;
  search::FlagConfig reference_;
  bool has_reference_ = false;
  std::function<void(const FaultEvent&)> on_fault_;
};

}  // namespace peak::fault
