#include "fault/injector.hpp"

#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::fault {

namespace {

// Domain-separation salts for the pure-hash draws: one stream per
// question so the answers are independent.
constexpr std::uint64_t kSaltFaulty = 0x6661756c74ULL;   // "fault"
constexpr std::uint64_t kSaltKind = 0x6b696e64ULL;       // "kind"
constexpr std::uint64_t kSaltDeterm = 0x64657465ULL;     // "dete"
constexpr std::uint64_t kSaltFire = 0x66697265ULL;       // "fire"

/// Uniform [0,1) from a 64-bit hash, via one splitmix64 finalization.
double u01(std::uint64_t h) {
  return static_cast<double>(support::splitmix64(h) >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kHang: return "hang";
    case FaultKind::kMiscompile: return "miscompile";
    case FaultKind::kTimerGlitch: return "glitch";
    case FaultKind::kCheckpointCorrupt: return "checkpoint";
    case FaultKind::kHardCrash: return "hard-crash";
  }
  return "?";
}

std::optional<FaultKind> parse_fault_kind(std::string_view name) {
  for (FaultKind k :
       {FaultKind::kNone, FaultKind::kCrash, FaultKind::kHang,
        FaultKind::kMiscompile, FaultKind::kTimerGlitch,
        FaultKind::kCheckpointCorrupt, FaultKind::kHardCrash})
    if (name == to_string(k)) return k;
  return std::nullopt;
}

FaultInjector::FaultInjector(FaultModel model) : model_(model) {
  PEAK_CHECK(model_.fault_prob >= 0.0 && model_.fault_prob <= 1.0,
             "fault probability must be in [0, 1]");
}

std::uint64_t FaultInjector::config_hash(
    const search::FlagConfig& cfg) const {
  std::uint64_t h = model_.seed;
  const auto& words = cfg.bits().words();
  h = support::hash_combine(h, words.size());
  for (std::uint64_t w : words) h = support::hash_combine(h, w);
  return h;
}

FaultDecision FaultInjector::decide(const search::FlagConfig& cfg) const {
  FaultDecision d;
  if (model_.fault_prob <= 0.0) return d;
  if (exempt_.count(cfg.key()) != 0) return d;
  const std::uint64_t h = config_hash(cfg);
  if (u01(support::hash_combine(h, kSaltFaulty)) >= model_.fault_prob)
    return d;

  const double total = model_.crash_weight + model_.hang_weight +
                       model_.miscompile_weight + model_.glitch_weight +
                       model_.checkpoint_weight + model_.hard_crash_weight;
  PEAK_CHECK(total > 0.0, "fault kind weights sum to zero");
  double v = u01(support::hash_combine(h, kSaltKind)) * total;
  if ((v -= model_.crash_weight) < 0.0)
    d.kind = FaultKind::kCrash;
  else if ((v -= model_.hang_weight) < 0.0)
    d.kind = FaultKind::kHang;
  else if ((v -= model_.miscompile_weight) < 0.0)
    d.kind = FaultKind::kMiscompile;
  else if ((v -= model_.glitch_weight) < 0.0)
    d.kind = FaultKind::kTimerGlitch;
  else if ((v -= model_.checkpoint_weight) < 0.0 ||
           model_.hard_crash_weight <= 0.0)
    // Checkpoint stays the catch-all whenever hard crashes are disabled,
    // so rounding at the top edge of the draw can never select an
    // unsurvivable kind that no one opted into.
    d.kind = FaultKind::kCheckpointCorrupt;
  else
    d.kind = FaultKind::kHardCrash;

  d.deterministic =
      d.kind == FaultKind::kHang || d.kind == FaultKind::kMiscompile ||
      u01(support::hash_combine(h, kSaltDeterm)) <
          model_.deterministic_fraction;
  return d;
}

FaultKind FaultInjector::fire(const search::FlagConfig& cfg,
                              std::uint64_t invocation_id,
                              std::size_t attempt) const {
  if (!scripted_.empty()) {
    const auto it = scripted_.find({cfg.key(), invocation_id});
    if (it != scripted_.end())
      return (it->second.sticky || attempt == 0) ? it->second.kind
                                                 : FaultKind::kNone;
  }
  const FaultDecision d = decide(cfg);
  if (d.kind == FaultKind::kNone) return FaultKind::kNone;
  if (d.deterministic) return d.kind;
  const std::uint64_t h = support::hash_combine(
      support::hash_combine(
          support::hash_combine(config_hash(cfg), kSaltFire),
          invocation_id),
      attempt);
  return u01(h) < model_.transient_fire_prob ? d.kind : FaultKind::kNone;
}

void FaultInjector::script(ScriptedFault fault) {
  PEAK_CHECK(fault.kind != FaultKind::kNone,
             "scripted fault must have a kind");
  std::pair<std::string, std::uint64_t> key{fault.config_key,
                                            fault.invocation_id};
  scripted_[std::move(key)] = std::move(fault);
}

void FaultInjector::exempt(const search::FlagConfig& cfg) {
  exempt_.insert(cfg.key());
}

}  // namespace peak::fault
