#include "fault/quarantine.hpp"

#include "obs/metrics.hpp"

namespace peak::fault {

Quarantine::Quarantine(const Quarantine& other)
    : entries_(other.snapshot()) {}

Quarantine& Quarantine::operator=(const Quarantine& other) {
  if (this == &other) return *this;
  auto copy = other.snapshot();
  std::lock_guard lock(mutex_);
  entries_ = std::move(copy);
  return *this;
}

bool Quarantine::contains(const std::string& config_key) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(config_key);
  return it != entries_.end() && it->second.quarantined;
}

std::optional<FaultKind> Quarantine::kind_of(
    const std::string& config_key) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(config_key);
  if (it == entries_.end() || !it->second.quarantined) return std::nullopt;
  return it->second.kind;
}

bool Quarantine::record_failure(const std::string& config_key,
                                FaultKind kind, std::size_t threshold) {
  std::lock_guard lock(mutex_);
  Entry& e = entries_[config_key];
  ++e.failures;
  e.kind = kind;
  if (e.quarantined || e.failures < threshold) return false;
  e.quarantined = true;
  obs::counter("fault.quarantined").inc();
  return true;
}

void Quarantine::quarantine(const std::string& config_key, FaultKind kind) {
  std::lock_guard lock(mutex_);
  Entry& e = entries_[config_key];
  if (e.quarantined) return;
  e.quarantined = true;
  e.kind = kind;
  if (e.failures == 0) e.failures = 1;
  obs::counter("fault.quarantined").inc();
}

void Quarantine::restore_failures(const std::string& config_key,
                                  FaultKind kind, std::size_t failures) {
  std::lock_guard lock(mutex_);
  Entry& e = entries_[config_key];
  e.failures = failures;
  if (kind != FaultKind::kNone) e.kind = kind;
}

std::size_t Quarantine::failures_of(const std::string& config_key) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(config_key);
  return it == entries_.end() ? 0 : it->second.failures;
}

std::size_t Quarantine::size() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, e] : entries_)
    if (e.quarantined) ++n;
  return n;
}

std::map<std::string, Quarantine::Entry> Quarantine::snapshot() const {
  std::lock_guard lock(mutex_);
  return entries_;
}

void Quarantine::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

}  // namespace peak::fault
