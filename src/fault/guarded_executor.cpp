#include "fault/guarded_executor.hpp"

#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace peak::fault {

namespace {

struct GuardMetrics {
  obs::Counter& retried = obs::counter("fault.retried");
  obs::Counter& config_failed = obs::counter("fault.config_failed");
  obs::Counter& validations = obs::counter("fault.validations");
  obs::Counter& miscompiles = obs::counter("fault.miscompile_detected");

  static GuardMetrics& get() {
    static GuardMetrics metrics;
    return metrics;
  }
};

}  // namespace

GuardedExecutor::GuardedExecutor(sim::SimExecutionBackend& backend,
                                 Quarantine& quarantine, GuardPolicy policy)
    : backend_(backend), quarantine_(quarantine), policy_(policy) {
  PEAK_CHECK(policy_.deadline_factor > 1.0,
             "deadline factor must exceed 1");
  PEAK_CHECK(policy_.quarantine_after > 0, "quarantine threshold is zero");
}

void GuardedExecutor::note_failure(FaultKind kind,
                                   const search::FlagConfig& cfg,
                                   const sim::Invocation& inv,
                                   std::size_t attempt, bool gave_up) {
  FaultEvent ev;
  ev.kind = kind;
  ev.config_key = cfg.key();
  ev.invocation_id = inv.id;
  ev.attempt = attempt;
  ev.gave_up = gave_up;
  ev.quarantined = quarantine_.record_failure(ev.config_key, kind,
                                              policy_.quarantine_after);
  obs::Tracer::global().instant(
      "fault", "fault",
      {obs::attr("kind", to_string(kind)), obs::attr("attempt", attempt),
       obs::attr("quarantined", ev.quarantined ? 1 : 0)});
  if (on_fault_) on_fault_(ev);
}

void GuardedExecutor::fail_config(FaultKind kind,
                                  const search::FlagConfig& cfg) {
  GuardMetrics::get().config_failed.inc();
  const std::string key = cfg.key();
  throw ConfigFailed(kind, key, quarantine_.contains(key),
                     std::string("configuration failed: ") +
                         to_string(kind));
}

template <typename Body>
auto GuardedExecutor::guarded(const search::FlagConfig& cfg,
                              const sim::Invocation& inv, Body&& body) {
  const std::string key = cfg.key();
  if (quarantine_.contains(key))
    throw ConfigFailed(
        quarantine_.kind_of(key).value_or(FaultKind::kNone), key,
        /*quarantined=*/true, "configuration is quarantined");

  // Deadline and backoff are priced off the best-known version: a run
  // that exceeds deadline_factor times the best time is written off.
  const double expected = backend_.expected_time(
      has_reference_ ? reference_ : cfg, inv);
  const double deadline = policy_.deadline_factor * expected;

  FaultKind last = FaultKind::kNone;
  for (std::size_t attempt = 0; attempt <= policy_.max_retries;
       ++attempt) {
    backend_.set_fault_attempt(attempt);
    backend_.set_deadline_cycles(deadline);
    try {
      auto result = body();
      backend_.set_fault_attempt(0);
      backend_.set_deadline_cycles(0.0);
      return result;
    } catch (const FaultError& e) {
      last = e.kind();
      const bool can_retry =
          e.transient() && attempt < policy_.max_retries;
      note_failure(e.kind(), cfg, inv, attempt, !can_retry);
      if (!can_retry) break;
      // Backoff wait before the re-measurement, charged to tuning cost
      // under the retry phase.
      backend_.charge_retry(policy_.backoff_fraction * expected *
                            static_cast<double>(attempt + 1));
      GuardMetrics::get().retried.inc();
    }
  }
  backend_.set_fault_attempt(0);
  backend_.set_deadline_cycles(0.0);
  fail_config(last, cfg);
}

sim::InvocationResult GuardedExecutor::invoke(
    const search::FlagConfig& cfg, const sim::Invocation& inv) {
  return guarded(cfg, inv, [&] {
    sim::InvocationResult r = backend_.invoke(cfg, inv);
    if (!std::isfinite(r.time))
      // An absurd timer reading is discarded like any transient fault —
      // a deterministic glitch exhausts the retries and is quarantined.
      throw FaultError(FaultKind::kTimerGlitch, /*transient=*/true,
                       "absurd timer reading");
    return r;
  });
}

std::vector<sim::RbrPairResult> GuardedExecutor::invoke_rbr_batch(
    const search::FlagConfig& best, const search::FlagConfig& exp,
    const sim::Invocation& inv, const sim::RbrOptions& opts) {
  return guarded(exp, inv,
                 [&] { return backend_.invoke_rbr_batch(best, exp, inv, opts); });
}

void GuardedExecutor::validate(const search::FlagConfig& cfg,
                               const sim::Invocation& inv) {
  GuardMetrics::get().validations.inc();
  const sim::InvocationResult r = invoke(cfg, inv);
  if (r.output_digest == backend_.reference_digest(inv)) return;
  GuardMetrics::get().miscompiles.inc();
  const std::string key = cfg.key();
  quarantine_.quarantine(key, FaultKind::kMiscompile);
  FaultEvent ev;
  ev.kind = FaultKind::kMiscompile;
  ev.config_key = key;
  ev.invocation_id = inv.id;
  ev.gave_up = true;
  ev.quarantined = true;
  obs::Tracer::global().instant(
      "fault", "fault", {obs::attr("kind", "miscompile"),
                         obs::attr("quarantined", 1)});
  if (on_fault_) on_fault_(ev);
  throw ConfigFailed(FaultKind::kMiscompile, key, /*quarantined=*/true,
                     "output digest mismatch (miscompiled configuration)");
}

}  // namespace peak::fault
