#pragma once

/// \file fault.hpp
/// Fault taxonomy and typed errors for fault-tolerant tuning. Real
/// optimization configurations crash, hang, and miscompile — failure modes
/// the paper's driver (Figure 5) silently assumes away. The simulator
/// reproduces them deterministically (see injector.hpp) so the tolerance
/// machinery (guarded_executor.hpp) can be tested end to end:
///
///   kCrash             the experimental run aborts partway through
///   kHang              infinite-loop semantics; only a deadline ends it
///   kMiscompile        the run completes but Modified_Input is wrong
///   kTimerGlitch       the run completes but the reported time is absurd
///   kCheckpointCorrupt the RBR checkpoint save/restore produced garbage
///   kHardCrash         the run takes the whole process down with it
///                      (a genuine abort(), not a throw) — survivable
///                      only when the rating runs in an isolated worker
///                      subprocess (src/proc/)
///
/// Every injected fault surfaces as a FaultError subclass carrying its
/// kind and whether a retry of the same invocation can succeed.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace peak::fault {

enum class FaultKind : std::uint8_t {
  kNone,
  kCrash,
  kHang,
  kMiscompile,
  kTimerGlitch,
  kCheckpointCorrupt,
  kHardCrash,
};

const char* to_string(FaultKind kind);
std::optional<FaultKind> parse_fault_kind(std::string_view name);

/// Base of every injected-fault error. `transient()` is the retry hint:
/// true means the same (config, invocation) may succeed on another
/// attempt; false means the failure is a property of the configuration.
class FaultError : public std::runtime_error {
public:
  FaultError(FaultKind kind, bool transient, const std::string& what)
      : std::runtime_error(what), kind_(kind), transient_(transient) {}

  [[nodiscard]] FaultKind kind() const { return kind_; }
  [[nodiscard]] bool transient() const { return transient_; }

private:
  FaultKind kind_;
  bool transient_;
};

/// The experimental run aborted partway through its invocation.
class CrashFault : public FaultError {
public:
  CrashFault(bool transient, const std::string& what)
      : FaultError(FaultKind::kCrash, transient, what) {}
};

/// An unguarded hang: the run would never return. Raised only when no
/// deadline is armed on the backend — guarded execution never sees this.
class HangFault : public FaultError {
public:
  explicit HangFault(const std::string& what)
      : FaultError(FaultKind::kHang, /*transient=*/false, what) {}
};

/// A hang cut short by the watchdog deadline: the guarded executor paid
/// `deadline_cycles` of wall time and gave up on the run.
class DeadlineExceeded : public FaultError {
public:
  DeadlineExceeded(double deadline_cycles, const std::string& what)
      : FaultError(FaultKind::kHang, /*transient=*/false, what),
        deadline_cycles_(deadline_cycles) {}

  [[nodiscard]] double deadline_cycles() const { return deadline_cycles_; }

private:
  double deadline_cycles_;
};

/// The RBR checkpoint save produced a corrupt image (detected when the
/// restore verification fails); the measurement pair is discarded.
class CheckpointCorruptFault : public FaultError {
public:
  CheckpointCorruptFault(bool transient, const std::string& what)
      : FaultError(FaultKind::kCheckpointCorrupt, transient, what) {}
};

/// Raised by the guarded executor when a configuration cannot be measured:
/// its retry budget is exhausted, its output failed validation, or it was
/// already quarantined. `quarantined()` tells the evaluator whether the
/// config is now hard-excluded from the search.
class ConfigFailed : public FaultError {
public:
  ConfigFailed(FaultKind kind, std::string config_key, bool quarantined,
               const std::string& what)
      : FaultError(kind, /*transient=*/false, what),
        config_key_(std::move(config_key)),
        quarantined_(quarantined) {}

  [[nodiscard]] const std::string& config_key() const { return config_key_; }
  [[nodiscard]] bool quarantined() const { return quarantined_; }

private:
  std::string config_key_;
  bool quarantined_;
};

}  // namespace peak::fault
