#pragma once

/// \file injector.hpp
/// Deterministic fault injection. The injector layers a seeded fault model
/// onto the execution backend (beside Perturbation): per (FlagConfig,
/// Invocation) it decides whether a crash, hang, miscompile, timer glitch,
/// or checkpoint corruption fires. Two modes compose:
///
///   stochastic  every config draws a fault verdict from a pure hash of
///               (seed, flag bits) — a fixed fraction of the space is
///               faulty, some deterministically (every invocation), the
///               rest transiently (per-invocation firing probability);
///   scripted    exact (config key, invocation id) pairs registered by
///               tests fire a chosen kind, overriding the stochastic draw.
///
/// The injector is stateless (pure hashing, no mutable RNG): the same
/// seed reproduces the same faults in any order, across retries, and
/// across a crash-safe resume — which is what makes the journal replay
/// bit-identical.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "search/opt_config.hpp"

namespace peak::fault {

struct FaultModel {
  /// Probability that a configuration is faulty at all.
  double fault_prob = 0.0;
  /// Relative kind weights among faulty configs (normalized internally).
  double crash_weight = 0.30;
  double hang_weight = 0.20;
  double miscompile_weight = 0.20;
  double glitch_weight = 0.20;
  double checkpoint_weight = 0.10;
  /// Weight of process-killing crashes (abort(), no throw). Zero by
  /// default: every pre-existing seed keeps its exact fault draws, and
  /// hard crashes only appear where a test or sweep opts in (they are
  /// unsurvivable without --isolate-workers).
  double hard_crash_weight = 0.0;
  /// Fraction of faulty crash/glitch/checkpoint configs that fail on every
  /// invocation. Hangs and miscompiles are always deterministic: they are
  /// properties of the generated code, not of the measurement.
  double deterministic_fraction = 0.5;
  /// Per-(invocation, attempt) firing probability for transient faults.
  double transient_fire_prob = 0.35;
  std::uint64_t seed = 0x5eedULL;
};

/// Per-configuration fault verdict, a pure function of (seed, flag bits).
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  bool deterministic = false;
};

/// One scripted fault: fires for the exact (config key, invocation id)
/// pair. `sticky` faults fire on every retry attempt; non-sticky ones
/// only on the first, modelling a transient failure that a retry clears.
struct ScriptedFault {
  std::string config_key;
  std::uint64_t invocation_id = 0;
  FaultKind kind = FaultKind::kNone;
  bool sticky = true;
};

class FaultInjector {
public:
  explicit FaultInjector(FaultModel model = {});

  /// The configuration's fault verdict (kNone for healthy or exempt ones).
  [[nodiscard]] FaultDecision decide(const search::FlagConfig& cfg) const;

  /// Does a fault fire for this (config, invocation, attempt)? Scripted
  /// entries take precedence; otherwise deterministic verdicts always
  /// fire and transient ones fire per the model's probability, hashed
  /// over the invocation id and the retry attempt (so retries of a
  /// transient fault can succeed).
  [[nodiscard]] FaultKind fire(const search::FlagConfig& cfg,
                               std::uint64_t invocation_id,
                               std::size_t attempt) const;

  /// Register an exact (config, invocation) fault for tests.
  void script(ScriptedFault fault);

  /// Exempt a configuration from stochastic faults (the tuner's -O3
  /// start config is shipping production code, known to work).
  void exempt(const search::FlagConfig& cfg);

  [[nodiscard]] const FaultModel& model() const { return model_; }

private:
  [[nodiscard]] std::uint64_t config_hash(
      const search::FlagConfig& cfg) const;

  FaultModel model_;
  std::set<std::string> exempt_;
  std::map<std::pair<std::string, std::uint64_t>, ScriptedFault> scripted_;
};

}  // namespace peak::fault
