#pragma once

/// \file quarantine.hpp
/// Registry of configurations the tuner must never measure again. A config
/// enters quarantine when it fails deterministically often enough (crash /
/// hang retry budget exhausted) or immediately on a validation failure
/// (miscompiled output). The search algorithms consult the registry
/// through ConfigEvaluator::excluded() and skip quarantined flag sets, so
/// the search degrades gracefully instead of aborting; core::ConfigStore
/// persists the entries beside the tuned configurations.
///
/// All operations take an internal mutex: the telemetry server's
/// /quarantine endpoint reads the table (via snapshot()) from its worker
/// threads while the driver mutates it. entries() stays lock-free and is
/// only safe on the mutating thread (persistence, tests).

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "fault/fault.hpp"

namespace peak::fault {

class Quarantine {
public:
  struct Entry {
    FaultKind kind = FaultKind::kNone;  ///< kind of the decisive failure
    std::size_t failures = 0;           ///< observed failure count
    bool quarantined = false;
  };

  Quarantine() = default;
  /// Copyable (the driver's member-tuning state carries per-member
  /// copies): the source is read under its lock; the mutex itself is not
  /// copied.
  Quarantine(const Quarantine& other);
  Quarantine& operator=(const Quarantine& other);

  [[nodiscard]] bool contains(const std::string& config_key) const;
  [[nodiscard]] std::optional<FaultKind> kind_of(
      const std::string& config_key) const;

  /// Record one observed failure. Once the count reaches `threshold` the
  /// config is quarantined; returns true when this call crossed it.
  bool record_failure(const std::string& config_key, FaultKind kind,
                      std::size_t threshold);

  /// Quarantine immediately (validation failures: a wrong answer is
  /// disqualifying on the first observation).
  void quarantine(const std::string& config_key, FaultKind kind);

  /// Restore a failure count verbatim (journal replay).
  void restore_failures(const std::string& config_key, FaultKind kind,
                        std::size_t failures);

  [[nodiscard]] std::size_t failures_of(
      const std::string& config_key) const;

  /// Number of quarantined configs (not merely failure-counted ones).
  [[nodiscard]] std::size_t size() const;

  /// Direct view for same-thread use (persistence, tests). Not
  /// synchronized — concurrent readers must use snapshot().
  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

  /// Point-in-time copy of the table, safe to take from any thread while
  /// the driver keeps recording failures (the /quarantine endpoint).
  [[nodiscard]] std::map<std::string, Entry> snapshot() const;

  void clear();

private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace peak::fault
