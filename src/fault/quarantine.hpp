#pragma once

/// \file quarantine.hpp
/// Registry of configurations the tuner must never measure again. A config
/// enters quarantine when it fails deterministically often enough (crash /
/// hang retry budget exhausted) or immediately on a validation failure
/// (miscompiled output). The search algorithms consult the registry
/// through ConfigEvaluator::excluded() and skip quarantined flag sets, so
/// the search degrades gracefully instead of aborting; core::ConfigStore
/// persists the entries beside the tuned configurations.

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "fault/fault.hpp"

namespace peak::fault {

class Quarantine {
public:
  struct Entry {
    FaultKind kind = FaultKind::kNone;  ///< kind of the decisive failure
    std::size_t failures = 0;           ///< observed failure count
    bool quarantined = false;
  };

  [[nodiscard]] bool contains(const std::string& config_key) const;
  [[nodiscard]] std::optional<FaultKind> kind_of(
      const std::string& config_key) const;

  /// Record one observed failure. Once the count reaches `threshold` the
  /// config is quarantined; returns true when this call crossed it.
  bool record_failure(const std::string& config_key, FaultKind kind,
                      std::size_t threshold);

  /// Quarantine immediately (validation failures: a wrong answer is
  /// disqualifying on the first observation).
  void quarantine(const std::string& config_key, FaultKind kind);

  /// Restore a failure count verbatim (journal replay).
  void restore_failures(const std::string& config_key, FaultKind kind,
                        std::size_t failures);

  [[nodiscard]] std::size_t failures_of(
      const std::string& config_key) const;

  /// Number of quarantined configs (not merely failure-counted ones).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::map<std::string, Entry>& entries() const {
    return entries_;
  }

  void clear() { entries_.clear(); }

private:
  std::map<std::string, Entry> entries_;
};

}  // namespace peak::fault
