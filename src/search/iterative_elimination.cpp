#include "search/iterative_elimination.hpp"

#include "obs/attribution.hpp"

namespace peak::search {

SearchResult IterativeElimination::run(const OptimizationSpace& space,
                                       ConfigEvaluator& evaluator,
                                       const FlagConfig& start) {
  // Wall the algorithm spends choosing candidates (elapsed minus rating
  // wall) lands on the caller's ledger path as `search_overhead`.
  obs::SearchOverheadScope overhead;
  SearchResult result;
  FlagConfig base = start;
  double cumulative = 1.0;

  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    double best_gain = options_.improvement_threshold;
    std::size_t best_flag = space.size();

    for (std::size_t f = 0; f < space.size(); ++f) {
      if (!base.enabled(f)) continue;
      const FlagConfig candidate = base.with(f, false);
      if (evaluator.excluded(candidate)) {
        SearchEvent skip;
        skip.kind = SearchEvent::Kind::kQuarantined;
        skip.round = round;
        skip.flag = space.flag(f).name;
        result.events.push_back(std::move(skip));
        continue;
      }
      const double r =
          rate_config(evaluator, base, candidate, space.flag(f).name);
      ++result.configs_evaluated;
      if (r > best_gain) {
        best_gain = r;
        best_flag = f;
      }
    }

    if (best_flag == space.size()) {
      SearchEvent stop;
      stop.kind = SearchEvent::Kind::kStop;
      stop.round = round;
      result.events.push_back(std::move(stop));
      break;
    }

    base.set(best_flag, false);
    cumulative *= best_gain;
    SearchEvent removed;
    removed.kind = SearchEvent::Kind::kRemove;
    removed.round = round;
    removed.flag = space.flag(best_flag).name;
    removed.ratio = best_gain;
    result.events.push_back(std::move(removed));
  }

  result.best = base;
  result.improvement_over_start = cumulative;
  return result;
}

SearchResult BatchElimination::run(const OptimizationSpace& space,
                                   ConfigEvaluator& evaluator,
                                   const FlagConfig& start) {
  SearchResult result;
  FlagConfig base = start;

  std::vector<std::size_t> harmful;
  for (std::size_t f = 0; f < space.size(); ++f) {
    if (!base.enabled(f)) continue;
    const FlagConfig candidate = base.with(f, false);
    if (evaluator.excluded(candidate)) {
      SearchEvent skip;
      skip.kind = SearchEvent::Kind::kQuarantined;
      skip.flag = space.flag(f).name;
      result.events.push_back(std::move(skip));
      continue;
    }
    const double r =
        rate_config(evaluator, base, candidate, space.flag(f).name);
    ++result.configs_evaluated;
    if (r > threshold_) {
      harmful.push_back(f);
      SearchEvent ev;
      ev.kind = SearchEvent::Kind::kHarmful;
      ev.flag = space.flag(f).name;
      ev.ratio = r;
      result.events.push_back(std::move(ev));
    }
  }

  for (std::size_t f : harmful) base.set(f, false);

  // One validation measurement of the final configuration.
  if (!harmful.empty()) {
    result.improvement_over_start =
        rate_config(evaluator, start, base, "validate");
    ++result.configs_evaluated;
  }
  result.best = base;
  return result;
}

}  // namespace peak::search
