#include "search/iterative_elimination.hpp"

#include <sstream>

namespace peak::search {

SearchResult IterativeElimination::run(const OptimizationSpace& space,
                                       ConfigEvaluator& evaluator,
                                       const FlagConfig& start) {
  SearchResult result;
  FlagConfig base = start;
  double cumulative = 1.0;

  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    double best_gain = options_.improvement_threshold;
    std::size_t best_flag = space.size();

    for (std::size_t f = 0; f < space.size(); ++f) {
      if (!base.enabled(f)) continue;
      const FlagConfig candidate = base.with(f, false);
      const double r = evaluator.relative_improvement(base, candidate);
      ++result.configs_evaluated;
      if (r > best_gain) {
        best_gain = r;
        best_flag = f;
      }
    }

    if (best_flag == space.size()) {
      std::ostringstream os;
      os << "round " << round << ": no removal improves — stop";
      result.log.push_back(os.str());
      break;
    }

    base.set(best_flag, false);
    cumulative *= best_gain;
    std::ostringstream os;
    os << "round " << round << ": remove " << space.flag(best_flag).name
       << " (R=" << best_gain << ")";
    result.log.push_back(os.str());
  }

  result.best = base;
  result.improvement_over_start = cumulative;
  return result;
}

SearchResult BatchElimination::run(const OptimizationSpace& space,
                                   ConfigEvaluator& evaluator,
                                   const FlagConfig& start) {
  SearchResult result;
  FlagConfig base = start;

  std::vector<std::size_t> harmful;
  for (std::size_t f = 0; f < space.size(); ++f) {
    if (!base.enabled(f)) continue;
    const FlagConfig candidate = base.with(f, false);
    const double r = evaluator.relative_improvement(base, candidate);
    ++result.configs_evaluated;
    if (r > threshold_) {
      harmful.push_back(f);
      result.log.push_back("harmful: " + space.flag(f).name);
    }
  }

  for (std::size_t f : harmful) base.set(f, false);

  // One validation measurement of the final configuration.
  if (!harmful.empty()) {
    result.improvement_over_start =
        evaluator.relative_improvement(start, base);
    ++result.configs_evaluated;
  }
  result.best = base;
  return result;
}

}  // namespace peak::search
