#include "search/iterative_elimination.hpp"

#include "obs/attribution.hpp"

namespace peak::search {

SearchResult IterativeElimination::run(const OptimizationSpace& space,
                                       ConfigEvaluator& evaluator,
                                       const FlagConfig& start) {
  // Wall the algorithm spends choosing candidates (elapsed minus rating
  // wall) lands on the caller's ledger path as `search_overhead`.
  obs::SearchOverheadScope overhead;
  SearchResult result;
  FlagConfig base = start;
  double cumulative = 1.0;

  for (std::size_t round = 0; round < options_.max_rounds; ++round) {
    double best_gain = options_.improvement_threshold;
    std::size_t best_flag = space.size();

    if (evaluator.batched()) {
      // The probes of one round are mutually independent: submit them as
      // one batch so the evaluator can fan them out / serve them cached.
      std::vector<std::size_t> flags;
      for (std::size_t f = 0; f < space.size(); ++f)
        if (base.enabled(f)) flags.push_back(f);
      for (const auto& [f, r] :
           probe_flags(evaluator, result, space, base, round, flags)) {
        if (r > best_gain) {
          best_gain = r;
          best_flag = f;
        }
      }
    } else {
      for (std::size_t f = 0; f < space.size(); ++f) {
        if (!base.enabled(f)) continue;
        const std::optional<double> r =
            probe_candidate(evaluator, result, base, base.with(f, false),
                            space.flag(f).name, round);
        if (r && *r > best_gain) {
          best_gain = *r;
          best_flag = f;
        }
      }
    }

    if (best_flag == space.size()) {
      SearchEvent stop;
      stop.kind = SearchEvent::Kind::kStop;
      stop.round = round;
      record_event(result.events, std::move(stop));
      break;
    }

    base.set(best_flag, false);
    cumulative *= best_gain;
    SearchEvent removed;
    removed.kind = SearchEvent::Kind::kRemove;
    removed.round = round;
    removed.flag = space.flag(best_flag).name;
    removed.ratio = best_gain;
    record_event(result.events, std::move(removed));
  }

  result.best = base;
  result.improvement_over_start = cumulative;
  return result;
}

SearchResult BatchElimination::run(const OptimizationSpace& space,
                                   ConfigEvaluator& evaluator,
                                   const FlagConfig& start) {
  SearchResult result;
  FlagConfig base = start;

  std::vector<std::size_t> harmful;
  for (std::size_t f = 0; f < space.size(); ++f) {
    if (!base.enabled(f)) continue;
    const std::optional<double> r = probe_candidate(
        evaluator, result, base, base.with(f, false), space.flag(f).name,
        /*round=*/0);
    if (r && *r > threshold_) {
      harmful.push_back(f);
      SearchEvent ev;
      ev.kind = SearchEvent::Kind::kHarmful;
      ev.flag = space.flag(f).name;
      ev.ratio = *r;
      record_event(result.events, std::move(ev));
    }
  }

  for (std::size_t f : harmful) base.set(f, false);

  // One validation measurement of the final configuration.
  if (!harmful.empty()) {
    result.improvement_over_start =
        rate_config(evaluator, start, base, "validate");
    ++result.configs_evaluated;
  }
  result.best = base;
  return result;
}

}  // namespace peak::search
