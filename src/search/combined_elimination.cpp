#include "search/combined_elimination.hpp"

#include <algorithm>
#include <cmath>

#include "obs/attribution.hpp"
#include "stats/regression.hpp"
#include "support/check.hpp"

namespace peak::search {

SearchResult CombinedElimination::run(const OptimizationSpace& space,
                                      ConfigEvaluator& evaluator,
                                      const FlagConfig& start) {
  // Same search_overhead accounting as IterativeElimination::run.
  obs::SearchOverheadScope overhead;
  SearchResult result;
  FlagConfig base = start;

  for (std::size_t round = 0; round < space.size(); ++round) {
    // Probe every still-enabled option against the current base — one
    // batch when the evaluator supports it (the probes are independent),
    // the serial probe helper otherwise.
    std::vector<std::pair<double, std::size_t>> harmful;  // (R, flag)
    if (evaluator.batched()) {
      std::vector<std::size_t> flags;
      for (std::size_t f = 0; f < space.size(); ++f)
        if (base.enabled(f)) flags.push_back(f);
      for (const auto& [f, r] :
           probe_flags(evaluator, result, space, base, round, flags))
        if (r > threshold_) harmful.emplace_back(r, f);
    } else {
      for (std::size_t f = 0; f < space.size(); ++f) {
        if (!base.enabled(f)) continue;
        const std::optional<double> r =
            probe_candidate(evaluator, result, base, base.with(f, false),
                            space.flag(f).name, round);
        if (r && *r > threshold_) harmful.emplace_back(*r, f);
      }
    }
    if (harmful.empty()) {
      SearchEvent ev;
      ev.kind = SearchEvent::Kind::kCeExhausted;
      ev.round = round;
      record_event(result.events, std::move(ev));
      break;
    }
    std::sort(harmful.rbegin(), harmful.rend());

    // Remove the worst unconditionally ...
    base.set(harmful.front().second, false);
    {
      SearchEvent ev;
      ev.kind = SearchEvent::Kind::kCeRemove;
      ev.round = round;
      ev.flag = space.flag(harmful.front().second).name;
      ev.ratio = harmful.front().first;
      record_event(result.events, std::move(ev));
    }

    // ... then re-validate the rest, in order. Batched mode rates every
    // remaining harmful flag against the post-removal base in one batch
    // (they are independent given that base); the serial path keeps the
    // classic variant where each accepted removal updates the base the
    // *next* re-validation probes against.
    if (evaluator.batched()) {
      std::vector<std::size_t> flags;
      flags.reserve(harmful.size() - 1);
      for (std::size_t i = 1; i < harmful.size(); ++i)
        flags.push_back(harmful[i].second);
      for (const auto& [f, r] :
           probe_flags(evaluator, result, space, base, round, flags)) {
        if (r > threshold_) {
          base.set(f, false);
          SearchEvent ev;
          ev.kind = SearchEvent::Kind::kCeRevalidate;
          ev.round = round;
          ev.flag = space.flag(f).name;
          ev.ratio = r;
          record_event(result.events, std::move(ev));
        }
      }
    } else {
      for (std::size_t i = 1; i < harmful.size(); ++i) {
        const std::size_t f = harmful[i].second;
        const std::optional<double> r =
            probe_candidate(evaluator, result, base, base.with(f, false),
                            space.flag(f).name, round);
        if (r && *r > threshold_) {
          base.set(f, false);
          SearchEvent ev;
          ev.kind = SearchEvent::Kind::kCeRevalidate;
          ev.round = round;
          ev.flag = space.flag(f).name;
          ev.ratio = *r;
          record_event(result.events, std::move(ev));
        }
      }
    }
  }

  result.best = base;
  result.improvement_over_start =
      rate_config(evaluator, start, base, "validate");
  ++result.configs_evaluated;
  return result;
}

SearchResult FactorialScreening::run(const OptimizationSpace& space,
                                     ConfigEvaluator& evaluator,
                                     const FlagConfig& start) {
  SearchResult result;
  const std::size_t n = space.size();
  const std::size_t runs = std::max<std::size_t>(options_.runs, n + 8);
  support::Rng rng(options_.seed);

  // Balanced two-level design: each run toggles every flag with p = 1/2.
  // The response is log(R vs start): additive per-flag effects multiply
  // execution times, so effects are linear in log space.
  stats::Matrix design(runs, n + 1);
  std::vector<double> response(runs);
  for (std::size_t r = 0; r < runs; ++r) {
    FlagConfig cfg(space);
    for (std::size_t f = 0; f < n; ++f) {
      const bool on = rng.bernoulli(0.5);
      cfg.set(f, on);
      design(r, f) = on ? 1.0 : -1.0;
    }
    design(r, n) = 1.0;  // intercept
    const double rel = rate_config(evaluator, start, cfg, "screening");
    ++result.configs_evaluated;
    response[r] = std::log(std::max(rel, 1e-9));
  }

  const stats::RegressionResult fit =
      stats::least_squares(design, response);

  FlagConfig best = start;
  if (fit.ok) {
    for (std::size_t f = 0; f < n; ++f) {
      // Positive coefficient: enabling the flag increases log-improvement
      // over the all-on start, i.e. the flag is *harmful* when on... note
      // the response measures configs vs start, so a flag whose presence
      // correlates with slower configs has a negative coefficient.
      if (fit.coefficients[f] < -options_.harm_threshold / 2.0) {
        best.set(f, false);
        SearchEvent ev;
        ev.kind = SearchEvent::Kind::kMainEffect;
        ev.flag = space.flag(f).name;
        ev.ratio = fit.coefficients[f];
        record_event(result.events, std::move(ev));
      }
    }
  } else {
    SearchEvent ev;
    ev.kind = SearchEvent::Kind::kDegenerate;
    record_event(result.events, std::move(ev));
  }

  result.best = best;
  result.improvement_over_start =
      rate_config(evaluator, start, best, "validate");
  ++result.configs_evaluated;
  return result;
}

}  // namespace peak::search
