#include "search/simple_searches.hpp"

#include "support/check.hpp"

namespace peak::search {

SearchResult ExhaustiveSearch::run(const OptimizationSpace& space,
                                   ConfigEvaluator& evaluator,
                                   const FlagConfig& start) {
  PEAK_CHECK(space.size() <= max_bits_,
             "exhaustive search over " + std::to_string(space.size()) +
                 " bits refused (max " + std::to_string(max_bits_) + ")");
  SearchResult result;
  result.best = start;
  double best_r = 1.0;

  const std::uint64_t limit = 1ULL << space.size();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    FlagConfig cfg(space);
    for (std::size_t f = 0; f < space.size(); ++f)
      cfg.set(f, (mask >> f) & 1ULL);
    if (cfg == start) continue;
    const double r = rate_config(evaluator, start, cfg);
    ++result.configs_evaluated;
    if (r > best_r) {
      best_r = r;
      result.best = cfg;
    }
  }
  result.improvement_over_start = best_r;
  return result;
}

SearchResult RandomSearch::run(const OptimizationSpace& space,
                               ConfigEvaluator& evaluator,
                               const FlagConfig& start) {
  SearchResult result;
  result.best = start;
  double best_r = 1.0;

  for (std::size_t t = 0; t < trials_; ++t) {
    FlagConfig cfg(space);
    for (std::size_t f = 0; f < space.size(); ++f)
      cfg.set(f, rng_.bernoulli(0.5));
    const double r = rate_config(evaluator, start, cfg);
    ++result.configs_evaluated;
    if (r > best_r) {
      best_r = r;
      result.best = cfg;
    }
  }
  result.improvement_over_start = best_r;
  return result;
}

SearchResult GreedyConstruction::run(const OptimizationSpace& space,
                                     ConfigEvaluator& evaluator,
                                     const FlagConfig& start) {
  SearchResult result;
  FlagConfig base = baseline_config(space);
  double cumulative = 1.0;

  for (std::size_t round = 0; round < space.size(); ++round) {
    double best_gain = threshold_;
    std::size_t best_flag = space.size();
    for (std::size_t f = 0; f < space.size(); ++f) {
      if (base.enabled(f)) continue;
      const FlagConfig candidate = base.with(f, true);
      const double r =
          rate_config(evaluator, base, candidate, space.flag(f).name);
      ++result.configs_evaluated;
      if (r > best_gain) {
        best_gain = r;
        best_flag = f;
      }
    }
    if (best_flag == space.size()) break;
    base.set(best_flag, true);
    cumulative *= best_gain;
    SearchEvent ev;
    ev.kind = SearchEvent::Kind::kEnable;
    ev.round = round;
    ev.flag = space.flag(best_flag).name;
    ev.ratio = best_gain;
    record_event(result.events, std::move(ev));
  }

  result.best = base;
  // Report improvement relative to the caller's start configuration.
  result.improvement_over_start =
      rate_config(evaluator, start, base, "validate");
  ++result.configs_evaluated;
  (void)cumulative;
  return result;
}

}  // namespace peak::search
