#pragma once

/// \file advisor.hpp
/// Model-based (non-empirical) optimization selection — the comparator the
/// paper's introduction positions PEAK against (its reference [17], and
/// Granston & Holler's deterministic option recommendation [6]). The
/// advisor inspects the section's static traits and the target machine and
/// predicts which options to disable, *without running anything*.
///
/// It encodes textbook heuristics: scheduling is risky on register-starved
/// machines for spill-heavy code; redundancy elimination backfires under
/// register pressure; if-conversion hurts irregular branchy code on deep
/// pipelines; strict aliasing is dangerous when pressure is extreme. The
/// point of the comparison bench is the paper's thesis: such models catch
/// some effects but miss the interactions and magnitudes that empirical
/// rating measures directly.

#include "search/opt_config.hpp"
#include "sim/flag_effects.hpp"
#include "sim/machine.hpp"

namespace peak::search {

struct AdvisorVerdict {
  FlagConfig recommended;
  std::vector<std::string> reasoning;  ///< one line per disabled option
};

/// Recommend a configuration for one section on one machine, starting
/// from -O3 (all options enabled).
AdvisorVerdict advise(const OptimizationSpace& space,
                      const sim::TsTraits& traits,
                      const sim::MachineModel& machine);

}  // namespace peak::search
