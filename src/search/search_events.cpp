#include "search/search_algorithm.hpp"

#include <sstream>

#include "obs/attribution.hpp"
#include "obs/trace.hpp"

namespace peak::search {

double rate_config(ConfigEvaluator& evaluator, const FlagConfig& base,
                   const FlagConfig& cfg, std::string_view label) {
  obs::ScopedSpan span("probe", "search");
  if (span.active() && !label.empty())
    span.add(obs::attr("flag", std::string(label)));
  // Every search algorithm funnels evaluator calls through here, so this
  // gate is what lets SearchOverheadScope subtract rating wall from the
  // algorithm's own elapsed time.
  obs::EvaluatorWallGate gate;
  const double r = evaluator.relative_improvement(base, cfg);
  if (span.active()) span.add(obs::attr("R", r));
  return r;
}

std::string render(const SearchEvent& event) {
  std::ostringstream os;
  switch (event.kind) {
    case SearchEvent::Kind::kRemove:
      os << "round " << event.round << ": remove " << event.flag
         << " (R=" << event.ratio << ")";
      break;
    case SearchEvent::Kind::kStop:
      os << "round " << event.round << ": no removal improves — stop";
      break;
    case SearchEvent::Kind::kHarmful:
      os << "harmful: " << event.flag;
      break;
    case SearchEvent::Kind::kEnable:
      os << "enable " << event.flag;
      break;
    case SearchEvent::Kind::kCeRemove:
      os << "remove " << event.flag;
      break;
    case SearchEvent::Kind::kCeRevalidate:
      os << "remove " << event.flag << " (revalidated)";
      break;
    case SearchEvent::Kind::kCeExhausted:
      os << "round " << event.round << ": no harmful options remain";
      break;
    case SearchEvent::Kind::kMainEffect:
      os << "main effect harmful: " << event.flag;
      break;
    case SearchEvent::Kind::kDegenerate:
      os << "screening regression degenerate; keeping start";
      break;
    case SearchEvent::Kind::kMethodChosen:
      os << "method " << event.flag
         << (event.round > 0 ? " (after fallback)"
                             : " (consultant's first choice)");
      break;
    case SearchEvent::Kind::kAbandoned:
      os << "abandoned: " << event.note;
      break;
    case SearchEvent::Kind::kQuarantined:
      os << "skip " << event.flag << " (quarantined)";
      break;
    case SearchEvent::Kind::kNote:
      os << event.note;
      break;
  }
  return os.str();
}

std::vector<std::string> render_search_log(
    const std::vector<SearchEvent>& events) {
  std::vector<std::string> out;
  out.reserve(events.size());
  for (const SearchEvent& e : events) out.push_back(render(e));
  return out;
}

}  // namespace peak::search
