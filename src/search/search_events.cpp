#include "search/search_algorithm.hpp"

#include <sstream>
#include <utility>

#include "obs/attribution.hpp"
#include "obs/event_ring.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace peak::search {

std::vector<double> ConfigEvaluator::rate_batch(
    const FlagConfig& base, const std::vector<FlagConfig>& candidates) {
  std::vector<double> ratings;
  ratings.reserve(candidates.size());
  for (const FlagConfig& cfg : candidates)
    ratings.push_back(relative_improvement(base, cfg));
  return ratings;
}

double rate_config(ConfigEvaluator& evaluator, const FlagConfig& base,
                   const FlagConfig& cfg, std::string_view label) {
  obs::ScopedSpan span("probe", "search");
  if (span.active() && !label.empty())
    span.add(obs::attr("flag", std::string(label)));
  // Every search algorithm funnels evaluator calls through here, so this
  // gate is what lets SearchOverheadScope subtract rating wall from the
  // algorithm's own elapsed time.
  obs::EvaluatorWallGate gate;
  const double r = evaluator.relative_improvement(base, cfg);
  if (span.active()) span.add(obs::attr("R", r));
  return r;
}

std::optional<double> probe_candidate(ConfigEvaluator& evaluator,
                                      SearchResult& result,
                                      const FlagConfig& base,
                                      const FlagConfig& candidate,
                                      std::string_view flag_name,
                                      std::size_t round) {
  if (evaluator.excluded(candidate)) {
    SearchEvent skip;
    skip.kind = SearchEvent::Kind::kQuarantined;
    skip.round = round;
    skip.flag = std::string(flag_name);
    record_event(result.events, std::move(skip));
    return std::nullopt;
  }
  const double r = rate_config(evaluator, base, candidate, flag_name);
  ++result.configs_evaluated;
  return r;
}

std::vector<std::pair<std::size_t, double>> probe_flags(
    ConfigEvaluator& evaluator, SearchResult& result,
    const OptimizationSpace& space, const FlagConfig& base,
    std::size_t round, const std::vector<std::size_t>& flags) {
  std::vector<std::size_t> live;
  std::vector<FlagConfig> candidates;
  live.reserve(flags.size());
  candidates.reserve(flags.size());
  for (std::size_t f : flags) {
    FlagConfig candidate = base.with(f, false);
    if (evaluator.excluded(candidate)) {
      SearchEvent skip;
      skip.kind = SearchEvent::Kind::kQuarantined;
      skip.round = round;
      skip.flag = space.flag(f).name;
      record_event(result.events, std::move(skip));
      continue;
    }
    live.push_back(f);
    candidates.push_back(std::move(candidate));
  }
  std::vector<double> ratings;
  if (!candidates.empty()) {
    obs::ScopedSpan span("probe_batch", "search");
    if (span.active())
      span.add(obs::attr("candidates", candidates.size()));
    obs::EvaluatorWallGate gate;
    ratings = evaluator.rate_batch(base, candidates);
  }
  PEAK_CHECK(ratings.size() == candidates.size(),
             "rate_batch returned wrong arity");
  result.configs_evaluated += candidates.size();
  std::vector<std::pair<std::size_t, double>> rated;
  rated.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i)
    rated.emplace_back(live[i], ratings[i]);
  return rated;
}

std::string render(const SearchEvent& event) {
  std::ostringstream os;
  switch (event.kind) {
    case SearchEvent::Kind::kRemove:
      os << "round " << event.round << ": remove " << event.flag
         << " (R=" << event.ratio << ")";
      break;
    case SearchEvent::Kind::kStop:
      os << "round " << event.round << ": no removal improves — stop";
      break;
    case SearchEvent::Kind::kHarmful:
      os << "harmful: " << event.flag;
      break;
    case SearchEvent::Kind::kEnable:
      os << "enable " << event.flag;
      break;
    case SearchEvent::Kind::kCeRemove:
      os << "remove " << event.flag;
      break;
    case SearchEvent::Kind::kCeRevalidate:
      os << "remove " << event.flag << " (revalidated)";
      break;
    case SearchEvent::Kind::kCeExhausted:
      os << "round " << event.round << ": no harmful options remain";
      break;
    case SearchEvent::Kind::kMainEffect:
      os << "main effect harmful: " << event.flag;
      break;
    case SearchEvent::Kind::kDegenerate:
      os << "screening regression degenerate; keeping start";
      break;
    case SearchEvent::Kind::kMethodChosen:
      os << "method " << event.flag
         << (event.round > 0 ? " (after fallback)"
                             : " (consultant's first choice)");
      break;
    case SearchEvent::Kind::kAbandoned:
      os << "abandoned: " << event.note;
      break;
    case SearchEvent::Kind::kQuarantined:
      os << "skip " << event.flag << " (quarantined)";
      break;
    case SearchEvent::Kind::kNote:
      os << event.note;
      break;
  }
  return os.str();
}

std::vector<std::string> render_search_log(
    const std::vector<SearchEvent>& events) {
  std::vector<std::string> out;
  out.reserve(events.size());
  for (const SearchEvent& e : events) out.push_back(render(e));
  return out;
}

std::string_view to_string(SearchEvent::Kind kind) {
  switch (kind) {
    case SearchEvent::Kind::kRemove: return "remove";
    case SearchEvent::Kind::kStop: return "stop";
    case SearchEvent::Kind::kHarmful: return "harmful";
    case SearchEvent::Kind::kEnable: return "enable";
    case SearchEvent::Kind::kCeRemove: return "ce_remove";
    case SearchEvent::Kind::kCeRevalidate: return "ce_revalidate";
    case SearchEvent::Kind::kCeExhausted: return "ce_exhausted";
    case SearchEvent::Kind::kMainEffect: return "main_effect";
    case SearchEvent::Kind::kDegenerate: return "degenerate";
    case SearchEvent::Kind::kMethodChosen: return "method_chosen";
    case SearchEvent::Kind::kAbandoned: return "abandoned";
    case SearchEvent::Kind::kQuarantined: return "quarantined";
    case SearchEvent::Kind::kNote: return "note";
  }
  return "unknown";
}

std::string to_json(const SearchEvent& event) {
  std::ostringstream os;
  os << "{\"kind\":\"" << to_string(event.kind) << "\",\"round\":"
     << event.round;
  if (!event.flag.empty())
    os << ",\"flag\":\"" << obs::json_escape(event.flag) << "\"";
  if (event.ratio != 0.0)
    os << ",\"ratio\":" << obs::json_number(event.ratio);
  if (!event.note.empty())
    os << ",\"note\":\"" << obs::json_escape(event.note) << "\"";
  os << ",\"text\":\"" << obs::json_escape(render(event)) << "\"}";
  return os.str();
}

void record_event(std::vector<SearchEvent>& events, SearchEvent event) {
  obs::publish_run_event(std::string(to_string(event.kind)),
                         to_json(event));
  events.push_back(std::move(event));
}

}  // namespace peak::search
