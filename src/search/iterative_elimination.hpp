#pragma once

/// \file iterative_elimination.hpp
/// The Iterative Elimination algorithm of the paper's Section 5.2 (from
/// the authors' prior work [11]). Exhaustive search over n binary options
/// is O(2^n); IE reduces the cost to O(n²) evaluations:
///
///   start from the full "-O3" configuration;
///   repeat:
///     for every still-enabled option, rate the configuration with just
///     that option switched off, relative to the current base;
///     if some removal improves performance (beyond a noise threshold),
///     permanently remove the option with the largest improvement;
///   until no removal helps.
///
/// Removing one option per round (rather than all harmful ones at once)
/// respects interactions between options — see BatchElimination for the
/// cheaper O(n) variant that does not.

#include "search/search_algorithm.hpp"

namespace peak::search {

struct IterativeEliminationOptions {
  /// Removal counts as an improvement only above this ratio. Converged
  /// ratings carry a relative standard error around 0.5%, so the guard
  /// sits at ~2σ — below it, "improvements" are noise and the search
  /// would keep eliminating useful options round after round.
  double improvement_threshold = 1.01;
  /// Safety bound on rounds (n is the natural limit).
  std::size_t max_rounds = 64;
};

class IterativeElimination final : public SearchAlgorithm {
public:
  explicit IterativeElimination(IterativeEliminationOptions options = {})
      : options_(options) {}

  SearchResult run(const OptimizationSpace& space,
                   ConfigEvaluator& evaluator,
                   const FlagConfig& start) override;

  [[nodiscard]] std::string name() const override {
    return "iterative-elimination";
  }

private:
  IterativeEliminationOptions options_;
};

/// Batch Elimination: one probing round, then remove *all* options whose
/// individual removal improved performance. O(n) evaluations but blind to
/// interactions between the removed options.
class BatchElimination final : public SearchAlgorithm {
public:
  explicit BatchElimination(double improvement_threshold = 1.002)
      : threshold_(improvement_threshold) {}

  SearchResult run(const OptimizationSpace& space,
                   ConfigEvaluator& evaluator,
                   const FlagConfig& start) override;

  [[nodiscard]] std::string name() const override {
    return "batch-elimination";
  }

private:
  double threshold_;
};

}  // namespace peak::search
