#include "search/advisor.hpp"

namespace peak::search {

AdvisorVerdict advise(const OptimizationSpace& space,
                      const sim::TsTraits& traits,
                      const sim::MachineModel& machine) {
  AdvisorVerdict verdict;
  verdict.recommended = o3_config(space);

  const double reg_ratio =
      traits.reg_pressure /
      std::max(1.0, static_cast<double>(machine.int_registers));
  const bool starved = reg_ratio > 1.2;
  const bool deep_pipeline = machine.mispredict_penalty > 10.0;
  const bool irregular = traits.loop_regularity < 0.4;

  auto disable = [&](const char* flag, const std::string& why) {
    if (const auto idx = space.index_of(flag)) {
      if (verdict.recommended.enabled(*idx)) {
        verdict.recommended.set(*idx, false);
        verdict.reasoning.push_back(std::string(flag) + ": " + why);
      }
    }
  };

  // Scheduling lengthens live ranges; with more live values than
  // registers, the spills cost more than the latency hiding gains.
  if (starved && traits.fp_intensity > 0.15) {
    disable("-fschedule-insns",
            "register-starved machine, FP-heavy section: scheduling "
            "causes spills");
    disable("-fsched-spec", "speculative scheduling compounds the spills");
  }

  // Redundancy elimination keeps more temporaries live.
  if (reg_ratio > 1.6) {
    disable("-fgcse", "extreme register pressure: CSE temporaries spill");
    disable("-fcse-follow-jumps", "same pressure argument");
  }

  // Strict aliasing lengthens live ranges further when pressure is
  // already extreme (the ART mechanism).
  if (reg_ratio > 2.0 && traits.memory_intensity > 0.3)
    disable("-fstrict-aliasing",
            "very high register pressure on memory-bound code");

  // If-conversion trades a cheap, well-predicted branch for unconditional
  // work; on irregular codes with deep pipelines the branch was the
  // cheaper option only when mispredicted — data-dependent, so models
  // guess by irregularity alone.
  if (irregular && deep_pipeline) {
    disable("-fif-conversion",
            "irregular branches on a deep pipeline: conversion adds work");
    disable("-fif-conversion2", "companion of if-conversion");
  }

  // Caller-saved register use in tight call-free loops is pure overhead
  // on register-starved machines.
  if (starved && traits.call_intensity < 0.01)
    disable("-fcaller-saves", "no calls to benefit; pressure to lose");

  return verdict;
}

}  // namespace peak::search
