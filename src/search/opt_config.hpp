#pragma once

/// \file opt_config.hpp
/// The optimization search space: a set of named binary options and
/// configurations over them. The paper explores the n = 38 options implied
/// by "-O3" of GCC 3.3 (its reference [5]); gcc33_o3_space() reproduces
/// that exact flag list. Configurations are bitsets: bit i set = flag i
/// enabled.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/bitset.hpp"

namespace peak::search {

/// Broad behavioural category of a flag; the simulated compiler's effect
/// model keys its heuristics on these.
enum class FlagCategory : std::uint8_t {
  kBranch,      ///< jump threading, if-conversion, branch probability
  kLoop,        ///< loop optimizations, strength reduction
  kRedundancy,  ///< CSE / GCSE family
  kScheduling,  ///< instruction scheduling
  kRegister,    ///< register allocation helpers
  kInline,      ///< inlining and call optimizations
  kAlias,       ///< aliasing assumptions
  kLayout,      ///< code alignment / reordering
  kMisc,
};

struct FlagInfo {
  std::string name;
  FlagCategory category = FlagCategory::kMisc;
  int opt_level = 1;  ///< GCC level that first enables it (1, 2, or 3)
};

class OptimizationSpace {
public:
  explicit OptimizationSpace(std::vector<FlagInfo> flags);

  [[nodiscard]] std::size_t size() const { return flags_.size(); }
  [[nodiscard]] const FlagInfo& flag(std::size_t i) const;
  [[nodiscard]] std::optional<std::size_t> index_of(
      std::string_view name) const;

private:
  std::vector<FlagInfo> flags_;
};

/// The 38 binary options implied by GCC 3.3 -O3 (9 from -O1, 27 more from
/// -O2, 2 more from -O3), per the GCC 3.3 manual.
const OptimizationSpace& gcc33_o3_space();

/// A selection of enabled flags within a space.
class FlagConfig {
public:
  FlagConfig() = default;
  explicit FlagConfig(const OptimizationSpace& space, bool all_on = false);

  [[nodiscard]] bool enabled(std::size_t flag) const {
    return bits_.test(flag);
  }
  void set(std::size_t flag, bool on) { bits_.set(flag, on); }

  [[nodiscard]] std::size_t count_enabled() const { return bits_.count(); }
  [[nodiscard]] std::size_t size() const { return bits_.size(); }

  [[nodiscard]] FlagConfig with(std::size_t flag, bool on) const {
    FlagConfig copy = *this;
    copy.set(flag, on);
    return copy;
  }

  /// Stable key for memoization (hex words of the bitset).
  [[nodiscard]] std::string key() const;

  /// The underlying bit vector — hashed cache keys use its raw words
  /// directly instead of formatting key() strings on hot paths.
  [[nodiscard]] const support::DynBitset& bits() const { return bits_; }

  /// Human-readable "-fgcse -fstrict-aliasing ..." listing of enabled (or,
  /// with invert=true, disabled) flags.
  [[nodiscard]] std::string describe(const OptimizationSpace& space,
                                     bool invert = false) const;

  friend bool operator==(const FlagConfig&, const FlagConfig&) = default;

private:
  support::DynBitset bits_;
};

/// Everything on — the "-O3" starting point of the search.
FlagConfig o3_config(const OptimizationSpace& space);

/// Everything off — the "-O0-like" reference the effect model prices
/// multipliers against.
FlagConfig baseline_config(const OptimizationSpace& space);

}  // namespace peak::search
