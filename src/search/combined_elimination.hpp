#pragma once

/// \file combined_elimination.hpp
/// Two further search strategies from the paper's orbit:
///
/// * CombinedElimination — the authors' successor to Iterative
///   Elimination: one full probing round identifies all individually
///   harmful options; the worst is removed unconditionally, and the rest
///   are re-validated against the *new* baseline in decreasing-harm order
///   within the same round, removing those that still help. Near-BE cost
///   with near-IE quality.
///
/// * FactorialScreening — in the spirit of Chow & Wu's fractional
///   factorial design: run a balanced random two-level design over the
///   flag space, fit per-flag main effects by least squares, and disable
///   every flag whose main effect is harmful. O(R) evaluations for R
///   design runs, independent of n², but blind to interactions beyond
///   what the averaging washes out.

#include "search/search_algorithm.hpp"
#include "support/rng.hpp"

namespace peak::search {

class CombinedElimination final : public SearchAlgorithm {
public:
  explicit CombinedElimination(double improvement_threshold = 1.01)
      : threshold_(improvement_threshold) {}

  SearchResult run(const OptimizationSpace& space,
                   ConfigEvaluator& evaluator,
                   const FlagConfig& start) override;

  [[nodiscard]] std::string name() const override {
    return "combined-elimination";
  }

private:
  double threshold_;
};

struct FactorialScreeningOptions {
  std::size_t runs = 96;          ///< design size (R >= ~2n for stability)
  std::uint64_t seed = 0xfac7;
  /// A flag is disabled when its fitted main effect slows the section by
  /// more than this relative amount.
  double harm_threshold = 0.002;
};

class FactorialScreening final : public SearchAlgorithm {
public:
  explicit FactorialScreening(FactorialScreeningOptions options = {})
      : options_(options) {}

  SearchResult run(const OptimizationSpace& space,
                   ConfigEvaluator& evaluator,
                   const FlagConfig& start) override;

  [[nodiscard]] std::string name() const override {
    return "factorial-screening";
  }

private:
  FactorialScreeningOptions options_;
};

}  // namespace peak::search
