#pragma once

/// \file search_algorithm.hpp
/// Search over the optimization space. Algorithms see configurations only
/// through a ConfigEvaluator — in PEAK that evaluator is the rating
/// machinery (CBR/MBR/RBR/AVG/WHL) measuring real or simulated executions,
/// so the same algorithms work for any rating method, any backend.

#include <string>
#include <vector>

#include "search/opt_config.hpp"

namespace peak::search {

/// Rates configurations. Implementations are stateful: evaluation costs
/// (invocations, simulated time) accumulate inside so the tuning-time
/// experiments can read them back.
class ConfigEvaluator {
public:
  virtual ~ConfigEvaluator() = default;

  /// Relative improvement R of `cfg` over `base`: R > 1 means `cfg` is
  /// faster. (For time-based raters this is time(base)/time(cfg).)
  virtual double relative_improvement(const FlagConfig& base,
                                      const FlagConfig& cfg) = 0;
};

struct SearchResult {
  FlagConfig best;
  double improvement_over_start = 1.0;  ///< R of best vs the start config
  std::size_t configs_evaluated = 0;
  std::vector<std::string> log;  ///< human-readable decision trace
};

class SearchAlgorithm {
public:
  virtual ~SearchAlgorithm() = default;
  virtual SearchResult run(const OptimizationSpace& space,
                           ConfigEvaluator& evaluator,
                           const FlagConfig& start) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace peak::search
