#pragma once

/// \file search_algorithm.hpp
/// Search over the optimization space. Algorithms see configurations only
/// through a ConfigEvaluator — in PEAK that evaluator is the rating
/// machinery (CBR/MBR/RBR/AVG/WHL) measuring real or simulated executions,
/// so the same algorithms work for any rating method, any backend.

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "search/opt_config.hpp"

namespace peak::search {

/// Rates configurations. Implementations are stateful: evaluation costs
/// (invocations, simulated time) accumulate inside so the tuning-time
/// experiments can read them back.
class ConfigEvaluator {
public:
  virtual ~ConfigEvaluator() = default;

  /// Relative improvement R of `cfg` over `base`: R > 1 means `cfg` is
  /// faster. (For time-based raters this is time(base)/time(cfg).)
  virtual double relative_improvement(const FlagConfig& base,
                                      const FlagConfig& cfg) = 0;

  /// True when `cfg` must not be measured at all (quarantined after
  /// deterministic failures). Search algorithms skip such candidates and
  /// emit a kQuarantined event instead of probing them.
  [[nodiscard]] virtual bool excluded(const FlagConfig& cfg) const {
    (void)cfg;
    return false;
  }

  /// True when this evaluator wants whole rounds submitted through
  /// rate_batch() (it can evaluate the independent candidates of a round
  /// concurrently and/or serve them from a cache). Searches with
  /// batchable loops consult this to pick the batched code path.
  [[nodiscard]] virtual bool batched() const { return false; }

  /// Rate every candidate against `base`; result i corresponds to
  /// candidates[i]. The candidates of one call must be mutually
  /// independent (none depends on another's outcome) — exactly the shape
  /// of one elimination-search probe round. The default implementation
  /// is a serial relative_improvement() loop, so plain evaluators work
  /// with batching searches unchanged.
  virtual std::vector<double> rate_batch(
      const FlagConfig& base, const std::vector<FlagConfig>& candidates);
};

/// One structured decision made by a search algorithm (or by the tuning
/// driver's method-switching logic on top of it). Events replace the old
/// stringly `log`; `render(event)` reproduces the exact strings the log
/// used to carry, and the obs layer exports the structured form.
struct SearchEvent {
  enum class Kind {
    kRemove,       ///< IE: remove `flag` in `round`, measured `ratio`
    kStop,         ///< IE: no removal improves in `round`
    kHarmful,      ///< BatchElimination: `flag` flagged harmful
    kEnable,       ///< GreedyConstruction: `flag` enabled
    kCeRemove,     ///< CombinedElimination: `flag` removed outright
    kCeRevalidate, ///< CombinedElimination: `flag` removed on recheck
    kCeExhausted,  ///< CombinedElimination: nothing harmful in `round`
    kMainEffect,   ///< FactorialScreening: `flag`'s main effect harmful
    kDegenerate,   ///< FactorialScreening: regression degenerate
    kMethodChosen, ///< driver: rating method `flag` selected (round =
                   ///< position in the consultant's chain)
    kAbandoned,    ///< driver: method gave up; reason in `note`
    kQuarantined,  ///< candidate touching `flag` skipped: quarantined
    kNote,         ///< free text in `note`
  };
  Kind kind = Kind::kNote;
  std::size_t round = 0;
  std::string flag;    ///< flag or method name, when applicable
  double ratio = 0.0;  ///< measured R, when applicable
  std::string note;    ///< free text for kAbandoned / kNote

  friend bool operator==(const SearchEvent&, const SearchEvent&) = default;
};

/// Render one event exactly as the legacy string log did.
std::string render(const SearchEvent& event);

/// Stable identifier of an event kind ("remove", "method_chosen",
/// "quarantined", …) — used as the SSE event name on /events.
std::string_view to_string(SearchEvent::Kind kind);

/// One event as a single-line JSON object:
///   {"kind":"remove","round":2,"flag":"...","ratio":...,"note":"...",
///    "text":"round 2: remove ... (R=...)"}
/// ratio/note/flag appear only when set; "text" always carries
/// render(event) so stream consumers need no kind-specific formatting.
std::string to_json(const SearchEvent& event);

/// Append `event` to `events` AND publish it to the global obs event
/// ring, so a live `/events` SSE stream sees every search decision the
/// moment it is made. Publishing is never-blocking and in-memory (the
/// ring evicts when full); with no telemetry consumer attached the cost
/// is one mutex acquisition per decision, far off the per-invocation hot
/// path.
void record_event(std::vector<SearchEvent>& events, SearchEvent event);

/// Render a whole event stream (byte-compatible with the old log).
std::vector<std::string> render_search_log(
    const std::vector<SearchEvent>& events);

struct SearchResult {
  FlagConfig best;
  double improvement_over_start = 1.0;  ///< R of best vs the start config
  std::size_t configs_evaluated = 0;
  std::vector<SearchEvent> events;  ///< structured decision trace

  /// Legacy view of `events` (the old `log` member).
  [[nodiscard]] std::vector<std::string> render_log() const {
    return render_search_log(events);
  }
};

/// Rate `cfg` against `base` under an obs "probe" span carrying the
/// probed flag and the measured R. All search algorithms funnel their
/// evaluator calls through here. (The `search.configs_evaluated` counter
/// lives in the tuning driver's evaluator, so it also counts algorithms
/// that bypass this helper.)
double rate_config(ConfigEvaluator& evaluator, const FlagConfig& base,
                   const FlagConfig& cfg, std::string_view label = {});

/// One probe of an elimination-style search — the block IE's probe loop,
/// CE's probe loop, CE's re-validation loop, and BatchElimination all
/// repeat: if `candidate` is quarantined, record the kQuarantined event
/// on `result` and return nothing; otherwise rate it against `base`
/// (probe span, wall gate) and count it in `result.configs_evaluated`.
std::optional<double> probe_candidate(ConfigEvaluator& evaluator,
                                      SearchResult& result,
                                      const FlagConfig& base,
                                      const FlagConfig& candidate,
                                      std::string_view flag_name,
                                      std::size_t round);

/// Batched counterpart of a probe_candidate() loop over `flags`
/// (candidate = `base` with the flag turned off): quarantined candidates
/// get their kQuarantined events up front, the survivors go to the
/// evaluator as one rate_batch() call, and (flag, R) pairs come back in
/// canonical flag order. Moving the quarantine checks ahead of the
/// measurements cannot change what is skipped: a probe only ever
/// quarantines configurations it measured (the base or the candidate
/// itself), and no later candidate of the round equals either.
std::vector<std::pair<std::size_t, double>> probe_flags(
    ConfigEvaluator& evaluator, SearchResult& result,
    const OptimizationSpace& space, const FlagConfig& base,
    std::size_t round, const std::vector<std::size_t>& flags);

class SearchAlgorithm {
public:
  virtual ~SearchAlgorithm() = default;
  virtual SearchResult run(const OptimizationSpace& space,
                           ConfigEvaluator& evaluator,
                           const FlagConfig& start) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace peak::search
