#include "search/opt_config.hpp"

#include <sstream>

#include "support/check.hpp"

namespace peak::search {

OptimizationSpace::OptimizationSpace(std::vector<FlagInfo> flags)
    : flags_(std::move(flags)) {
  PEAK_CHECK(!flags_.empty(), "empty optimization space");
}

const FlagInfo& OptimizationSpace::flag(std::size_t i) const {
  PEAK_CHECK(i < flags_.size(), "flag index out of range");
  return flags_[i];
}

std::optional<std::size_t> OptimizationSpace::index_of(
    std::string_view name) const {
  for (std::size_t i = 0; i < flags_.size(); ++i)
    if (flags_[i].name == name) return i;
  return std::nullopt;
}

const OptimizationSpace& gcc33_o3_space() {
  using C = FlagCategory;
  static const OptimizationSpace space{{
      // -O1 (9)
      {"-fdefer-pop", C::kMisc, 1},
      {"-fmerge-constants", C::kMisc, 1},
      {"-fthread-jumps", C::kBranch, 1},
      {"-floop-optimize", C::kLoop, 1},
      {"-fif-conversion", C::kBranch, 1},
      {"-fif-conversion2", C::kBranch, 1},
      {"-fdelayed-branch", C::kScheduling, 1},
      {"-fguess-branch-probability", C::kBranch, 1},
      {"-fcprop-registers", C::kRegister, 1},
      // -O2 adds (27)
      {"-fforce-mem", C::kMisc, 2},
      {"-foptimize-sibling-calls", C::kInline, 2},
      {"-fstrength-reduce", C::kLoop, 2},
      {"-fcse-follow-jumps", C::kRedundancy, 2},
      {"-fcse-skip-blocks", C::kRedundancy, 2},
      {"-frerun-cse-after-loop", C::kRedundancy, 2},
      {"-frerun-loop-opt", C::kLoop, 2},
      {"-fgcse", C::kRedundancy, 2},
      {"-fgcse-lm", C::kRedundancy, 2},
      {"-fgcse-sm", C::kRedundancy, 2},
      {"-fdelete-null-pointer-checks", C::kMisc, 2},
      {"-fexpensive-optimizations", C::kMisc, 2},
      {"-fregmove", C::kRegister, 2},
      {"-fschedule-insns", C::kScheduling, 2},
      {"-fschedule-insns2", C::kScheduling, 2},
      {"-fsched-interblock", C::kScheduling, 2},
      {"-fsched-spec", C::kScheduling, 2},
      {"-fcaller-saves", C::kRegister, 2},
      {"-fpeephole2", C::kMisc, 2},
      {"-freorder-blocks", C::kLayout, 2},
      {"-freorder-functions", C::kLayout, 2},
      {"-fstrict-aliasing", C::kAlias, 2},
      {"-falign-functions", C::kLayout, 2},
      {"-falign-jumps", C::kLayout, 2},
      {"-falign-loops", C::kLayout, 2},
      {"-falign-labels", C::kLayout, 2},
      {"-fcrossjumping", C::kBranch, 2},
      // -O3 adds (2)
      {"-finline-functions", C::kInline, 3},
      {"-frename-registers", C::kRegister, 3},
  }};
  PEAK_CHECK(space.size() == 38, "GCC 3.3 -O3 space must have 38 flags");
  return space;
}

FlagConfig::FlagConfig(const OptimizationSpace& space, bool all_on)
    : bits_(space.size()) {
  if (all_on) bits_.set_all();
}

std::string FlagConfig::key() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bits_.size(); ++i)
    os << (bits_.test(i) ? '1' : '0');
  return os.str();
}

std::string FlagConfig::describe(const OptimizationSpace& space,
                                 bool invert) const {
  PEAK_CHECK(space.size() == bits_.size(), "space/config size mismatch");
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_.test(i) == invert) continue;
    if (!first) os << ' ';
    first = false;
    os << space.flag(i).name;
  }
  return os.str();
}

FlagConfig o3_config(const OptimizationSpace& space) {
  return FlagConfig(space, /*all_on=*/true);
}

FlagConfig baseline_config(const OptimizationSpace& space) {
  return FlagConfig(space, /*all_on=*/false);
}

}  // namespace peak::search
