#pragma once

/// \file simple_searches.hpp
/// Reference search algorithms used to sanity-check Iterative Elimination:
/// exhaustive enumeration (ground truth on small spaces), uniform random
/// sampling (the classic cheap baseline), and greedy forward construction
/// (start from nothing, add the most helpful option per round).

#include "search/search_algorithm.hpp"
#include "support/rng.hpp"

namespace peak::search {

/// Enumerates all 2^n configurations. Guarded to small spaces.
class ExhaustiveSearch final : public SearchAlgorithm {
public:
  explicit ExhaustiveSearch(std::size_t max_bits = 16)
      : max_bits_(max_bits) {}

  SearchResult run(const OptimizationSpace& space,
                   ConfigEvaluator& evaluator,
                   const FlagConfig& start) override;

  [[nodiscard]] std::string name() const override { return "exhaustive"; }

private:
  std::size_t max_bits_;
};

/// Uniformly random configurations; keeps the best of `trials`.
class RandomSearch final : public SearchAlgorithm {
public:
  RandomSearch(std::size_t trials, std::uint64_t seed)
      : trials_(trials), rng_(seed) {}

  SearchResult run(const OptimizationSpace& space,
                   ConfigEvaluator& evaluator,
                   const FlagConfig& start) override;

  [[nodiscard]] std::string name() const override { return "random"; }

private:
  std::size_t trials_;
  support::Rng rng_;
};

/// Greedy forward construction: start all-off, repeatedly enable the
/// option with the best marginal improvement until none helps.
class GreedyConstruction final : public SearchAlgorithm {
public:
  explicit GreedyConstruction(double improvement_threshold = 1.002)
      : threshold_(improvement_threshold) {}

  SearchResult run(const OptimizationSpace& space,
                   ConfigEvaluator& evaluator,
                   const FlagConfig& start) override;

  [[nodiscard]] std::string name() const override {
    return "greedy-construction";
  }

private:
  double threshold_;
};

}  // namespace peak::search
