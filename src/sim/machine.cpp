#include "sim/machine.hpp"

namespace peak::sim {

MachineModel sparc2() {
  MachineModel m;
  m.name = "sparc2";
  m.int_registers = 24;  // effective GPRs exposed by register windows
  m.fp_registers = 32;
  m.int_op_cost = 1.0;
  m.fp_op_cost = 2.0;
  m.load_cost = 2.0;
  m.store_cost = 2.0;
  m.branch_cost = 1.0;
  m.mispredict_penalty = 4.0;  // shallow pipeline
  m.div_cost = 18.0;
  m.transcend_cost = 25.0;
  m.call_cost = 8.0;
  m.mispredict_rate = 0.05;
  m.l1 = {16 * 1024, 32, 1, 30.0};
  m.noise = {0.008, 0.0015, 1.5, 3.0, 4.0};
  m.counter_cost = 0.5;
  return m;
}

MachineModel pentium4() {
  MachineModel m;
  m.name = "p4";
  m.int_registers = 8;  // architectural x86 GPRs
  m.fp_registers = 8;
  m.int_op_cost = 1.0;
  m.fp_op_cost = 1.5;
  m.load_cost = 2.5;
  m.store_cost = 2.5;
  m.branch_cost = 1.0;
  m.mispredict_penalty = 20.0;  // ~20-stage pipeline
  m.div_cost = 30.0;
  m.transcend_cost = 40.0;
  m.call_cost = 12.0;
  m.mispredict_rate = 0.05;
  m.l1 = {8 * 1024, 64, 4, 45.0};
  m.noise = {0.012, 0.003, 1.5, 4.0, 8.0};
  m.counter_cost = 0.5;
  return m;
}

double MachineCostModel::block_entry_cost(const ir::Function& fn,
                                          ir::BlockId block) const {
  const ir::BlockTraits& t = fn.block(block).traits;
  double cost = 1.0;  // block entry overhead
  cost += t.int_ops * machine_.int_op_cost;
  cost += t.fp_ops * machine_.fp_op_cost;
  cost += t.loads * machine_.load_cost;
  cost += t.stores * machine_.store_cost;
  cost += t.branches * (machine_.branch_cost +
                        machine_.mispredict_rate *
                            machine_.mispredict_penalty);
  cost += t.divs * machine_.div_cost;
  cost += t.fp_transcend * machine_.transcend_cost;
  cost += t.calls * machine_.call_cost;
  return cost;
}

}  // namespace peak::sim
