#pragma once

/// \file perturbation.hpp
/// Measurement-noise process. Real timings jitter (lognormal multiplicative
/// noise) and occasionally spike when the OS interrupts the run — exactly
/// the "system perturbations, such as interrupts" whose samples the rating
/// engine must identify as outliers (paper Section 3). Fully deterministic
/// given the seed, so consistency experiments are reproducible.

#include <cmath>

#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace peak::sim {

class Perturbation {
public:
  Perturbation(const NoiseProfile& profile, support::Rng rng)
      : profile_(profile), rng_(std::move(rng)) {}

  /// Multiplicative factor to apply to one measured execution time.
  double sample() {
    double factor = rng_.lognormal(profile_.sigma);
    if (rng_.bernoulli(profile_.outlier_prob))
      factor *= rng_.uniform(profile_.outlier_scale_lo,
                             profile_.outlier_scale_hi);
    return factor;
  }

  /// Additive jitter in cycles for one measurement.
  double sample_additive() {
    return std::fabs(rng_.normal(0.0, profile_.sigma_additive));
  }

  /// Scale the relative jitter (workloads with irregular memory
  /// behaviour, e.g. EQUAKE's sparse operations, are intrinsically
  /// noisier). The additive term is a property of the *machine* (timer
  /// granularity, bus contention) and is deliberately not scaled.
  void scale_sigma(double factor) { profile_.sigma *= factor; }

  [[nodiscard]] const NoiseProfile& profile() const { return profile_; }

  /// The underlying stream, exposed so the execution backend can snapshot
  /// and restore it bit-exactly for crash-safe resume.
  [[nodiscard]] support::Rng& rng() { return rng_; }
  [[nodiscard]] const support::Rng& rng() const { return rng_; }

private:
  NoiseProfile profile_;
  support::Rng rng_;
};

}  // namespace peak::sim
